"""Setup shim for legacy (non-PEP-660) editable installs on offline hosts."""
from setuptools import setup

setup()
