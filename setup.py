"""Setup shim for legacy (non-PEP-660) editable installs on offline hosts.

All real metadata lives in ``pyproject.toml``; setuptools >= 61 reads it from
there, so ``pip install -e .`` installs the ``repro`` package either way.
"""
from setuptools import setup

setup()
