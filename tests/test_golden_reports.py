"""Golden-report regression tests.

Fixed-seed static *and* dynamic scenarios snapshot the user-visible content
of their :class:`~repro.core.analysis.EpochReport`s — per-epoch ground truth,
detected links, the top of the vote tally (exact floats), and flow-cause
counts — into JSON files under ``tests/golden/``.  Future refactors (engine
rewrites, tally changes, schedule changes) cannot silently change results:
any drift fails these tests and forces a deliberate golden update.

To regenerate after an *intentional* behaviour change, delete the stale file
and run this module once (it rewrites missing files and fails, asking for a
re-run), or run ``python -m tests.test_golden_reports`` style regeneration:

    rm tests/golden/<name>.json
    PYTHONPATH=src python -m pytest tests/test_golden_reports.py

JSON floats round-trip exactly in Python, so the comparison is bit-exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict

import pytest

from repro.experiments.scenario import ScenarioConfig, ScenarioResult, run_scenario
from repro.netsim.script import ScenarioScript
from repro.topology.elements import LinkLevel

GOLDEN_DIR = Path(__file__).parent / "golden"

#: small fabric so the snapshots stay fast and the files stay reviewable.
FAST = dict(npod=2, n0=4, n1=2, n2=2, hosts_per_tor=2, connections_per_host=25)


def _static_config() -> ScenarioConfig:
    return ScenarioConfig(
        **FAST, num_bad_links=2, drop_rate_range=(1e-2, 1e-2), epochs=2, seed=11
    )


def _dynamic_flap_config() -> ScenarioConfig:
    script = (
        ScenarioScript()
        .flap(start=1, duration=2, drop_rate=2e-2, level=LinkLevel.LEVEL1)
        .burst(start=4, duration=1, level=LinkLevel.LEVEL2, num_links=2, drop_rate=2e-2)
    )
    return ScenarioConfig(
        **FAST, failure_kind="none", epochs=6, seed=13, script=script
    )


SCENARIOS: Dict[str, Callable[[], ScenarioConfig]] = {
    "static_two_failures": _static_config,
    "dynamic_flap_burst": _dynamic_flap_config,
}


def snapshot(result: ScenarioResult) -> dict:
    """The regression-relevant content of a scenario result, JSON-ready."""
    epochs = []
    for i, report in enumerate(result.reports):
        cause_counts: Dict[str, int] = {}
        for _, link in sorted(report.flow_causes.items()):
            key = str(link)
            cause_counts[key] = cause_counts.get(key, 0) + 1
        truth = result.truth_for_epoch(i)
        epochs.append(
            {
                "epoch": report.epoch,
                "truth": [str(link) for link in truth.bad_links],
                "detected": [str(link) for link in report.detected_links],
                "top_tally": [
                    [str(link), votes] for link, votes in report.top_links(3)
                ],
                "flow_cause_counts": cause_counts,
                "num_paths_analyzed": report.num_paths_analyzed,
                "num_noise_flows": report.noise.num_noise,
            }
        )
    return {"epochs": epochs}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_report(name: str) -> None:
    result = run_scenario(SCENARIOS[name]())
    got = snapshot(result)
    path = GOLDEN_DIR / f"{name}.json"
    if not path.exists():
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(got, indent=2, sort_keys=True) + "\n")
        pytest.fail(
            f"golden file {path} was missing and has been written; "
            "review and re-run"
        )
    expected = json.loads(path.read_text())
    assert got == expected, (
        f"scenario {name!r} drifted from its golden report {path}; if the "
        "change is intentional, delete the file and re-run to regenerate"
    )


def test_both_engines_match_the_same_golden() -> None:
    """The dict engine must reproduce the (array-engine) golden snapshot too."""
    import dataclasses

    config = SCENARIOS["dynamic_flap_burst"]()
    config = dataclasses.replace(config, engine="dicts")
    path = GOLDEN_DIR / "dynamic_flap_burst.json"
    if not path.exists():
        pytest.skip("golden file not generated yet")
    expected = json.loads(path.read_text())
    assert snapshot(run_scenario(config)) == expected
