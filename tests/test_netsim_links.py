"""Unit tests for the link-state (drop probability) table."""

from __future__ import annotations

import pytest

from repro.netsim.links import LinkStateTable
from repro.topology.elements import DirectedLink, Link, LinkLevel


class TestNoiseInitialisation:
    def test_every_directed_link_has_probability(self, small_topology, link_table):
        assert len(link_table) == small_topology.num_links(directed=True)
        for link in small_topology.directed_links():
            assert 0.0 <= link_table.drop_probability(link) <= 1e-6

    def test_custom_noise_range(self, small_topology):
        table = LinkStateTable(small_topology, noise_low=1e-5, noise_high=1e-4, rng=0)
        probs = [table.drop_probability(l) for l in small_topology.directed_links()]
        assert min(probs) >= 1e-5 and max(probs) <= 1e-4

    def test_invalid_noise_range_raises(self, small_topology):
        with pytest.raises(ValueError):
            LinkStateTable(small_topology, noise_low=0.5, noise_high=0.1)

    def test_no_failures_initially(self, link_table):
        assert link_table.failed_links == set()
        assert link_table.down_links == set()


class TestFailureInjection:
    def test_inject_directed_failure(self, small_topology, link_table):
        link = small_topology.directed_links()[0]
        affected = link_table.inject_failure(link, 0.01)
        assert affected == [link]
        assert link_table.drop_probability(link) == 0.01
        assert link_table.is_failed(link)
        assert not link_table.is_failed(link.reversed())

    def test_inject_symmetric_failure(self, small_topology, link_table):
        link = small_topology.directed_links()[0]
        affected = link_table.inject_failure(link, 0.02, symmetric=True)
        assert set(affected) == {link, link.reversed()}
        assert link_table.is_failed(link.reversed())

    def test_inject_physical_failure(self, small_topology, link_table):
        physical = small_topology.links[0]
        affected = link_table.inject_failure(physical, 0.05)
        assert set(affected) == set(physical.directions())

    def test_invalid_rate_raises(self, small_topology, link_table):
        with pytest.raises(ValueError):
            link_table.inject_failure(small_topology.directed_links()[0], 1.5)

    def test_unknown_link_raises(self, link_table):
        with pytest.raises(KeyError):
            link_table.inject_failure(DirectedLink("ghost", "phantom"), 0.1)

    def test_clear_failure_restores_noise(self, small_topology, link_table):
        link = small_topology.directed_links()[0]
        link_table.inject_failure(link, 0.5)
        link_table.clear_failure(link)
        assert not link_table.is_failed(link)
        assert link_table.drop_probability(link) <= 1e-6

    def test_failed_physical_links(self, small_topology, link_table):
        link = small_topology.directed_links()[0]
        link_table.inject_failure(link, 0.1)
        assert link.undirected() in link_table.failed_physical_links


class TestBlackholes:
    def test_set_link_down(self, small_topology, link_table):
        physical = small_topology.links[0]
        link_table.set_link_down(physical)
        assert link_table.is_down(physical)
        for direction in physical.directions():
            assert link_table.drop_probability(direction) == 1.0
            assert link_table.is_failed(direction)

    def test_is_down_accepts_directed(self, small_topology, link_table):
        physical = small_topology.links[0]
        link_table.set_link_down(physical)
        assert link_table.is_down(physical.directions()[0])

    def test_clear_failure_clears_down(self, small_topology, link_table):
        physical = small_topology.links[0]
        link_table.set_link_down(physical)
        link_table.clear_failure(physical)
        assert not link_table.is_down(physical)


class TestReset:
    def test_reset_noise_clears_failures(self, small_topology, link_table):
        link = small_topology.directed_links()[0]
        link_table.inject_failure(link, 0.3)
        link_table.reset_noise(rng=1)
        assert link_table.failed_links == set()
        assert link_table.drop_probability(link) <= 1e-6

    def test_good_links_excludes_failed(self, small_topology, link_table):
        link = small_topology.directed_links()[0]
        link_table.inject_failure(link, 0.3)
        assert link not in link_table.good_links()
        assert len(link_table.good_links()) == len(link_table) - 1

    def test_drop_probabilities_copy(self, small_topology, link_table):
        snapshot = link_table.drop_probabilities()
        link = small_topology.directed_links()[0]
        link_table.inject_failure(link, 0.9)
        assert snapshot[link] <= 1e-6
