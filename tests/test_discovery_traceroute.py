"""Unit tests for the traceroute engine."""

from __future__ import annotations

import pytest

from repro.testing import pair_of_hosts
from repro.discovery.icmp import IcmpRateLimiter
from repro.discovery.traceroute import TracerouteEngine
from repro.netsim.links import LinkStateTable
from repro.routing.ecmp import EcmpRouter
from repro.routing.fivetuple import FiveTuple


def _flow(src, dst, port=1000):
    return FiveTuple(src, dst, port, 443)


@pytest.fixture()
def engine(small_topology, router, link_table):
    return TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0)


class TestCompleteTrace:
    def test_discovers_full_path(self, small_topology, router, engine):
        src, dst = pair_of_hosts(small_topology, cross_pod=True)
        flow = _flow(src, dst)
        trace = engine.trace(flow, src, dst)
        true_path = router.route(flow, src, dst)
        assert trace.complete
        assert trace.reached_destination
        assert trace.discovered_links == list(true_path.links)
        assert trace.probes_sent == true_path.hop_count

    def test_trace_matches_data_path_for_same_five_tuple(self, small_topology, router, engine):
        src, dst = pair_of_hosts(small_topology, cross_pod=True)
        for port in range(1000, 1010):
            flow = _flow(src, dst, port)
            trace = engine.trace(flow, src, dst)
            assert trace.discovered_links == list(router.route(flow, src, dst).links)

    def test_responders_are_path_nodes(self, small_topology, router, engine):
        src, dst = pair_of_hosts(small_topology, cross_pod=False)
        flow = _flow(src, dst)
        trace = engine.trace(flow, src, dst)
        path_nodes = router.route(flow, src, dst).nodes()
        for responder in trace.responders:
            assert responder in path_nodes

    def test_ip_id_encodes_ttl(self, small_topology, engine):
        src, dst = pair_of_hosts(small_topology)
        trace = engine.trace(_flow(src, dst), src, dst)
        for probe in trace.probes:
            assert probe.ip_id & 0xF == probe.ttl & 0xF


class TestPartialTrace:
    def test_blackhole_truncates_trace(self, small_topology, router, link_table):
        src, dst = pair_of_hosts(small_topology, cross_pod=True)
        flow = _flow(src, dst)
        true_path = router.route(flow, src, dst)
        # Blackhole the third link (T1 -> T2): probes beyond hop 2 die there.
        link_table.set_link_down(true_path.links[2].undirected())
        engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0)
        trace = engine.trace(flow, src, dst)
        assert not trace.complete
        assert not trace.reached_destination
        assert trace.last_responding_hop() == true_path.nodes()[2]
        assert set(trace.discovered_links) <= set(true_path.links[:2])

    def test_rate_limited_hop_missing(self, small_topology, router, link_table):
        src, dst = pair_of_hosts(small_topology, cross_pod=True)
        flow = _flow(src, dst)
        limiter = IcmpRateLimiter(tmax_per_second=1)
        true_path = router.route(flow, src, dst)
        # Exhaust the budget of the first-hop ToR for second 0.
        first_hop = true_path.nodes()[1]
        limiter.allow(first_hop, 0.0)
        engine = TracerouteEngine(router, link_table, limiter, rng=0, probe_loss=False)
        trace = engine.trace(flow, src, dst, time_s=0.0)
        assert trace.probes[0].rate_limited
        assert trace.probes[0].responder is None
        assert not trace.complete

    def test_unroutable_flow_gives_empty_trace(self, small_topology, link_table):
        src, dst = pair_of_hosts(small_topology)
        src_tor = small_topology.host(src).tor
        from repro.topology.elements import DirectedLink

        down = {
            DirectedLink(src_tor, t1.name)
            for t1 in small_topology.tier1s(small_topology.host(src).pod)
        }
        router = EcmpRouter(small_topology, rng=0, link_down=lambda l: l in down)
        engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0)
        trace = engine.trace(_flow(src, dst), src, dst)
        assert trace.probes_sent == 0
        assert trace.discovered_links == []
        assert not trace.complete


class TestProbeLossToggle:
    def test_probe_loss_disabled_ignores_lossy_links(self, small_topology, router, link_table):
        src, dst = pair_of_hosts(small_topology, cross_pod=True)
        flow = _flow(src, dst)
        true_path = router.route(flow, src, dst)
        link_table.inject_failure(true_path.links[0], 0.9)
        engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0, probe_loss=False)
        trace = engine.trace(flow, src, dst)
        assert trace.complete

    def test_probe_loss_enabled_can_lose_probes(self, small_topology, router, link_table):
        src, dst = pair_of_hosts(small_topology, cross_pod=True)
        flow = _flow(src, dst)
        true_path = router.route(flow, src, dst)
        link_table.inject_failure(true_path.links[0], 1.0)
        engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0, probe_loss=True)
        trace = engine.trace(flow, src, dst)
        assert all(p.responder is None for p in trace.probes)
        assert trace.probes[0].dropped_on == true_path.links[0]
