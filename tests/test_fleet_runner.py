"""Fleet runner and CLI tests: config validation, the run-dir contract,
argument plumbing, and one real multi-process localhost run.

The end-to-end run is deliberately tiny (tiny fabric, two agents, two
epochs) but exercises the full production path: the ``repro fleet run``
driver launching analyzer + agent subprocesses over TCP, a scripted
mid-run kill with relaunch, convergence, and the bit-identical replay
verification recorded in ``summary.json``.
"""

from __future__ import annotations

import copy
import io
import json

import pytest

from repro.cli import build_parser, main
from repro.fleet.runner import (
    RUN_SCHEMA,
    FleetRunConfig,
    fleet_timeline,
    run_fleet,
    validate_run_dir,
)


class TestFleetRunConfig:
    def test_defaults_are_valid(self, tmp_path):
        config = FleetRunConfig(run_dir=str(tmp_path))
        assert config.agents == 4
        assert config.transport == "tcp"
        assert config.as_dict()["mode"] == "events"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"agents": 0},
            {"shards": 0},
            {"transport": "carrier-pigeon"},
            {"mode": "quantum"},
            {"mode": "columns", "engine": "dicts"},
            {"engine": "quantum"},
            {"timeline": "apocalypse"},
            {"epochs": 0},
            {"kill_agent": 4},  # only agents 0..3 exist
            {"kill_agent": -1},
        ],
    )
    def test_invalid_configs_rejected(self, tmp_path, overrides):
        with pytest.raises(ValueError):
            FleetRunConfig(run_dir=str(tmp_path), **overrides)

    def test_timeline_registry_matches_validator(self):
        assert fleet_timeline("none") is None
        assert fleet_timeline("flap") is not None
        assert fleet_timeline("burst") is not None
        with pytest.raises(ValueError):
            fleet_timeline("apocalypse")


class TestCliPlumbing:
    def test_fleet_run_defaults(self):
        args = build_parser().parse_args(
            ["fleet", "run", "--run-dir", "/tmp/r"]
        )
        assert args.command == "fleet"
        assert args.fleet_command == "run"
        assert args.transport == "tcp"
        assert args.agents == 4
        assert args.shards == 2
        assert args.timeline == "none"
        assert args.no_verify_replay is False

    def test_fleet_run_flags_map_onto_config(self):
        args = build_parser().parse_args(
            [
                "fleet", "run",
                "--run-dir", "/tmp/r",
                "--transport", "unix",
                "--agents", "3",
                "--shards", "1",
                "--mode", "columns",
                "--timeline", "flap",
                "--kill-agent", "1",
                "--no-verify-replay",
            ]
        )
        assert args.transport == "unix"
        assert args.agents == 3
        assert args.mode == "columns"
        assert args.timeline == "flap"
        assert args.kill_agent == 1
        assert args.no_verify_replay is True

    def test_fleet_agent_requires_identity_and_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "agent"])

    def test_fleet_analyzer_defaults(self):
        args = build_parser().parse_args(
            ["fleet", "analyzer", "--num-agents", "2"]
        )
        assert args.bind == "tcp:127.0.0.1:0"
        assert args.mode == "events"

    def test_fleet_rejects_unknown_transport(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fleet", "run", "--run-dir", "/tmp/r",
                 "--transport", "pigeon"]
            )


@pytest.fixture(scope="module")
def completed_run(tmp_path_factory):
    """One real localhost fleet run with a scripted kill, shared by tests."""
    run_dir = tmp_path_factory.mktemp("fleet-run")
    config = FleetRunConfig(
        run_dir=str(run_dir),
        agents=2,
        shards=1,
        transport="tcp",
        mode="events",
        epochs=2,
        events_per_epoch=600,
        seed=13,
        chunk_events=128,
        kill_agent=1,
        kill_after_events=150,
        timeout=120.0,
    )
    summary = run_fleet(config)
    return run_dir, summary


class TestEndToEndRun:
    def test_run_converges_and_is_replay_equivalent(self, completed_run):
        _, summary = completed_run
        assert summary["converged"] is True
        assert summary["replay_equivalent"] is True
        assert all(entry["replay_match"] for entry in summary["epochs"])

    def test_scripted_kill_fired_and_recovered(self, completed_run):
        _, summary = completed_run
        kill = summary["kill"]
        assert kill["agent"] == 1
        assert kill["exit_code"] == kill["exit_code_expected"]
        assert kill["relaunched"] is True
        assert kill["recovery_seconds"] > 0

    def test_every_agent_exited_cleanly(self, completed_run):
        _, summary = completed_run
        assert [agent["exit_code"] for agent in summary["agents"]] == [0, 0]

    def test_run_dir_passes_the_contract(self, completed_run):
        run_dir, summary = completed_run
        validated = validate_run_dir(run_dir)
        assert validated["schema"] == RUN_SCHEMA
        assert validated["converged"] is True
        assert len(validated["epochs"]) == summary["config"]["epochs"]

    def test_agent_logs_record_lifecycle_events(self, completed_run):
        run_dir, _ = completed_run
        events = []
        with open(run_dir / "agent-1.jsonl", encoding="utf-8") as handle:
            for line in handle:
                events.append(json.loads(line)["event"])
        assert "scripted-kill" in events  # the victim's death is on record
        assert "connect" in events  # ... and so is the relaunch

    def test_cli_fleet_run_exit_code_and_output(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "fleet", "run",
                "--run-dir", str(tmp_path / "cli-run"),
                "--agents", "2",
                "--shards", "1",
                "--epochs", "2",
                "--events-per-epoch", "400",
                "--chunk-events", "128",
                "--seed", "5",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "replay=match" in text
        assert "converged" in text
        validate_run_dir(tmp_path / "cli-run")


class TestRunDirContract:
    def corrupt(self, run_dir, tmp_path, mutate):
        clone = tmp_path / "clone"
        clone.mkdir()
        for item in run_dir.iterdir():
            (clone / item.name).write_bytes(item.read_bytes())
        summary = json.loads((clone / "summary.json").read_text())
        mutate(summary, clone)
        (clone / "summary.json").write_text(json.dumps(summary))
        with pytest.raises(ValueError):
            validate_run_dir(clone)

    def test_rejects_missing_files(self, tmp_path):
        with pytest.raises(ValueError, match="is missing meta.json"):
            validate_run_dir(tmp_path)
        (tmp_path / "meta.json").write_text("{}")
        with pytest.raises(ValueError, match="is missing summary.json"):
            validate_run_dir(tmp_path)

    def test_rejects_wrong_schema(self, completed_run, tmp_path):
        run_dir, _ = completed_run
        self.corrupt(
            run_dir, tmp_path,
            lambda s, _: s.update(schema="fleet-run-v999"),
        )

    def test_rejects_epoch_count_mismatch(self, completed_run, tmp_path):
        run_dir, _ = completed_run
        self.corrupt(
            run_dir, tmp_path, lambda s, _: s["epochs"].pop()
        )

    def test_rejects_missing_agent_log(self, completed_run, tmp_path):
        run_dir, _ = completed_run

        def mutate(summary, clone):
            (clone / "agent-0.jsonl").unlink()

        self.corrupt(run_dir, tmp_path, mutate)

    def test_rejects_corrupt_agent_log(self, completed_run, tmp_path):
        run_dir, _ = completed_run

        def mutate(summary, clone):
            with open(clone / "agent-0.jsonl", "a") as handle:
                handle.write("not json\n")

        self.corrupt(run_dir, tmp_path, mutate)

    def test_unconverged_summary_needs_no_epochs(self, completed_run, tmp_path):
        run_dir, _ = completed_run
        clone = tmp_path / "unconverged"
        clone.mkdir()
        for item in run_dir.iterdir():
            (clone / item.name).write_bytes(item.read_bytes())
        summary = json.loads((clone / "summary.json").read_text())
        failed = copy.deepcopy(summary)
        for key in ("endpoints", "epochs", "agents", "replay_equivalent"):
            failed.pop(key, None)
        failed["converged"] = False
        failed["error"] = "TimeoutError: analyzer never finalized"
        (clone / "summary.json").write_text(json.dumps(failed))
        assert validate_run_dir(clone)["converged"] is False
