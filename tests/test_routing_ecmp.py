"""Unit tests for ECMP routing over the Clos topology."""

from __future__ import annotations

import pytest

from repro.testing import pair_of_hosts
from repro.routing.ecmp import EcmpRouter, NoRouteError
from repro.routing.fivetuple import FiveTuple
from repro.topology.elements import DirectedLink, SwitchTier


def _flow(src: str, dst: str, port: int = 1000) -> FiveTuple:
    return FiveTuple(src, dst, port, 443)


class TestRouteStructure:
    def test_same_tor_path_has_two_links(self, small_topology, router):
        tor = small_topology.tors(0)[0]
        hosts = [h.name for h in small_topology.hosts_under_tor(tor.name)]
        path = router.route(_flow(hosts[0], hosts[1]), hosts[0], hosts[1])
        assert path.hop_count == 2
        assert path.nodes() == [hosts[0], tor.name, hosts[1]]

    def test_intra_pod_path_has_four_links(self, small_topology, router):
        src, dst = pair_of_hosts(small_topology, cross_pod=False)
        path = router.route(_flow(src, dst), src, dst)
        assert path.hop_count == 4
        middle = path.nodes()[2]
        assert small_topology.switch(middle).tier == SwitchTier.T1

    def test_cross_pod_path_has_six_links(self, small_topology, router):
        src, dst = pair_of_hosts(small_topology, cross_pod=True)
        path = router.route(_flow(src, dst), src, dst)
        assert path.hop_count == 6
        t2 = path.nodes()[3]
        assert small_topology.switch(t2).tier == SwitchTier.T2

    def test_hop_count_matches_expectation(self, small_topology, router):
        src, dst = pair_of_hosts(small_topology, cross_pod=True)
        path = router.route(_flow(src, dst), src, dst)
        assert path.hop_count == small_topology.expected_hop_count(src, dst)

    def test_path_uses_existing_links(self, small_topology, router):
        src, dst = pair_of_hosts(small_topology, cross_pod=True)
        path = router.route(_flow(src, dst), src, dst)
        for link in path.links:
            assert small_topology.has_link(link.src, link.dst)


class TestEcmpDeterminism:
    def test_same_five_tuple_same_path(self, small_topology, router):
        src, dst = pair_of_hosts(small_topology)
        flow = _flow(src, dst)
        assert router.route(flow, src, dst) == router.route(flow, src, dst)

    def test_different_ports_can_differ(self, small_topology, router):
        src, dst = pair_of_hosts(small_topology)
        paths = {
            router.route(_flow(src, dst, port), src, dst).nodes()[2]
            for port in range(1000, 1064)
        }
        # With 2 tier-1 switches per pod, 64 flows should hit both.
        assert len(paths) > 1

    def test_reseed_changes_hashing(self, small_topology):
        router_a = EcmpRouter(small_topology, rng=0)
        router_b = EcmpRouter(small_topology, rng=1)
        src, dst = pair_of_hosts(small_topology)
        differences = 0
        for port in range(1000, 1032):
            flow = _flow(src, dst, port)
            if router_a.route(flow, src, dst) != router_b.route(flow, src, dst):
                differences += 1
        assert differences > 0

    def test_reseed_switch(self, small_topology, router):
        tor = small_topology.host(sorted(small_topology.hosts)[0]).tor
        before = router.seed_of(tor)
        router.reseed_switch(tor, rng=99)
        assert router.seed_of(tor) != before

    def test_ecmp_spreads_across_all_t1s(self, small_topology, router):
        src, dst = pair_of_hosts(small_topology)
        chosen = {
            router.route(_flow(src, dst, port), src, dst).nodes()[2]
            for port in range(1000, 1200)
        }
        expected = {s.name for s in small_topology.tier1s(small_topology.host(src).pod)}
        assert chosen == expected


class TestRouteErrors:
    def test_unknown_host_raises(self, router):
        with pytest.raises(ValueError):
            router.route(_flow("nope", "alsono"), "nope", "alsono")

    def test_self_route_raises(self, small_topology, router):
        host = sorted(small_topology.hosts)[0]
        with pytest.raises(ValueError):
            router.route(_flow(host, host), host, host)

    def test_no_route_when_all_uplinks_down(self, small_topology):
        src, dst = pair_of_hosts(small_topology)
        src_tor = small_topology.host(src).tor
        t1_names = {s.name for s in small_topology.tier1s(small_topology.host(src).pod)}
        down = {DirectedLink(src_tor, t1) for t1 in t1_names}
        router = EcmpRouter(small_topology, rng=0, link_down=lambda l: l in down)
        with pytest.raises(NoRouteError):
            router.route(_flow(src, dst), src, dst)

    def test_single_down_uplink_is_avoided(self, small_topology):
        src, dst = pair_of_hosts(small_topology)
        src_tor = small_topology.host(src).tor
        avoided_t1 = small_topology.tier1s(small_topology.host(src).pod)[0].name
        down = {DirectedLink(src_tor, avoided_t1)}
        router = EcmpRouter(small_topology, rng=0, link_down=lambda l: l in down)
        for port in range(1000, 1050):
            path = router.route(_flow(src, dst, port), src, dst)
            assert avoided_t1 != path.nodes()[2]


class TestRouteCache:
    def test_cache_hit_returns_same_path(self, small_topology):
        router = EcmpRouter(small_topology, rng=0)
        src, dst = pair_of_hosts(small_topology)
        flow = _flow(src, dst)
        first = router.route(flow, src, dst)
        assert router.route(flow, src, dst) is first
        assert router.cache_hits == 1 and router.cache_misses == 1

    def test_cached_equals_uncached(self, small_topology):
        cached = EcmpRouter(small_topology, rng=0, cache_paths=True)
        uncached = EcmpRouter(small_topology, rng=0, cache_paths=False)
        src, dst = pair_of_hosts(small_topology)
        for port in range(1000, 1050):
            flow = _flow(src, dst, port)
            assert cached.route(flow, src, dst) == uncached.route(flow, src, dst)
        assert uncached.cache_hits == 0 and uncached.cache_misses == 0

    def test_reseed_invalidates_cache(self, small_topology):
        router = EcmpRouter(small_topology, rng=0)
        src, dst = pair_of_hosts(small_topology)
        flow = _flow(src, dst)
        router.route(flow, src, dst)
        # Reseed every switch: the flow must be re-hashed, not served stale.
        for switch in sorted(small_topology.switches):
            router.reseed_switch(switch, rng=1234)
        fresh = EcmpRouter(small_topology, rng=0)
        for switch in sorted(small_topology.switches):
            fresh.reseed_switch(switch, rng=1234)
        assert router.route(flow, src, dst) == fresh.route(flow, src, dst)

    def test_custom_link_down_predicate_disables_cache(self, small_topology):
        down = set()
        router = EcmpRouter(small_topology, rng=0, link_down=lambda l: l in down)
        assert not router.cache_enabled
        src, dst = pair_of_hosts(small_topology)
        flow = _flow(src, dst)
        path = router.route(flow, src, dst)
        # Mutate the predicate's backing state: the next route must see it.
        down.add(path.links[1])
        rerouted = router.route(flow, src, dst)
        assert path.links[1] not in rerouted.links

    def test_set_predicate_clears_cache_and_none_restores(self, small_topology):
        router = EcmpRouter(small_topology, rng=0)
        src, dst = pair_of_hosts(small_topology)
        flow = _flow(src, dst)
        path = router.route(flow, src, dst)
        blocked = path.links[1]
        router.set_link_down_predicate(lambda l: l == blocked)
        assert blocked not in router.route(flow, src, dst).links
        router.set_link_down_predicate(None)
        assert router.cache_enabled
        assert router.route(flow, src, dst) == path


class TestReverseAndEnumeration:
    def test_route_reverse_endpoints(self, small_topology, router):
        src, dst = pair_of_hosts(small_topology)
        reverse = router.route_reverse(_flow(src, dst), src, dst)
        assert reverse.src == dst and reverse.dst == src

    def test_all_paths_counts(self, small_topology, router):
        params = small_topology.params
        src, dst = pair_of_hosts(small_topology, cross_pod=False)
        assert len(router.all_paths(src, dst)) == params.n1
        src, dst = pair_of_hosts(small_topology, cross_pod=True)
        assert len(router.all_paths(src, dst)) == params.n1 * params.n2 * params.n1

    def test_routed_path_is_among_all_paths(self, small_topology, router):
        src, dst = pair_of_hosts(small_topology, cross_pod=True)
        path = router.route(_flow(src, dst), src, dst)
        assert path in router.all_paths(src, dst)
