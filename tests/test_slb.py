"""Unit tests for the software load balancer, vSwitch and SNAT models."""

from __future__ import annotations

import pytest

from repro.routing.fivetuple import FiveTuple
from repro.slb.loadbalancer import SlbQueryError, SnatTable, SoftwareLoadBalancer


class TestVipManagement:
    def test_vip_for_host_auto_registers(self):
        slb = SoftwareLoadBalancer()
        vip = slb.vip_for_host("host-a")
        assert slb.dips_of(vip) == ["host-a"]

    def test_register_vip_pool(self):
        slb = SoftwareLoadBalancer()
        slb.register_vip("vip:storage", ["s1", "s2"])
        assert slb.dips_of("vip:storage") == ["s1", "s2"]

    def test_register_empty_pool_raises(self):
        with pytest.raises(ValueError):
            SoftwareLoadBalancer().register_vip("vip:x", [])


class TestConnectionEstablishment:
    def test_app_and_data_tuples(self):
        slb = SoftwareLoadBalancer()
        app, data = slb.establish_connection("client", "server", 1000, 443)
        assert app.dst_ip == "vip:server"
        assert data.dst_ip == "server"
        assert app.src_ip == data.src_ip == "client"
        assert app.src_port == data.src_port == 1000

    def test_query_dip_resolves_mapping(self):
        slb = SoftwareLoadBalancer()
        app, data = slb.establish_connection("client", "server", 1000, 443)
        assert slb.query_dip(app) == "server"

    def test_query_unknown_flow_raises(self):
        slb = SoftwareLoadBalancer()
        unknown = FiveTuple("client", "vip:server", 2000, 443)
        with pytest.raises(SlbQueryError):
            slb.query_dip(unknown)

    def test_query_failure_rate_one_always_fails(self):
        slb = SoftwareLoadBalancer(query_failure_rate=1.0, rng=0)
        app, _ = slb.establish_connection("client", "server", 1000, 443)
        with pytest.raises(SlbQueryError):
            slb.query_dip(app)
        assert slb.query_stats == (1, 1)

    def test_invalid_failure_rate_raises(self):
        with pytest.raises(ValueError):
            SoftwareLoadBalancer(query_failure_rate=2.0)

    def test_vswitch_registration_and_eviction(self):
        slb = SoftwareLoadBalancer()
        app, _ = slb.establish_connection("client", "server", 1000, 443)
        vswitch = slb.vswitch("client")
        assert vswitch.lookup(app.canonical_key()) == "server"
        slb.terminate_connection(app, "client")
        assert vswitch.lookup(app.canonical_key()) is None
        # The SLB itself still knows the mapping (the reason 007 queries it).
        assert slb.query_dip(app) == "server"


class TestSnatTable:
    def test_translate_and_reverse(self):
        snat = SnatTable()
        flow = FiveTuple("vm-1", "internet-host", 1234, 80)
        translated = snat.translate(flow)
        assert translated.src_ip == "snat-gateway"
        assert snat.reverse(translated) == flow

    def test_unknown_reverse_is_none(self):
        snat = SnatTable()
        assert snat.reverse(FiveTuple("a", "b", 1, 2)) is None

    def test_ports_differ_across_translations(self):
        snat = SnatTable()
        a = snat.translate(FiveTuple("vm-1", "x", 1, 80))
        b = snat.translate(FiveTuple("vm-2", "x", 1, 80))
        assert a.src_port != b.src_port
