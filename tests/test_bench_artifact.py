"""The committed ``BENCH_service.json`` is the repo's perf contract.

``repro bench --fabric medium --events 1000000`` produced this artifact; it
must stay schema-valid and keep meeting the acceptance bars — most notably
the >= 5x speedup of the vectorized ``ingest_batch`` path over per-event
ingest on the arrays engine.  Enforcing the bar on the *recorded* document
keeps CI deterministic (no wall-clock assertions on noisy runners): whoever
regenerates the artifact regenerates the evidence, and a regeneration that
no longer meets the bar fails here.

Live (machine-dependent) speedup floors are asserted separately in
``benchmarks/bench_service_ingest.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import BENCH_SCHEMA_VERSION, validate_bench_report

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


@pytest.fixture(scope="module")
def document():
    assert ARTIFACT.exists(), (
        "BENCH_service.json is missing — regenerate it with "
        "`repro-007 bench --fabric medium --events 1000000`"
    )
    return validate_bench_report(json.loads(ARTIFACT.read_text()))


def run_for(document, engine, num_shards, backend="inline"):
    for run in document["runs"]:
        if (
            run["engine"] == engine
            and run["num_shards"] == num_shards
            and run["backend"] == backend
        ):
            return run
    raise AssertionError(
        f"no recorded run for engine={engine} shards={num_shards} "
        f"backend={backend}"
    )


def test_artifact_is_schema_valid_and_current_version(document):
    assert document["schema_version"] == BENCH_SCHEMA_VERSION


def test_artifact_records_the_acceptance_workload(document):
    config = document["config"]
    assert config["fabric"] == "medium"
    assert config["events"] >= 1_000_000
    assert set(config["engines"]) == {"arrays", "dicts"}
    assert set(config["shard_counts"]) == {1, 2, 4}
    assert set(config["backends"]) == {"inline", "process"}
    # >= 2 queries per cut so the recorded p50 exercises the cached view.
    assert config["report_queries"] >= 2


def test_vectorized_ingest_is_at_least_5x_on_the_acceptance_workload(document):
    """The tentpole bar: >= 5x over per-event ingest, arrays engine, 1M events."""
    run = run_for(document, "arrays", 1)
    assert run["speedup_vs_per_event"] >= 5.0, (
        f"recorded arrays speedup {run['speedup_vs_per_event']:.2f}x < 5x — "
        "the vectorized ingest path regressed; fix it (or explain the "
        "regression in the artifact's commit) before regenerating"
    )
    assert run["ingest"]["events_per_sec"] >= 300_000


def test_every_recorded_configuration_beats_per_event_ingest(document):
    for engine in ("arrays", "dicts"):
        # process-1 is deliberately absent: one worker behind a pipe measures
        # only transport overhead, so the 1-shard reference is the inline run.
        for backend, counts in (("inline", (1, 2, 4)), ("process", (2, 4))):
            for shards in counts:
                run = run_for(document, engine, shards, backend)
                assert run["speedup_vs_per_event"] > 1.0, (engine, backend, shards)
                assert run["checkpoint"]["restore_bit_identical"] is True


def test_process_backend_beats_single_shard_ingest(document):
    """The scale-out bar: 4 process-hosted shards out-ingest one service.

    The coordinator keeps only the routing pass; encoding and the merged
    column fold ride the transport pipeline, and the workers tally off the
    critical path — so wall-clock ingest must beat the single-service run
    outright, not merely scale per-core.
    """
    single = run_for(document, "arrays", 1)
    process = run_for(document, "arrays", 4, backend="process")
    assert (
        process["ingest"]["events_per_sec"] > single["ingest"]["events_per_sec"]
    ), (
        "process-backend 4-shard ingest "
        f"({process['ingest']['events_per_sec']:.0f} ev/s) no longer beats "
        f"the single service ({single['ingest']['events_per_sec']:.0f} ev/s)"
    )
    # scaling_efficiency is per-shard-normalized throughput vs the inline
    # 1-shard reference; > 0.25 at 4 shards means the fleet beats it outright.
    efficiency = process["scaling_efficiency"]
    assert efficiency is not None and efficiency > 0.25


def test_process_backend_beats_inline_sharded_finalize(document):
    """Parallel finalize: merged columns cut the epoch-close critical path.

    The reference is the *inline 4-shard* run — same partitioning, shards
    ticked sequentially — so the bar isolates what the process backend buys
    at epoch close.  (The 1-shard service is no longer a meaningful finalize
    reference: its ticks reuse the incrementally materialized blame view, so
    closing an epoch costs only the rows touched since the last mid-epoch
    query.  The process fleet must still land in its ballpark, below.)
    """
    inline = run_for(document, "arrays", 4)
    process = run_for(document, "arrays", 4, backend="process")
    inline_per_epoch = inline["finalize"]["seconds"] / inline["finalize"]["epochs"]
    process_per_epoch = (
        process["finalize"]["seconds"] / process["finalize"]["epochs"]
    )
    assert process_per_epoch < inline_per_epoch, (
        f"process-backend finalize ({process_per_epoch:.3f}s/epoch) no longer "
        f"beats the inline sharded run ({inline_per_epoch:.3f}s/epoch)"
    )
    # ...and stays within 2x of the materialized-view single service.
    single = run_for(document, "arrays", 1)
    single_per_epoch = single["finalize"]["seconds"] / single["finalize"]["epochs"]
    assert process_per_epoch < 2.0 * single_per_epoch, (
        f"process-backend finalize ({process_per_epoch:.3f}s/epoch) fell "
        f"more than 2x behind the single service ({single_per_epoch:.3f}s/epoch)"
    )


def test_mid_epoch_report_latency_bar(document):
    """The materialized-view bar: mid-epoch report p50 < 10ms on medium.

    The per-epoch blame view is cached behind a mutation watermark, so a
    repeat query between ingest batches is a dict lookup — microseconds in
    practice; 10ms leaves room for a cold first query landing in the median
    on future workload shapes.
    """
    run = run_for(document, "arrays", 1)
    p50 = run["report_latency"]["p50_seconds"]
    assert p50 < 0.010, (
        f"recorded mid-epoch report p50 {p50 * 1e3:.2f}ms >= 10ms — the "
        "materialized blame view regressed to recomputing per query"
    )


def test_checkpoint_restore_and_size_bars(document):
    """Binary checkpoints: sub-second restore, <= 25% of the JSON v1 bytes."""
    run = run_for(document, "arrays", 1)
    checkpoint = run["checkpoint"]
    assert checkpoint["restore_seconds"] < 0.5, (
        f"recorded binary restore {checkpoint['restore_seconds']:.2f}s >= "
        "0.5s on the acceptance workload"
    )
    for candidate in document["runs"]:
        block = candidate["checkpoint"]
        where = (candidate["engine"], candidate["backend"], candidate["num_shards"])
        assert block["binary_bytes"] <= 0.25 * block["json_bytes"], where
        assert 0 < block["delta_bytes"] < block["binary_bytes"], where


def test_format_compatibility_is_recorded_as_exact(document):
    """v1 JSON restore and delta merge+restore stay bit-identical everywhere.

    The schema validator already requires these flags for v3 documents; the
    explicit assertion keeps the contract visible even if the validator's
    version gating changes.
    """
    for run in document["runs"]:
        checkpoint = run["checkpoint"]
        assert checkpoint["restore_bit_identical"] is True
        assert checkpoint["v1_restore_bit_identical"] is True
        assert checkpoint["delta_bit_identical"] is True


def test_peak_rss_stays_flat(document):
    """Flat memory: no recorded run's high-water mark exceeds the ceiling.

    ``peak_rss_kb`` is the OS's monotonic per-process maximum, so the later
    runs inherit the earlier runs' peak — asserting every run under one
    ceiling is equivalent to asserting the whole bench run stayed under it.
    """
    worst = max(run["peak_rss_kb"] for run in document["runs"])
    assert worst < 1_600_000, (
        f"recorded peak RSS {worst // 1024}MiB breached the ~1.5GiB ceiling "
        "for the 1M-event medium workload"
    )


def test_fleet_socket_ingest_bar(document):
    """The fleet bar: loopback TCP socket ingest >= 300k ev/s on medium.

    Four agents stream pre-encoded wire frames at the asyncio analyzer over
    real loopback sockets — handshake, framing, credit flow control and the
    columnar ingest all inside the timed window.
    """
    assert "fleet" in document, (
        "BENCH_service.json has no fleet block — regenerate it with "
        "`repro-007 bench --fabric medium --events 1000000 --fleet`"
    )
    fleet = document["fleet"]
    assert fleet["fabric"] == "medium"
    tcp = fleet["transports"]["tcp"]["events_per_sec"]
    assert tcp >= 300_000, (
        f"recorded fleet TCP ingest {tcp:.0f} ev/s < 300k — the socket "
        "transport path regressed"
    )
    # the unix and in-process lanes bound the transport overhead from above.
    assert fleet["transports"]["unix"]["events_per_sec"] >= 300_000
    assert fleet["transports"]["inproc"]["events_per_sec"] >= 300_000


def test_fleet_backpressure_and_reconnect_are_on_record(document):
    fleet = document["fleet"]
    # the probe runs with a deliberately tiny staging bound, so the credit
    # window must have engaged at least once.
    assert fleet["backpressure_engagements"] >= 1
    reconnect = fleet["reconnect"]
    assert reconnect["bit_identical"] is True
    assert reconnect["recovery_seconds"] > 0
    assert reconnect["redelivered_events"] >= 0


def test_recorded_epoch_counters_cover_the_whole_workload(document):
    config = document["config"]
    for run in document["runs"]:
        assert len(run["epochs"]) == config["epochs"]
        assert sum(entry["events"] for entry in run["epochs"]) == (
            config["events_per_epoch"] * config["epochs"]
        )
