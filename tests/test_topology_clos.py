"""Unit tests for the Clos topology builder and the test cluster."""

from __future__ import annotations

import pytest

from repro.topology.clos import ClosParameters, ClosTopology
from repro.topology.elements import Link, LinkLevel, SwitchTier
from repro.topology.testcluster import TestClusterTopology as Section7ClusterTopology


class TestClosParameters:
    def test_link_counts(self):
        params = ClosParameters(npod=2, n0=3, n1=2, n2=2, hosts_per_tor=2)
        assert params.num_hosts == 12
        assert params.num_host_links == 12
        assert params.num_level1_links == 2 * 3 * 2
        assert params.num_level2_links == 2 * 2 * 2
        assert params.num_links == 12 + 12 + 8

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            ClosParameters(npod=0)
        with pytest.raises(ValueError):
            ClosParameters(n0=0)
        with pytest.raises(ValueError):
            ClosParameters(hosts_per_tor=0)
        with pytest.raises(ValueError):
            ClosParameters(n3=-1)


class TestClosTopology:
    def test_node_counts(self, small_topology, small_params):
        assert len(small_topology.hosts) == small_params.num_hosts
        num_switches = (
            small_params.npod * (small_params.n0 + small_params.n1) + small_params.n2
        )
        assert len(small_topology.switches) == num_switches

    def test_link_counts_match_parameters(self, small_topology, small_params):
        assert len(small_topology.links) == small_params.num_links
        assert small_topology.num_links(directed=True) == 2 * small_params.num_links

    def test_level_partition(self, small_topology, small_params):
        assert len(small_topology.links_of_level(LinkLevel.HOST)) == small_params.num_host_links
        assert len(small_topology.links_of_level(LinkLevel.LEVEL1)) == small_params.num_level1_links
        assert len(small_topology.links_of_level(LinkLevel.LEVEL2)) == small_params.num_level2_links

    def test_tor_t1_complete_bipartite_within_pod(self, small_topology):
        for pod in range(small_topology.params.npod):
            for tor in small_topology.tors(pod):
                for t1 in small_topology.tier1s(pod):
                    assert small_topology.has_link(tor.name, t1.name)

    def test_no_links_across_pods_at_level1(self, small_topology):
        for tor in small_topology.tors(0):
            for t1 in small_topology.tier1s(1):
                assert not small_topology.has_link(tor.name, t1.name)

    def test_t1_t2_complete_bipartite(self, small_topology):
        for pod in range(small_topology.params.npod):
            for t1 in small_topology.tier1s(pod):
                for t2 in small_topology.tier2s():
                    assert small_topology.has_link(t1.name, t2.name)

    def test_hosts_under_tor(self, small_topology):
        tor = small_topology.tors(0)[0]
        hosts = small_topology.hosts_under_tor(tor.name)
        assert len(hosts) == small_topology.params.hosts_per_tor
        assert all(h.tor == tor.name for h in hosts)

    def test_tor_of_host(self, small_topology):
        host = sorted(small_topology.hosts)[0]
        tor = small_topology.tor_of_host(host)
        assert tor.tier == SwitchTier.TOR
        assert small_topology.has_link(host, tor.name)

    def test_expected_hop_count(self, small_topology):
        hosts = sorted(small_topology.hosts)
        same_tor = [h for h in hosts if small_topology.host(h).tor == small_topology.host(hosts[0]).tor]
        assert small_topology.expected_hop_count(same_tor[0], same_tor[1]) == 2
        cross_pod = [h for h in hosts if small_topology.host(h).pod != small_topology.host(hosts[0]).pod]
        assert small_topology.expected_hop_count(hosts[0], cross_pod[0]) == 6

    def test_keyword_construction(self):
        topo = ClosTopology(npod=1, n0=2, n1=2, n2=1, hosts_per_tor=1)
        assert topo.params.npod == 1
        with pytest.raises(TypeError):
            ClosTopology(ClosParameters(), npod=2)

    def test_link_level_lookup(self, small_topology):
        host = sorted(small_topology.hosts)[0]
        tor = small_topology.host(host).tor
        assert small_topology.link_level(Link.of(host, tor)) == LinkLevel.HOST

    def test_to_networkx(self, small_topology):
        graph = small_topology.to_networkx()
        assert graph.number_of_nodes() == len(small_topology.hosts) + len(small_topology.switches)
        assert graph.number_of_edges() == len(small_topology.links)

    def test_optional_tier3(self):
        topo = ClosTopology(npod=1, n0=2, n1=2, n2=2, hosts_per_tor=1, n3=2)
        assert len(topo.tier3s()) == 2
        assert len(topo.links_of_level(LinkLevel.LEVEL3)) == 4

    def test_validate_passes(self, small_topology):
        small_topology.validate()

    def test_describe_mentions_counts(self, small_topology):
        text = small_topology.describe()
        assert str(len(small_topology.hosts)) in text


class TestSection7Cluster:
    def test_defaults_match_section7(self):
        cluster = Section7ClusterTopology()
        assert cluster.params.npod == 1
        assert len(cluster.tors()) == 10
        assert len(cluster.controlled_hosts) == 40

    def test_is_single_pod(self):
        cluster = Section7ClusterTopology(num_tors=4, num_t1=2, hosts_per_tor=2)
        assert all(s.pod == 0 for s in cluster.tors())
