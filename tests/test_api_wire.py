"""Unit battery for the binary evidence transport (:mod:`repro.api.wire`).

The codec is the process backend's correctness floor: every event a worker
ingests came through ``WireEncoder.encode_run`` → pipe → ``WireDecoder``,
and every merged finalize on a clean epoch comes from the coordinator's
:class:`EvidenceColumnStore`.  These tests pin the round-trip exactly, the
per-stream table discipline, and the store's clean/dirty semantics —
including the degenerate shapes (repeated links in one path, mixed runs,
out-of-order seqs) where a silent mismatch would survive the happy-path
equivalence suites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    EvidenceColumnStore,
    PathEvidence,
    RetransmissionEvidence,
    WireDecoder,
    WireEncoder,
    WireProtocolError,
    evidence_to_dict,
)
from repro.core.analysis import AnalysisAgent
from repro.core.arrays import LinkIndex
from repro.discovery.agent import DiscoveredPath
from repro.routing.fivetuple import FiveTuple
from repro.testing import report_signature
from repro.topology.elements import DirectedLink

L = [DirectedLink(f"s{i}", f"s{i + 1}") for i in range(6)]


def make_path(flow_id, links, retransmissions=0, src_host="h0", epoch=0):
    return DiscoveredPath(
        flow_id=flow_id,
        five_tuple=FiveTuple("10.0.0.1", "10.0.0.2", 1024 + flow_id, 443),
        src_host=src_host,
        dst_host="h9",
        links=list(links),
        complete=True,
        retransmissions=retransmissions,
        epoch=epoch,
    )


def mixed_run(epoch=0, n=12):
    events = []
    for i in range(n):
        events.append(
            PathEvidence(
                epoch=epoch,
                seq=2 * i,
                path=make_path(i, L[i % 3 : i % 3 + 3], src_host=f"h{i % 4}"),
            )
        )
        events.append(
            RetransmissionEvidence(
                epoch=epoch, flow_id=i, retransmissions=1 + i % 3, seq=2 * i + 1
            )
        )
    return events


class TestCodecRoundTrip:
    def test_mixed_run_round_trips_exactly(self):
        encoder = WireEncoder(streams=1)
        decoder = WireDecoder()
        run = mixed_run()
        shard, epoch, events, seqs = decoder.decode(
            memoryview(encoder.encode_run(0, 3, 0, run))
        )
        assert (shard, epoch) == (3, 0)
        assert [evidence_to_dict(e) for e in events] == [
            evidence_to_dict(e) for e in run
        ]
        assert seqs.tolist() == [e.seq for e in run]

    def test_seq_less_updates_round_trip_as_none(self):
        encoder = WireEncoder(streams=1)
        decoder = WireDecoder()
        run = [
            PathEvidence(epoch=0, seq=0, path=make_path(1, L[:2])),
            RetransmissionEvidence(epoch=0, flow_id=1, retransmissions=2),
        ]
        _, _, events, _ = decoder.decode(memoryview(encoder.encode_run(0, 0, 0, run)))
        assert events[1].seq is None

    def test_table_deltas_are_incremental_across_messages(self):
        encoder = WireEncoder(streams=1)
        decoder = WireDecoder()
        first = encoder.encode_run(
            0, 0, 0, [PathEvidence(epoch=0, seq=0, path=make_path(1, L[:3]))]
        )
        second = encoder.encode_run(
            0, 0, 0, [PathEvidence(epoch=0, seq=1, path=make_path(2, L[2:5]))]
        )
        # the second message must be strictly smaller in table payload: it
        # only carries the links/names the stream has not seen yet.
        assert len(second) < len(first)
        decoder.decode(memoryview(first))
        _, _, events, _ = decoder.decode(memoryview(second))
        assert events[0].path.links == L[2:5]

    def test_decoding_out_of_order_raises(self):
        encoder = WireEncoder(streams=1)
        first = encoder.encode_run(
            0, 0, 0, [PathEvidence(epoch=0, seq=0, path=make_path(1, L[:3]))]
        )
        second = encoder.encode_run(
            0, 0, 0, [PathEvidence(epoch=0, seq=1, path=make_path(2, L[3:5]))]
        )
        decoder = WireDecoder()
        with pytest.raises(WireProtocolError):
            decoder.decode(memoryview(second))
        # and the skipped message is not silently recoverable afterwards
        fresh = WireDecoder()
        fresh.decode(memoryview(first))
        fresh.decode(memoryview(second))

    def test_streams_maintain_independent_watermarks(self):
        encoder = WireEncoder(streams=2)
        run = [PathEvidence(epoch=0, seq=0, path=make_path(1, L[:3]))]
        message_a = encoder.encode_run(0, 0, 0, run)
        message_b = encoder.encode_run(1, 0, 0, run)
        # stream 1 never saw the tables, so its message carries the full delta
        assert len(message_b) == len(message_a)
        for message in (message_a, message_b):
            _, _, events, _ = WireDecoder().decode(memoryview(message))
            assert events[0].path.links == L[:3]

    def test_evidence_subclass_is_rejected(self):
        # the codec transports exactly the two concrete evidence kinds; a
        # subclass would decode as its base and silently change behavior.
        class Custom(RetransmissionEvidence):
            pass

        encoder = WireEncoder(streams=1)
        with pytest.raises(WireProtocolError):
            encoder.encode_run(
                0, 0, 0, [Custom(epoch=0, flow_id=1, retransmissions=1, seq=0)]
            )

    def test_bad_magic_is_rejected(self):
        from repro.api.wire import _HEADER

        with pytest.raises(WireProtocolError):
            WireDecoder().decode(memoryview(bytes(_HEADER.size)))


class TestEvidenceColumnStore:
    def agent_and_store(self):
        index = LinkIndex()
        agent = AnalysisAgent(engine="arrays", link_index=index)
        return agent, EvidenceColumnStore(index)

    def test_clean_epoch_tally_matches_replay(self):
        agent, store = self.agent_and_store()
        run = mixed_run(n=16)
        store.append_run(0, run[:20])
        store.append_run(0, run[20:])
        assert store.is_clean(0)
        tally = store.build_tally(0)
        by_tally = agent.analyze_tally(0, tally)
        by_replay = agent.analyze_epoch(
            0, [e.path for e in run if type(e) is PathEvidence]
        )
        assert report_signature(by_tally) == report_signature(by_replay)

    def test_repeated_link_in_one_path_counts_support_once(self):
        """A routing loop repeats a link inside one path; support is
        distinct (path, link) pairs, so the repeat must not double-count."""
        agent, store = self.agent_and_store()
        loopy = make_path(1, [L[0], L[1], L[0]])
        run = [
            PathEvidence(epoch=0, seq=0, path=loopy),
            PathEvidence(epoch=0, seq=1, path=make_path(2, L[:2])),
        ]
        store.append_run(0, run)
        by_tally = agent.analyze_tally(0, store.build_tally(0))
        by_replay = agent.analyze_epoch(0, [loopy, run[1].path])
        assert report_signature(by_tally) == report_signature(by_replay)

    def test_seq_regression_marks_dirty_without_mutating(self):
        _, store = self.agent_and_store()
        store.append_run(0, [PathEvidence(epoch=0, seq=5, path=make_path(1, L[:2]))])
        store.append_run(0, [PathEvidence(epoch=0, seq=5, path=make_path(2, L[:2]))])
        assert not store.is_clean(0)
        assert store.build_tally(0) is None

    def test_update_before_later_retrace_marks_dirty(self):
        _, store = self.agent_and_store()
        run = [
            PathEvidence(epoch=0, seq=0, path=make_path(1, L[:2])),
            RetransmissionEvidence(epoch=0, flow_id=1, retransmissions=2, seq=1),
            PathEvidence(epoch=0, seq=2, path=make_path(1, L[2:4])),
            RetransmissionEvidence(epoch=0, flow_id=1, retransmissions=1, seq=1),
        ]
        store.append_run(0, run)
        assert not store.is_clean(0)

    def test_update_after_path_lands_on_the_path_row(self):
        agent, store = self.agent_and_store()
        path = make_path(7, L[:3], retransmissions=1)
        run = [
            PathEvidence(epoch=0, seq=0, path=path),
            RetransmissionEvidence(epoch=0, flow_id=7, retransmissions=4, seq=1),
        ]
        store.append_run(0, run)
        replayed = make_path(7, L[:3], retransmissions=5)
        by_tally = agent.analyze_tally(0, store.build_tally(0))
        by_replay = agent.analyze_epoch(0, [replayed])
        assert report_signature(by_tally) == report_signature(by_replay)

    def test_pop_forgets_the_epoch_and_clears_dirty(self):
        _, store = self.agent_and_store()
        store.append_run(0, [PathEvidence(epoch=0, seq=0, path=make_path(1, L[:2]))])
        store.mark_dirty(0)
        store.pop(0)
        assert store.is_clean(0)
        # a popped epoch rebuilds as empty, exactly like a gap epoch
        assert store.build_tally(0).items() == []

    def test_epochs_are_independent(self):
        agent, store = self.agent_and_store()
        store.append_run(0, [PathEvidence(epoch=0, seq=0, path=make_path(1, L[:2]))])
        store.mark_dirty(0)
        store.append_run(1, [PathEvidence(epoch=1, seq=0, path=make_path(2, L[1:4]))])
        assert not store.is_clean(0)
        assert store.is_clean(1)
        assert store.build_tally(1) is not None
