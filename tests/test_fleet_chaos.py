"""Chaos tests: agent death and severed sockets must not corrupt reports.

Three failure modes against a live analyzer:

* a scripted kill — the agent process dies mid-run without closing its
  socket (``os._exit``), is relaunched, and the finalized reports must be
  bit-identical to an uninterrupted replay on both engines;
* a severed connection at a frame boundary — the client reconnects with
  backoff and redelivers from its acked watermark; nothing is lost or
  double-counted;
* a severed connection mid-frame — the analyzer raises through the
  truncated-frame path (a typed protocol error, never a desync) and a
  fresh delivery still converges bit-identically.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.api.service import Zero07Service
from repro.fleet import protocol
from repro.fleet.agent import KILL_EXIT_CODE, FleetAgentClient
from repro.fleet.analyzer import (
    AnalyzerThread,
    ColumnarIngestCore,
    FleetAnalyzer,
    ServiceIngestCore,
)
from repro.fleet.protocol import Endpoint, parse_endpoint
from repro.fleet.runner import FleetQueryClient, build_generator, json_signature

EPOCHS = 2
EVENTS_PER_EPOCH = 1_000
SEED = 23


def generator():
    return build_generator("tiny", "skewed", "none", SEED, EVENTS_PER_EPOCH)


def reference_signatures(engine="arrays"):
    service = Zero07Service(engine=engine, retain_reports=EPOCHS)
    gen = generator()
    signatures = []
    for epoch in range(EPOCHS):
        service.ingest_batch(gen.epoch_events(epoch, tick=True))
        signatures.append(json_signature(service.report(epoch)))
    return signatures


def start_thread(core, expected_agents=1):
    analyzer = FleetAnalyzer(
        core, expected_agents=expected_agents, idle_timeout=60.0
    )
    return AnalyzerThread(
        analyzer,
        Endpoint(kind="tcp", host="127.0.0.1", port=0),
        Endpoint(kind="tcp", host="127.0.0.1", port=0),
    )


def wait_finalized(query_endpoint, last_epoch=EPOCHS - 1, timeout=60.0):
    deadline = time.monotonic() + timeout
    with FleetQueryClient(query_endpoint) as query:
        while True:
            stats = query.request({"cmd": "stats"})
            if stats["last_finalized"] == last_epoch:
                return stats
            assert time.monotonic() < deadline, "analyzer never finalized"
            time.sleep(0.02)


def query_signatures(query_endpoint):
    with FleetQueryClient(query_endpoint) as query:
        return [
            query.request({"cmd": "report", "epoch": epoch})["report"][
                "signature"
            ]
            for epoch in range(EPOCHS)
        ]


def _agent_process(endpoint_text, fail_after_events):
    """One whole-workload agent; dies with KILL_EXIT_CODE when armed."""
    gen = generator()
    client = FleetAgentClient(
        "chaos-0",
        parse_endpoint(endpoint_text),
        chunk_events=128,
        fail_after_events=fail_after_events,
        reconnect_seed=5,
        backoff_base=0.01,
    )
    client.connect()
    for epoch in range(EPOCHS):
        client.send_run(epoch, gen.agent_events(epoch, 0, 1))
        client.tick(epoch)
    client.drain()
    client.close()


@pytest.mark.parametrize("engine", ["arrays", "dicts"])
def test_scripted_kill_and_relaunch_is_bit_identical(engine):
    core = ServiceIngestCore(
        Zero07Service(engine=engine, retain_reports=EPOCHS)
    )
    thread = start_thread(core)
    try:
        victim = multiprocessing.Process(
            target=_agent_process, args=(str(thread.endpoint), 300)
        )
        victim.start()
        victim.join(timeout=60)
        assert victim.exitcode == KILL_EXIT_CODE

        relaunched = multiprocessing.Process(
            target=_agent_process, args=(str(thread.endpoint), None)
        )
        relaunched.start()
        relaunched.join(timeout=60)
        assert relaunched.exitcode == 0

        wait_finalized(thread.query_endpoint)
        assert query_signatures(thread.query_endpoint) == (
            reference_signatures(engine)
        )
        # the relaunch resent the victim's already-staged prefix: the
        # analyzer must have dropped or trimmed it, not double-counted.
        stats = thread.analyzer.stats
        assert stats.duplicate_chunks + stats.trimmed_chunks >= 1
    finally:
        thread.stop()


def test_sever_and_reconnect_redelivers_without_loss():
    core = ColumnarIngestCore(retain_reports=EPOCHS)
    thread = start_thread(core)
    try:
        gen = generator()
        client = FleetAgentClient(
            "chaos-0",
            thread.endpoint,
            chunk_events=128,
            reconnect_seed=5,
            backoff_base=0.01,
        )
        client.connect()
        for epoch in range(EPOCHS):
            events = gen.agent_events(epoch, 0, 1)
            half = len(events) // 2
            client.send_run(epoch, events[:half])
            if epoch == 0:
                client.sever()  # yanked cable mid-run
            client.send_run(epoch, events[half:])
            client.tick(epoch)
        client.drain()
        assert client.stats.reconnects >= 1
        assert client.stats.redelivered_chunks >= 1
        client.close()
        wait_finalized(thread.query_endpoint)
        assert query_signatures(thread.query_endpoint) == (
            reference_signatures()
        )
    finally:
        thread.stop()


def test_mid_frame_sever_raises_typed_error_without_desync():
    core = ColumnarIngestCore(retain_reports=EPOCHS)
    thread = start_thread(core)
    try:
        # a ghost connection handshakes, sends half an EVIDENCE frame and
        # vanishes — the analyzer must record a protocol error, not hang or
        # mis-ingest the fragment.
        gen = generator()
        sock = thread.endpoint.connect(timeout=10.0)
        sock.sendall(
            protocol.encode_frame(
                protocol.FRAME_HELLO, protocol.encode_hello("ghost")
            )
        )
        reader = protocol.FrameReader()
        while True:
            data = sock.recv(1 << 16)
            assert data, "analyzer closed during handshake"
            reader.feed(data)
            frames = list(reader.frames())
            if frames:
                assert frames[0][0] == protocol.FRAME_WELCOME
                break
        from repro.api.wire import WireEncoder

        payload = WireEncoder(streams=1).encode_run(
            0, 0, 0, gen.agent_events(0, 0, 1)[:128]
        )
        frame = protocol.encode_frame(protocol.FRAME_EVIDENCE, payload)
        sock.sendall(frame[: len(frame) // 2])
        sock.close()

        deadline = time.monotonic() + 30.0
        while thread.analyzer.stats.protocol_errors < 1:
            assert time.monotonic() < deadline, "truncated frame not flagged"
            time.sleep(0.02)
        # nothing of the half frame may have reached the core.
        assert thread.analyzer.stats.evidence_events == 0

        # a healthy agent still converges bit-identically afterwards.
        client = FleetAgentClient("chaos-0", thread.endpoint, chunk_events=128)
        client.connect()
        for epoch in range(EPOCHS):
            client.send_run(epoch, gen.agent_events(epoch, 0, 1))
            client.tick(epoch)
        client.drain()
        client.close()
        wait_finalized(thread.query_endpoint)
        assert query_signatures(thread.query_endpoint) == (
            reference_signatures()
        )
    finally:
        thread.stop()


def test_redelivery_after_acked_prefix_is_not_double_counted():
    """Sever after everything was acked: the replay must be fully trimmed."""
    core = ColumnarIngestCore(retain_reports=EPOCHS)
    thread = start_thread(core)
    try:
        gen = generator()
        client = FleetAgentClient(
            "chaos-0",
            thread.endpoint,
            chunk_events=128,
            reconnect_seed=5,
            backoff_base=0.01,
        )
        client.connect()
        events = gen.agent_events(0, 0, 1)
        client.send_run(0, events[:500])
        client.drain()  # every chunk acked; retention is empty
        client.sever()
        # the next chunk is retained, fails to send, and rides the
        # reconnect replay — but the 500 already-acked events must not.
        client.send_run(0, events[500:])
        client.tick(0)
        client.send_run(1, gen.agent_events(1, 0, 1))
        client.tick(1)
        client.drain()
        assert 0 < client.stats.redelivered_events <= client.chunk_events
        client.close()
        assert thread.analyzer.stats.duplicate_chunks == 0
        assert thread.analyzer.stats.trimmed_chunks == 0
        wait_finalized(thread.query_endpoint)
        assert query_signatures(thread.query_endpoint) == (
            reference_signatures()
        )
    finally:
        thread.stop()
