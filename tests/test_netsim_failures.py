"""Unit tests for failure injection and the VM-reboot model."""

from __future__ import annotations

import pytest

from repro.netsim.failures import (
    FailureInjector,
    FailureScenario,
    TransientFailure,
    TransientFailureSchedule,
    VmRebootModel,
)
from repro.netsim.flows import FlowRecord
from repro.netsim.links import LinkStateTable
from repro.netsim.tcp import TransferResult
from repro.routing.fivetuple import FiveTuple
from repro.routing.paths import Path
from repro.topology.elements import DirectedLink, LinkLevel


@pytest.fixture()
def injector(small_topology, link_table):
    return FailureInjector(small_topology, link_table, rng=0)


class TestRandomFailures:
    def test_requested_count(self, injector, link_table):
        scenario = injector.inject_random_failures(4)
        assert scenario.num_failures == 4
        assert link_table.failed_links == set(scenario.bad_links)

    def test_rates_within_range(self, injector):
        scenario = injector.inject_random_failures(5, drop_rate_range=(1e-3, 2e-3))
        assert all(1e-3 <= r <= 2e-3 for r in scenario.drop_rates.values())

    def test_level_restriction(self, small_topology, injector):
        scenario = injector.inject_random_failures(3, levels=(LinkLevel.LEVEL2,))
        for link in scenario.bad_links:
            assert small_topology.link_level(link) == LinkLevel.LEVEL2

    def test_too_many_failures_raise(self, injector):
        with pytest.raises(ValueError):
            injector.inject_random_failures(10_000)

    def test_links_are_distinct(self, injector):
        scenario = injector.inject_random_failures(8)
        assert len(set(scenario.bad_links)) == 8

    def test_drop_rate_of_unknown_link_is_zero(self, injector):
        scenario = injector.inject_random_failures(1)
        assert scenario.drop_rate_of(DirectedLink("x", "y")) == 0.0


class TestTargetedFailures:
    def test_level_failure_upward(self, small_topology, injector):
        scenario = injector.inject_failure_on_level(LinkLevel.LEVEL1, 0.01, downward=False)
        link = scenario.bad_links[0]
        assert small_topology.switch(link.dst).tier.name == "T1"

    def test_level_failure_downward(self, small_topology, injector):
        scenario = injector.inject_failure_on_level(LinkLevel.LEVEL1, 0.01, downward=True)
        link = scenario.bad_links[0]
        assert small_topology.switch(link.src).tier.name == "T1"

    def test_host_level_failure_orientation(self, small_topology, injector):
        scenario = injector.inject_failure_on_level(LinkLevel.HOST, 0.01, downward=False)
        link = scenario.bad_links[0]
        assert small_topology.is_host(link.src)

    def test_skewed_failures_have_dominant_link(self, injector):
        scenario = injector.inject_skewed_failures(5)
        rates = sorted(scenario.drop_rates.values(), reverse=True)
        assert rates[0] >= 0.1
        assert all(r <= 1e-3 for r in rates[1:])

    def test_switch_failure_covers_all_adjacent_links(self, small_topology, injector, link_table):
        switch = small_topology.tier1s(0)[0].name
        scenario = injector.fail_switch(switch)
        adjacent = small_topology.links_of_node(switch)
        assert len(scenario.bad_links) == 2 * len(adjacent)
        assert all(link_table.is_failed(l) for l in scenario.bad_links)

    def test_blackhole_link(self, small_topology, injector, link_table):
        physical = small_topology.links[0]
        scenario = injector.blackhole_link(physical)
        assert link_table.is_down(physical)
        assert set(scenario.bad_links) == set(physical.directions())


class TestTransientFailures:
    def test_active_window(self):
        failure = TransientFailure(DirectedLink("a", "b"), 0.1, start_epoch=2, duration_epochs=3)
        assert not failure.active(1)
        assert failure.active(2) and failure.active(4)
        assert not failure.active(5)

    def test_schedule_applies_and_clears(self, small_topology, link_table):
        schedule = TransientFailureSchedule(link_table)
        link = small_topology.directed_links()[0]
        schedule.add(TransientFailure(link, 0.2, start_epoch=1, duration_epochs=1))
        assert schedule.apply_epoch(0).num_failures == 0
        assert not link_table.is_failed(link)
        assert schedule.apply_epoch(1).num_failures == 1
        assert link_table.is_failed(link)
        assert schedule.apply_epoch(2).num_failures == 0
        assert not link_table.is_failed(link)


class TestVmRebootModel:
    def _flow(self, kind: str, retransmissions: int, failed: bool = False) -> FlowRecord:
        path = Path.from_nodes(["h1", "tor1", "h2"])
        result = TransferResult(
            num_packets=10,
            packets_delivered=0 if failed else 10 - retransmissions,
            packets_lost=10 if failed else 0,
            retransmissions=retransmissions,
            drops_by_link={path.links[0]: retransmissions} if retransmissions else {},
            connection_failed=failed,
        )
        return FlowRecord(
            flow_id=1,
            epoch=0,
            five_tuple=FiveTuple("h1", "h2", 1000, 445),
            src_host="h1",
            dst_host="h2",
            path=path,
            result=result,
            kind=kind,
        )

    def test_data_flows_never_reboot(self):
        model = VmRebootModel()
        assert model.reboots_for_epoch([self._flow("data", 10, failed=True)]) == []

    def test_storage_flow_below_threshold_no_reboot(self):
        model = VmRebootModel(retransmission_threshold=5)
        assert model.reboots_for_epoch([self._flow("storage", 2)]) == []

    def test_storage_flow_over_threshold_reboots(self):
        model = VmRebootModel(retransmission_threshold=3)
        reboots = model.reboots_for_epoch([self._flow("storage", 4)])
        assert len(reboots) == 1
        assert reboots[0].host == "h1"
        assert reboots[0].cause_link is not None

    def test_failed_connection_always_reboots(self):
        model = VmRebootModel(retransmission_threshold=100)
        assert len(model.reboots_for_epoch([self._flow("storage", 0, failed=True)])) == 1

    def test_host_reboots_at_most_once_per_epoch(self):
        model = VmRebootModel(retransmission_threshold=1)
        flows = [self._flow("storage", 5), self._flow("storage", 6)]
        assert len(model.reboots_for_epoch(flows)) == 1

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            VmRebootModel(retransmission_threshold=0)


class TestTransientScheduleVmRebootInterplay:
    """A flap on a storage path must cause reboots only while it is active.

    Drives the real :class:`~repro.netsim.simulator.EpochSimulator` with a
    replayed storage flow whose host uplink flaps during epochs [1, 3): the
    VM reboots exactly in those epochs and never outside the window.
    """

    def test_flap_on_storage_path_reboots_only_during_active_epochs(
        self, small_topology
    ):
        from repro.netsim.simulator import EpochSimulator
        from repro.netsim.traffic import ReplayTraffic, TrafficDemand
        from repro.routing.ecmp import EcmpRouter
        from repro.testing import pair_of_hosts

        link_table = LinkStateTable(small_topology, rng=0)
        router = EcmpRouter(small_topology, rng=0)
        src, dst = pair_of_hosts(small_topology)
        demand = TrafficDemand(
            src_host=src, dst_host=dst, num_packets=30, kind="storage"
        )
        traffic = ReplayTraffic(small_topology, [[demand]])
        simulator = EpochSimulator(
            topology=small_topology,
            router=router,
            link_table=link_table,
            traffic=traffic,
            rng=1,
        )

        schedule = TransientFailureSchedule(link_table)
        uplink = DirectedLink(src, small_topology.host(src).tor)
        schedule.add(
            TransientFailure(
                link=uplink, drop_rate=1.0, start_epoch=1, duration_epochs=2
            )
        )
        model = VmRebootModel(retransmission_threshold=3)

        reboot_epochs = set()
        for epoch in range(5):
            schedule.apply_epoch(epoch)
            result = simulator.run_epoch(epoch)
            for reboot in model.reboots_for_epoch(result.flows):
                assert reboot.host == src
                assert reboot.storage_host == dst
                reboot_epochs.add(reboot.epoch)
        assert reboot_epochs == {1, 2}


class TestTransientBaselineRestoration:
    """Transients must compose with static failures instead of erasing them."""

    def test_clearing_a_flap_restores_a_static_failure_on_the_same_link(
        self, small_topology, link_table
    ):
        link = DirectedLink("pod0-tor0", "pod0-t1-0")
        link_table.inject_failure(link, 0.02)
        schedule = TransientFailureSchedule(link_table)
        schedule.add(
            TransientFailure(link=link, drop_rate=0.3, start_epoch=0, duration_epochs=1)
        )
        schedule.apply_epoch(0)
        assert link_table.drop_probability(link) == 0.3
        schedule.apply_epoch(1)
        assert link_table.is_failed(link)
        assert link_table.drop_probability(link) == 0.02

    def test_clearing_a_flap_restores_a_static_failure_on_the_reverse(
        self, small_topology, link_table
    ):
        forward = DirectedLink("pod0-tor0", "pod0-t1-0")
        reverse = forward.reversed()
        link_table.inject_failure(reverse, 0.05)
        schedule = TransientFailureSchedule(link_table)
        schedule.add(
            TransientFailure(
                link=forward, drop_rate=0.3, start_epoch=0, duration_epochs=1
            )
        )
        schedule.apply_epoch(0)
        schedule.apply_epoch(1)
        # clear_failure resets both directions; the schedule must put the
        # reverse's static failure back
        assert link_table.is_failed(reverse)
        assert link_table.drop_probability(reverse) == 0.05
        assert not link_table.is_failed(forward)

    def test_expiring_drain_restores_static_failure_both_directions_quiet(
        self, small_topology, link_table
    ):
        physical = small_topology.links_of_level(LinkLevel.LEVEL1)[0]
        forward, reverse = physical.directions()
        link_table.inject_failure(forward, 0.01)
        schedule = TransientFailureSchedule(link_table)
        for direction in physical.directions():
            schedule.add(
                TransientFailure(
                    link=direction,
                    drop_rate=1.0,
                    start_epoch=0,
                    duration_epochs=2,
                    blackhole=True,
                )
            )
        schedule.apply_epoch(0)
        assert link_table.is_down(physical)
        schedule.apply_epoch(2)
        assert not link_table.is_down(physical)
        assert link_table.drop_probability(forward) == 0.01
        assert not link_table.is_failed(reverse)

    def test_overlapping_transients_report_the_applied_rate(
        self, small_topology, link_table
    ):
        physical = small_topology.links_of_level(LinkLevel.LEVEL1)[0]
        forward, reverse = physical.directions()
        schedule = TransientFailureSchedule(link_table)
        # a drain (both directions, blackhole) overlapping a milder flap on
        # the forward direction: the blackhole must win and be reported
        for direction in physical.directions():
            schedule.add(
                TransientFailure(
                    link=direction,
                    drop_rate=1.0,
                    start_epoch=0,
                    duration_epochs=3,
                    blackhole=True,
                )
            )
        schedule.add(
            TransientFailure(
                link=forward, drop_rate=0.05, start_epoch=1, duration_epochs=1
            )
        )
        truth = schedule.apply_epoch(1)
        assert truth.drop_rates[forward] == 1.0
        assert link_table.drop_probability(forward) == 1.0
        assert link_table.is_down(physical)
        # after everything expires, the link returns to noise
        schedule.apply_epoch(3)
        assert not link_table.is_down(physical)
        assert not link_table.is_failed(forward)

    def test_two_flaps_same_link_most_severe_wins(self, small_topology, link_table):
        link = DirectedLink("pod0-tor0", "pod0-t1-0")
        schedule = TransientFailureSchedule(link_table)
        schedule.add(
            TransientFailure(link=link, drop_rate=0.2, start_epoch=0, duration_epochs=2)
        )
        schedule.add(
            TransientFailure(link=link, drop_rate=0.1, start_epoch=1, duration_epochs=2)
        )
        truth = schedule.apply_epoch(1)
        assert truth.drop_rates[link] == 0.2
        assert link_table.drop_probability(link) == 0.2
        truth = schedule.apply_epoch(2)  # only the milder flap remains
        assert truth.drop_rates[link] == 0.1
        assert link_table.drop_probability(link) == 0.1
