"""Unit tests for failure injection and the VM-reboot model."""

from __future__ import annotations

import pytest

from repro.netsim.failures import (
    FailureInjector,
    FailureScenario,
    TransientFailure,
    TransientFailureSchedule,
    VmRebootModel,
)
from repro.netsim.flows import FlowRecord
from repro.netsim.links import LinkStateTable
from repro.netsim.tcp import TransferResult
from repro.routing.fivetuple import FiveTuple
from repro.routing.paths import Path
from repro.topology.elements import DirectedLink, LinkLevel


@pytest.fixture()
def injector(small_topology, link_table):
    return FailureInjector(small_topology, link_table, rng=0)


class TestRandomFailures:
    def test_requested_count(self, injector, link_table):
        scenario = injector.inject_random_failures(4)
        assert scenario.num_failures == 4
        assert link_table.failed_links == set(scenario.bad_links)

    def test_rates_within_range(self, injector):
        scenario = injector.inject_random_failures(5, drop_rate_range=(1e-3, 2e-3))
        assert all(1e-3 <= r <= 2e-3 for r in scenario.drop_rates.values())

    def test_level_restriction(self, small_topology, injector):
        scenario = injector.inject_random_failures(3, levels=(LinkLevel.LEVEL2,))
        for link in scenario.bad_links:
            assert small_topology.link_level(link) == LinkLevel.LEVEL2

    def test_too_many_failures_raise(self, injector):
        with pytest.raises(ValueError):
            injector.inject_random_failures(10_000)

    def test_links_are_distinct(self, injector):
        scenario = injector.inject_random_failures(8)
        assert len(set(scenario.bad_links)) == 8

    def test_drop_rate_of_unknown_link_is_zero(self, injector):
        scenario = injector.inject_random_failures(1)
        assert scenario.drop_rate_of(DirectedLink("x", "y")) == 0.0


class TestTargetedFailures:
    def test_level_failure_upward(self, small_topology, injector):
        scenario = injector.inject_failure_on_level(LinkLevel.LEVEL1, 0.01, downward=False)
        link = scenario.bad_links[0]
        assert small_topology.switch(link.dst).tier.name == "T1"

    def test_level_failure_downward(self, small_topology, injector):
        scenario = injector.inject_failure_on_level(LinkLevel.LEVEL1, 0.01, downward=True)
        link = scenario.bad_links[0]
        assert small_topology.switch(link.src).tier.name == "T1"

    def test_host_level_failure_orientation(self, small_topology, injector):
        scenario = injector.inject_failure_on_level(LinkLevel.HOST, 0.01, downward=False)
        link = scenario.bad_links[0]
        assert small_topology.is_host(link.src)

    def test_skewed_failures_have_dominant_link(self, injector):
        scenario = injector.inject_skewed_failures(5)
        rates = sorted(scenario.drop_rates.values(), reverse=True)
        assert rates[0] >= 0.1
        assert all(r <= 1e-3 for r in rates[1:])

    def test_switch_failure_covers_all_adjacent_links(self, small_topology, injector, link_table):
        switch = small_topology.tier1s(0)[0].name
        scenario = injector.fail_switch(switch)
        adjacent = small_topology.links_of_node(switch)
        assert len(scenario.bad_links) == 2 * len(adjacent)
        assert all(link_table.is_failed(l) for l in scenario.bad_links)

    def test_blackhole_link(self, small_topology, injector, link_table):
        physical = small_topology.links[0]
        scenario = injector.blackhole_link(physical)
        assert link_table.is_down(physical)
        assert set(scenario.bad_links) == set(physical.directions())


class TestTransientFailures:
    def test_active_window(self):
        failure = TransientFailure(DirectedLink("a", "b"), 0.1, start_epoch=2, duration_epochs=3)
        assert not failure.active(1)
        assert failure.active(2) and failure.active(4)
        assert not failure.active(5)

    def test_schedule_applies_and_clears(self, small_topology, link_table):
        schedule = TransientFailureSchedule(link_table)
        link = small_topology.directed_links()[0]
        schedule.add(TransientFailure(link, 0.2, start_epoch=1, duration_epochs=1))
        assert schedule.apply_epoch(0).num_failures == 0
        assert not link_table.is_failed(link)
        assert schedule.apply_epoch(1).num_failures == 1
        assert link_table.is_failed(link)
        assert schedule.apply_epoch(2).num_failures == 0
        assert not link_table.is_failed(link)


class TestVmRebootModel:
    def _flow(self, kind: str, retransmissions: int, failed: bool = False) -> FlowRecord:
        path = Path.from_nodes(["h1", "tor1", "h2"])
        result = TransferResult(
            num_packets=10,
            packets_delivered=0 if failed else 10 - retransmissions,
            packets_lost=10 if failed else 0,
            retransmissions=retransmissions,
            drops_by_link={path.links[0]: retransmissions} if retransmissions else {},
            connection_failed=failed,
        )
        return FlowRecord(
            flow_id=1,
            epoch=0,
            five_tuple=FiveTuple("h1", "h2", 1000, 445),
            src_host="h1",
            dst_host="h2",
            path=path,
            result=result,
            kind=kind,
        )

    def test_data_flows_never_reboot(self):
        model = VmRebootModel()
        assert model.reboots_for_epoch([self._flow("data", 10, failed=True)]) == []

    def test_storage_flow_below_threshold_no_reboot(self):
        model = VmRebootModel(retransmission_threshold=5)
        assert model.reboots_for_epoch([self._flow("storage", 2)]) == []

    def test_storage_flow_over_threshold_reboots(self):
        model = VmRebootModel(retransmission_threshold=3)
        reboots = model.reboots_for_epoch([self._flow("storage", 4)])
        assert len(reboots) == 1
        assert reboots[0].host == "h1"
        assert reboots[0].cause_link is not None

    def test_failed_connection_always_reboots(self):
        model = VmRebootModel(retransmission_threshold=100)
        assert len(model.reboots_for_epoch([self._flow("storage", 0, failed=True)])) == 1

    def test_host_reboots_at_most_once_per_epoch(self):
        model = VmRebootModel(retransmission_threshold=1)
        flows = [self._flow("storage", 5), self._flow("storage", 6)]
        assert len(model.reboots_for_epoch(flows)) == 1

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            VmRebootModel(retransmission_threshold=0)
