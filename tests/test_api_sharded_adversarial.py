"""Adversarial sharding tests + evidence-ownership (aliasing) equivalence.

Pathological partitions must not break the bit-for-bit agreement between
:class:`ShardedService` and the unsharded service: every flow on one shard,
shards with no traffic at all, single-host fabrics where no flow can exist.
The facade's pending-retransmission buffers must drain when epochs finalize,
and the ``owned=True`` fast path must be observationally identical to the
defensive copying path — with no aliasing leak in either direction.
"""

from __future__ import annotations

import pytest

from repro.api import (
    EpochTick,
    EvidenceRecorder,
    PathEvidence,
    RetransmissionEvidence,
    ShardedService,
    Zero07Service,
    shard_of_host,
)
from repro.discovery.agent import DiscoveredPath
from repro.loadgen import EvidenceLoadGenerator, WorkloadProfile
from repro.routing.fivetuple import FiveTuple
from repro.testing import report_signature
from repro.topology.clos import ClosParameters
from repro.topology.elements import DirectedLink

L = [DirectedLink(f"n{i}", f"n{i + 1}") for i in range(8)]


def make_path(flow_id, links, retransmissions=1, src_host="h0", epoch=0):
    return DiscoveredPath(
        flow_id=flow_id,
        five_tuple=FiveTuple("10.0.0.1", "10.0.0.2", 1024 + flow_id, 443),
        src_host=src_host,
        dst_host="h1",
        links=list(links),
        complete=True,
        retransmissions=retransmissions,
        epoch=epoch,
    )


def loadgen_events(epochs=2, **overrides):
    defaults = dict(
        fabric="tiny",
        profile=WorkloadProfile.skewed(repeat_fraction=0.25),
        seed=11,
        events_per_epoch=300,
    )
    defaults.update(overrides)
    return list(EvidenceLoadGenerator(**defaults).stream(epochs))


def assert_fleet_matches_single(events, num_shards, epochs, **kwargs):
    single = Zero07Service(retain_reports=epochs, **kwargs)
    single.ingest_batch(events)
    fleet = ShardedService(num_shards=num_shards, retain_reports=epochs, **kwargs)
    fleet.ingest_batch(events)
    for epoch in range(epochs):
        assert report_signature(fleet.report(epoch)) == report_signature(
            single.report(epoch)
        )
    return fleet


class TestPathologicalPartitions:
    def test_all_traffic_on_one_shard(self):
        """Every flow reported by one host: one shard takes all the load."""
        paths = [make_path(i, L[i % 4 : i % 4 + 3], src_host="h0") for i in range(40)]
        events = [PathEvidence(epoch=0, seq=i, path=p) for i, p in enumerate(paths)]
        events.append(EpochTick(0))
        num_shards = 4
        fleet = assert_fleet_matches_single(events, num_shards, epochs=1)
        hot = shard_of_host("h0", num_shards)
        for shard in range(num_shards):
            expected = len(paths) if shard == hot else 0
            assert fleet.shard(shard).stats.paths_ingested == expected

    def test_more_shards_than_hosts_leaves_shards_empty(self):
        events = loadgen_events(
            fabric=ClosParameters(npod=1, n0=1, n1=1, n2=1, hosts_per_tor=2),
            epochs=2,
        )
        fleet = assert_fleet_matches_single(events, num_shards=8, epochs=2)
        loads = [fleet.shard(i).stats.paths_ingested for i in range(8)]
        assert sum(1 for load in loads if load == 0) >= 6
        assert sum(loads) > 0

    def test_single_host_fabric(self):
        """A fabric with one host produces no flows; everything stays empty."""
        events = loadgen_events(
            fabric=ClosParameters(npod=1, n0=1, n1=1, n2=1, hosts_per_tor=1),
            epochs=3,
        )
        assert all(isinstance(e, EpochTick) for e in events)
        fleet = assert_fleet_matches_single(events, num_shards=4, epochs=3)
        assert fleet.report(2).num_paths_analyzed == 0

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_loadgen_stream_agreement_with_unsharded(self, num_shards):
        events = loadgen_events(epochs=2)
        assert_fleet_matches_single(events, num_shards, epochs=2)


class TestAdversarialOrderings:
    """The batched facade must fall back gracefully and stay bit-identical."""

    def scrambled_events(self):
        events = [e for e in loadgen_events(epochs=1) if not isinstance(e, EpochTick)]
        # duplicates, a reordering, and a retransmission before its path
        scrambled = list(events)
        scrambled[10], scrambled[40] = scrambled[40], scrambled[10]
        scrambled.insert(20, scrambled[5])
        scrambled.insert(0, RetransmissionEvidence(epoch=0, flow_id=999_999))
        scrambled.append(EpochTick(0))
        return scrambled

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_batched_equals_per_event_under_adversarial_order(self, num_shards):
        events = self.scrambled_events()
        batched = ShardedService(num_shards=num_shards)
        batched.ingest_batch(events)
        per_event = ShardedService(num_shards=num_shards)
        for event in events:
            per_event.ingest(event)
        assert report_signature(batched.report(0)) == report_signature(
            per_event.report(0)
        )

    def test_batched_service_equals_per_event_under_adversarial_order(self):
        events = self.scrambled_events()
        batched = Zero07Service()
        batched.ingest_batch(events)
        per_event = Zero07Service()
        for event in events:
            per_event.ingest(event)
        assert report_signature(batched.report(0)) == report_signature(
            per_event.report(0)
        )
        assert batched.stats.as_dict() == per_event.stats.as_dict()
        assert batched.stats.duplicate_events > 0
        assert batched.stats.out_of_order_events > 0


class TestPendingBufferDrain:
    def test_pending_retransmissions_drain_on_epoch_tick(self):
        """Regression: facade buffers for orphan count updates must not leak.

        A RetransmissionEvidence whose path never arrives sits in the
        facade's pending buffer; the epoch's tick must drop it together with
        the routing and dedup state for that epoch.
        """
        fleet = ShardedService(num_shards=2)
        fleet.ingest(RetransmissionEvidence(epoch=0, flow_id=7, retransmissions=3, seq=0))
        fleet.ingest(PathEvidence(epoch=0, seq=1, path=make_path(1, L[:3])))
        assert fleet._pending[0] == {7: 3}
        fleet.ingest(EpochTick(0))
        assert fleet._pending == {}
        assert fleet._flow_shard == {}
        assert fleet._retrans_seqs == {}
        # the orphan update never invented evidence
        assert fleet.report(0).num_paths_analyzed == 1
        # late arrivals for the finalized epoch do not resurrect state
        fleet.ingest(PathEvidence(epoch=0, seq=2, path=make_path(7, L[1:4])))
        fleet.ingest(RetransmissionEvidence(epoch=0, flow_id=7, seq=3))
        assert fleet._pending == {} and fleet._flow_shard == {}

    def test_pending_buffers_drain_after_batched_ingest(self):
        events = loadgen_events(epochs=2)
        fleet = ShardedService(num_shards=4)
        fleet.ingest_batch(events, owned=True)
        assert fleet._pending == {}
        assert fleet._flow_shard == {}
        assert fleet._retrans_seqs == {}
        for shard in range(4):
            assert fleet.shard(shard).open_epochs == []


class TestFastPathEngagement:
    """The vectorized batch path must actually engage on in-order streams.

    A timing-free regression guard: if a precondition check silently breaks
    and every batch degrades to the per-event fallback, the 5x speedup claim
    dies without any test noticing — so assert the fallback is never taken
    for the workloads the fast path was built for.
    """

    def test_loadgen_stream_never_falls_back(self, monkeypatch):
        def boom(self, run, owned):
            raise AssertionError("vectorized fast path fell back unexpectedly")

        monkeypatch.setattr(Zero07Service, "_ingest_evidence_fallback", boom)
        events = loadgen_events(epochs=2)
        service = Zero07Service(retain_reports=2)
        service.ingest_batch(events, owned=True)
        assert service.stats.epochs_finalized == 2

        fleet = ShardedService(num_shards=4, retain_reports=2)
        fleet.ingest_batch(loadgen_events(epochs=2), owned=True)
        assert fleet.last_finalized_epoch == 1

    def test_retraced_flow_mid_run_stays_bit_identical(self):
        """Regression: a flow traced twice in one run with a count update in
        between must bump the record that was live *at update time* — the
        per-event semantics — not the final one."""
        events = [
            PathEvidence(epoch=0, seq=i, path=make_path(i, L[:3])) for i in range(6)
        ]
        events.append(RetransmissionEvidence(epoch=0, flow_id=2, retransmissions=5, seq=6))
        # flow 2 is traced AGAIN after its update (a re-trace mid-epoch)
        events.append(PathEvidence(epoch=0, seq=7, path=make_path(2, L[2:6])))
        events.append(PathEvidence(epoch=0, seq=8, path=make_path(9, L[:2])))
        batched = Zero07Service()
        batched.ingest_batch(events)
        per_event = Zero07Service()
        for event in events:
            per_event.ingest(event)
        assert report_signature(batched.report(0)) == report_signature(
            per_event.report(0)
        )
        assert [
            (seq, path.flow_id, path.retransmissions)
            for seq, path in batched.evidence_for_epoch(0)
        ] == [
            (seq, path.flow_id, path.retransmissions)
            for seq, path in per_event.evidence_for_epoch(0)
        ]
        assert (
            batched.checkpoint().to_json() == per_event.checkpoint().to_json()
        )

    def test_dirty_rebuild_keeps_arrival_order_update_binding(self):
        """Regression: after a batch stales by_flow and an out-of-order
        re-trace dirties the epoch, a count update must still bump the most
        recently *arrived* record — exactly like a pure per-event stream."""
        base = [
            PathEvidence(epoch=0, seq=i, path=make_path(i, L[:3])) for i in range(10)
        ]
        tail = [
            PathEvidence(epoch=0, seq=20, path=make_path(0, L[1:4], retransmissions=5)),
            PathEvidence(epoch=0, seq=15, path=make_path(0, L[2:5], retransmissions=3)),
        ]
        update = RetransmissionEvidence(epoch=0, flow_id=0, retransmissions=10, seq=21)

        mixed = Zero07Service()
        mixed.ingest_batch(base)  # fast path: by_flow goes stale
        for event in tail:
            mixed.ingest(event)  # seq 15 after 20: epoch goes dirty
        mixed.report(0)  # dirty rebuild sorts the records
        mixed.ingest(update)

        pure = Zero07Service()
        for event in base + tail:
            pure.ingest(event)
        pure.report(0)
        pure.ingest(update)

        def record_view(service):
            return [
                (seq, path.flow_id, path.retransmissions)
                for seq, path in service.evidence_for_epoch(0)
            ]

        assert record_view(mixed) == record_view(pure)
        assert mixed.checkpoint().to_json() == pure.checkpoint().to_json()
        assert report_signature(mixed.report(0)) == report_signature(pure.report(0))

    def test_rebuild_then_batch_keeps_arrival_order_update_binding(self):
        """Regression (mirror direction): per-event out-of-order re-trace,
        report() (rebuild sorts the records), then a *later* bulk batch, then
        a count update — the update must still bind by arrival order."""
        tail = [
            PathEvidence(epoch=0, seq=20, path=make_path(0, L[1:4], retransmissions=5)),
            PathEvidence(epoch=0, seq=15, path=make_path(0, L[2:5], retransmissions=3)),
        ]
        later = [
            PathEvidence(epoch=0, seq=30 + i, path=make_path(100 + i, L[:3]))
            for i in range(10)
        ]
        update = RetransmissionEvidence(epoch=0, flow_id=0, retransmissions=10, seq=50)

        mixed = Zero07Service()
        for event in tail:
            mixed.ingest(event)  # dirty
        mixed.report(0)  # rebuild sorts records
        mixed.ingest_batch(later)  # fast path: by_flow fold lags
        mixed.ingest(update)

        pure = Zero07Service()
        for event in tail + later:
            pure.ingest(event)
        pure.report(0)
        pure.ingest(update)

        assert [
            (seq, p.flow_id, p.retransmissions)
            for seq, p in mixed.evidence_for_epoch(0)
        ] == [
            (seq, p.flow_id, p.retransmissions)
            for seq, p in pure.evidence_for_epoch(0)
        ]
        assert mixed.checkpoint().to_json() == pure.checkpoint().to_json()

    def test_exotic_event_kinds_are_not_swallowed_by_the_fast_path(self):
        """Regression: a PathEvidence subclass mid-batch must be ingested with
        per-event semantics (isinstance dispatch), never silently dropped
        with its seq burned; unknown kinds must raise like ingest() does."""

        class TracedPathEvidence(PathEvidence):
            pass

        events = [
            PathEvidence(epoch=0, seq=i, path=make_path(i, L[:3])) for i in range(10)
        ]
        events[4] = TracedPathEvidence(epoch=0, seq=4, path=make_path(4, L[:3]))
        service = Zero07Service()
        service.ingest_batch(events)
        assert service.stats.paths_ingested == 10
        per_event = Zero07Service()
        for event in events:
            per_event.ingest(event)
        assert report_signature(service.report(0)) == report_signature(
            per_event.report(0)
        )
        fleet = ShardedService(num_shards=2)
        fleet.ingest_batch(list(events))
        assert report_signature(fleet.report(0)) == report_signature(
            per_event.report(0)
        )

        class NotEvidence:
            epoch = 0
            seq = 99

        with pytest.raises(TypeError):
            Zero07Service().ingest_batch(
                [PathEvidence(epoch=0, seq=i, path=make_path(i, L[:2])) for i in range(9)]
                + [NotEvidence()]
            )

    def test_empty_interning_batches_are_harmless(self):
        """Regression: fast_ids/lookup_ids on empty input return []."""
        from repro.core.arrays import ItemIndex

        index = ItemIndex()
        assert index.fast_ids([]) == []
        index.fast_ids(["a", "b"])  # populate the memo (and its dense table)
        assert index.fast_ids([]) == []
        assert index.lookup_ids(iter(()), 0) == []

    def test_adversarial_stream_does_fall_back(self):
        """...and genuinely disordered runs still take the safe path."""
        events = [
            PathEvidence(epoch=0, seq=seq, path=make_path(seq, L[:3]))
            for seq in (5, 3, 9, 1, 7, 2, 8, 0, 6, 4)
        ]
        service = Zero07Service()
        service.ingest_batch(events)
        assert service.stats.out_of_order_events > 0
        in_order = Zero07Service()
        in_order.ingest_batch(sorted(events, key=lambda e: e.seq))
        assert report_signature(service.report(0)) == report_signature(
            in_order.report(0)
        )


class TestEvidenceOwnership:
    """satellite: skip defensive copies only when ownership really transfers."""

    def test_owned_and_copied_ingestion_are_bit_identical(self):
        events = loadgen_events(epochs=2)
        copied = Zero07Service(retain_reports=2)
        copied.ingest_batch(events)  # defensive default: events stay pristine
        owned = Zero07Service(retain_reports=2)
        owned.ingest_batch(events, owned=True)
        for epoch in range(2):
            assert report_signature(copied.report(epoch)) == report_signature(
                owned.report(epoch)
            )

    def test_default_ingest_does_not_alias_caller_objects(self):
        """Copy-on-ingest: later service-side bumps stay inside the service."""
        path = make_path(1, L[:3], retransmissions=1)
        event = PathEvidence(epoch=0, seq=0, path=path)
        service = Zero07Service()
        service.ingest_batch([event, RetransmissionEvidence(epoch=0, flow_id=1, retransmissions=5, seq=1)])
        assert path.retransmissions == 1  # caller's object untouched
        [contribution] = service.report(0).tally.contributions
        assert contribution.retransmissions == 6

    def test_owned_ingest_transfers_ownership(self):
        """owned=True hands the objects over: the service may mutate them."""
        path = make_path(99, L[:3], retransmissions=1)
        events = [
            PathEvidence(epoch=0, seq=i, path=make_path(i, L[:3])) for i in range(10)
        ]
        events[0] = PathEvidence(epoch=0, seq=0, path=path)
        events.append(RetransmissionEvidence(epoch=0, flow_id=99, retransmissions=5, seq=10))
        service = Zero07Service()
        service.ingest_batch(events, owned=True)
        assert path.retransmissions == 6  # the service now owns this object

    def test_replaying_one_stream_into_two_services_cannot_alias(self):
        """The copying default protects replay sources from cross-service leaks."""
        events = [e for e in loadgen_events(epochs=1) if not isinstance(e, EpochTick)]
        first = Zero07Service()
        first.ingest_batch(events)
        # mutate nothing in between: second service must see identical stream
        second = Zero07Service()
        second.ingest_batch(events)
        assert report_signature(first.report(0)) == report_signature(second.report(0))

    def test_recorder_tap_still_sees_batched_events(self):
        """A wrapped ingest() (EvidenceRecorder) must not be bypassed by the
        batched fast path."""
        events = loadgen_events(epochs=1)
        service = Zero07Service()
        recorder = EvidenceRecorder(service)
        service.ingest_batch(events, owned=True)
        assert len(recorder.events) == len(events)
        replayed = Zero07Service()
        recorder.replay(replayed)
        assert report_signature(replayed.report(0)) == report_signature(
            service.report(0)
        )

    def test_detached_recorder_re_enables_the_fast_path(self, monkeypatch):
        """Regression: detach() must remove the instance-level ingest wrapper
        entirely — leaving one behind silently disables the vectorized batch
        path for the rest of the service's life."""
        service = Zero07Service(retain_reports=2)
        recorder = EvidenceRecorder(service)
        service.ingest_batch(loadgen_events(epochs=1))
        recorder.detach()
        recorder.detach()  # idempotent
        assert "ingest" not in service.__dict__

        def boom(self, run, owned):
            raise AssertionError("fast path disabled after recorder detach")

        monkeypatch.setattr(Zero07Service, "_ingest_evidence_fallback", boom)
        service.ingest_batch(
            loadgen_events(epochs=2)[len(loadgen_events(epochs=1)) :], owned=True
        )
        assert service.stats.epochs_finalized == 2

    def test_stacked_recorders_detach_innermost_first(self):
        """Detaching the outer recorder must re-install the inner tap, and
        detaching the inner one must fully restore the class method."""
        service = Zero07Service()
        inner = EvidenceRecorder(service)
        outer = EvidenceRecorder(service)
        event = PathEvidence(epoch=0, seq=0, path=make_path(1, L[:3]))
        service.ingest(event)
        assert len(outer.events) == len(inner.events) == 1
        outer.detach()
        service.ingest(PathEvidence(epoch=0, seq=1, path=make_path(2, L[:3])))
        assert len(inner.events) == 2 and len(outer.events) == 1
        inner.detach()
        assert "ingest" not in service.__dict__
