"""Unit tests for the evaluation metrics."""

from __future__ import annotations

import math

import pytest

from repro.metrics.evaluation import (
    detection_latencies,
    detection_precision_recall,
    false_alarm_rate_after_clear,
    mean_time_to_detection,
    per_flow_accuracy,
    time_to_detection,
    top_k_recall,
)
from repro.topology.elements import DirectedLink, Link

A = DirectedLink("a", "b")
B = DirectedLink("c", "d")
C = DirectedLink("e", "f")


class TestDetectionPrecisionRecall:
    def test_perfect_detection(self):
        score = detection_precision_recall([A, B], [A, B])
        assert score.precision == 1.0 and score.recall == 1.0
        assert score.f1 == 1.0

    def test_false_positive_lowers_precision(self):
        score = detection_precision_recall([A, B, C], [A, B])
        assert score.precision == pytest.approx(2 / 3)
        assert score.recall == 1.0
        assert score.false_positives == 1

    def test_false_negative_lowers_recall(self):
        score = detection_precision_recall([A], [A, B])
        assert score.recall == pytest.approx(0.5)
        assert score.false_negatives == 1

    def test_empty_detection_with_failures(self):
        score = detection_precision_recall([], [A])
        assert score.precision == 0.0 and score.recall == 0.0
        assert score.f1 == 0.0

    def test_empty_detection_no_failures(self):
        score = detection_precision_recall([], [])
        assert score.precision == 1.0 and score.recall == 1.0

    def test_physical_comparison_collapses_directions(self):
        detected = [DirectedLink("b", "a")]
        truth = [DirectedLink("a", "b")]
        directed = detection_precision_recall(detected, truth)
        physical = detection_precision_recall(detected, truth, physical=True)
        assert directed.precision == 0.0
        assert physical.precision == 1.0

    def test_physical_accepts_link_objects(self):
        score = detection_precision_recall([Link.of("a", "b")], [A], physical=True)
        assert score.precision == 1.0


class TestPerFlowAccuracy:
    def test_all_correct(self):
        predicted = {1: A, 2: B}
        truth = {1: A, 2: B}
        assert per_flow_accuracy(predicted, truth) == 1.0

    def test_partial(self):
        predicted = {1: A, 2: C}
        truth = {1: A, 2: B}
        assert per_flow_accuracy(predicted, truth) == 0.5

    def test_missing_prediction_counts_as_wrong(self):
        assert per_flow_accuracy({}, {1: A}) == 0.0

    def test_none_ground_truth_excluded(self):
        predicted = {1: A}
        truth = {1: A, 2: None}
        assert per_flow_accuracy(predicted, truth) == 1.0

    def test_restrict_to(self):
        predicted = {1: A, 2: C}
        truth = {1: A, 2: B}
        assert per_flow_accuracy(predicted, truth, restrict_to=[1]) == 1.0

    def test_empty_is_nan(self):
        assert math.isnan(per_flow_accuracy({}, {}))
        assert math.isnan(per_flow_accuracy({1: A}, {1: A}, restrict_to=[99]))

    def test_physical_match(self):
        predicted = {1: DirectedLink("b", "a")}
        truth = {1: A}
        assert per_flow_accuracy(predicted, truth) == 0.0
        assert per_flow_accuracy(predicted, truth, physical=True) == 1.0


class TestTopKRecall:
    def test_defaults_to_number_of_true_links(self):
        ranked = [A, B, C]
        assert top_k_recall(ranked, [A, B]) == 1.0
        assert top_k_recall(ranked, [A, C]) == 0.5

    def test_explicit_k(self):
        ranked = [A, B, C]
        assert top_k_recall(ranked, [C], k=3) == 1.0
        assert top_k_recall(ranked, [C], k=2) == 0.0

    def test_no_true_links(self):
        assert top_k_recall([A], []) == 1.0


def _timeline(epochs, bad=(), detected=()):
    """Build (detected_by_epoch, truth_by_epoch): A is bad/detected in the
    listed epochs, nothing else ever appears."""
    truth = [[A] if epoch in bad else [] for epoch in range(epochs)]
    hits = [[A] if epoch in detected else [] for epoch in range(epochs)]
    return hits, truth


class TestEpisodeAwareLatency:
    """Flapping truth: A is bad over [1, 3) and again over [5, 7) of 8 epochs."""

    FLAPPING = (1, 2, 5, 6)

    def test_detection_latencies_scores_every_episode(self):
        hits, truth = _timeline(8, bad=self.FLAPPING, detected=(2, 5))
        assert detection_latencies(hits, truth) == {A: [1, 0]}

    def test_missed_recurrence_is_recorded_not_discarded(self):
        hits, truth = _timeline(8, bad=self.FLAPPING, detected=(1,))
        assert detection_latencies(hits, truth) == {A: [0, None]}

    def test_detection_between_episodes_does_not_count(self):
        hits, truth = _timeline(8, bad=self.FLAPPING, detected=(3, 4))
        assert detection_latencies(hits, truth) == {A: [None, None]}

    def test_time_to_detection_measures_within_the_detected_episode(self):
        # detected only when the failure *returns*: latency is 0 epochs into
        # the second episode, not the 4-epoch gap-spanning distance from the
        # first-ever bad epoch.
        hits, truth = _timeline(8, bad=self.FLAPPING, detected=(5,))
        assert time_to_detection(hits, truth) == {A: 0}

    def test_time_to_detection_none_when_never_caught(self):
        hits, truth = _timeline(8, bad=self.FLAPPING, detected=())
        assert time_to_detection(hits, truth) == {A: None}

    def test_mean_counts_every_detected_episode(self):
        # caught immediately in episode 1 and one epoch late in episode 2:
        # both recurrences contribute, mean = (0 + 1) / 2.
        hits, truth = _timeline(8, bad=self.FLAPPING, detected=(1, 6))
        assert mean_time_to_detection(hits, truth) == pytest.approx(0.5)

    def test_mean_is_nan_when_no_episode_was_detected(self):
        hits, truth = _timeline(8, bad=self.FLAPPING, detected=())
        assert math.isnan(mean_time_to_detection(hits, truth))

    def test_single_window_semantics_unchanged(self):
        hits, truth = _timeline(6, bad=(2, 3), detected=(3,))
        assert detection_latencies(hits, truth) == {A: [1]}
        assert time_to_detection(hits, truth) == {A: 1}
        assert mean_time_to_detection(hits, truth) == pytest.approx(1.0)


class TestFalseAlarmAfterClear:
    FLAPPING = (1, 2, 5, 6)

    def test_gap_epochs_are_not_opportunities_by_default(self):
        # blame during the quiet gap between the two episodes: by default
        # only epoch 7 (after the *final* bad epoch) is an opportunity, and
        # it is clean.
        hits, truth = _timeline(8, bad=self.FLAPPING, detected=(3,))
        assert false_alarm_rate_after_clear(hits, truth) == 0.0

    def test_include_gaps_restores_the_strict_counting(self):
        hits, truth = _timeline(8, bad=self.FLAPPING, detected=(3,))
        # opportunities: epochs 3, 4 (the gap) and 7 (after clear); one alarm.
        rate = false_alarm_rate_after_clear(hits, truth, include_gaps=True)
        assert rate == pytest.approx(1 / 3)

    def test_stale_blame_after_final_clear_is_counted(self):
        hits, truth = _timeline(8, bad=self.FLAPPING, detected=(7,))
        assert false_alarm_rate_after_clear(hits, truth) == pytest.approx(1.0)

    def test_nan_when_no_failure_ever_clears(self):
        hits, truth = _timeline(4, bad=(2, 3), detected=())
        assert math.isnan(false_alarm_rate_after_clear(hits, truth))

    def test_single_window_semantics_unchanged(self):
        # one window [1, 3) of 5 epochs: epochs 3 and 4 are opportunities
        # under both countings.
        hits, truth = _timeline(5, bad=(1, 2), detected=(4,))
        assert false_alarm_rate_after_clear(hits, truth) == pytest.approx(0.5)
        assert false_alarm_rate_after_clear(
            hits, truth, include_gaps=True
        ) == pytest.approx(0.5)
