"""Unit tests for the evaluation metrics."""

from __future__ import annotations

import math

import pytest

from repro.metrics.evaluation import (
    detection_precision_recall,
    per_flow_accuracy,
    top_k_recall,
)
from repro.topology.elements import DirectedLink, Link

A = DirectedLink("a", "b")
B = DirectedLink("c", "d")
C = DirectedLink("e", "f")


class TestDetectionPrecisionRecall:
    def test_perfect_detection(self):
        score = detection_precision_recall([A, B], [A, B])
        assert score.precision == 1.0 and score.recall == 1.0
        assert score.f1 == 1.0

    def test_false_positive_lowers_precision(self):
        score = detection_precision_recall([A, B, C], [A, B])
        assert score.precision == pytest.approx(2 / 3)
        assert score.recall == 1.0
        assert score.false_positives == 1

    def test_false_negative_lowers_recall(self):
        score = detection_precision_recall([A], [A, B])
        assert score.recall == pytest.approx(0.5)
        assert score.false_negatives == 1

    def test_empty_detection_with_failures(self):
        score = detection_precision_recall([], [A])
        assert score.precision == 0.0 and score.recall == 0.0
        assert score.f1 == 0.0

    def test_empty_detection_no_failures(self):
        score = detection_precision_recall([], [])
        assert score.precision == 1.0 and score.recall == 1.0

    def test_physical_comparison_collapses_directions(self):
        detected = [DirectedLink("b", "a")]
        truth = [DirectedLink("a", "b")]
        directed = detection_precision_recall(detected, truth)
        physical = detection_precision_recall(detected, truth, physical=True)
        assert directed.precision == 0.0
        assert physical.precision == 1.0

    def test_physical_accepts_link_objects(self):
        score = detection_precision_recall([Link.of("a", "b")], [A], physical=True)
        assert score.precision == 1.0


class TestPerFlowAccuracy:
    def test_all_correct(self):
        predicted = {1: A, 2: B}
        truth = {1: A, 2: B}
        assert per_flow_accuracy(predicted, truth) == 1.0

    def test_partial(self):
        predicted = {1: A, 2: C}
        truth = {1: A, 2: B}
        assert per_flow_accuracy(predicted, truth) == 0.5

    def test_missing_prediction_counts_as_wrong(self):
        assert per_flow_accuracy({}, {1: A}) == 0.0

    def test_none_ground_truth_excluded(self):
        predicted = {1: A}
        truth = {1: A, 2: None}
        assert per_flow_accuracy(predicted, truth) == 1.0

    def test_restrict_to(self):
        predicted = {1: A, 2: C}
        truth = {1: A, 2: B}
        assert per_flow_accuracy(predicted, truth, restrict_to=[1]) == 1.0

    def test_empty_is_nan(self):
        assert math.isnan(per_flow_accuracy({}, {}))
        assert math.isnan(per_flow_accuracy({1: A}, {1: A}, restrict_to=[99]))

    def test_physical_match(self):
        predicted = {1: DirectedLink("b", "a")}
        truth = {1: A}
        assert per_flow_accuracy(predicted, truth) == 0.0
        assert per_flow_accuracy(predicted, truth, physical=True) == 1.0


class TestTopKRecall:
    def test_defaults_to_number_of_true_links(self):
        ranked = [A, B, C]
        assert top_k_recall(ranked, [A, B]) == 1.0
        assert top_k_recall(ranked, [A, C]) == 0.5

    def test_explicit_k(self):
        ranked = [A, B, C]
        assert top_k_recall(ranked, [C], k=3) == 1.0
        assert top_k_recall(ranked, [C], k=2) == 0.0

    def test_no_true_links(self):
        assert top_k_recall([A], []) == 1.0
