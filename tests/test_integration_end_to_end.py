"""End-to-end integration tests: the headline behaviours the paper claims.

These run the complete pipeline (simulator -> monitoring -> path discovery ->
analysis) on a mid-sized fabric and assert the qualitative results the paper
reports: the bad link wins the vote, per-flow diagnosis is accurate, noise
barely matters, multiple failures are separable, partial traceroutes from
blackholes still localise the failure, and 007 beats the greedy optimization
on false positives in noisy conditions.
"""

from __future__ import annotations

import pytest

from repro.baselines.binary_program import solve_binary_program
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.metrics.evaluation import detection_precision_recall
from repro.topology.elements import LinkLevel


MID = dict(npod=2, n0=6, n1=3, n2=3, hosts_per_tor=3, connections_per_host=40)


class TestSingleFailure:
    @pytest.fixture(scope="class")
    def scenario(self):
        config = ScenarioConfig(
            **MID, num_bad_links=1, drop_rate_range=(5e-3, 5e-3), seed=11
        )
        return run_scenario(config)

    def test_bad_link_top_ranked(self, scenario):
        bad = scenario.true_bad_links()[0]
        assert scenario.reports[0].ranked_links[0][0] == bad

    def test_algorithm1_detects_exactly_the_bad_link(self, scenario):
        score = scenario.detection_007()
        assert score.recall == 1.0
        assert score.precision >= 0.5

    def test_per_flow_accuracy_high(self, scenario):
        assert scenario.accuracy_007() >= 0.85

    def test_icmp_budget_never_exceeded(self, scenario):
        limiter = scenario.system.icmp_limiter
        stats = limiter.usage_stats(total_seconds=30)
        assert stats.max_rate <= limiter.tmax


class TestMultipleFailuresWithNoise:
    @pytest.fixture(scope="class")
    def scenario(self):
        config = ScenarioConfig(
            **MID,
            num_bad_links=4,
            drop_rate_range=(2e-3, 1e-2),
            noise_range=(0.0, 1e-5),  # 10x the default noise
            seed=23,
        )
        return run_scenario(config)

    def test_recall_reasonable_despite_noise(self, scenario):
        assert scenario.detection_007().recall >= 0.5

    def test_accuracy_reasonable_despite_noise(self, scenario):
        assert scenario.accuracy_007() >= 0.6

    def test_007_false_positives_not_worse_than_greedy_setcover(self, scenario):
        greedy = solve_binary_program(scenario.baseline_inputs()[0], exact=False)
        greedy_score = detection_precision_recall(
            greedy.blamed_links, scenario.true_bad_links()
        )
        ours = scenario.detection_007()
        assert ours.precision >= greedy_score.precision - 0.05


class TestBlackholePartialTraceroutes:
    def test_blackholed_link_is_still_localised(self):
        config = ScenarioConfig(
            **MID, failure_kind="none", seed=31, simulate_setup_failures=False
        )
        result = run_scenario(config)
        # Re-run manually with a blackhole on a level-1 link.
        from repro.experiments.scenario import build_traffic
        from repro.core.pipeline import SystemConfig, Zero07System
        from repro.netsim.failures import FailureInjector
        from repro.netsim.links import LinkStateTable
        from repro.netsim.simulator import SimulationConfig
        from repro.topology.clos import ClosTopology

        topology = ClosTopology(config.topology_params())
        link_table = LinkStateTable(topology, rng=1)
        injector = FailureInjector(topology, link_table, rng=1)
        physical = topology.links_of_level(LinkLevel.LEVEL1)[5]
        scenario = injector.blackhole_link(physical)
        system = Zero07System(
            topology,
            build_traffic(config, topology),
            link_table,
            SystemConfig(simulation=SimulationConfig(simulate_setup_failures=False)),
            rng=3,
        )
        _, report = system.run_epoch(0)
        detected_physical = {l.undirected() for l in report.detected_links}
        assert physical in detected_physical


class TestSkewedTrafficIntegration:
    def test_hot_tor_skew_does_not_break_detection(self):
        config = ScenarioConfig(
            **MID,
            traffic="hot_tor",
            hot_tor_skew=0.5,
            num_bad_links=1,
            drop_rate_range=(1e-2, 1e-2),
            seed=41,
        )
        result = run_scenario(config)
        assert result.detection_007().recall == 1.0
