"""Unit tests for the ETW-like event bus and the TCP monitoring agent."""

from __future__ import annotations

import pytest

from repro.testing import pair_of_hosts
from repro.discovery.agent import PathDiscoveryAgent
from repro.discovery.icmp import IcmpRateLimiter
from repro.discovery.traceroute import TracerouteEngine
from repro.monitoring.agent import TcpMonitoringAgent
from repro.monitoring.etw import EtwEventSource
from repro.netsim.events import ConnectionSetupFailureEvent, RetransmissionEvent
from repro.routing.fivetuple import FiveTuple


class TestEtwEventSource:
    def test_publish_reaches_all_subscribers(self):
        bus = EtwEventSource()
        seen_a, seen_b = [], []
        bus.subscribe(seen_a.append)
        bus.subscribe(seen_b.append)
        bus.publish("event")
        assert seen_a == ["event"] and seen_b == ["event"]
        assert bus.published == 1

    def test_subscribers_called_in_order(self):
        bus = EtwEventSource()
        order = []
        bus.subscribe(lambda e: order.append("first"))
        bus.subscribe(lambda e: order.append("second"))
        bus.publish(None)
        assert order == ["first", "second"]


@pytest.fixture()
def monitoring(small_topology, router, link_table):
    engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0, probe_loss=False)
    discovery = PathDiscoveryAgent(engine)
    return TcpMonitoringAgent(discovery)


def _retx_event(flow_id, src, dst, epoch=0):
    return RetransmissionEvent(
        flow_id=flow_id,
        epoch=epoch,
        src_host=src,
        dst_host=dst,
        five_tuple=FiveTuple(src, dst, 1000 + flow_id, 443),
        retransmissions=1,
    )


class TestTcpMonitoringAgent:
    def test_retransmission_triggers_discovery(self, small_topology, monitoring):
        src, dst = pair_of_hosts(small_topology)
        monitoring.handle_event(_retx_event(1, src, dst))
        assert monitoring.stats.retransmission_events == 1
        assert monitoring.stats.paths_discovered == 1
        paths = monitoring.paths_for_epoch(0)
        assert len(paths) == 1
        assert paths[0].flow_id == 1

    def test_setup_failures_are_counted_not_traced(self, small_topology, monitoring):
        src, dst = pair_of_hosts(small_topology)
        event = ConnectionSetupFailureEvent(
            flow_id=9, epoch=0, src_host=src, dst_host=dst,
            five_tuple=FiveTuple(src, dst, 1000, 443),
        )
        monitoring.handle_event(event)
        assert monitoring.stats.setup_failure_events == 1
        assert monitoring.paths_for_epoch(0) == []

    def test_duplicate_events_do_not_duplicate_paths(self, small_topology, monitoring):
        src, dst = pair_of_hosts(small_topology)
        monitoring.handle_event(_retx_event(1, src, dst))
        monitoring.handle_event(_retx_event(1, src, dst))
        assert len(monitoring.paths_for_epoch(0)) == 1

    def test_paths_grouped_by_epoch(self, small_topology, monitoring):
        src, dst = pair_of_hosts(small_topology)
        monitoring.handle_event(_retx_event(1, src, dst, epoch=0))
        monitoring.handle_event(_retx_event(2, src, dst, epoch=1))
        assert len(monitoring.paths_for_epoch(0)) == 1
        assert len(monitoring.paths_for_epoch(1)) == 1

    def test_clear_epoch(self, small_topology, monitoring):
        src, dst = pair_of_hosts(small_topology)
        monitoring.handle_event(_retx_event(1, src, dst))
        monitoring.clear_epoch(0)
        assert monitoring.paths_for_epoch(0) == []

    def test_unknown_event_types_ignored(self, monitoring):
        monitoring.handle_event("not-an-event")
        assert monitoring.stats.retransmission_events == 0
