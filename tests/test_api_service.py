"""Tests for the event-driven streaming service core (``repro.api``).

The acceptance bar of the redesign:

* streamed ingestion produces reports **bit-identical** to batch analysis on
  static and dynamic scenarios, on both engines;
* ``report()`` works mid-epoch (before the tick) and equals batch analysis of
  the evidence prefix;
* checkpoint/restore round-trips mid-scenario bit-identically;
* :class:`ShardedService` with 1, 2 and 4 shards agrees with the unsharded
  service;
* report sinks fire once per finalized epoch, and per-epoch stats reset at
  rollover.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest

from repro.api import (
    Checkpoint,
    DetectionLogSink,
    EpochTick,
    EvidenceRecorder,
    PathEvidence,
    ReportUnavailableError,
    RetransmissionEvidence,
    ShardedService,
    Zero07Service,
    evidence_from_dict,
    evidence_to_dict,
    path_evidence_stream,
)
from repro.core.aggregate import MultiEpochAggregator
from repro.core.analysis import AnalysisAgent
from repro.discovery.agent import DiscoveredPath
from repro.experiments.scenario import ScenarioConfig, build_system, run_scenario
from repro.metrics.evaluation import StreamingDetectionScorer
from repro.netsim.script import ScenarioScript
from repro.routing.fivetuple import FiveTuple
from repro.testing import report_signature
from repro.topology.elements import DirectedLink, LinkLevel

FAST = dict(npod=2, n0=4, n1=2, n2=2, hosts_per_tor=2, connections_per_host=25)


def static_config(engine="arrays") -> ScenarioConfig:
    return ScenarioConfig(
        **FAST, num_bad_links=2, drop_rate_range=(1e-2, 1e-2), epochs=3, seed=11,
        engine=engine,
    )


def dynamic_config(engine="arrays") -> ScenarioConfig:
    script = (
        ScenarioScript()
        .flap(start=1, duration=2, drop_rate=2e-2, level=LinkLevel.LEVEL1)
        .burst(start=3, duration=1, level=LinkLevel.LEVEL2, num_links=2, drop_rate=2e-2)
    )
    return ScenarioConfig(
        **FAST, failure_kind="none", epochs=5, seed=13, script=script, engine=engine,
    )


def recorded_run(config: ScenarioConfig):
    """Run a scenario while capturing its full evidence stream.

    Returns ``(reports, events)`` — the finalized per-epoch reports and a
    faithful snapshot of every evidence event the system streamed into its
    service.
    """
    system, _ = build_system(config)
    recorder = EvidenceRecorder(system.service)
    runs = system.run(config.epochs)
    return [report for _, report in runs], recorder.events


def make_path(flow_id, links, retransmissions=1, src_host="h0", epoch=0):
    return DiscoveredPath(
        flow_id=flow_id,
        five_tuple=FiveTuple("10.0.0.1", "10.0.0.2", 1024 + flow_id, 443),
        src_host=src_host,
        dst_host="h1",
        links=list(links),
        complete=True,
        retransmissions=retransmissions,
        epoch=epoch,
    )


L = [DirectedLink(f"n{i}", f"n{i + 1}") for i in range(6)]


# ----------------------------------------------------------------------
# streamed == batch, bit for bit
# ----------------------------------------------------------------------
class TestStreamedEqualsBatch:
    @pytest.mark.parametrize("engine", ["arrays", "dicts"])
    @pytest.mark.parametrize("make_config", [static_config, dynamic_config])
    def test_system_reports_match_independent_batch_analysis(
        self, engine, make_config
    ):
        """The streamed pipeline's reports equal a fresh batch recomputation."""
        config = make_config(engine)
        reports, events = recorded_run(config)
        # replay the captured evidence into a fresh service
        service = Zero07Service(blame_config=config.blame, engine=engine)
        service.ingest_batch(events)
        for epoch, report in enumerate(reports):
            assert report_signature(service.report(epoch)) == report_signature(report)
        # and recompute each epoch with a brand-new batch agent over the
        # paths the stream carried — the legacy batch loop, reconstructed
        agent = AnalysisAgent(blame_config=config.blame, engine=engine)
        paths_by_epoch = {}
        for event in events:
            if isinstance(event, PathEvidence):
                paths_by_epoch.setdefault(event.epoch, []).append(event.path)
        for epoch, report in enumerate(reports):
            batch = agent.analyze_epoch(epoch, paths_by_epoch.get(epoch, []))
            assert report_signature(batch) == report_signature(report)

    @pytest.mark.parametrize("engine", ["arrays", "dicts"])
    def test_chunked_ingestion_matches(self, engine):
        config = static_config(engine)
        reports, events = recorded_run(config)
        service = Zero07Service(blame_config=config.blame, engine=engine)
        for start in range(0, len(events), 7):
            service.ingest_batch(events[start : start + 7])
        for epoch, report in enumerate(reports):
            assert report_signature(service.report(epoch)) == report_signature(report)


# ----------------------------------------------------------------------
# mid-epoch queries
# ----------------------------------------------------------------------
class TestMidEpochReport:
    @pytest.mark.parametrize("engine", ["arrays", "dicts"])
    def test_report_before_tick_equals_batch_of_prefix(self, engine):
        config = static_config(engine)
        _, events = recorded_run(config)
        epoch0 = [e for e in events if isinstance(e, PathEvidence) and e.epoch == 0]
        half = len(epoch0) // 2
        assert half >= 2

        service = Zero07Service(blame_config=config.blame, engine=engine)
        service.ingest_batch(epoch0[:half])
        mid = service.report(0)

        agent = AnalysisAgent(blame_config=config.blame, engine=engine)
        expected = agent.analyze_epoch(0, [e.path for e in epoch0[:half]])
        assert report_signature(mid) == report_signature(expected)

        # the rest of the evidence still folds in after the mid-epoch query
        service.ingest_batch(epoch0[half:])
        final = service.advance_epoch(0)
        expected_full = agent.analyze_epoch(0, [e.path for e in epoch0])
        assert report_signature(final) == report_signature(expected_full)

    def test_mid_epoch_report_is_immutable_snapshot(self):
        service = Zero07Service()
        service.ingest_batch(path_evidence_stream(0, [make_path(1, L[:3])]))
        first = service.report(0)
        before = report_signature(first)
        service.ingest(PathEvidence(epoch=0, seq=1, path=make_path(2, L[2:5])))
        assert report_signature(first) == before
        assert service.report(0).num_paths_analyzed == 2

    def test_empty_epoch_report(self):
        service = Zero07Service()
        report = service.report(0)
        assert report.num_paths_analyzed == 0
        assert report.detected_links == []


# ----------------------------------------------------------------------
# evidence semantics
# ----------------------------------------------------------------------
class TestEvidenceSemantics:
    def test_retransmission_evidence_updates_counts(self):
        service = Zero07Service()
        service.ingest(PathEvidence(epoch=0, seq=0, path=make_path(7, L[:3])))
        service.ingest(RetransmissionEvidence(epoch=0, flow_id=7, retransmissions=2))
        report = service.advance_epoch(0)
        [contribution] = report.tally.contributions
        assert contribution.retransmissions == 3
        # >1 retransmissions makes the flow a failure drop, not noise
        assert 7 in report.noise.failure_flows

    def test_retransmission_before_path_is_buffered(self):
        service = Zero07Service()
        service.ingest(RetransmissionEvidence(epoch=0, flow_id=7, retransmissions=2))
        service.ingest(PathEvidence(epoch=0, seq=0, path=make_path(7, L[:3])))
        report = service.advance_epoch(0)
        [contribution] = report.tally.contributions
        assert contribution.retransmissions == 3

    def test_duplicate_delivery_is_idempotent(self):
        service = Zero07Service()
        event = PathEvidence(epoch=0, seq=0, path=make_path(1, L[:2]))
        service.ingest(event)
        service.ingest(event)
        assert service.stats.duplicate_events == 1
        assert service.report(0).num_paths_analyzed == 1

    def test_duplicate_retransmission_delivery_is_idempotent(self):
        """At-least-once transports must not double-count retrans updates."""
        service = Zero07Service()
        service.ingest(PathEvidence(epoch=0, seq=0, path=make_path(1, L[:2])))
        update = RetransmissionEvidence(epoch=0, flow_id=1, retransmissions=1, seq=1)
        service.ingest(update)
        service.ingest(update)  # redelivery
        assert service.stats.duplicate_events == 1
        [contribution] = service.report(0).tally.contributions
        assert contribution.retransmissions == 2

    def test_retransmission_seq_dedup_survives_checkpoint(self):
        service = Zero07Service()
        service.ingest(PathEvidence(epoch=0, seq=0, path=make_path(1, L[:2])))
        update = RetransmissionEvidence(epoch=0, flow_id=1, retransmissions=1, seq=1)
        service.ingest(update)
        restored = Zero07Service.restore(
            Checkpoint.from_json(service.checkpoint().to_json())
        )
        restored.ingest(update)  # redelivered across the restart
        [contribution] = restored.report(0).tally.contributions
        assert contribution.retransmissions == 2

    def test_tick_emits_reports_for_gap_epochs(self):
        """A tick finalizes evidence-less epochs in the gap too, in order."""
        sink = DetectionLogSink()
        service = Zero07Service(sinks=(sink,))
        service.ingest(PathEvidence(epoch=0, seq=0, path=make_path(1, L[:2])))
        service.ingest(PathEvidence(epoch=2, seq=0, path=make_path(2, L[1:3])))
        service.ingest(EpochTick(2))
        assert [epoch for epoch, _ in sink.rows] == [0, 1, 2]
        assert service.report(1).num_paths_analyzed == 0  # cached empty report

    def test_out_of_order_delivery_is_resequenced(self):
        paths = [make_path(i, L[i : i + 2]) for i in range(4)]
        in_order = Zero07Service()
        in_order.ingest_batch(path_evidence_stream(0, paths))
        shuffled = Zero07Service()
        events = list(path_evidence_stream(0, paths))
        shuffled.ingest_batch([events[2], events[0], events[3], events[1]])
        assert shuffled.stats.out_of_order_events > 0
        assert report_signature(shuffled.report(0)) == report_signature(
            in_order.report(0)
        )

    def test_late_evidence_is_dropped(self):
        service = Zero07Service()
        service.ingest(EpochTick(0))
        service.ingest(PathEvidence(epoch=0, seq=0, path=make_path(1, L[:2])))
        assert service.stats.late_events == 1
        assert service.report(0).num_paths_analyzed == 0

    def test_tick_finalizes_and_releases_buffers(self):
        service = Zero07Service()
        service.ingest_batch(path_evidence_stream(0, [make_path(1, L[:3])], tick=True))
        assert service.open_epochs == []
        assert service.last_finalized_epoch == 0
        assert service.stats.epochs_finalized == 1

    def test_evidence_json_round_trip(self):
        events = [
            PathEvidence(epoch=2, seq=5, path=make_path(9, L[:4], retransmissions=3)),
            RetransmissionEvidence(epoch=2, flow_id=9, retransmissions=4),
            EpochTick(epoch=2),
        ]
        for event in events:
            assert evidence_from_dict(evidence_to_dict(event)) == event


# ----------------------------------------------------------------------
# checkpointing
# ----------------------------------------------------------------------
class TestCheckpoint:
    @pytest.mark.parametrize("engine", ["arrays", "dicts"])
    def test_mid_scenario_checkpoint_restore_is_bit_identical(self, engine):
        config = dynamic_config(engine)
        _, events = recorded_run(config)
        half = len(events) // 2

        interrupted = Zero07Service(blame_config=config.blame, engine=engine)
        interrupted.ingest_batch(events[:half])
        checkpoint = Checkpoint.from_json(interrupted.checkpoint().to_json())
        resumed = Zero07Service.restore(checkpoint)
        resumed.ingest_batch(events[half:])

        uninterrupted = Zero07Service(blame_config=config.blame, engine=engine)
        uninterrupted.ingest_batch(events)

        finalized_before = interrupted.last_finalized_epoch
        start = 0 if finalized_before is None else finalized_before + 1
        assert start < config.epochs  # the checkpoint really was mid-scenario
        for epoch in range(start, config.epochs):
            assert report_signature(resumed.report(epoch)) == report_signature(
                uninterrupted.report(epoch)
            )
        assert resumed.stats.paths_ingested == uninterrupted.stats.paths_ingested

    def test_checkpoint_round_trips_through_disk(self, tmp_path):
        service = Zero07Service()
        service.ingest_batch(
            path_evidence_stream(0, [make_path(1, L[:3]), make_path(2, L[1:4])])
        )
        path = tmp_path / "service.ckpt.json"
        service.checkpoint().save(path)
        restored = Zero07Service.restore(Checkpoint.load(path))
        assert report_signature(restored.report(0)) == report_signature(
            service.report(0)
        )

    def test_report_default_works_right_after_a_boundary_restore(self):
        """report() must answer (not raise) when restored at an epoch boundary."""
        service = Zero07Service()
        service.ingest_batch(path_evidence_stream(0, [make_path(1, L[:3])], tick=True))
        restored = Zero07Service.restore(
            Checkpoint.from_json(service.checkpoint().to_json())
        )
        report = restored.report()  # the closed report was not serialized
        assert report.epoch == 1 and report.num_paths_analyzed == 0
        fleet = ShardedService(num_shards=2)
        fleet.ingest_batch(path_evidence_stream(0, [make_path(1, L[:3])], tick=True))
        restored_fleet = ShardedService.restore(
            Checkpoint.from_json(fleet.checkpoint().to_json())
        )
        assert restored_fleet.report().epoch == 1

    def test_checkpoint_rejects_wrong_kind(self):
        service = Zero07Service()
        checkpoint = service.checkpoint()
        with pytest.raises(ValueError):
            ShardedService.restore(checkpoint)

    def test_sharded_checkpoint_round_trip(self):
        config = static_config()
        _, events = recorded_run(config)
        half = len(events) // 2
        fleet = ShardedService(num_shards=2, blame_config=config.blame)
        fleet.ingest_batch(events[:half])
        restored = ShardedService.restore(
            Checkpoint.from_json(fleet.checkpoint().to_json())
        )
        restored.ingest_batch(events[half:])
        reference = ShardedService(num_shards=2, blame_config=config.blame)
        reference.ingest_batch(events)
        finalized = fleet.last_finalized_epoch
        start = 0 if finalized is None else finalized + 1
        for epoch in range(start, config.epochs):
            assert report_signature(restored.report(epoch)) == report_signature(
                reference.report(epoch)
            )


# ----------------------------------------------------------------------
# binary container, delta checkpoints, atomic save
# ----------------------------------------------------------------------
class TestBinaryCheckpoint:
    @pytest.mark.parametrize("engine", ["arrays", "dicts"])
    def test_binary_round_trip_is_bit_identical(self, engine):
        config = static_config(engine)
        _, events = recorded_run(config)
        service = Zero07Service(blame_config=config.blame, engine=engine)
        service.ingest_batch(events[: len(events) // 2])
        restored = Zero07Service.restore(
            Checkpoint.from_bytes(service.checkpoint().to_bytes())
        )
        for epoch in service.open_epochs:
            assert report_signature(restored.report(epoch)) == report_signature(
                service.report(epoch)
            )

    def test_binary_is_several_times_smaller_than_json(self):
        from repro.loadgen import EvidenceLoadGenerator

        generator = EvidenceLoadGenerator(
            fabric="tiny", events_per_epoch=2_000, seed=7
        )
        service = Zero07Service()
        service.ingest_batch(generator.epoch_events(0, tick=False), owned=True)
        checkpoint = service.checkpoint()
        blob = checkpoint.to_bytes()
        text = checkpoint.to_json()
        # the artifact test enforces the <= 25% acceptance bar on the real
        # workload; at test scale the container must still win by 4x.
        assert len(blob) < len(text.encode("utf-8")) // 4

    def test_sharded_binary_round_trip(self):
        config = static_config()
        _, events = recorded_run(config)
        fleet = ShardedService(num_shards=2, blame_config=config.blame)
        fleet.ingest_batch(events[: len(events) // 2])
        restored = ShardedService.restore(
            Checkpoint.from_bytes(fleet.checkpoint().to_bytes())
        )
        epoch = max(e for i in range(2) for e in fleet.shard(i).open_epochs)
        assert report_signature(restored.report(epoch)) == report_signature(
            fleet.report(epoch)
        )

    def test_binary_survives_a_disk_round_trip(self, tmp_path):
        service = Zero07Service()
        service.ingest_batch(
            path_evidence_stream(0, [make_path(1, L[:3]), make_path(2, L[1:4])])
        )
        path = tmp_path / "service.ckpt"
        service.checkpoint().save(path)  # binary is the default format
        assert path.read_bytes()[:4] == b"R7CK"
        restored = Zero07Service.restore(Checkpoint.load(path))
        assert report_signature(restored.report(0)) == report_signature(
            service.report(0)
        )

    def test_v1_json_checkpoints_stay_restorable(self):
        """A payload with version 1 (the pre-binary format) still restores."""
        service = Zero07Service()
        service.ingest_batch(
            path_evidence_stream(0, [make_path(1, L[:3]), make_path(2, L[2:5])])
        )
        payload = json.loads(service.checkpoint().to_json())
        payload["version"] = 1
        restored = Zero07Service.restore(
            Checkpoint.from_json(json.dumps(payload))
        )
        assert report_signature(restored.report(0)) == report_signature(
            service.report(0)
        )

    def test_save_survives_a_torn_write(self, tmp_path, monkeypatch):
        """A crash mid-save must leave the previous checkpoint intact."""
        service = Zero07Service()
        service.ingest_batch(path_evidence_stream(0, [make_path(1, L[:3])]))
        target = tmp_path / "service.ckpt"
        service.checkpoint().save(target)
        good = target.read_bytes()

        service.ingest(PathEvidence(epoch=0, seq=9, path=make_path(2, L[1:4])))
        real_write = pathlib.Path.write_bytes

        def torn_write(self, data):
            real_write(self, data[: len(data) // 2])
            raise OSError("disk full mid-write")

        monkeypatch.setattr(pathlib.Path, "write_bytes", torn_write)
        with pytest.raises(OSError):
            service.checkpoint().save(target)
        monkeypatch.undo()

        assert target.read_bytes() == good  # the old checkpoint survived
        assert list(tmp_path.glob(".*.tmp.*")) == []  # no torn temp left
        restored = Zero07Service.restore(Checkpoint.load(target))
        assert restored.stats.paths_ingested == 1


class TestDeltaCheckpoint:
    def _service_pair(self):
        config = static_config()
        _, events = recorded_run(config)
        return events

    @pytest.mark.parametrize("engine", ["arrays", "dicts"])
    def test_service_delta_merges_back_to_the_full_state(self, engine):
        events = self._service_pair()
        third = len(events) // 3
        service = Zero07Service(engine=engine)
        service.ingest_batch(events[:third])
        base = service.checkpoint()
        service.ingest_batch(events[third : 2 * third])
        delta = service.checkpoint(base=base)
        assert delta.is_delta
        full = service.checkpoint()
        merged = base.apply_delta(delta)
        assert merged.payload == full.payload
        restored = Zero07Service.restore(merged)
        epoch = max(service.open_epochs)
        assert report_signature(restored.report(epoch)) == report_signature(
            service.report(epoch)
        )

    def test_sharded_delta_merges_back_to_the_full_state(self):
        events = self._service_pair()
        third = len(events) // 3
        fleet = ShardedService(num_shards=2)
        fleet.ingest_batch(events[:third])
        base = fleet.checkpoint()
        fleet.ingest_batch(events[third : 2 * third])
        delta = fleet.checkpoint(base=base)
        assert delta.is_delta
        merged = base.apply_delta(delta)
        assert merged.payload == fleet.checkpoint().payload
        restored = ShardedService.restore(merged)
        epoch = max(e for i in range(2) for e in fleet.shard(i).open_epochs)
        assert report_signature(restored.report(epoch)) == report_signature(
            fleet.report(epoch)
        )

    def test_delta_round_trips_through_the_binary_container(self):
        events = self._service_pair()
        half = len(events) // 2
        service = Zero07Service()
        service.ingest_batch(events[:half])
        base = Checkpoint.from_bytes(service.checkpoint().to_bytes())
        service.ingest_batch(events[half:])
        delta = Checkpoint.from_bytes(
            service.checkpoint(base=base).to_bytes()
        )
        merged = base.apply_delta(delta)
        assert merged.payload == service.checkpoint().payload

    def test_delta_is_smaller_than_the_full_checkpoint(self):
        from repro.loadgen import EvidenceLoadGenerator

        generator = EvidenceLoadGenerator(
            fabric="tiny", events_per_epoch=2_000, seed=7
        )
        events = generator.epoch_events(0, tick=False)
        service = Zero07Service()
        cut = (len(events) * 9) // 10
        service.ingest_batch(events[:cut], owned=True)
        base = service.checkpoint()
        service.ingest_batch(events[cut:], owned=True)
        delta_bytes = len(service.checkpoint(base=base).to_bytes())
        full_bytes = len(service.checkpoint().to_bytes())
        assert delta_bytes < full_bytes // 2

    def test_delta_cannot_restore_directly(self):
        service = Zero07Service()
        service.ingest_batch(path_evidence_stream(0, [make_path(1, L[:3])]))
        base = service.checkpoint()
        service.ingest(PathEvidence(epoch=0, seq=7, path=make_path(2, L[1:4])))
        delta = service.checkpoint(base=base)
        with pytest.raises(ValueError, match="delta"):
            Zero07Service.restore(delta)

    def test_apply_delta_rejects_a_mismatched_base(self):
        service = Zero07Service()
        service.ingest_batch(path_evidence_stream(0, [make_path(1, L[:3])]))
        base = service.checkpoint()
        service.ingest(PathEvidence(epoch=0, seq=7, path=make_path(2, L[1:4])))
        delta = service.checkpoint(base=base)
        wrong_base = service.checkpoint()  # state moved on past the real base
        with pytest.raises(ValueError, match="fingerprint"):
            wrong_base.apply_delta(delta)


# ----------------------------------------------------------------------
# retention-window errors
# ----------------------------------------------------------------------
class TestReportUnavailable:
    def test_evicted_epoch_raises_typed_error_naming_the_window(self):
        service = Zero07Service(retain_reports=1)
        for epoch in range(3):
            service.ingest_batch(
                path_evidence_stream(
                    epoch, [make_path(epoch, L[:3], epoch=epoch)], tick=True
                )
            )
        with pytest.raises(ReportUnavailableError) as excinfo:
            service.report(0)
        error = excinfo.value
        assert error.epoch == 0
        assert error.last_finalized == 2
        assert error.retain_reports == 1
        assert "retain_reports=1" in str(error)

    def test_error_is_a_keyerror_for_existing_callers(self):
        service = Zero07Service(retain_reports=1)
        for epoch in range(3):
            service.ingest_batch(
                path_evidence_stream(
                    epoch, [make_path(epoch, L[:3], epoch=epoch)], tick=True
                )
            )
        with pytest.raises(KeyError):
            service.report(0)
        # epochs still inside the window keep answering
        assert service.report(2).num_paths_analyzed == 1

    def test_sharded_service_raises_the_same_error(self):
        fleet = ShardedService(num_shards=2, retain_reports=1)
        for epoch in range(3):
            fleet.ingest_batch(
                path_evidence_stream(
                    epoch, [make_path(epoch, L[:3], epoch=epoch)], tick=True
                )
            )
        with pytest.raises(ReportUnavailableError) as excinfo:
            fleet.report(0)
        assert excinfo.value.retain_reports == 1


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------
class TestShardedService:
    @pytest.mark.parametrize("engine", ["arrays", "dicts"])
    @pytest.mark.parametrize("make_config", [static_config, dynamic_config])
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_sharded_agrees_with_unsharded(self, engine, make_config, num_shards):
        config = make_config(engine)
        reports, events = recorded_run(config)
        fleet = ShardedService(
            num_shards=num_shards, blame_config=config.blame, engine=engine
        )
        fleet.ingest_batch(events)
        for epoch, report in enumerate(reports):
            assert report_signature(fleet.report(epoch)) == report_signature(report)

    def test_shards_actually_partition_the_evidence(self):
        config = static_config()
        _, events = recorded_run(config)
        fleet = ShardedService(num_shards=2, blame_config=config.blame)
        # don't tick: leave the evidence buffered so per-shard loads show
        fleet.ingest_batch(e for e in events if isinstance(e, PathEvidence))
        loads = [fleet.shard(i).stats.paths_ingested for i in range(2)]
        assert sum(loads) == sum(1 for e in events if isinstance(e, PathEvidence))
        assert all(load > 0 for load in loads)

    def test_duplicate_pending_retransmission_is_dropped_at_the_facade(self):
        """A redelivered count update must not double-buffer pre-path."""
        fleet = ShardedService(num_shards=2)
        update = RetransmissionEvidence(epoch=0, flow_id=5, retransmissions=1, seq=1)
        fleet.ingest(update)
        fleet.ingest(update)  # redelivery while the flow's path is pending
        fleet.ingest(PathEvidence(epoch=0, seq=0, path=make_path(5, L[:2])))
        [contribution] = fleet.report(0).tally.contributions
        assert contribution.retransmissions == 2

    def test_mid_epoch_merged_report(self):
        paths = [make_path(i, L[i % 3 : i % 3 + 3], src_host=f"h{i}") for i in range(6)]
        fleet = ShardedService(num_shards=4)
        fleet.ingest_batch(path_evidence_stream(0, paths))
        single = Zero07Service()
        single.ingest_batch(path_evidence_stream(0, paths))
        assert report_signature(fleet.report(0)) == report_signature(single.report(0))


# ----------------------------------------------------------------------
# report sinks
# ----------------------------------------------------------------------
class TestReportSinks:
    def test_sinks_fire_once_per_finalized_epoch(self):
        config = static_config()
        log = DetectionLogSink()
        seen = []
        system, _ = build_system(config, sinks=(log,))
        system.service.add_sink(
            type("Probe", (), {"on_report": staticmethod(seen.append)})()
        )
        system.run(config.epochs)
        assert [epoch for epoch, _ in log.rows] == list(range(config.epochs))
        assert [report.epoch for report in seen] == list(range(config.epochs))

    def test_aggregator_as_sink_matches_post_hoc_aggregation(self):
        config = dynamic_config()
        streamed = MultiEpochAggregator()
        result = run_scenario(config, sinks=(streamed,))
        replayed = MultiEpochAggregator()
        for report in result.reports:
            replayed.ingest(report)
        assert streamed.epochs_ingested == replayed.epochs_ingested == config.epochs
        assert streamed.detections_per_epoch() == replayed.detections_per_epoch()
        assert streamed.max_votes_per_epoch() == replayed.max_votes_per_epoch()

    def test_streaming_detection_scorer_skips_epochs_without_truth(self):
        scorer = StreamingDetectionScorer(truth_lookup=lambda epoch: None)
        service = Zero07Service(sinks=(scorer,))
        service.ingest_batch(path_evidence_stream(0, [make_path(1, L[:3])], tick=True))
        assert scorer.epochs_scored == 0

    def test_streaming_detection_scorer(self):
        config = static_config()
        system, _ = build_system(config)
        scorer = StreamingDetectionScorer(truth_lookup=system.ground_truth)
        system.service.add_sink(scorer)
        system.run(config.epochs)
        assert scorer.epochs_scored == config.epochs
        result = run_scenario(config)
        for epoch in range(config.epochs):
            expected = result.detection_007(epoch_index=epoch)
            assert scorer.scores[epoch] == expected


# ----------------------------------------------------------------------
# pipeline adapters and rollover
# ----------------------------------------------------------------------
class TestPipelineAdapters:
    def test_iter_epochs_streams_the_same_reports_as_run(self):
        config = static_config()
        system_a, _ = build_system(config)
        system_b, _ = build_system(config)
        streamed = [
            report_signature(report)
            for _, report in system_a.iter_epochs(config.epochs)
        ]
        batched = [
            report_signature(report) for _, report in system_b.run(config.epochs)
        ]
        assert streamed == batched

    def test_service_releases_epoch_state_as_the_run_streams(self):
        config = static_config()
        system, _ = build_system(config)
        for _, report in system.iter_epochs(config.epochs):
            assert system.service.open_epochs == []
        assert system.service.stats.epochs_finalized == config.epochs

    def test_rerunning_a_finalized_epoch_yields_a_fresh_matching_report(self):
        """Replaying an old epoch recomputes out-of-band like the batch loop.

        The service already closed (and may have evicted) the epoch, so the
        adapter must not hand back a stale cached report — or crash.
        """
        config = static_config()
        system, _ = build_system(config)
        system.run(3)
        sim, report = system.run_epoch(1)  # replay: rng has advanced
        assert report.epoch == 1
        # the report matches THIS simulation, not the first run's cache
        agent = AnalysisAgent(blame_config=config.blame, engine=config.engine)
        # discovered paths were cleared, but path counts must line up
        assert report.num_paths_analyzed > 0
        assert len(sim.retransmission_events) >= report.num_paths_analyzed
        # and beyond the retention window it must not raise
        system2, _ = build_system(dataclasses.replace(static_config(), epochs=1))
        system2.run(10)
        _, replayed = system2.run_epoch(0)
        assert replayed.epoch == 0

    def test_stats_reset_at_epoch_rollover(self):
        """Regression: a reused system reports per-epoch stats, not all-time.

        Before the fix, ``MonitoringStats``/``PathDiscoveryStats`` were never
        reset, so after two epochs the counters held epoch0+epoch1 sums.
        """
        config = static_config()
        system, _ = build_system(config)
        (sim0, _), (sim1, _) = system.run(2)
        assert len(sim0.retransmission_events) > 0
        assert len(sim1.retransmission_events) > 0
        # after the run the counters cover the *last* epoch only
        assert system.monitoring.stats.retransmission_events == len(
            sim1.retransmission_events
        )
        assert system.monitoring.stats.retransmission_events != len(
            sim0.retransmission_events
        ) + len(sim1.retransmission_events)
        assert (
            system.path_discovery.stats.triggered
            == system.monitoring.stats.retransmission_events
        )

    def test_stats_reset_methods_zero_every_counter(self):
        config = static_config()
        system, _ = build_system(config)
        system.run_epoch(0)
        assert system.monitoring.stats.retransmission_events > 0
        assert system.path_discovery.stats.traceroutes_sent > 0
        system.monitoring.stats.reset()
        system.path_discovery.stats.reset()
        assert dataclasses.asdict(system.monitoring.stats) == {
            "retransmission_events": 0,
            "setup_failure_events": 0,
            "paths_discovered": 0,
        }
        assert all(
            value == 0
            for value in dataclasses.asdict(system.path_discovery.stats).values()
        )
