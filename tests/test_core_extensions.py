"""Tests for the 007 extensions: switch voting, latency diagnosis, aggregation."""

from __future__ import annotations

import pytest

from repro.testing import pair_of_hosts
from repro.core.aggregate import MultiEpochAggregator
from repro.core.analysis import AnalysisAgent
from repro.core.blame import BlameConfig
from repro.core.latency import LatencyDiagnosis, RttObservation
from repro.core.switches import (
    build_switch_tally,
    find_problematic_switches,
    link_tally_to_switch_votes,
    switches_of_links,
)
from repro.core.votes import VoteTally
from repro.discovery.agent import DiscoveredPath
from repro.netsim.latency import LinkLatencyModel
from repro.routing.fivetuple import FiveTuple
from repro.routing.paths import Path
from repro.topology.elements import DirectedLink


def _discovered(flow_id, links):
    return DiscoveredPath(
        flow_id=flow_id,
        five_tuple=FiveTuple("h1", "h2", 1000 + flow_id, 443),
        src_host="h1",
        dst_host="h2",
        links=links,
        complete=True,
    )


# ----------------------------------------------------------------------
# switch-level voting
# ----------------------------------------------------------------------
class TestSwitchVoting:
    def _paths_through_switch(self, topology, router, switch_name, count=12):
        """Fabricate discovered paths whose flows all traverse ``switch_name``."""
        paths = []
        hosts = sorted(topology.hosts)
        flow_id = 0
        for src in hosts:
            for dst in hosts:
                if src == dst or len(paths) >= count:
                    continue
                if topology.host(src).tor == topology.host(dst).tor:
                    continue
                for port in range(1000, 1020):
                    flow = FiveTuple(src, dst, port, 443)
                    path = router.route(flow, src, dst)
                    if path.contains_node(switch_name):
                        paths.append(_discovered(flow_id, list(path.links)))
                        flow_id += 1
                        break
        return paths

    def test_switches_of_links_excludes_hosts(self, small_topology, router):
        src, dst = pair_of_hosts(small_topology)
        path = router.route(FiveTuple(src, dst, 1000, 443), src, dst)
        switches = switches_of_links(small_topology, path.links)
        assert src not in switches and dst not in switches
        assert switches == path.switch_hops()

    def test_bad_switch_gets_top_votes(self, small_topology, router):
        bad_switch = small_topology.tier1s(0)[0].name
        paths = self._paths_through_switch(small_topology, router, bad_switch)
        assert paths, "fixture should produce flows through the target switch"
        tally = build_switch_tally(small_topology, paths)
        assert tally.items()[0][0] == bad_switch

    def test_find_problematic_switches(self, small_topology, router):
        bad_switch = small_topology.tier1s(0)[0].name
        paths = self._paths_through_switch(small_topology, router, bad_switch)
        tally = build_switch_tally(small_topology, paths)
        detected = find_problematic_switches(tally, BlameConfig(threshold_fraction=0.2))
        assert detected and detected[0] == bad_switch

    def test_empty_tally_detects_nothing(self):
        from repro.core.switches import SwitchVoteTally

        assert find_problematic_switches(SwitchVoteTally()) == []

    def test_link_tally_conversion(self, small_topology, router):
        src, dst = pair_of_hosts(small_topology)
        path = router.route(FiveTuple(src, dst, 1000, 443), src, dst)
        link_tally = VoteTally()
        link_tally.add_flow(1, list(path.links))
        switch_tally = link_tally_to_switch_votes(small_topology, link_tally)
        assert switch_tally.total_votes() == pytest.approx(1.0)

    def test_empty_switch_list_raises(self):
        from repro.core.switches import SwitchVoteTally

        with pytest.raises(ValueError):
            SwitchVoteTally().add_flow(1, [])


# ----------------------------------------------------------------------
# latency diagnosis
# ----------------------------------------------------------------------
class TestLinkLatencyModel:
    def test_rtt_scales_with_hops(self, small_topology, router):
        model = LinkLatencyModel(small_topology, jitter_sigma=0.0, rng=0)
        hosts = sorted(small_topology.hosts)
        tor = small_topology.tors(0)[0]
        same_rack = [h.name for h in small_topology.hosts_under_tor(tor.name)]
        short = router.route(FiveTuple(same_rack[0], same_rack[1], 1, 2), same_rack[0], same_rack[1])
        src, dst = pair_of_hosts(small_topology, cross_pod=True)
        long = router.route(FiveTuple(src, dst, 1, 2), src, dst)
        assert model.sample_rtt(long) > model.sample_rtt(short)

    def test_inflation_raises_rtt(self, small_topology, router):
        model = LinkLatencyModel(small_topology, jitter_sigma=0.0, rng=0)
        src, dst = pair_of_hosts(small_topology)
        path = router.route(FiveTuple(src, dst, 1, 2), src, dst)
        before = model.sample_rtt(path)
        model.inflate_link(path.links[1], 500.0)
        after = model.sample_rtt(path)
        assert after == pytest.approx(before + 500.0)
        model.clear_inflation(path.links[1])
        assert model.sample_rtt(path) == pytest.approx(before)

    def test_unknown_link_raises(self, small_topology):
        model = LinkLatencyModel(small_topology)
        with pytest.raises(KeyError):
            model.inflate_link(DirectedLink("ghost", "phantom"), 10.0)

    def test_invalid_parameters(self, small_topology):
        with pytest.raises(ValueError):
            LinkLatencyModel(small_topology, base_delay_us=0)
        with pytest.raises(ValueError):
            LinkLatencyModel(small_topology, jitter_sigma=-1)

    def test_smoothed_rtt_close_to_rtt_without_jitter(self, small_topology, router):
        model = LinkLatencyModel(small_topology, jitter_sigma=0.0, rng=0)
        src, dst = pair_of_hosts(small_topology)
        path = router.route(FiveTuple(src, dst, 1, 2), src, dst)
        assert model.sample_smoothed_rtt(path) == pytest.approx(model.sample_rtt(path))


class TestLatencyDiagnosis:
    def _observations(self, small_topology, router, slow_link, num_flows=40):
        model = LinkLatencyModel(small_topology, jitter_sigma=0.01, rng=0)
        model.inflate_link(slow_link, 2000.0)
        hosts = sorted(small_topology.hosts)
        observations = []
        flow_id = 0
        for src in hosts:
            for port in range(1000, 1000 + num_flows // len(hosts) + 1):
                dst = hosts[(hosts.index(src) + 5) % len(hosts)]
                if dst == src or small_topology.host(dst).tor == small_topology.host(src).tor:
                    continue
                flow = FiveTuple(src, dst, port, 443)
                path = router.route(flow, src, dst)
                observations.append(
                    RttObservation.from_path(flow_id, model.sample_smoothed_rtt(path), path)
                )
                flow_id += 1
        return observations

    def test_slow_link_is_top_suspect(self, small_topology, router):
        src, dst = pair_of_hosts(small_topology, cross_pod=False)
        slow_link = router.route(FiveTuple(src, dst, 1000, 443), src, dst).links[1]
        observations = self._observations(small_topology, router, slow_link)
        report = LatencyDiagnosis(baseline_multiplier=1.5).analyze(observations)
        assert report.slow_flows, "some flows should exceed the derived threshold"
        # RTT inflation is visible to flows crossing the physical link in either
        # direction, so the diagnosis localises the cable, not the direction.
        assert report.ranked_links[0][0].undirected() == slow_link.undirected()

    def test_absolute_threshold(self, small_topology, router):
        src, dst = pair_of_hosts(small_topology)
        path = router.route(FiveTuple(src, dst, 1000, 443), src, dst)
        observations = [RttObservation.from_path(1, 50_000.0, path)]
        report = LatencyDiagnosis(threshold_us=10_000.0).analyze(observations)
        assert report.slow_flows == [1]
        assert report.threshold_us == 10_000.0

    def test_no_observations(self):
        report = LatencyDiagnosis().analyze([])
        assert report.slow_flows == []
        assert report.suspect_links == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LatencyDiagnosis(threshold_us=-1.0)
        with pytest.raises(ValueError):
            LatencyDiagnosis(baseline_multiplier=1.0)


# ----------------------------------------------------------------------
# multi-epoch aggregation
# ----------------------------------------------------------------------
class TestMultiEpochAggregator:
    BAD = DirectedLink("t1-0", "tor0")

    def _report(self, epoch, flows=15):
        paths = []
        for i in range(flows):
            paths.append(
                _discovered(
                    epoch * 1000 + i,
                    [
                        DirectedLink(f"h{i}", f"tor{i % 3}"),
                        DirectedLink(f"tor{i % 3}", self.BAD.src),
                        self.BAD,
                        DirectedLink(self.BAD.dst, f"hd{i % 2}"),
                    ],
                )
            )
        return AnalysisAgent().analyze_epoch(epoch, paths)

    def test_recurrent_offender_tracked(self):
        aggregator = MultiEpochAggregator()
        aggregator.ingest_many([self._report(0), self._report(1), self._report(2)])
        assert aggregator.epochs_ingested == 3
        offenders = aggregator.recurrent_offenders(min_epochs_detected=2)
        assert offenders and offenders[0].link == self.BAD
        assert offenders[0].epochs_detected == 3
        assert offenders[0].last_detected_epoch == 2

    def test_detections_per_epoch_stats(self):
        aggregator = MultiEpochAggregator()
        aggregator.ingest_many([self._report(0), self._report(1)])
        mean, std = aggregator.detections_per_epoch()
        assert mean >= 1.0
        assert std >= 0.0
        max_mean, _ = aggregator.max_votes_per_epoch()
        assert max_mean > 0

    def test_record_of_unknown_link(self):
        aggregator = MultiEpochAggregator()
        assert aggregator.record_of(self.BAD) is None

    def test_level_breakdown_requires_topology(self):
        aggregator = MultiEpochAggregator()
        aggregator.ingest(self._report(0))
        with pytest.raises(ValueError):
            aggregator.detection_breakdown_by_level()

    def test_level_breakdown_with_topology(self, small_topology, router):
        # Build reports from real topology paths so the level lookup works.
        src, dst = pair_of_hosts(small_topology)
        aggregator = MultiEpochAggregator(topology=small_topology)
        paths = []
        for port in range(1000, 1040):
            flow = FiveTuple(src, dst, port, 443)
            path = router.route(flow, src, dst)
            paths.append(_discovered(port, list(path.links)))
        report = AnalysisAgent().analyze_epoch(0, paths)
        aggregator.ingest(report)
        if report.detected_links:
            breakdown = aggregator.detection_breakdown_by_level()
            assert sum(breakdown.values()) == pytest.approx(1.0)
