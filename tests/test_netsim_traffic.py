"""Unit tests for the traffic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.traffic import (
    HotTorTraffic,
    ReplayTraffic,
    SkewedTraffic,
    TrafficDemand,
    UniformTraffic,
)


class TestUniformTraffic:
    def test_connection_count_per_host(self, small_topology):
        traffic = UniformTraffic(small_topology, connections_per_host=5, packets_per_flow=10)
        demands = traffic.generate(0, rng=0)
        assert len(demands) == 5 * len(small_topology.hosts)

    def test_destinations_outside_rack(self, small_topology):
        traffic = UniformTraffic(small_topology, connections_per_host=10)
        for demand in traffic.generate(0, rng=0):
            src_tor = small_topology.host(demand.src_host).tor
            dst_tor = small_topology.host(demand.dst_host).tor
            assert src_tor != dst_tor

    def test_packets_fixed_value(self, small_topology):
        traffic = UniformTraffic(small_topology, connections_per_host=3, packets_per_flow=42)
        assert all(d.num_packets == 42 for d in traffic.generate(0, rng=0))

    def test_packets_range(self, small_topology):
        traffic = UniformTraffic(
            small_topology, connections_per_host=20, packets_per_flow=(10, 20)
        )
        packets = [d.num_packets for d in traffic.generate(0, rng=0)]
        assert min(packets) >= 10 and max(packets) <= 20
        assert len(set(packets)) > 1

    def test_connection_range(self, small_topology):
        traffic = UniformTraffic(small_topology, connections_per_host=(1, 4))
        demands = traffic.generate(0, rng=0)
        per_host = {}
        for demand in demands:
            per_host[demand.src_host] = per_host.get(demand.src_host, 0) + 1
        assert all(1 <= count <= 4 for count in per_host.values())

    def test_deterministic_for_seed(self, small_topology):
        traffic = UniformTraffic(small_topology, connections_per_host=4)
        assert traffic.generate(0, rng=7) == traffic.generate(0, rng=7)

    def test_default_kind_is_data(self, small_topology):
        traffic = UniformTraffic(small_topology, connections_per_host=1)
        assert all(d.kind == "data" for d in traffic.generate(0, rng=0))


class TestSkewedTraffic:
    def test_hot_fraction_respected(self, small_topology):
        traffic = SkewedTraffic(
            small_topology,
            connections_per_host=30,
            num_hot_tors=1,
            hot_fraction=0.9,
        )
        hot = set(traffic.hot_tors)
        demands = traffic.generate(0, rng=0)
        to_hot = sum(
            1 for d in demands if small_topology.host(d.dst_host).tor in hot
        )
        assert to_hot / len(demands) > 0.5

    def test_explicit_hot_tor_names(self, small_topology):
        tor = small_topology.tors(0)[1].name
        traffic = SkewedTraffic(small_topology, hot_tors=[tor], connections_per_host=2)
        assert traffic.hot_tors == [tor]

    def test_unknown_hot_tor_raises(self, small_topology):
        with pytest.raises(ValueError):
            SkewedTraffic(small_topology, hot_tors=["nonexistent"])

    def test_invalid_fraction_raises(self, small_topology):
        with pytest.raises(ValueError):
            SkewedTraffic(small_topology, hot_fraction=1.5)


class TestHotTorTraffic:
    def test_single_sink(self, small_topology):
        traffic = HotTorTraffic(small_topology, skew=0.7, connections_per_host=30)
        sink = traffic.hot_tor
        demands = traffic.generate(0, rng=1)
        to_sink = sum(
            1 for d in demands if small_topology.host(d.dst_host).tor == sink
        )
        assert to_sink / len(demands) > 0.4

    def test_default_sink_is_first_tor(self, small_topology):
        traffic = HotTorTraffic(small_topology)
        assert traffic.hot_tor == small_topology.tors()[0].name


class TestReplayTraffic:
    def test_replays_recorded_demands(self, small_topology):
        hosts = sorted(small_topology.hosts)
        trace = [[TrafficDemand(hosts[0], hosts[-1], 10)], [TrafficDemand(hosts[1], hosts[-2], 5)]]
        traffic = ReplayTraffic(small_topology, trace)
        assert traffic.generate(0) == trace[0]
        assert traffic.generate(1) == trace[1]

    def test_wraps_around(self, small_topology):
        hosts = sorted(small_topology.hosts)
        trace = [[TrafficDemand(hosts[0], hosts[-1], 10)]]
        traffic = ReplayTraffic(small_topology, trace)
        assert traffic.generate(5) == trace[0]

    def test_empty_trace_raises(self, small_topology):
        with pytest.raises(ValueError):
            ReplayTraffic(small_topology, [])
