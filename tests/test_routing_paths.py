"""Unit tests for the Path abstraction."""

from __future__ import annotations

import pytest

from repro.routing.paths import Path
from repro.topology.elements import DirectedLink


class TestPathConstruction:
    def test_from_nodes(self):
        path = Path.from_nodes(["a", "b", "c"])
        assert path.hop_count == 2
        assert path.src == "a" and path.dst == "c"
        assert path.nodes() == ["a", "b", "c"]

    def test_empty_path_raises(self):
        with pytest.raises(ValueError):
            Path(())

    def test_single_node_raises(self):
        with pytest.raises(ValueError):
            Path.from_nodes(["a"])

    def test_non_contiguous_links_raise(self):
        with pytest.raises(ValueError):
            Path((DirectedLink("a", "b"), DirectedLink("c", "d")))


class TestPathQueries:
    @pytest.fixture()
    def path(self):
        return Path.from_nodes(["h1", "tor1", "t1", "tor2", "h2"])

    def test_hop_count_and_len(self, path):
        assert path.hop_count == 4
        assert len(path) == 4

    def test_switch_hops_excludes_endpoints(self, path):
        assert path.switch_hops() == ["tor1", "t1", "tor2"]

    def test_contains_link_is_directional(self, path):
        assert path.contains_link(DirectedLink("tor1", "t1"))
        assert not path.contains_link(DirectedLink("t1", "tor1"))

    def test_contains_node(self, path):
        assert path.contains_node("t1")
        assert not path.contains_node("t9")

    def test_prefix(self, path):
        prefix = path.prefix(2)
        assert prefix.hop_count == 2
        assert prefix.dst == "t1"

    def test_prefix_zero_raises(self, path):
        with pytest.raises(ValueError):
            path.prefix(0)

    def test_iteration_order(self, path):
        assert list(path)[0] == DirectedLink("h1", "tor1")
        assert list(path)[-1] == DirectedLink("tor2", "h2")

    def test_str_contains_all_nodes(self, path):
        text = str(path)
        for node in path.nodes():
            assert node in text
