"""Property tests: the array engine and the dict engine agree bit-for-bit.

The dict-based tally/blame pipeline is the reference oracle; the vectorized
engine must reproduce its EpochReports exactly — same detections in the same
order, same vote floats, same thresholds, same flow causes, same noise split —
on randomized tallies and on the paper's Figure 10 single-failure scenario.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.analysis import AnalysisAgent
from repro.core.blame import BlameConfig
from repro.discovery.agent import DiscoveredPath
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.routing.fivetuple import FiveTuple
from repro.topology.elements import DirectedLink


def _random_paths(rng: np.random.Generator, num_flows: int) -> list:
    """Random multi-hop paths over a small synthetic link pool."""
    nodes = [f"n{i}" for i in range(14)]
    pool = [
        DirectedLink(nodes[i], nodes[j])
        for i in range(len(nodes))
        for j in range(len(nodes))
        if i != j
    ]
    paths = []
    for flow_id in range(num_flows):
        hops = int(rng.integers(1, 7))
        chosen = rng.choice(len(pool), size=hops, replace=False)
        paths.append(
            DiscoveredPath(
                flow_id=flow_id,
                five_tuple=FiveTuple("a", "b", 1000 + flow_id, 443),
                src_host="a",
                dst_host="b",
                links=[pool[k] for k in chosen],
                complete=True,
                retransmissions=int(rng.integers(1, 5)),
            )
        )
    return paths


def assert_reports_identical(ref, got):
    """Every user-visible field of the two EpochReports must match exactly."""
    assert got.epoch == ref.epoch
    assert got.num_paths_analyzed == ref.num_paths_analyzed
    assert got.detected_links == ref.detected_links
    assert got.ranked_links == ref.ranked_links  # exact floats, exact order
    assert got.flow_causes == ref.flow_causes
    assert got.blame.votes_at_detection == ref.blame.votes_at_detection
    assert got.blame.threshold_votes == ref.blame.threshold_votes
    assert got.blame.final_votes == ref.blame.final_votes
    assert got.noise.noise_flows == ref.noise.noise_flows
    assert got.noise.failure_flows == ref.noise.failure_flows
    assert got.tally.total_votes() == ref.tally.total_votes()
    assert got.tally.items() == ref.tally.items()


@pytest.mark.parametrize("seed", range(10))
def test_random_tallies_equivalent(seed):
    rng = np.random.default_rng(seed)
    paths = _random_paths(rng, num_flows=int(rng.integers(5, 120)))
    ref = AnalysisAgent(engine="dicts").analyze_epoch(0, paths)
    got = AnalysisAgent(engine="arrays").analyze_epoch(0, paths)
    assert_reports_identical(ref, got)


@pytest.mark.parametrize(
    "blame_kwargs",
    [
        {"adjustment": "none"},
        {"min_flow_support": 1},
        {"threshold_fraction": 0.05},
        {"max_links": 2},
    ],
)
def test_blame_config_variants_equivalent(blame_kwargs):
    rng = np.random.default_rng(99)
    paths = _random_paths(rng, num_flows=80)
    config = BlameConfig(**blame_kwargs)
    ref = AnalysisAgent(blame_config=config, engine="dicts").analyze_epoch(0, paths)
    got = AnalysisAgent(blame_config=config, engine="arrays").analyze_epoch(0, paths)
    assert_reports_identical(ref, got)


@pytest.mark.parametrize("vote_policy", ["inverse_hops", "unit"])
@pytest.mark.parametrize("attribute_noise_flows", [False, True])
def test_agent_options_equivalent(vote_policy, attribute_noise_flows):
    rng = np.random.default_rng(7)
    paths = _random_paths(rng, num_flows=60)
    kwargs = dict(
        vote_policy=vote_policy, attribute_noise_flows=attribute_noise_flows
    )
    ref = AnalysisAgent(engine="dicts", **kwargs).analyze_epoch(0, paths)
    got = AnalysisAgent(engine="arrays", **kwargs).analyze_epoch(0, paths)
    assert_reports_identical(ref, got)


def test_duplicate_links_within_a_path_equivalent():
    """A link repeated in one path votes (and is discounted) per occurrence.

    Flow 0 carries Y twice alongside the dominant link X; when Algorithm 1
    blames X, the dict engine discounts Y by 2x flow 0's weight, and the
    array kernel must do the same (a plain fancy-indexed subtraction would
    collapse the duplicate into a single discount).
    """
    X, Y, Z = (DirectedLink("a", "b"), DirectedLink("b", "c"), DirectedLink("c", "d"))
    paths = [
        _path_from_links(0, [X, Y, Y]),
        _path_from_links(1, [X, Z]),
        _path_from_links(2, [X, Z]),
        _path_from_links(3, [X, Y]),
        _path_from_links(4, [Y, Z]),
    ]
    for threshold in (0.01, 0.2, 0.35):
        config = BlameConfig(threshold_fraction=threshold)
        ref = AnalysisAgent(blame_config=config, engine="dicts").analyze_epoch(0, paths)
        got = AnalysisAgent(blame_config=config, engine="arrays").analyze_epoch(0, paths)
        assert ref.detected_links and ref.detected_links[0] == X
        assert_reports_identical(ref, got)


def _path_from_links(flow_id, links):
    return DiscoveredPath(
        flow_id=flow_id,
        five_tuple=FiveTuple("a", "b", 1000 + flow_id, 443),
        src_host="a",
        dst_host="b",
        links=list(links),
        complete=True,
        retransmissions=4,
    )


def test_empty_epoch_equivalent():
    ref = AnalysisAgent(engine="dicts").analyze_epoch(3, [])
    got = AnalysisAgent(engine="arrays").analyze_epoch(3, [])
    assert_reports_identical(ref, got)


def test_multi_epoch_persistent_index_equivalent():
    """The arrays agent reuses one LinkIndex across epochs without cross-talk."""
    rng = np.random.default_rng(21)
    paths_by_epoch = {e: _random_paths(rng, 40) for e in range(4)}
    ref_agent = AnalysisAgent(engine="dicts")
    got_agent = AnalysisAgent(engine="arrays")
    for ref, got in zip(
        ref_agent.analyze_epochs(paths_by_epoch),
        got_agent.analyze_epochs(paths_by_epoch),
    ):
        assert_reports_identical(ref, got)


def test_fig10_single_failure_scenario_equivalent():
    """The Figure 10 setup: one injected failure, full pipeline, both engines."""
    base = dict(num_bad_links=1, epochs=2, seed=3)
    ref = run_scenario(ScenarioConfig(engine="dicts", **base))
    got = run_scenario(ScenarioConfig(engine="arrays", **base))
    assert len(ref.reports) == len(got.reports) == 2
    for ref_report, got_report in zip(ref.reports, got.reports):
        assert_reports_identical(ref_report, got_report)
    assert got.detection_007().precision == ref.detection_007().precision
    assert got.detection_007().recall == ref.detection_007().recall
    assert got.accuracy_007() == ref.accuracy_007()
