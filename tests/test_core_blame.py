"""Unit tests for Algorithm 1 (find_problematic_links)."""

from __future__ import annotations

import pytest

from repro.core.blame import BlameConfig, find_problematic_links
from repro.core.votes import VoteTally
from repro.topology.elements import DirectedLink

BAD1 = DirectedLink("t1-0", "tor0")
BAD2 = DirectedLink("t1-1", "tor5")


def _path_through(bad, index):
    """A 4-link path containing ``bad``, unique per index."""
    return [
        DirectedLink(f"h{index}", f"tor-src{index % 3}"),
        DirectedLink(f"tor-src{index % 3}", bad.src),
        bad,
        DirectedLink(bad.dst, f"h-dst{index % 2}"),
    ]


class TestBlameConfig:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            BlameConfig(threshold_fraction=0.0)
        with pytest.raises(ValueError):
            BlameConfig(threshold_fraction=1.0)

    def test_invalid_adjustment(self):
        with pytest.raises(ValueError):
            BlameConfig(adjustment="magic")

    def test_invalid_max_links(self):
        with pytest.raises(ValueError):
            BlameConfig(max_links=0)


class TestSingleFailure:
    def test_detects_dominant_link(self):
        tally = VoteTally()
        for i in range(20):
            tally.add_flow(i, _path_through(BAD1, i))
        result = find_problematic_links(tally)
        assert result.detected_links[0] == BAD1
        assert BAD1 in result

    def test_empty_tally_detects_nothing(self):
        result = find_problematic_links(VoteTally())
        assert result.detected_links == []
        assert result.num_detected == 0

    def test_threshold_votes_recorded(self):
        tally = VoteTally()
        for i in range(10):
            tally.add_flow(i, _path_through(BAD1, i))
        result = find_problematic_links(tally, BlameConfig(threshold_fraction=0.05))
        assert result.threshold_votes == pytest.approx(0.05 * tally.total_votes())

    def test_input_tally_not_modified(self):
        tally = VoteTally()
        for i in range(10):
            tally.add_flow(i, _path_through(BAD1, i))
        before = tally.as_dict()
        find_problematic_links(tally)
        assert tally.as_dict() == before


class TestMultipleFailures:
    def _two_failure_tally(self, flows_each=15):
        tally = VoteTally()
        flow_id = 0
        for bad in (BAD1, BAD2):
            for _ in range(flows_each):
                tally.add_flow(flow_id, _path_through(bad, flow_id))
                flow_id += 1
        return tally

    def test_detects_both_links(self):
        result = find_problematic_links(self._two_failure_tally())
        assert BAD1 in result.detected_links
        assert BAD2 in result.detected_links

    def test_detection_order_follows_votes(self):
        tally = VoteTally()
        flow_id = 0
        for _ in range(30):
            tally.add_flow(flow_id, _path_through(BAD1, flow_id))
            flow_id += 1
        for _ in range(10):
            tally.add_flow(flow_id, _path_through(BAD2, flow_id))
            flow_id += 1
        result = find_problematic_links(tally)
        assert result.detected_links.index(BAD1) < result.detected_links.index(BAD2)

    def test_adjustment_reduces_false_positives(self):
        tally = self._two_failure_tally()
        with_adjustment = find_problematic_links(tally, BlameConfig(adjustment="paths"))
        without = find_problematic_links(tally, BlameConfig(adjustment="none"))
        false_with = set(with_adjustment.detected_links) - {BAD1, BAD2}
        false_without = set(without.detected_links) - {BAD1, BAD2}
        assert len(false_with) <= len(false_without)
        # Both must still find the genuinely bad links.
        assert {BAD1, BAD2} <= set(with_adjustment.detected_links)
        assert {BAD1, BAD2} <= set(without.detected_links)

    def test_max_links_cap(self):
        result = find_problematic_links(
            self._two_failure_tally(), BlameConfig(max_links=1)
        )
        assert result.num_detected == 1

    def test_higher_threshold_detects_fewer(self):
        tally = self._two_failure_tally()
        low = find_problematic_links(tally, BlameConfig(threshold_fraction=0.005))
        high = find_problematic_links(tally, BlameConfig(threshold_fraction=0.4))
        assert len(high.detected_links) <= len(low.detected_links)

    def test_votes_at_detection_monotone(self):
        result = find_problematic_links(self._two_failure_tally())
        votes = [result.votes_at_detection[l] for l in result.detected_links]
        # The adjustment can only lower later candidates, so the recorded
        # detection votes are non-increasing.
        assert all(a >= b - 1e-9 for a, b in zip(votes, votes[1:]))
