"""Scenario configs as shareable JSON files.

``ScenarioConfig.to_dict()/from_dict()`` (and the embedded
``ScenarioScript`` codec) must round-trip losslessly, and the CLI must be
able to dump and re-run a scenario from such a file.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.core.blame import BlameConfig
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.netsim.script import ScenarioScript
from repro.topology.elements import DirectedLink, Link, LinkLevel, SwitchTier


def full_script() -> ScenarioScript:
    return (
        ScenarioScript()
        .flap(start=1, duration=2, drop_rate=0.02, level=LinkLevel.LEVEL1)
        .flap(start=4, duration=1, link=DirectedLink("pod0-tor0", "pod0-t1-0"))
        .burst(start=2, duration=2, level=LinkLevel.LEVEL2, num_links=2, drop_rate=5e-3)
        .reboot_switch(epoch=6, tier=SwitchTier.T1, outage_epochs=2)
        .reboot_switch(epoch=8, switch="t2-0", tier=None)
        .drain(start=3, duration=1, link=Link.of("t2-0", "pod1-t1-0"))
        .drain(start=5, duration=2, level=LinkLevel.HOST)
        .shift_traffic(epoch=7, traffic="skewed", connections_per_host=(10, 20))
        .shift_traffic(epoch=9, traffic="hot_tor", hot_tor_skew=0.7)
        .linecard(start=2, duration=3, num_links=2, drop_rate=0.05,
                  blackhole=False, switch="pod0-t1-0")
        .linecard(start=6, duration=1, tier=SwitchTier.T2)
        .expand_fabric(epoch=4, switch="t2-1")
        .expand_fabric(epoch=2, tier=SwitchTier.T1)
    )


class TestScenarioConfigRoundTrip:
    def test_default_config_round_trips(self):
        config = ScenarioConfig()
        assert ScenarioConfig.from_dict(config.to_dict()) == config

    def test_full_config_round_trips_through_json(self):
        config = ScenarioConfig(
            npod=3,
            n0=5,
            hosts_per_tor=4,
            traffic="hot_tor",
            connections_per_host=(20, 60),
            packets_per_flow=(50, 150),
            hot_tor_skew=0.7,
            failure_kind="skewed",
            num_bad_links=3,
            drop_rate_range=(1e-3, 2e-2),
            noise_range=(0.0, 1e-7),
            failure_levels=(LinkLevel.HOST, LinkLevel.LEVEL2),
            failure_level=LinkLevel.LEVEL2,
            failure_downward=True,
            script=full_script(),
            epochs=9,
            seed=42,
            use_slb=False,
            engine="dicts",
            vote_policy="unit",
            blame=BlameConfig(threshold_fraction=0.05, min_flow_support=3),
            simulate_setup_failures=True,
            storage_flow_fraction=0.25,
        )
        # a true wire round-trip: dict -> JSON text -> dict -> config
        text = json.dumps(config.to_dict(), sort_keys=True)
        restored = ScenarioConfig.from_dict(json.loads(text))
        assert restored == config
        # field types survive exactly (tuples, enums, nested dataclasses)
        assert isinstance(restored.connections_per_host, tuple)
        assert restored.failure_levels == (LinkLevel.HOST, LinkLevel.LEVEL2)
        assert isinstance(restored.blame, BlameConfig)
        assert restored.script == full_script()

    def test_no_failure_levels_round_trips(self):
        config = ScenarioConfig(failure_levels=None)
        assert ScenarioConfig.from_dict(config.to_dict()).failure_levels is None

    def test_unknown_keys_are_rejected(self):
        with pytest.raises(ValueError, match="unknown ScenarioConfig keys"):
            ScenarioConfig.from_dict({"epochs": 2, "typo_field": 1})

    def test_round_tripped_config_runs_identically(self):
        config = ScenarioConfig(
            npod=2,
            n0=4,
            n1=2,
            n2=2,
            hosts_per_tor=2,
            connections_per_host=25,
            num_bad_links=1,
            drop_rate_range=(1e-2, 1e-2),
            epochs=2,
            seed=5,
        )
        restored = ScenarioConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        original = run_scenario(config)
        replayed = run_scenario(restored)
        assert [r.detected_links for r in original.reports] == [
            r.detected_links for r in replayed.reports
        ]
        assert [r.ranked_links for r in original.reports] == [
            r.ranked_links for r in replayed.reports
        ]


class TestScriptRoundTrip:
    def test_script_round_trips_through_json(self):
        script = full_script()
        restored = ScenarioScript.from_dict(json.loads(json.dumps(script.to_dict())))
        assert restored == script

    def test_empty_script_round_trips(self):
        assert ScenarioScript.from_dict(ScenarioScript().to_dict()) == ScenarioScript()

    def test_unknown_event_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario event kind"):
            ScenarioScript.from_dict({"events": [{"kind": "meteor"}]})


class TestCliConfigFiles:
    SMALL = [
        "--pods", "2", "--tors-per-pod", "4", "--t1-per-pod", "2", "--t2", "2",
        "--hosts-per-tor", "2", "--connections-per-host", "25", "--seed", "3",
    ]

    def test_dump_config_then_run_config(self, tmp_path):
        path = tmp_path / "scenario.json"
        out = io.StringIO()
        code = main(
            ["scenario", *self.SMALL, "--timeline", "flap", "--epochs", "4",
             "--dump-config", str(path)],
            out=out,
        )
        assert code == 0 and path.exists()
        data = json.loads(path.read_text())
        assert data["epochs"] == 4
        assert data["script"]["events"][0]["kind"] == "flap"

        out = io.StringIO()
        code = main(["scenario", "--config", str(path)], out=out)
        text = out.getvalue()
        assert code == 0
        assert "per-epoch timeline" in text
        assert "top 5 voted links" in text

    def test_dump_config_to_stdout(self):
        out = io.StringIO()
        code = main(["scenario", *self.SMALL, "--dump-config", "-"], out=out)
        assert code == 0
        data = json.loads(out.getvalue())
        assert data["seed"] == 3
        # a dumped config parses back
        from repro.experiments.scenario import ScenarioConfig

        assert ScenarioConfig.from_dict(data).seed == 3
