"""Golden byte-level tests of the fleet wire protocol.

The frame header, handshake prefix, and the fixed-layout TICK/ACK payloads
are pinned down to exact bytes (magic, version, endianness, field order), so
any layout change breaks loudly here and forces a deliberate protocol
version bump.  The incremental :class:`FrameReader` is exercised across
arbitrary fragmentation, truncation, oversize and unknown-type corruption —
every violation must raise a typed error, never desync.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.fleet import protocol
from repro.fleet.protocol import (
    FLEET_MAGIC,
    FLEET_PROTOCOL_VERSION,
    Endpoint,
    FleetProtocolError,
    FrameReader,
    FrameTooLargeError,
    HandshakeError,
    TruncatedFrameError,
    UnknownFrameError,
    VersionMismatchError,
    parse_endpoint,
)


class TestGoldenFrameBytes:
    def test_magic_and_version_are_pinned(self):
        assert FLEET_MAGIC == b"F007"
        assert FLEET_PROTOCOL_VERSION == 1

    def test_empty_frame_is_five_header_bytes(self):
        # <IB: uint32 length (LE) + one type byte; BYE carries no payload.
        assert protocol.encode_frame(protocol.FRAME_BYE) == (
            b"\x00\x00\x00\x00\x07"
        )

    def test_tick_frame_golden_bytes(self):
        frame = protocol.encode_frame(
            protocol.FRAME_TICK, protocol.encode_tick(7)
        )
        assert frame == b"\x08\x00\x00\x00\x04\x07\x00\x00\x00\x00\x00\x00\x00"

    def test_ack_payload_is_little_endian_qqq(self):
        payload = protocol.encode_ack(2, 100, 4096)
        assert payload == struct.pack("<qqq", 2, 100, 4096)
        assert protocol.decode_ack(payload) == (2, 100, 4096)

    def test_hello_payload_golden_bytes(self):
        payload = protocol.encode_hello("a0", 3)
        assert payload == (
            b"F007\x01\x00"
            b'{"agent_id":"a0","epoch_watermark":3}'
        )
        assert protocol.decode_hello(payload) == {
            "agent_id": "a0",
            "epoch_watermark": 3,
        }

    def test_welcome_payload_golden_bytes(self):
        payload = protocol.encode_welcome(1024, {0: 511})
        assert payload == (
            b"F007\x01\x00"
            b'{"acked":{"0":511},"credit_bytes":1024}'
        )
        decoded = protocol.decode_welcome(payload)
        assert decoded == {"credit_bytes": 1024, "acked": {0: 511}}

    def test_negative_epoch_watermark_round_trips(self):
        decoded = protocol.decode_hello(protocol.encode_hello("agent-1"))
        assert decoded["epoch_watermark"] == -1

    def test_frame_type_numbers_are_pinned(self):
        assert (
            protocol.FRAME_HELLO,
            protocol.FRAME_WELCOME,
            protocol.FRAME_EVIDENCE,
            protocol.FRAME_TICK,
            protocol.FRAME_ACK,
            protocol.FRAME_HEARTBEAT,
            protocol.FRAME_BYE,
            protocol.FRAME_ERROR,
        ) == (1, 2, 3, 4, 5, 6, 7, 8)


class TestFrameReader:
    def frames_of(self, reader):
        return list(reader.frames())

    def test_byte_at_a_time_reassembly(self):
        wire = protocol.encode_frame(
            protocol.FRAME_TICK, protocol.encode_tick(5)
        ) + protocol.encode_frame(protocol.FRAME_HEARTBEAT)
        reader = FrameReader()
        seen = []
        for i in range(len(wire)):
            reader.feed(wire[i : i + 1])
            seen.extend(reader.frames())
        assert seen == [
            (protocol.FRAME_TICK, protocol.encode_tick(5)),
            (protocol.FRAME_HEARTBEAT, b""),
        ]
        assert reader.at_boundary

    def test_multiple_frames_in_one_feed(self):
        wire = b"".join(
            protocol.encode_frame(protocol.FRAME_TICK, protocol.encode_tick(e))
            for e in range(3)
        )
        reader = FrameReader()
        reader.feed(wire)
        assert [
            protocol.decode_tick(payload)
            for _, payload in reader.frames()
        ] == [0, 1, 2]

    def test_truncated_stream_raises_on_close(self):
        frame = protocol.encode_frame(
            protocol.FRAME_TICK, protocol.encode_tick(1)
        )
        reader = FrameReader()
        reader.feed(frame[:-3])
        assert self.frames_of(reader) == []
        assert not reader.at_boundary
        assert reader.buffered_bytes == len(frame) - 3
        with pytest.raises(TruncatedFrameError):
            reader.close()

    def test_clean_boundary_close_is_silent(self):
        reader = FrameReader()
        reader.feed(protocol.encode_frame(protocol.FRAME_BYE))
        self.frames_of(reader)
        reader.close()

    def test_oversized_length_prefix_raises_immediately(self):
        reader = FrameReader()
        reader.feed(
            struct.pack(
                "<IB", protocol.MAX_FRAME_BYTES + 1, protocol.FRAME_EVIDENCE
            )
        )
        with pytest.raises(FrameTooLargeError):
            self.frames_of(reader)

    def test_unknown_frame_type_raises_immediately(self):
        reader = FrameReader()
        reader.feed(struct.pack("<IB", 0, 42))
        with pytest.raises(UnknownFrameError):
            self.frames_of(reader)

    def test_encode_refuses_oversized_payload(self):
        with pytest.raises(FrameTooLargeError):
            protocol.encode_frame(
                protocol.FRAME_EVIDENCE,
                b"\x00" * (protocol.MAX_FRAME_BYTES + 1),
            )


class TestHandshakeValidation:
    def versioned_hello(self, version):
        body = json.dumps({"agent_id": "a0", "epoch_watermark": -1})
        return struct.pack("<4sH", FLEET_MAGIC, version) + body.encode()

    def test_version_mismatch_names_both_versions(self):
        with pytest.raises(VersionMismatchError) as excinfo:
            protocol.decode_hello(self.versioned_hello(99))
        assert excinfo.value.ours == FLEET_PROTOCOL_VERSION
        assert excinfo.value.theirs == 99
        assert "v99" in str(excinfo.value)
        assert f"v{FLEET_PROTOCOL_VERSION}" in str(excinfo.value)

    def test_version_mismatch_is_a_handshake_and_protocol_error(self):
        assert issubclass(VersionMismatchError, HandshakeError)
        assert issubclass(HandshakeError, FleetProtocolError)

    def test_bad_magic_rejected(self):
        payload = b"X007\x01\x00{}"
        with pytest.raises(HandshakeError, match="magic"):
            protocol.decode_hello(payload)

    def test_undecodable_body_rejected(self):
        payload = struct.pack(
            "<4sH", FLEET_MAGIC, FLEET_PROTOCOL_VERSION
        ) + b"\xff\xfe not json"
        with pytest.raises(HandshakeError):
            protocol.decode_hello(payload)

    def test_hello_requires_agent_id(self):
        payload = struct.pack(
            "<4sH", FLEET_MAGIC, FLEET_PROTOCOL_VERSION
        ) + b'{"agent_id": ""}'
        with pytest.raises(HandshakeError, match="agent_id"):
            protocol.decode_hello(payload)

    def test_welcome_requires_positive_credit(self):
        payload = struct.pack(
            "<4sH", FLEET_MAGIC, FLEET_PROTOCOL_VERSION
        ) + b'{"credit_bytes": 0}'
        with pytest.raises(HandshakeError, match="credit"):
            protocol.decode_welcome(payload)

    def test_error_frame_round_trips_as_peer_error(self):
        error = protocol.decode_error(
            protocol.encode_error("wire", "bad chunk")
        )
        assert error.code == "wire"
        assert "bad chunk" in str(error)


class TestEndpoints:
    @pytest.mark.parametrize(
        "text",
        ["tcp:127.0.0.1:9000", "tcp:::1:9000", "unix:/tmp/fleet.sock"],
    )
    def test_parse_round_trips(self, text):
        assert str(parse_endpoint(text)) == text

    def test_tcp_fields(self):
        endpoint = parse_endpoint("tcp:10.0.0.2:8125")
        assert endpoint == Endpoint(kind="tcp", host="10.0.0.2", port=8125)

    @pytest.mark.parametrize(
        "text",
        [
            "tcp:9000",  # missing host
            "tcp:host:notaport",
            "tcp:host:70000",  # out of range
            "carrier-pigeon:/coop",
            "unix:",
            "justtext",
        ],
    )
    def test_malformed_endpoints_rejected(self, text):
        with pytest.raises(ValueError):
            parse_endpoint(text)
