"""The named scenario-pack library: loader, schema, goldens, CLI, windows.

Covers the pack registry (``repro.scenarios``), the strict schema validation
(unknown keys/versions rejected), the nan-aware golden comparison, the
``repro-007 pack`` CLI, worker-count determinism, the lossless round-trip of
every shipped scenario, and the regression test that netsim ground truth and
the loadgen bad-link windows agree window-for-window for every script event
type (the off-by-one class of bug the pack exists to catch).
"""

from __future__ import annotations

import io
import json
import math
import pathlib
import shutil

import pytest

from repro.cli import main
from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import ScenarioConfig
from repro.loadgen.generator import EvidenceLoadGenerator
from repro.loadgen.profiles import WorkloadProfile
from repro.netsim.links import LinkStateTable
from repro.netsim.script import ScenarioScript
from repro.scenarios import (
    PackValidationError,
    ScenarioOutcome,
    compare_to_golden,
    load_pack,
    load_scenario,
    outcome_document,
    run_pack,
    write_golden,
)
from repro.scenarios.pack import _nan_mean
from repro.topology.clos import ClosParameters, ClosTopology
from repro.topology.elements import DirectedLink, Link, LinkLevel, SwitchTier

PACK_DIR = pathlib.Path(__file__).resolve().parent.parent / "scenarios"

EXPECTED_NAMES = {
    "gray_failure_silent_drops",
    "core_vs_tor_vs_nic_placement",
    "correlated_linecard_failure",
    "rolling_maintenance_drain",
    "incast_burst",
    "flap_congestion_interference",
    "mid_run_fabric_expansion",
    "intermittent_connectivity",
}


@pytest.fixture(scope="module")
def pack():
    return load_pack(PACK_DIR)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_pack_ships_the_required_scenarios(self, pack):
        assert EXPECTED_NAMES <= set(pack)
        assert len(pack) >= 8

    def test_registry_is_sorted_by_name(self, pack):
        assert list(pack) == sorted(pack)

    def test_every_scenario_carries_a_golden(self, pack):
        missing = [name for name, s in pack.items() if s.expected is None]
        assert missing == []

    def test_every_timeline_fits_inside_the_simulated_epochs(self, pack):
        for scenario in pack.values():
            script = scenario.config.script
            if script is not None:
                assert scenario.config.epochs >= script.horizon


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
def write_pack_scenario(directory: pathlib.Path, document: dict) -> pathlib.Path:
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / "scenario.json", "w") as handle:
        json.dump(document, handle)
    return directory


def minimal_document(name: str) -> dict:
    return {
        "pack_version": 1,
        "name": name,
        "config": ScenarioConfig(epochs=1).to_dict(),
    }


class TestSchemaValidation:
    def test_minimal_document_loads(self, tmp_path):
        directory = write_pack_scenario(tmp_path / "ok", minimal_document("ok"))
        scenario = load_scenario(directory)
        assert scenario.name == "ok" and scenario.trials == 1

    def test_unknown_keys_are_rejected(self, tmp_path):
        document = minimal_document("bad")
        document["grafana_dashboard"] = "http://..."
        directory = write_pack_scenario(tmp_path / "bad", document)
        with pytest.raises(PackValidationError, match="unknown keys"):
            load_scenario(directory)

    def test_unsupported_version_is_rejected(self, tmp_path):
        document = minimal_document("bad")
        document["pack_version"] = 2
        directory = write_pack_scenario(tmp_path / "bad", document)
        with pytest.raises(PackValidationError, match="pack_version"):
            load_scenario(directory)

    def test_name_must_match_the_directory(self, tmp_path):
        directory = write_pack_scenario(tmp_path / "bad", minimal_document("good"))
        with pytest.raises(PackValidationError, match="does not match directory"):
            load_scenario(directory)

    def test_non_positive_trials_are_rejected(self, tmp_path):
        document = minimal_document("bad")
        document["trials"] = 0
        directory = write_pack_scenario(tmp_path / "bad", document)
        with pytest.raises(PackValidationError, match="trials"):
            load_scenario(directory)

    def test_unknown_config_keys_are_rejected(self, tmp_path):
        document = minimal_document("bad")
        document["config"]["warp_factor"] = 9
        directory = write_pack_scenario(tmp_path / "bad", document)
        with pytest.raises(PackValidationError, match="invalid config"):
            load_scenario(directory)

    def test_timeline_longer_than_epochs_is_rejected(self, tmp_path):
        config = ScenarioConfig(
            epochs=3, script=ScenarioScript().flap(start=2, duration=4)
        )
        document = minimal_document("bad")
        document["config"] = config.to_dict()
        directory = write_pack_scenario(tmp_path / "bad", document)
        with pytest.raises(PackValidationError, match="horizon"):
            load_scenario(directory)

    def test_unknown_metric_in_golden_is_rejected(self, tmp_path):
        directory = write_pack_scenario(tmp_path / "bad", minimal_document("bad"))
        with open(directory / "expected.json", "w") as handle:
            json.dump(
                {
                    "pack_version": 1,
                    "name": "bad",
                    "metrics": {"vibes_007": {"value": 1.0, "tolerance": 0.1}},
                },
                handle,
            )
        with pytest.raises(PackValidationError, match="unknown metric"):
            load_scenario(directory)

    def test_golden_tolerance_must_be_non_negative(self, tmp_path):
        directory = write_pack_scenario(tmp_path / "bad", minimal_document("bad"))
        with open(directory / "expected.json", "w") as handle:
            json.dump(
                {
                    "pack_version": 1,
                    "name": "bad",
                    "metrics": {
                        "mean_epoch_recall_007": {"value": 1.0, "tolerance": -0.1}
                    },
                },
                handle,
            )
        with pytest.raises(PackValidationError, match="tolerance"):
            load_scenario(directory)

    def test_empty_pack_directory_is_rejected(self, tmp_path):
        with pytest.raises(PackValidationError, match="no scenarios"):
            load_pack(tmp_path)


# ----------------------------------------------------------------------
# round-trip of every shipped scenario
# ----------------------------------------------------------------------
SHIPPED = sorted(
    child.name
    for child in PACK_DIR.iterdir()
    if child.is_dir() and (child / "scenario.json").is_file()
)


class TestShippedScenarioRoundTrip:
    @pytest.mark.parametrize("name", SHIPPED)
    def test_to_dict_from_dict_is_lossless(self, name):
        scenario = load_scenario(PACK_DIR / name)
        config = scenario.config
        restored = ScenarioConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert restored == config

    @pytest.mark.parametrize("name", SHIPPED)
    def test_cli_dump_config_round_trips(self, name, tmp_path):
        """``--config scenario.json`` -> ``--dump-config`` reproduces the config."""
        scenario = load_scenario(PACK_DIR / name)
        config_path = tmp_path / "config.json"
        with open(config_path, "w") as handle:
            json.dump(scenario.config.to_dict(), handle)
        dumped_path = tmp_path / "dumped.json"
        out = io.StringIO()
        code = main(
            [
                "scenario",
                "--config",
                str(config_path),
                "--dump-config",
                str(dumped_path),
            ],
            out=out,
        )
        assert code == 0
        with open(dumped_path) as handle:
            restored = ScenarioConfig.from_dict(json.load(handle))
        assert restored == scenario.config

    @pytest.mark.parametrize("name", SHIPPED)
    def test_cli_accepts_the_pack_envelope_directly(self, name, tmp_path):
        """``scenario --config scenarios/<name>/scenario.json`` unwraps the
        pack envelope, so a shipped scenario is runnable as-is."""
        scenario = load_scenario(PACK_DIR / name)
        dumped_path = tmp_path / "dumped.json"
        out = io.StringIO()
        code = main(
            [
                "scenario",
                "--config",
                str(PACK_DIR / name / "scenario.json"),
                "--dump-config",
                str(dumped_path),
            ],
            out=out,
        )
        assert code == 0
        with open(dumped_path) as handle:
            restored = ScenarioConfig.from_dict(json.load(handle))
        assert restored == scenario.config


# ----------------------------------------------------------------------
# netsim truth windows == loadgen bad-link windows, per event type
# ----------------------------------------------------------------------
TINY_PARAMS = ClosParameters(npod=2, n0=2, n1=2, n2=2, hosts_per_tor=1)

FLAP_LINK = DirectedLink("pod0-tor0", "pod0-t1-0")
DRAIN_LINK = Link.of("pod1-tor1", "pod1-t1-1")

WINDOW_SCRIPTS = {
    "flap_explicit": ScenarioScript().flap(
        start=1, duration=2, drop_rate=0.02, link=FLAP_LINK
    ),
    "flap_random": ScenarioScript().flap(
        start=2, duration=1, level=LinkLevel.LEVEL2
    ),
    "burst": ScenarioScript().burst(
        start=1, duration=3, level=LinkLevel.LEVEL1, num_links=2
    ),
    "drain_explicit": ScenarioScript().drain(start=2, duration=2, link=DRAIN_LINK),
    "reboot": ScenarioScript().reboot_switch(
        epoch=1, switch="pod0-t1-1", outage_epochs=2
    ),
    "linecard": ScenarioScript().linecard(
        start=2, duration=2, num_links=2, switch="pod1-t1-0"
    ),
    "expand": ScenarioScript().expand_fabric(epoch=3, switch="t2-1"),
}

EXPLICIT_VICTIMS = {
    "flap_explicit": {FLAP_LINK},
    "drain_explicit": set(DRAIN_LINK.directions()),
    "expand": {
        d
        for link in ClosTopology(TINY_PARAMS).links_of_node("t2-1")
        for d in link.directions()
    },
    "reboot": {
        d
        for link in ClosTopology(TINY_PARAMS).links_of_node("pod0-t1-1")
        for d in link.directions()
    },
}


class TestWindowAgreement:
    """Every event type produces the *same* active window in the netsim
    compiled script and the loadgen resolver — window for window, so a
    scenario's last scripted epoch is simulated by both engines."""

    @pytest.mark.parametrize("kind", sorted(WINDOW_SCRIPTS))
    def test_netsim_and_loadgen_agree_window_for_window(self, kind):
        script = WINDOW_SCRIPTS[kind]
        topology = ClosTopology(TINY_PARAMS)
        table = LinkStateTable(topology, rng=0)
        compiled = script.compile(topology, table, rng=3)
        assert compiled.horizon == script.horizon

        generator = EvidenceLoadGenerator(
            fabric=TINY_PARAMS,
            profile=WorkloadProfile(num_bad_links=0),
            script=script,
            seed=3,
            events_per_epoch=0,
        )
        epochs = script.horizon + 2
        netsim_active = {}
        loadgen_active = {}
        for epoch in range(epochs):
            truth = set(compiled.apply_epoch(epoch).bad_links)
            bad = set(generator.bad_links_for_epoch(epoch))
            if truth:
                netsim_active[epoch] = truth
            if bad:
                loadgen_active[epoch] = bad
        assert set(netsim_active) == set(loadgen_active), (
            f"{kind}: netsim bad epochs {sorted(netsim_active)} != "
            f"loadgen bad epochs {sorted(loadgen_active)}"
        )
        # nothing leaks past the declared horizon on either side
        assert all(epoch < script.horizon for epoch in netsim_active)
        if kind in EXPLICIT_VICTIMS:
            for epoch in netsim_active:
                assert netsim_active[epoch] == EXPLICIT_VICTIMS[kind]
                assert loadgen_active[epoch] == EXPLICIT_VICTIMS[kind]

    def test_linecard_victims_stay_on_the_switch_in_both_engines(self):
        script = WINDOW_SCRIPTS["linecard"]
        topology = ClosTopology(TINY_PARAMS)
        table = LinkStateTable(topology, rng=0)
        compiled = script.compile(topology, table, rng=3)
        generator = EvidenceLoadGenerator(
            fabric=TINY_PARAMS,
            profile=WorkloadProfile(num_bad_links=0),
            script=script,
            seed=3,
            events_per_epoch=0,
        )
        adjacent = {
            d
            for link in topology.links_of_node("pod1-t1-0")
            for d in link.directions()
        }
        truth = set(compiled.apply_epoch(2).bad_links)
        bad = set(generator.bad_links_for_epoch(2))
        assert truth <= adjacent and len(truth) == 4  # 2 links, both directions
        assert bad <= adjacent and len(bad) == 4


# ----------------------------------------------------------------------
# nan-aware aggregation and golden comparison
# ----------------------------------------------------------------------
def _metric_nan_for_odd_seed(result) -> float:
    return float("nan") if result.config.seed % 2 else 1.25


TINY_CONFIG = ScenarioConfig(
    npod=2,
    n0=2,
    n1=2,
    n2=2,
    hosts_per_tor=1,
    connections_per_host=5,
    packets_per_flow=20,
    epochs=1,
    seed=0,
)


class TestNanAwareAggregation:
    def test_nan_mean_skips_nan_trials(self):
        assert _nan_mean([1.0, float("nan"), 3.0]) == pytest.approx(2.0)

    def test_nan_mean_of_all_nan_is_nan(self):
        assert math.isnan(_nan_mean([float("nan"), float("nan")]))

    def test_sweep_average_ignores_nan_trials(self):
        # trial seeds fork as base + 1009*trial: with base 0, trial 1's seed
        # is odd, so the metric is nan there — the average must still be the
        # finite trial's value, not nan.
        runner = SweepRunner(workers=1)
        metrics = runner.run_trials(
            TINY_CONFIG, {"m": _metric_nan_for_odd_seed}, trials=2, base_seed=0
        )
        assert metrics["m"] == pytest.approx(1.25)

    def test_all_nan_trials_stay_nan(self):
        runner = SweepRunner(workers=1)
        metrics = runner.run_trials(
            TINY_CONFIG, {"m": _metric_nan_for_odd_seed}, trials=1, base_seed=1
        )
        assert math.isnan(metrics["m"])


def make_outcome(**metrics) -> ScenarioOutcome:
    base = {
        "mean_epoch_precision_007": 1.0,
        "mean_epoch_recall_007": 1.0,
        "time_to_detection_007": 0.0,
        "false_alarm_rate_007": 0.0,
        "detected_fraction_007": 1.0,
    }
    base.update(metrics)
    return ScenarioOutcome(
        name="x",
        trials=1,
        metrics=base,
        per_epoch_precision=[1.0, 1.0],
        per_epoch_recall=[1.0, 0.5],
    )


class TestGoldenComparison:
    def golden(self, outcome: ScenarioOutcome) -> dict:
        return outcome_document(outcome)

    def test_identical_outcome_passes(self):
        outcome = make_outcome()
        assert compare_to_golden(self.golden(outcome), outcome) == []

    def test_within_tolerance_passes(self):
        golden = self.golden(make_outcome())
        near = make_outcome(mean_epoch_recall_007=1.0 - 1e-3)
        assert compare_to_golden(golden, near) == []

    def test_beyond_tolerance_fails(self):
        golden = self.golden(make_outcome())
        off = make_outcome(mean_epoch_recall_007=0.5)
        violations = compare_to_golden(golden, off)
        assert any("mean_epoch_recall_007" in v for v in violations)

    def test_golden_null_matches_actual_nan(self):
        outcome = make_outcome(time_to_detection_007=float("nan"))
        golden = self.golden(outcome)
        assert golden["metrics"]["time_to_detection_007"]["value"] is None
        assert compare_to_golden(golden, outcome) == []

    def test_actual_nan_against_numeric_golden_fails(self):
        golden = self.golden(make_outcome(time_to_detection_007=1.0))
        broken = make_outcome(time_to_detection_007=float("nan"))
        violations = compare_to_golden(golden, broken)
        assert any("time_to_detection_007" in v for v in violations)

    def test_numeric_actual_against_null_golden_fails(self):
        golden = self.golden(make_outcome(time_to_detection_007=float("nan")))
        regressed = make_outcome(time_to_detection_007=2.0)
        violations = compare_to_golden(golden, regressed)
        assert any("time_to_detection_007" in v for v in violations)

    def test_per_epoch_length_mismatch_fails(self):
        golden = self.golden(make_outcome())
        short = make_outcome()
        object.__setattr__(short, "per_epoch_precision", [1.0])
        violations = compare_to_golden(golden, short)
        assert any("per_epoch.precision" in v for v in violations)

    def test_per_epoch_value_drift_fails(self):
        golden = self.golden(make_outcome())
        drifted = make_outcome()
        object.__setattr__(drifted, "per_epoch_recall", [1.0, 0.4])
        violations = compare_to_golden(golden, drifted)
        assert any("per_epoch.recall[1]" in v for v in violations)


# ----------------------------------------------------------------------
# running: determinism across worker counts, CLI
# ----------------------------------------------------------------------
class TestRunPack:
    def test_results_identical_at_any_worker_count(self, pack):
        scenario = pack["intermittent_connectivity"]
        serial = run_pack([scenario], runner=SweepRunner(workers=1))
        parallel = run_pack([scenario], runner=SweepRunner(workers=2))
        assert serial == parallel

    def test_outcome_matches_committed_golden(self, pack):
        scenario = pack["intermittent_connectivity"]
        outcome = run_pack([scenario])[scenario.name]
        assert compare_to_golden(scenario.expected, outcome) == []


class TestPackCli:
    def test_list_names_every_scenario(self):
        out = io.StringIO()
        assert main(["pack", "list", "--dir", str(PACK_DIR)], out=out) == 0
        text = out.getvalue()
        for name in EXPECTED_NAMES:
            assert name in text
        assert "NO GOLDEN" not in text

    def test_validate_passes_on_the_shipped_pack(self):
        out = io.StringIO()
        assert main(["pack", "validate", "--dir", str(PACK_DIR)], out=out) == 0

    def test_validate_fails_when_a_golden_is_missing(self, tmp_path):
        write_pack_scenario(tmp_path / "lonely", minimal_document("lonely"))
        out = io.StringIO()
        assert main(["pack", "validate", "--dir", str(tmp_path)], out=out) == 1
        assert "missing goldens: lonely" in out.getvalue()

    def test_run_unknown_scenario_exits_2(self):
        out = io.StringIO()
        code = main(["pack", "run", "nope", "--dir", str(PACK_DIR)], out=out)
        assert code == 2
        assert "unknown scenario" in out.getvalue()

    def test_run_requires_names_or_all(self):
        out = io.StringIO()
        assert main(["pack", "run", "--dir", str(PACK_DIR)], out=out) == 2

    def test_run_passes_and_writes_report(self, tmp_path):
        out = io.StringIO()
        report_dir = tmp_path / "reports"
        code = main(
            [
                "pack",
                "run",
                "intermittent_connectivity",
                "--dir",
                str(PACK_DIR),
                "--report-dir",
                str(report_dir),
            ],
            out=out,
        )
        assert code == 0
        assert "intermittent_connectivity: ok" in out.getvalue()
        with open(report_dir / "intermittent_connectivity.report.json") as handle:
            report = json.load(handle)
        assert report["violations"] == []
        assert report["actual"]["name"] == "intermittent_connectivity"

    def test_run_fails_against_a_tampered_golden(self, tmp_path):
        source = PACK_DIR / "intermittent_connectivity"
        target = tmp_path / "intermittent_connectivity"
        shutil.copytree(source, target)
        with open(target / "expected.json") as handle:
            golden = json.load(handle)
        golden["metrics"]["mean_epoch_recall_007"]["value"] = 0.123
        with open(target / "expected.json", "w") as handle:
            json.dump(golden, handle)
        out = io.StringIO()
        code = main(
            ["pack", "run", "intermittent_connectivity", "--dir", str(tmp_path)],
            out=out,
        )
        assert code == 1
        assert "FAIL" in out.getvalue()
        assert "mean_epoch_recall_007" in out.getvalue()

    def test_update_goldens_writes_a_passing_golden(self, tmp_path):
        source = PACK_DIR / "intermittent_connectivity"
        target = tmp_path / "intermittent_connectivity"
        shutil.copytree(source, target)
        (target / "expected.json").unlink()
        out = io.StringIO()
        code = main(
            [
                "pack",
                "run",
                "intermittent_connectivity",
                "--dir",
                str(tmp_path),
                "--update-goldens",
            ],
            out=out,
        )
        assert code == 0
        rerun = io.StringIO()
        code = main(
            ["pack", "run", "intermittent_connectivity", "--dir", str(tmp_path)],
            out=rerun,
        )
        assert code == 0
        assert "intermittent_connectivity: ok" in rerun.getvalue()

    def test_update_goldens_preserves_existing_tolerances(self, pack, tmp_path):
        source = PACK_DIR / "intermittent_connectivity"
        target = tmp_path / "intermittent_connectivity"
        shutil.copytree(source, target)
        with open(target / "expected.json") as handle:
            golden = json.load(handle)
        golden["metrics"]["mean_epoch_recall_007"]["tolerance"] = 0.123
        with open(target / "expected.json", "w") as handle:
            json.dump(golden, handle)
        scenario = load_scenario(target)
        outcome = run_pack([scenario])[scenario.name]
        document = write_golden(scenario, outcome)
        assert document["metrics"]["mean_epoch_recall_007"]["tolerance"] == 0.123
