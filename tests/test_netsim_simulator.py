"""Unit tests for the epoch-driven flow-level simulator."""

from __future__ import annotations

import pytest

from repro.netsim.events import ConnectionSetupFailureEvent, RetransmissionEvent
from repro.netsim.links import LinkStateTable
from repro.netsim.simulator import EpochSimulator, SimulationConfig
from repro.netsim.traffic import TrafficDemand, UniformTraffic
from repro.routing.ecmp import EcmpRouter
from repro.slb.loadbalancer import SoftwareLoadBalancer
from repro.topology.elements import DirectedLink


@pytest.fixture()
def simulator(small_topology, router, link_table):
    traffic = UniformTraffic(small_topology, connections_per_host=5, packets_per_flow=50)
    return EpochSimulator(
        small_topology,
        router,
        link_table,
        traffic,
        config=SimulationConfig(simulate_setup_failures=False),
        rng=0,
    )


class TestEpochSimulation:
    def test_flow_counts(self, small_topology, simulator):
        result = simulator.run_epoch(0)
        assert result.num_flows == 5 * len(small_topology.hosts)
        assert all(f.epoch == 0 for f in result.flows)

    def test_unique_flow_ids_across_epochs(self, simulator):
        results = simulator.run(2)
        ids = [f.flow_id for r in results for f in r.flows]
        assert len(ids) == len(set(ids))

    def test_paths_match_endpoints(self, simulator):
        result = simulator.run_epoch(0)
        for flow in result.flows:
            assert flow.path.src == flow.src_host
            assert flow.path.dst == flow.dst_host

    def test_no_failures_no_retransmission_events(self, small_topology, router):
        table = LinkStateTable(small_topology, noise_high=0.0, rng=0)
        traffic = UniformTraffic(small_topology, connections_per_host=3)
        sim = EpochSimulator(small_topology, router, table, traffic, rng=0)
        result = sim.run_epoch(0)
        assert result.retransmission_events == []
        assert result.total_drops == 0

    def test_failure_generates_events(self, small_topology, router, link_table, simulator):
        # Fail every uplink of one ToR so that flows from its hosts must hit it.
        tor = small_topology.tors(0)[0]
        for t1 in small_topology.tier1s(0):
            link_table.inject_failure(DirectedLink(tor.name, t1.name), 0.5)
        result = simulator.run_epoch(0)
        assert len(result.retransmission_events) > 0
        assert result.total_drops > 0
        flow_ids_with_events = {e.flow_id for e in result.retransmission_events}
        flows_with_retx = {f.flow_id for f in result.flows_with_retransmissions()}
        assert flow_ids_with_events == flows_with_retx

    def test_subscribers_receive_events(self, small_topology, router, link_table):
        link = small_topology.directed_links()[0]
        link_table.inject_failure(link, 0.9)
        traffic = UniformTraffic(small_topology, connections_per_host=10, packets_per_flow=50)
        sim = EpochSimulator(small_topology, router, link_table, traffic, rng=0)
        received = []
        sim.subscribe(received.append)
        result = sim.run_epoch(0)
        retx_events = [e for e in received if isinstance(e, RetransmissionEvent)]
        assert len(retx_events) == len(result.retransmission_events)

    def test_explicit_demands_override_generator(self, small_topology, simulator):
        hosts = sorted(small_topology.hosts)
        demands = [TrafficDemand(hosts[0], hosts[-1], 10)]
        result = simulator.run_epoch(0, demands=demands)
        assert result.num_flows == 1
        assert result.flows[0].src_host == hosts[0]

    def test_drops_by_flow_only_positive(self, small_topology, router, link_table, simulator):
        link = small_topology.directed_links()[0]
        link_table.inject_failure(link, 0.3)
        result = simulator.run_epoch(0)
        assert all(v > 0 for v in result.drops_by_flow().values())


class TestSlbIntegration:
    def test_app_tuple_uses_vip_and_data_path_uses_dip(self, small_topology, router, link_table):
        slb = SoftwareLoadBalancer(rng=0)
        traffic = UniformTraffic(small_topology, connections_per_host=2, packets_per_flow=10)
        sim = EpochSimulator(
            small_topology, router, link_table, traffic, slb=slb,
            config=SimulationConfig(simulate_setup_failures=False), rng=0,
        )
        result = sim.run_epoch(0)
        for flow in result.flows:
            assert flow.five_tuple.dst_ip.startswith("vip:")
            assert slb.query_dip(flow.five_tuple) == flow.dst_host

    def test_kind_selects_destination_port(self, small_topology, router, link_table, simulator):
        hosts = sorted(small_topology.hosts)
        demands = [TrafficDemand(hosts[0], hosts[-1], 10, kind="storage")]
        result = simulator.run_epoch(0, demands=demands)
        assert result.flows[0].five_tuple.dst_port == 445
        assert result.flows[0].kind == "storage"


class TestSetupFailures:
    def test_blackholed_path_yields_setup_failure(self, small_topology, router):
        table = LinkStateTable(small_topology, noise_high=0.0, rng=0)
        hosts = sorted(small_topology.hosts)
        src = hosts[0]
        host_link = [l for l in small_topology.directed_links() if l.src == src][0]
        table.set_link_down(host_link.undirected())
        traffic = UniformTraffic(small_topology, connections_per_host=1, packets_per_flow=10)
        sim = EpochSimulator(
            small_topology, router, table, traffic,
            config=SimulationConfig(simulate_setup_failures=True), rng=0,
        )
        result = sim.run_epoch(0)
        failures_from_src = [e for e in result.setup_failures if e.src_host == src]
        assert failures_from_src
        # Setup failures never produce retransmission events for that flow.
        failed_ids = {e.flow_id for e in failures_from_src}
        assert failed_ids.isdisjoint({e.flow_id for e in result.retransmission_events})
