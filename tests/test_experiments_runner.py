"""Unit tests for the parallel sweep runner.

The load-bearing properties: per-trial seed forking matches the serial
``average_over_trials`` derivation bit-for-bit, and results are byte-identical
regardless of the worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import (
    SweepRunner,
    TRIAL_SEED_STRIDE,
    fork_trial_seed,
    run_point_sweep,
)
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.experiments.sweeps import accuracy_metrics, average_over_trials

#: a deliberately tiny scenario so every test stays fast.
TINY = dict(
    npod=2,
    n0=3,
    n1=2,
    n2=2,
    hosts_per_tor=2,
    connections_per_host=8,
    packets_per_flow=50,
    num_bad_links=1,
    drop_rate_range=(5e-3, 1e-2),
)


def _config(seed: int = 0) -> ScenarioConfig:
    return ScenarioConfig(seed=seed, **TINY)


def _nan_metric(result) -> float:
    return float("nan")


class TestSeedForking:
    def test_fork_matches_historical_derivation(self):
        assert fork_trial_seed(7, 0) == 7
        assert fork_trial_seed(7, 3) == 7 + 3 * TRIAL_SEED_STRIDE

    def test_run_trials_matches_serial_average_bit_for_bit(self):
        """SweepRunner(workers=1) must equal the historical serial results."""
        config = _config(seed=5)
        metrics = accuracy_metrics(include_baselines=False)
        serial = average_over_trials(config, metrics, trials=3, base_seed=5)
        runner = SweepRunner(workers=1).run_trials(config, metrics, trials=3, base_seed=5)
        assert serial == runner  # exact float equality, not approx

    def test_trials_differ_across_seeds(self):
        """Forked trials really run different scenarios (not the same seed)."""
        a = run_scenario(_config(seed=fork_trial_seed(0, 0)))
        b = run_scenario(_config(seed=fork_trial_seed(0, 1)))
        assert a.failure_scenario.bad_links != b.failure_scenario.bad_links or (
            a.epoch_results[0].total_drops != b.epoch_results[0].total_drops
        )


class TestWorkerCountInvariance:
    def test_parallel_rows_byte_identical_to_serial(self):
        points = [
            ({"bad": count}, ScenarioConfig(seed=0, **{**TINY, "num_bad_links": count}))
            for count in (1, 2)
        ]
        metrics = accuracy_metrics(include_baselines=False)
        kwargs = dict(points=points, metric_fns=metrics, trials=2, base_seed=0)
        serial = SweepRunner(workers=1).run_sweep(**kwargs)
        parallel = SweepRunner(workers=2).run_sweep(**kwargs)
        assert serial.rows() == parallel.rows()

    def test_point_order_preserved(self):
        points = [({"i": i}, _config(seed=i)) for i in range(4)]
        result = SweepRunner(workers=2).run_sweep(
            points, accuracy_metrics(include_baselines=False), trials=1, base_seed=0
        )
        assert [p.parameters["i"] for p in result.points] == [0, 1, 2, 3]


class TestNanHandling:
    def test_all_nan_metric_stays_nan(self):
        averaged = SweepRunner(workers=1).run_trials(
            _config(), {"always_nan": _nan_metric}, trials=2, base_seed=0
        )
        assert np.isnan(averaged["always_nan"])


class TestRunPointSweep:
    def test_default_runner_is_serial(self):
        metrics = accuracy_metrics(include_baselines=False)
        result = run_point_sweep(
            name="t",
            description="",
            points=[({}, _config())],
            metric_fns=metrics,
            trials=1,
            base_seed=0,
        )
        expected = average_over_trials(_config(), metrics, trials=1, base_seed=0)
        got = result.points[0].metrics
        assert got.keys() == expected.keys()
        for key in expected:
            # identical bits, including the all-trials-nan case
            assert np.array([got[key]]).tobytes() == np.array([expected[key]]).tobytes()

    def test_invalid_workers_raise(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=-1)


class TestAggregateMetrics:
    """The aggregator-backed metric set rides the sweep runner (and pickles)."""

    def test_aggregate_metrics_serial(self):
        from repro.experiments.sweeps import aggregate_metrics

        config = _config(seed=3)
        scores = average_over_trials(config, aggregate_metrics(), trials=2)
        assert set(scores) == {"detections_per_epoch", "false_alarm_fraction"}
        assert scores["detections_per_epoch"] >= 0.0

    def test_aggregate_metrics_parallel_matches_serial(self):
        from repro.experiments.sweeps import aggregate_metrics

        config = _config(seed=3)
        serial = SweepRunner(workers=1).run_trials(
            config, aggregate_metrics(), trials=2
        )
        parallel = SweepRunner(workers=2).run_trials(
            config, aggregate_metrics(), trials=2
        )
        for key in serial:
            assert np.array([serial[key]]).tobytes() == np.array(
                [parallel[key]]
            ).tobytes()
