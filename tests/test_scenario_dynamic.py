"""End-to-end tests of time-varying scenarios through the full 007 pipeline."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.cli import main
from repro.core.aggregate import MultiEpochAggregator
from repro.experiments.scenario import ScenarioConfig, run_scenario, run_trials
from repro.experiments.sec66_transient import run_sec66
from repro.netsim.script import ScenarioScript
from repro.netsim.traffic import SkewedTraffic
from repro.topology.elements import LinkLevel, SwitchTier

#: small fabric shared by the dynamic tests (fast but non-trivial).
FAST = dict(npod=2, n0=4, n1=2, n2=2, hosts_per_tor=2, connections_per_host=25)


def flap_config(engine: str = "arrays", seed: int = 7) -> ScenarioConfig:
    """A clean fabric with one scripted ToR-T1 flap during epochs [2, 5)."""
    script = ScenarioScript().flap(
        start=2, duration=3, drop_rate=2e-2, level=LinkLevel.LEVEL1
    )
    return ScenarioConfig(
        **FAST, failure_kind="none", epochs=8, seed=seed, engine=engine, script=script
    )


class TestScriptedFlapEndToEnd:
    """The acceptance scenario: ground truth varies, 007 tracks it in time."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(flap_config())

    def test_ground_truth_varies_per_epoch(self, result):
        active = [bool(t.bad_links) for t in result.truth_by_epoch]
        assert active == [False, False, True, True, True, False, False, False]

    def test_flap_detected_within_active_window(self, result):
        latencies = result.time_to_detection_007()
        assert len(latencies) == 1
        (latency,) = latencies.values()
        assert latency is not None and 0 <= latency < 3

    def test_no_false_alarms_after_flap_clears(self, result):
        assert result.false_alarm_rate_007() == 0.0

    def test_per_epoch_scores_match_manual_detection_007(self, result):
        scores = result.per_epoch_detection_007()
        assert len(scores) == 8
        for i, score in enumerate(scores):
            assert score == result.detection_007(epoch_index=i)

    def test_clean_epochs_detect_nothing(self, result):
        for i, truth in enumerate(result.truth_by_epoch):
            if not truth.bad_links:
                # noise floor is ~1e-6; a detection would need 2+ voting flows
                assert result.reports[i].detected_links == []

    def test_system_ground_truth_accessor(self, result):
        assert result.system.ground_truth(2).bad_links == result.truth_by_epoch[2].bad_links
        with pytest.raises(KeyError):
            result.system.ground_truth(99)


class TestEngineEquivalenceDynamic:
    def test_engines_produce_bit_identical_reports_and_truth(self):
        arrays = run_scenario(flap_config(engine="arrays"))
        dicts = run_scenario(flap_config(engine="dicts"))
        assert [t.bad_links for t in arrays.truth_by_epoch] == [
            t.bad_links for t in dicts.truth_by_epoch
        ]
        assert [t.drop_rates for t in arrays.truth_by_epoch] == [
            t.drop_rates for t in dicts.truth_by_epoch
        ]
        for ref, got in zip(dicts.reports, arrays.reports):
            assert got.detected_links == ref.detected_links
            assert got.ranked_links == ref.ranked_links  # exact floats, exact order
            assert got.flow_causes == ref.flow_causes
            assert got.noise.noise_flows == ref.noise.noise_flows
            assert got.noise.failure_flows == ref.noise.failure_flows


class TestOtherTimelines:
    def test_burst_puts_several_links_in_truth(self):
        script = ScenarioScript().burst(
            start=1, duration=2, level=LinkLevel.LEVEL2, num_links=3, drop_rate=2e-2
        )
        config = ScenarioConfig(
            **FAST, failure_kind="none", epochs=4, seed=3, script=script
        )
        result = run_scenario(config)
        assert len(result.truth_by_epoch[1].bad_links) == 3
        assert len(result.truth_by_epoch[3].bad_links) == 0

    def test_reboot_changes_ecmp_seed_and_clears(self):
        script = ScenarioScript().reboot_switch(
            epoch=1, tier=SwitchTier.T1, outage_epochs=1
        )
        config = ScenarioConfig(
            **FAST, failure_kind="none", epochs=4, seed=5, script=script
        )
        result = run_scenario(config)
        outage_truth = result.truth_by_epoch[1]
        assert outage_truth.bad_links
        assert all(rate == 1.0 for rate in outage_truth.drop_rates.values())
        assert result.truth_by_epoch[2].bad_links == []
        # flows hashed through the dead switch fail during the outage
        assert any(f.connection_failed for f in result.epoch_results[1].flows)

    def test_static_and_scripted_failures_compose(self):
        script = ScenarioScript().flap(
            start=1, duration=1, drop_rate=2e-2, level=LinkLevel.LEVEL2
        )
        config = ScenarioConfig(
            **FAST,
            num_bad_links=1,
            drop_rate_range=(1e-2, 1e-2),
            epochs=3,
            seed=9,
            script=script,
        )
        result = run_scenario(config)
        static = set(result.failure_scenario.bad_links)
        assert set(result.truth_by_epoch[0].bad_links) == static
        assert static < set(result.truth_by_epoch[1].bad_links)
        assert set(result.truth_by_epoch[2].bad_links) == static

    def test_traffic_shift_swaps_generator_mid_run(self):
        script = ScenarioScript().shift_traffic(
            epoch=1, traffic="skewed", num_hot_tors=2, hot_fraction=0.9
        )
        config = ScenarioConfig(
            **FAST, failure_kind="none", epochs=2, seed=1, script=script
        )
        result = run_scenario(config)
        assert isinstance(result.system.simulator.traffic, SkewedTraffic)

    def test_static_scenarios_still_record_constant_truth(self):
        config = ScenarioConfig(
            **FAST, num_bad_links=2, drop_rate_range=(1e-2, 1e-2), epochs=2, seed=4
        )
        result = run_scenario(config)
        expected = sorted(result.failure_scenario.bad_links)
        for truth in result.truth_by_epoch:
            assert truth.bad_links == expected


class TestAggregatorWithTruth:
    def test_truth_columns_and_false_alarm_fraction(self):
        result = run_scenario(flap_config())
        aggregator = MultiEpochAggregator(topology=result.topology)
        aggregator.ingest_many(result.reports, truths=result.truth_by_epoch)

        assert aggregator.epochs_ingested == 8
        assert aggregator.epochs_with_truth == 8
        (flapped,) = result.truth_by_epoch[2].bad_links
        record = aggregator.record_of(flapped)
        assert record is not None
        assert record.epochs_bad == 3
        assert record.true_detections >= 1
        assert record.false_detections == 0

        true_events, false_events = aggregator.detection_event_counts()
        assert true_events >= 1 and false_events == 0
        assert aggregator.false_alarm_fraction() == 0.0

    def test_truth_length_mismatch_raises(self):
        result = run_scenario(flap_config())
        aggregator = MultiEpochAggregator()
        with pytest.raises(ValueError):
            aggregator.ingest_many(result.reports, truths=result.truth_by_epoch[:-1])

    def test_without_truth_behaviour_unchanged(self):
        result = run_scenario(flap_config())
        aggregator = MultiEpochAggregator()
        aggregator.ingest_many(result.reports)
        assert aggregator.epochs_with_truth == 0
        assert np.isnan(aggregator.false_alarm_fraction())


class TestRunTrialsAliasing:
    def test_trials_do_not_share_the_blame_config(self):
        config = ScenarioConfig(
            **FAST, num_bad_links=1, seed=3, drop_rate_range=(5e-3, 5e-3)
        )
        results = run_trials(config, trials=2)
        assert results[0].config.blame is not results[1].config.blame
        assert results[0].config.blame is not config.blame
        assert results[0].config.blame == config.blame  # equal values, distinct objects


class TestSweepAndCliExposure:
    def test_sec66_experiment_runs(self):
        result = run_sec66(drop_rates=(1e-2,), epochs=6, trials=1)
        (point,) = result.points
        assert point.parameters["flap_drop_rate"] == 1e-2
        assert 0.0 <= point.metrics["mean_epoch_precision_007"] <= 1.0
        assert point.metrics["false_alarm_rate_007"] == 0.0

    def test_dynamic_configs_survive_worker_pickling(self):
        # the sweep runner ships configs to worker processes; a scripted
        # config must round-trip
        import pickle

        config = flap_config()
        clone = pickle.loads(pickle.dumps(config))
        assert clone.script.events == config.script.events

    def test_cli_timeline_flap(self):
        out = io.StringIO()
        code = main(
            [
                "scenario",
                "--pods", "2",
                "--tors-per-pod", "4",
                "--t1-per-pod", "2",
                "--t2", "2",
                "--hosts-per-tor", "2",
                "--bad-links", "0",
                "--connections-per-host", "25",
                "--epochs", "8",
                "--timeline", "flap",
                "--event-rate", "0.02",
                "--seed", "0",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "per-epoch timeline:" in text
        assert "time to detection" in text
        assert "false-alarm rate after clear" in text

    def test_cli_engine_flag(self):
        args_sets = []
        for engine in ("arrays", "dicts"):
            out = io.StringIO()
            code = main(
                [
                    "scenario",
                    "--pods", "2",
                    "--tors-per-pod", "4",
                    "--t1-per-pod", "2",
                    "--t2", "2",
                    "--hosts-per-tor", "2",
                    "--connections-per-host", "25",
                    "--engine", engine,
                    "--seed", "3",
                ],
                out=out,
            )
            assert code == 0
            args_sets.append(out.getvalue())
        assert args_sets[0] == args_sets[1]  # engines agree on the CLI output too
