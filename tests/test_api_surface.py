"""Public-API snapshot of ``repro.api``.

The streaming service is the repo's stable system boundary: CLI, sweeps,
aggregation and external consumers all build on it.  This test pins the
exported names *and the signatures of the core entry points*, so an
accidental breaking change (renamed method, reordered/removed parameter,
changed default) fails CI and has to be made deliberately — by updating this
snapshot in the same commit that changes the surface.
"""

from __future__ import annotations

import inspect

import repro.api as api

EXPECTED_EXPORTS = {
    # events
    "Evidence",
    "PathEvidence",
    "RetransmissionEvidence",
    "EpochTick",
    "evidence_to_dict",
    "evidence_from_dict",
    # service
    "Zero07Service",
    "ServiceStats",
    "EvidenceSource",
    "ReportSink",
    "ReportUnavailableError",
    "CallbackSink",
    "DetectionLogSink",
    # scale-out
    "ShardedService",
    "shard_of_host",
    "ShardExecutor",
    "InlineExecutor",
    "ProcessExecutor",
    "ShardExecutorError",
    # evidence transport
    "WireEncoder",
    "WireDecoder",
    "WireRun",
    "LinkRemap",
    "EvidenceColumnStore",
    "WireProtocolError",
    # checkpointing
    "Checkpoint",
    "CHECKPOINT_VERSION",
    # sources
    "MonitoringEvidenceStream",
    "ReplayEvidenceSource",
    "EvidenceRecorder",
    "path_evidence_stream",
    "partition_evidence",
}

#: pinned signatures of the stable entry points.  The modules use
#: ``from __future__ import annotations``, so ``inspect.signature`` renders
#: the literal (stringified) annotations — which is exactly what we pin.
EXPECTED_SIGNATURES = {
    "Zero07Service.__init__": (
        "(self, blame_config: 'Optional[BlameConfig]' = None, "
        "vote_policy: 'VotePolicy' = 'inverse_hops', "
        "engine: 'EngineKind' = 'arrays', "
        "attribute_noise_flows: 'bool' = False, "
        "sinks: 'Sequence[ReportSink]' = (), "
        "retain_reports: 'int' = 8, "
        "link_index: 'Optional[LinkIndex]' = None) -> 'None'"
    ),
    "Zero07Service.ingest": "(self, event: 'Evidence') -> 'None'",
    "Zero07Service.ingest_batch": (
        "(self, events: 'Iterable[Evidence]', owned: 'bool' = False) -> 'None'"
    ),
    "Zero07Service.report": "(self, epoch: 'Optional[int]' = None) -> 'EpochReport'",
    "Zero07Service.advance_epoch": "(self, epoch: 'int') -> 'EpochReport'",
    "Zero07Service.checkpoint": (
        "(self, base: 'Optional[Checkpoint]' = None) -> 'Checkpoint'"
    ),
    "Zero07Service.restore": (
        "(checkpoint: 'Checkpoint', sinks: 'Sequence[ReportSink]' = (), "
        "link_index: 'Optional[LinkIndex]' = None) -> \"'Zero07Service'\""
    ),
    "ShardedService.__init__": (
        "(self, num_shards: 'int' = 2, "
        "blame_config: 'Optional[BlameConfig]' = None, "
        "vote_policy: 'VotePolicy' = 'inverse_hops', "
        "engine: 'EngineKind' = 'arrays', "
        "attribute_noise_flows: 'bool' = False, "
        "sinks: 'Sequence[ReportSink]' = (), "
        "retain_reports: 'int' = 8, "
        "backend: 'str' = 'inline', "
        "workers: 'Optional[int]' = None) -> 'None'"
    ),
    "ShardedService.report": "(self, epoch: 'Optional[int]' = None) -> 'EpochReport'",
    "ShardedService.checkpoint": (
        "(self, base: 'Optional[Checkpoint]' = None) -> 'Checkpoint'"
    ),
    "Checkpoint.to_json": "(self, indent: 'int | None' = None) -> 'str'",
    "Checkpoint.from_json": "(text: 'str') -> \"'Checkpoint'\"",
    "Checkpoint.to_bytes": "(self) -> 'bytes'",
    "Checkpoint.from_bytes": "(data: 'bytes') -> \"'Checkpoint'\"",
    "Checkpoint.save": (
        "(self, path: 'Union[str, Path]', format: 'str' = 'binary') -> 'None'"
    ),
    "Checkpoint.load": "(path: 'Union[str, Path]') -> \"'Checkpoint'\"",
    "Checkpoint.apply_delta": "(self, delta: \"'Checkpoint'\") -> \"'Checkpoint'\"",
    "ReportSink.on_report": "(self, report: 'EpochReport') -> 'None'",
    "EvidenceSource.events": "(self) -> 'Iterable[Evidence]'",
    "path_evidence_stream": (
        "(epoch: 'int', paths: 'Sequence[DiscoveredPath]', "
        "tick: 'bool' = False) -> 'Iterator[Evidence]'"
    ),
    "shard_of_host": "(host: 'str', num_shards: 'int') -> 'int'",
}


#: pinned exports of the loadgen/bench packages (the perf-harness surface).
EXPECTED_LOADGEN_EXPORTS = {
    "EvidenceLoadGenerator",
    "WorkloadProfile",
    "FABRIC_PRESETS",
    "fabric_parameters",
}

EXPECTED_BENCH_EXPORTS = {
    "BenchConfig",
    "run_service_bench",
    "write_bench_report",
    "format_bench_table",
    "BENCH_SCHEMA_VERSION",
    "BenchSchemaError",
    "validate_bench_report",
    "FleetBenchConfig",
    "run_fleet_bench",
}

#: pinned exports of the distributed fleet subsystem (``repro.fleet``):
#: transport protocol, analyzer front-end, agent client, experiment runner.
EXPECTED_FLEET_EXPORTS = {
    # protocol
    "FLEET_MAGIC",
    "FLEET_PROTOCOL_VERSION",
    "Endpoint",
    "parse_endpoint",
    "FrameReader",
    "FleetProtocolError",
    "TruncatedFrameError",
    "FrameTooLargeError",
    "UnknownFrameError",
    "HandshakeError",
    "VersionMismatchError",
    "PeerError",
    # analyzer
    "FleetAnalyzer",
    "AnalyzerThread",
    "AnalyzerStats",
    "ServiceIngestCore",
    "ColumnarIngestCore",
    # agent
    "FleetAgentClient",
    "AgentStats",
    "KILL_EXIT_CODE",
    # runner
    "FleetRunConfig",
    "run_fleet",
    "validate_run_dir",
    "FleetQueryClient",
}

#: pinned signatures of the loadgen/bench entry points.
EXPECTED_HARNESS_SIGNATURES = {
    "repro.loadgen.EvidenceLoadGenerator.__init__": (
        "(self, fabric: 'Union[str, ClosParameters]' = 'medium', "
        "profile: 'Optional[WorkloadProfile]' = None, "
        "script: 'Optional[ScenarioScript]' = None, "
        "seed: 'int' = 0, events_per_epoch: 'int' = 100000) -> 'None'"
    ),
    "repro.loadgen.EvidenceLoadGenerator.epoch_events": (
        "(self, epoch: 'int', tick: 'bool' = True) -> 'List[Evidence]'"
    ),
    "repro.loadgen.EvidenceLoadGenerator.agent_events": (
        "(self, epoch: 'int', agent_index: 'int', num_agents: 'int') "
        "-> 'List[Evidence]'"
    ),
    "repro.loadgen.EvidenceLoadGenerator.stream": (
        "(self, epochs: 'int', tick: 'bool' = True) -> 'Iterator[Evidence]'"
    ),
    "repro.loadgen.fabric_parameters": (
        "(fabric: 'Union[str, ClosParameters]') -> 'ClosParameters'"
    ),
    "repro.bench.run_service_bench": (
        "(config: 'Optional[BenchConfig]' = None, "
        "progress: 'Optional[Callable[[str], None]]' = None) -> 'Dict[str, Any]'"
    ),
    "repro.bench.validate_bench_report": "(document: 'Any') -> 'Dict[str, Any]'",
    "repro.bench.run_fleet_bench": (
        "(config: 'Optional[FleetBenchConfig]' = None, "
        "progress: 'Optional[Callable[[str], None]]' = None) -> 'Dict'"
    ),
    "repro.fleet.run_fleet": (
        "(config: 'FleetRunConfig', "
        "progress: 'Optional[Callable[[str], None]]' = None) -> 'Dict'"
    ),
    "repro.fleet.FleetAgentClient.send_run": (
        "(self, epoch: 'int', events: 'Sequence[Evidence]', "
        "seqs: 'Optional[Sequence[int]]' = None) -> 'None'"
    ),
    "repro.fleet.FleetAnalyzer.__init__": (
        "(self, core, expected_agents: 'int', "
        "credit_bytes: 'int' = 8388608, "
        "stage_limit_bytes: 'int' = 67108864, "
        "idle_timeout: 'float' = 30.0, "
        "handshake_timeout: 'float' = 10.0) -> 'None'"
    ),
}


def _resolve(dotted: str):
    obj = api
    for part in dotted.split("."):
        obj = getattr(obj, part)
    return obj


def test_exported_names_are_exactly_the_snapshot():
    assert set(api.__all__) == EXPECTED_EXPORTS
    for name in EXPECTED_EXPORTS:
        assert hasattr(api, name), f"__all__ lists {name} but it is missing"


def test_core_entry_point_signatures_are_pinned():
    drifted = {}
    for dotted, expected in EXPECTED_SIGNATURES.items():
        actual = str(inspect.signature(_resolve(dotted)))
        if actual != expected:
            drifted[dotted] = actual
    assert not drifted, (
        "public API signatures drifted — if intentional, update the snapshot "
        f"in the same commit: {drifted}"
    )


def test_loadgen_and_bench_exports_are_exactly_the_snapshot():
    import repro.bench as bench
    import repro.loadgen as loadgen

    assert set(loadgen.__all__) == EXPECTED_LOADGEN_EXPORTS
    assert set(bench.__all__) == EXPECTED_BENCH_EXPORTS
    for module, names in ((loadgen, EXPECTED_LOADGEN_EXPORTS),
                          (bench, EXPECTED_BENCH_EXPORTS)):
        for name in names:
            assert hasattr(module, name), f"{module.__name__}.{name} is missing"


def test_fleet_exports_are_exactly_the_snapshot():
    import repro.fleet as fleet

    assert set(fleet.__all__) == EXPECTED_FLEET_EXPORTS
    for name in EXPECTED_FLEET_EXPORTS:
        assert hasattr(fleet, name), f"repro.fleet.{name} is missing"


def test_loadgen_and_bench_signatures_are_pinned():
    import importlib

    drifted = {}
    for dotted, expected in EXPECTED_HARNESS_SIGNATURES.items():
        module_name, _, remainder = dotted.partition(".")
        parts = remainder.split(".")
        module = importlib.import_module(f"{module_name}.{parts[0]}")
        obj = module
        for part in parts[1:]:
            obj = getattr(obj, part)
        actual = str(inspect.signature(obj))
        if actual != expected:
            drifted[dotted] = actual
    assert not drifted, (
        "loadgen/bench API signatures drifted — if intentional, update the "
        f"snapshot in the same commit: {drifted}"
    )


def test_evidence_event_fields_are_pinned():
    """The wire format: field names (and order) of every evidence event."""
    import dataclasses

    fields = {
        cls.__name__: [f.name for f in dataclasses.fields(cls)]
        for cls in (api.PathEvidence, api.RetransmissionEvidence, api.EpochTick)
    }
    assert fields == {
        "PathEvidence": ["epoch", "seq", "path"],
        "RetransmissionEvidence": ["epoch", "flow_id", "retransmissions", "seq"],
        "EpochTick": ["epoch"],
    }
