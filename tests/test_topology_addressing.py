"""Unit tests for the IP address plan / router-alias resolution."""

from __future__ import annotations

import pytest

from repro.topology.addressing import AddressPlan
from repro.topology.clos import ClosTopology


@pytest.fixture(scope="module")
def plan():
    topology = ClosTopology(npod=1, n0=2, n1=2, n2=1, hosts_per_tor=1)
    return topology, AddressPlan(topology)


class TestAddressPlan:
    def test_every_node_has_management_ip(self, plan):
        topology, address_plan = plan
        for name in topology.node_names():
            ip = address_plan.management_ip(name)
            assert ip.count(".") == 3

    def test_interface_ips_are_unique(self, plan):
        topology, address_plan = plan
        ips = set()
        for link in topology.links:
            for end in (link.a, link.b):
                ip = address_plan.interface_ip(end, link)
                assert ip not in ips
                ips.add(ip)

    def test_resolve_interface_ip(self, plan):
        topology, address_plan = plan
        link = topology.links[0]
        ip = address_plan.interface_ip(link.a, link)
        assert address_plan.resolve(ip) == link.a

    def test_resolve_management_ip(self, plan):
        topology, address_plan = plan
        node = sorted(topology.hosts)[0]
        assert address_plan.resolve(address_plan.management_ip(node)) == node

    def test_resolve_unknown_ip_returns_none(self, plan):
        _, address_plan = plan
        assert address_plan.resolve("8.8.8.8") is None

    def test_len_counts_all_addresses(self, plan):
        topology, address_plan = plan
        expected = 2 * len(topology.links) + len(list(topology.node_names()))
        assert len(address_plan) == expected
