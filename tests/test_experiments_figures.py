"""Smoke tests for the per-figure experiment modules (tiny configurations).

The full-size regenerations live in ``benchmarks/``; here we only verify that
every experiment module runs end to end and produces rows of the expected
shape, so the benchmark harness cannot silently rot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_adjustment_ablation,
    run_threshold_ablation,
    run_vote_policy_ablation,
)
from repro.experiments.fig01_motivation import run_fig01
from repro.experiments.fig03_accuracy_optimal import run_fig03
from repro.experiments.fig04_detection_optimal import run_fig04
from repro.experiments.fig05_drop_rates import run_fig05_single
from repro.experiments.fig06_noise import run_fig06
from repro.experiments.fig09_hot_tor import run_fig09
from repro.experiments.fig10_detection_single import run_fig10
from repro.experiments.fig11_link_location import run_fig11
from repro.experiments.fig12_skewed_drop_rates import run_fig12
from repro.experiments.fig13_testcluster_votes import run_fig13
from repro.experiments.sec67_network_size import run_sec67
from repro.experiments.sec72_two_links import run_sec72
from repro.experiments.sec82_everflow_validation import run_sec82
from repro.experiments.sec83_vm_reboots import run_sec83
from repro.experiments.table1_icmp import run_table1


class TestSimulationFigures:
    def test_fig01_rows(self):
        result = run_fig01(epochs=2, num_bad_links=2, seed=0)
        panels = {p.parameters["panel"] for p in result.points}
        assert panels == {"1a", "1b"}

    def test_table1_budget_holds(self):
        result = run_table1(epochs=2, num_bad_links=2, seed=0)
        ours = result.points[0].metrics
        assert ours["max_T"] <= ours["tmax"]
        assert ours["frac_T=0"] + ours["frac_0<T<=3"] + ours["frac_T>3"] == pytest.approx(1.0)

    def test_fig03_accuracy_high_for_single_point(self):
        result = run_fig03(failed_link_counts=(2,), trials=1, seed=0, include_baselines=False)
        assert len(result.points) == 1
        accuracy = result.points[0].metrics["accuracy_007"]
        assert np.isnan(accuracy) or accuracy >= 0.5

    def test_fig04_detection_metrics_present(self):
        result = run_fig04(failed_link_counts=(2,), trials=1, seed=0, include_baselines=False)
        assert {"precision_007", "recall_007"} <= set(result.points[0].metrics)

    def test_fig05_single_sweep_shape(self):
        result = run_fig05_single(drop_rates=(5e-3,), trials=1, seed=0, include_baselines=False)
        assert result.points[0].parameters["drop_rate"] == 5e-3

    def test_fig06_noise_rows(self):
        result = run_fig06(
            noise_levels=(1e-6,), failed_link_counts=(1,), trials=1, seed=0, include_baselines=False
        )
        assert len(result.points) == 1

    def test_fig09_hot_tor_rows(self):
        result = run_fig09(skews=(0.5,), failed_link_counts=(1,), trials=1, seed=0)
        assert result.points[0].parameters["skew"] == 0.5

    def test_fig10_rows(self):
        result = run_fig10(drop_rates=(5e-3,), trials=1, seed=0, include_baselines=False)
        assert len(result.points) == 1

    def test_fig11_locations(self):
        result = run_fig11(drop_rates=(5e-3,), trials=1, seed=0)
        assert len(result.points) == 4

    def test_fig12_metrics_are_probabilities(self):
        result = run_fig12(failed_link_counts=(2,), trials=1, seed=0, include_baselines=False)
        point = result.points[0]
        for name in ("precision_007", "recall_007", "topk_recall_007"):
            assert 0.0 <= point.metrics[name] <= 1.0

    def test_sec67_rows(self):
        result = run_sec67(pod_counts=(2,), trials=1, seed=0, include_baselines=False, many_failures=0)
        assert len(result.points) == 1


class TestClusterAndProductionFigures:
    def test_fig13_gap_larger_for_higher_drop_rate(self):
        result = run_fig13(drop_rates=(1e-2, 5e-4), epochs=2, seed=0)
        gaps = result.metric_series("median_vote_gap")
        assert gaps[0] >= gaps[1]

    def test_sec72_accuracy_defined(self):
        result = run_sec72(epochs=2, seed=0)
        accuracy = result.points[0].metrics["per_connection_accuracy"]
        assert np.isnan(accuracy) or 0.0 <= accuracy <= 1.0

    def test_sec82_path_validation(self):
        result = run_sec82(epochs=2, seed=0)
        metrics = result.points[0].metrics
        if not np.isnan(metrics["path_match_rate"]):
            assert metrics["path_match_rate"] >= 0.9

    def test_sec83_reboots_diagnosed(self):
        result = run_sec83(epochs=3, seed=0)
        metrics = result.points[0].metrics
        assert metrics["total_reboots"] >= 0
        fractions = [
            metrics["frac_detections_host_tor"],
            metrics["frac_detections_tor_t1"],
            metrics["frac_detections_t1_t2"],
        ]
        assert all(0.0 <= f <= 1.0 for f in fractions)


class TestAblations:
    def test_vote_policy_rows(self):
        result = run_vote_policy_ablation(trials=1, seed=0, num_bad_links=2)
        assert {p.parameters["vote_policy"] for p in result.points} == {"inverse_hops", "unit"}

    def test_threshold_rows(self):
        result = run_threshold_ablation(thresholds=(0.01, 0.05), trials=1, seed=0, num_bad_links=2)
        assert len(result.points) == 2

    def test_adjustment_rows(self):
        result = run_adjustment_ablation(trials=1, seed=0, num_bad_links=2)
        assert {p.parameters["adjustment"] for p in result.points} == {"paths", "none"}
