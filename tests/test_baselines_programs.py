"""Unit tests for the binary and integer optimization programs."""

from __future__ import annotations

import pytest

from repro.baselines.binary_program import solve_binary_program
from repro.baselines.integer_program import solve_integer_program
from repro.routing.routing_matrix import build_routing_matrix
from repro.topology.elements import DirectedLink

A = DirectedLink("tor1", "t1")
B = DirectedLink("t1", "tor2")
C = DirectedLink("tor3", "t2")
D = DirectedLink("t2", "tor4")


class TestBinaryProgram:
    def test_exact_single_common_link(self):
        routing = build_routing_matrix([[A, B], [A, C], [A, D]])
        result = solve_binary_program(routing, exact=True)
        assert result.exact
        assert result.blamed_links == [A]
        assert result.objective == pytest.approx(1.0)

    def test_exact_two_disjoint_failures(self):
        routing = build_routing_matrix([[A, B], [C, D]])
        result = solve_binary_program(routing, exact=True)
        assert result.num_blamed == 2

    def test_greedy_fallback(self):
        routing = build_routing_matrix([[A, B], [A, C]])
        result = solve_binary_program(routing, exact=False)
        assert not result.exact
        assert result.blamed_links == [A]

    def test_empty_instance(self):
        routing = build_routing_matrix([])
        result = solve_binary_program(routing)
        assert result.blamed_links == []
        assert result.exact

    def test_exact_never_blames_more_than_greedy(self):
        rows = [[A, B], [B, C], [C, D], [A, D], [A, C]]
        routing = build_routing_matrix(rows)
        exact = solve_binary_program(routing, exact=True)
        greedy = solve_binary_program(routing, exact=False)
        assert exact.num_blamed <= greedy.num_blamed

    def test_cover_constraint_satisfied(self):
        rows = [[A, B], [B, C], [C, D]]
        routing = build_routing_matrix(rows)
        result = solve_binary_program(routing, exact=True)
        blamed = set(result.blamed_links)
        for row in rows:
            assert blamed & set(row)


class TestIntegerProgram:
    def test_exact_assigns_all_drops_to_common_link(self):
        routing = build_routing_matrix([[A, B], [A, C], [A, D]])
        counts = [2, 3, 1]
        result = solve_integer_program(routing, counts, exact=True)
        assert result.exact
        assert result.blamed_links[0] == A
        assert sum(result.drop_counts.values()) == pytest.approx(sum(counts))

    def test_ranking_orders_by_drops(self):
        routing = build_routing_matrix([[A, B], [C, D]])
        result = solve_integer_program(routing, [10, 1], exact=True)
        ranking = result.ranking()
        assert ranking[0][1] >= ranking[-1][1]
        top_links = {link for link, drops in ranking if drops > 0}
        assert top_links & {A, B}
        assert top_links & {C, D}

    def test_greedy_fallback_explains_all_drops(self):
        routing = build_routing_matrix([[A, B], [A, C], [C, D]])
        counts = [4, 2, 3]
        result = solve_integer_program(routing, counts, exact=False)
        assert not result.exact
        assert sum(result.drop_counts.values()) >= max(counts)
        assert result.num_blamed >= 1

    def test_count_length_mismatch_raises(self):
        routing = build_routing_matrix([[A, B]])
        with pytest.raises(ValueError):
            solve_integer_program(routing, [1, 2])

    def test_empty_instance(self):
        routing = build_routing_matrix([])
        result = solve_integer_program(routing, [])
        assert result.drop_counts == {}

    def test_uses_more_information_than_binary(self):
        # Two flows share link A but have very different retransmission counts;
        # the integer program must place the drop mass on links of the heavy flow.
        heavy = [A, B]
        light = [A, C]
        routing = build_routing_matrix([heavy, light])
        result = solve_integer_program(routing, [50, 1], exact=True)
        heavy_mass = sum(result.drop_counts.get(l, 0) for l in heavy)
        assert heavy_mass >= 50
