"""Unit tests for link ranking, per-flow attribution and noise classification."""

from __future__ import annotations

import pytest

from repro.core.noise import classify_noise_flows
from repro.core.ranking import (
    attribute_flow_cause,
    attribute_flow_causes,
    rank_links,
    rank_of_link,
    vote_gap,
)
from repro.core.votes import VoteTally
from repro.discovery.agent import DiscoveredPath
from repro.routing.fivetuple import FiveTuple
from repro.topology.elements import DirectedLink

BAD = DirectedLink("t1", "tor2")
GOOD_A = DirectedLink("h1", "tor1")
GOOD_B = DirectedLink("tor1", "t1")
GOOD_C = DirectedLink("tor2", "h2")


def _discovered(flow_id, links, retransmissions=1):
    return DiscoveredPath(
        flow_id=flow_id,
        five_tuple=FiveTuple("h1", "h2", 1000 + flow_id, 443),
        src_host="h1",
        dst_host="h2",
        links=links,
        complete=True,
        retransmissions=retransmissions,
    )


@pytest.fixture()
def tally():
    """Three flows sharing only the bad link, one unrelated noise flow."""
    tally = VoteTally()
    for flow_id in range(3):
        tally.add_flow(
            flow_id,
            [
                DirectedLink(f"h{flow_id}", f"tor{flow_id}"),
                DirectedLink(f"tor{flow_id}", "t1"),
                BAD,
                DirectedLink("tor2", f"hd{flow_id}"),
            ],
        )
    tally.add_flow(99, [DirectedLink("h9", "tor9"), DirectedLink("tor9", "h8")])
    return tally


class TestRanking:
    def test_bad_link_ranked_first(self, tally):
        ranked = rank_links(tally)
        assert ranked[0][0] == BAD

    def test_rank_of_link(self, tally):
        assert rank_of_link(tally, BAD) == 1
        assert rank_of_link(tally, DirectedLink("no", "votes")) is None

    def test_vote_gap_positive_for_dominant_bad_link(self, tally):
        assert vote_gap(tally, [BAD]) > 0

    def test_vote_gap_with_no_votes(self):
        assert vote_gap(VoteTally(), [BAD]) == 0.0

    def test_rank_cache_invalidated_by_new_votes(self, tally):
        # Regression guard for the cached position map behind rank_of_link:
        # adding votes after a rank query must refresh the cached ranking.
        assert rank_of_link(tally, GOOD_A) > 1
        for flow_id in range(100, 110):
            tally.add_flow(flow_id, [GOOD_A])
        assert rank_of_link(tally, GOOD_A) == 1

    def test_items_cache_returns_fresh_copies(self, tally):
        first = tally.items()
        first.clear()  # mutating the returned list must not corrupt the cache
        assert tally.items()[0][0] == BAD


class TestBlameResultContains:
    def test_contains_tracks_appended_links(self):
        # Regression guard for the cached membership set in BlameResult: the
        # set must follow detected_links as Algorithm 1 appends to it.
        from repro.core.blame import BlameResult

        result = BlameResult()
        assert BAD not in result
        result.detected_links.append(BAD)
        assert BAD in result
        result.detected_links.append(GOOD_A)
        assert GOOD_A in result and BAD in result


class TestAttribution:
    def test_attribute_single_flow(self, tally):
        assert attribute_flow_cause(tally, [GOOD_A, BAD, GOOD_C]) == BAD

    def test_attribute_empty_links_is_none(self, tally):
        assert attribute_flow_cause(tally, []) is None

    def test_attribute_tie_break_deterministic(self):
        tally = VoteTally()
        tally.add_flow(1, [GOOD_A, GOOD_B])
        first = attribute_flow_cause(tally, [GOOD_A, GOOD_B])
        assert first == min(GOOD_A, GOOD_B)

    def test_attribute_many_flows(self, tally):
        paths = [_discovered(1, [GOOD_A, BAD]), _discovered(2, [GOOD_B, BAD])]
        causes = attribute_flow_causes(tally, paths)
        assert causes == {1: BAD, 2: BAD}


class TestNoiseClassification:
    def test_flow_on_detected_link_is_failure(self):
        paths = [_discovered(1, [GOOD_A, BAD], retransmissions=1)]
        result = classify_noise_flows(paths, detected_links=[BAD])
        assert result.failure_flows == {1}
        assert result.num_noise == 0

    def test_lone_drop_off_bad_links_is_noise(self):
        paths = [_discovered(2, [GOOD_A, GOOD_B], retransmissions=1)]
        result = classify_noise_flows(paths, detected_links=[BAD])
        assert result.noise_flows == {2}

    def test_many_retransmissions_never_noise(self):
        paths = [_discovered(3, [GOOD_A, GOOD_B], retransmissions=5)]
        result = classify_noise_flows(paths, detected_links=[BAD])
        assert result.failure_flows == {3}

    def test_threshold_configurable(self):
        paths = [_discovered(4, [GOOD_A], retransmissions=2)]
        relaxed = classify_noise_flows(paths, [], max_noise_retransmissions=3)
        strict = classify_noise_flows(paths, [], max_noise_retransmissions=1)
        assert relaxed.noise_flows == {4}
        assert strict.failure_flows == {4}

    def test_empty_input(self):
        result = classify_noise_flows([], [])
        assert result.num_noise == 0 and result.num_failure == 0
