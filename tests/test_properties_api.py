"""Property-based tests: streamed ingestion is delivery-order independent.

Hypothesis drives random evidence workloads (random paths over a small link
pool, random retransmission splits, several epochs) through the streaming
service under random *chunkings*, *epoch interleavings* and full *event
permutations*, and checks that every materialized report is bit-identical to
the batch analysis of the same evidence — on both analysis engines.  The
sequence numbers carried by :class:`~repro.api.events.PathEvidence` are what
make this hold: the service re-establishes discovery order no matter how the
transport scrambled delivery.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.api import (  # noqa: E402
    Checkpoint,
    PathEvidence,
    RetransmissionEvidence,
    Zero07Service,
)
from repro.core.analysis import AnalysisAgent  # noqa: E402
from repro.discovery.agent import DiscoveredPath  # noqa: E402
from repro.routing.fivetuple import FiveTuple  # noqa: E402
from repro.testing import report_signature  # noqa: E402
from repro.topology.elements import DirectedLink  # noqa: E402

#: a small pool of directed links paths are drawn from.
LINKS = [DirectedLink(f"s{i}", f"s{i + 1}") for i in range(8)]

NUM_EPOCHS = 2


def make_path(flow_id: int, link_ids, retransmissions: int, epoch: int) -> DiscoveredPath:
    return DiscoveredPath(
        flow_id=flow_id,
        five_tuple=FiveTuple("10.0.0.1", "10.0.0.2", 1024 + flow_id, 443),
        src_host=f"h{flow_id % 3}",
        dst_host="h9",
        links=[LINKS[i] for i in link_ids],
        complete=True,
        retransmissions=retransmissions,
        epoch=epoch,
    )


#: one flow: a non-empty ordered set of link ids plus a retransmission count.
flows = st.tuples(
    st.lists(
        st.integers(min_value=0, max_value=len(LINKS) - 1),
        min_size=1,
        max_size=4,
        unique=True,
    ),
    st.integers(min_value=1, max_value=4),
)

workloads = st.lists(
    st.lists(flows, min_size=0, max_size=6),
    min_size=NUM_EPOCHS,
    max_size=NUM_EPOCHS,
)

engines = st.sampled_from(["arrays", "dicts"])
seeds = st.randoms(use_true_random=False)


def build_evidence(workload):
    """Expand a workload into (paths_by_epoch, evidence events without ticks).

    Each flow's retransmission count ``k`` is split into the initial path
    evidence (count 1) plus ``k - 1`` separate retransmission updates — the
    way a live monitoring agent would emit it.
    """
    paths_by_epoch = {}
    events = []
    for epoch, epoch_flows in enumerate(workload):
        paths = []
        for seq, (link_ids, retrans) in enumerate(epoch_flows):
            flow_id = 100 * epoch + seq
            paths.append(make_path(flow_id, link_ids, retrans, epoch))
            events.append(
                PathEvidence(
                    epoch=epoch,
                    seq=seq,
                    path=make_path(flow_id, link_ids, 1, epoch),
                )
            )
            for _ in range(retrans - 1):
                events.append(
                    RetransmissionEvidence(epoch=epoch, flow_id=flow_id)
                )
        paths_by_epoch[epoch] = paths
    return paths_by_epoch, events


@given(workload=workloads, engine=engines, rng=seeds, chunk=st.integers(1, 5))
def test_any_permutation_and_chunking_matches_batch(workload, engine, rng, chunk):
    """Shuffled + chunked delivery across interleaved epochs == batch reports."""
    paths_by_epoch, events = build_evidence(workload)
    rng.shuffle(events)  # full permutation, epochs interleaved arbitrarily

    service = Zero07Service(engine=engine)
    for start in range(0, len(events), chunk):
        service.ingest_batch(events[start : start + chunk])

    agent = AnalysisAgent(engine=engine)
    for epoch in range(NUM_EPOCHS):
        expected = agent.analyze_epoch(epoch, paths_by_epoch[epoch])
        assert report_signature(service.report(epoch)) == report_signature(expected)

    # ticking afterwards finalizes to the very same reports
    agent2 = AnalysisAgent(engine=engine)
    for epoch in range(NUM_EPOCHS):
        final = service.advance_epoch(epoch)
        expected = agent2.analyze_epoch(epoch, paths_by_epoch[epoch])
        assert report_signature(final) == report_signature(expected)


@given(
    workload=workloads,
    engine=engines,
    cuts=st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=5),
    query_epochs=st.lists(
        st.integers(0, NUM_EPOCHS - 1), min_size=5, max_size=5
    ),
    restore_index=st.integers(0, 4),
)
def test_interleaved_queries_equal_fresh_replay(
    workload, engine, cuts, query_epochs, restore_index
):
    """report() at arbitrary ingest cuts == a from-scratch replay's answer.

    The materialized blame view caches per-epoch reports behind a mutation
    watermark, so a service that answered queries mid-stream must stay
    bit-identical to one that never did — including a repeated (cache-hit)
    query at the same cut, and across a binary checkpoint/restore taken at a
    random cut.
    """
    _, events = build_evidence(workload)
    positions = sorted(min(cut, len(events)) for cut in cuts)
    service = Zero07Service(engine=engine)
    consumed = 0
    for i, position in enumerate(positions):
        service.ingest_batch(events[consumed:position])
        consumed = position
        epoch = query_epochs[i]
        replay = Zero07Service(engine=engine)
        replay.ingest_batch(events[:position])
        expected = report_signature(replay.report(epoch))
        assert report_signature(service.report(epoch)) == expected
        # a second query at the same cut hits the cached view — still exact
        assert report_signature(service.report(epoch)) == expected
        if i == restore_index % len(positions):
            service = Zero07Service.restore(
                Checkpoint.from_bytes(service.checkpoint().to_bytes())
            )
    service.ingest_batch(events[consumed:])
    replay = Zero07Service(engine=engine)
    replay.ingest_batch(events)
    for epoch in range(NUM_EPOCHS):
        assert report_signature(service.report(epoch)) == report_signature(
            replay.report(epoch)
        )


@given(workload=workloads, engine=engines)
def test_in_order_streaming_matches_batch(workload, engine):
    """The common case — ordered delivery, one event at a time — is exact too."""
    paths_by_epoch, events = build_evidence(workload)
    service = Zero07Service(engine=engine)
    for event in events:
        service.ingest(event)
    assert service.stats.out_of_order_events == 0
    agent = AnalysisAgent(engine=engine)
    for epoch in range(NUM_EPOCHS):
        expected = agent.analyze_epoch(epoch, paths_by_epoch[epoch])
        assert report_signature(service.report(epoch)) == report_signature(expected)
