"""Property test: every pack scenario is engine- and ingestion-agnostic.

For any shipped pack scenario and either blame engine, replaying the
scenario's recorded evidence stream into a fresh ``Zero07Service`` must
reproduce the live per-epoch reports bit for bit (streaming == batch).
This reuses the pack as a free corpus of realistic, adversarial
timelines (flaps, linecard failures, expansions, traffic shifts) for
the service-equivalence guarantee.
"""

from __future__ import annotations

import pathlib
from dataclasses import replace

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.api import EvidenceRecorder, Zero07Service
from repro.experiments.scenario import build_system
from repro.scenarios import load_pack
from repro.testing import report_signature

PACK_DIR = pathlib.Path(__file__).resolve().parent.parent / "scenarios"
PACK = load_pack(PACK_DIR)


@given(
    name=st.sampled_from(sorted(PACK)),
    engine=st.sampled_from(["arrays", "dicts"]),
)
@settings(max_examples=6)
def test_streaming_replay_matches_live_run(name, engine):
    scenario = PACK[name]
    config = replace(
        scenario.config, engine=engine, blame=replace(scenario.config.blame)
    )
    system, _ = build_system(config)
    recorder = EvidenceRecorder(system.service)
    reports = [report for _, report in system.run(config.epochs)]

    service = Zero07Service(
        blame_config=config.blame, engine=engine, retain_reports=config.epochs
    )
    service.ingest_batch(recorder.events)
    for epoch, report in enumerate(reports):
        assert report_signature(service.report(epoch)) == report_signature(report)
