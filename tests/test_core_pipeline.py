"""Integration-style tests of the end-to-end Zero07System pipeline."""

from __future__ import annotations

import pytest

from repro.core.blame import BlameConfig
from repro.core.pipeline import SystemConfig, Zero07System
from repro.netsim.failures import FailureInjector
from repro.netsim.links import LinkStateTable
from repro.netsim.simulator import SimulationConfig
from repro.netsim.traffic import UniformTraffic
from repro.topology.elements import LinkLevel


def _build_system(topology, link_table=None, rng=0, connections=20, use_slb=True):
    link_table = link_table or LinkStateTable(topology, rng=rng)
    traffic = UniformTraffic(topology, connections_per_host=connections, packets_per_flow=100)
    config = SystemConfig(
        use_slb=use_slb,
        simulation=SimulationConfig(simulate_setup_failures=False),
    )
    return Zero07System(topology, traffic, link_table, config, rng=rng), link_table


class TestPipelineConstruction:
    def test_components_wired(self, medium_topology):
        system, _ = _build_system(medium_topology)
        assert system.topology is medium_topology
        assert system.slb is not None
        assert system.path_discovery.config.max_traceroutes_per_host_per_second >= 1

    def test_no_slb_mode(self, medium_topology):
        system, _ = _build_system(medium_topology, use_slb=False)
        assert system.slb is None
        _, report = system.run_epoch(0)
        assert report is not None

    def test_ct_derived_from_theorem1_when_unset(self, medium_topology):
        system, _ = _build_system(medium_topology)
        from repro.theory.theorem1 import traceroute_rate_bound

        expected = max(1.0, traceroute_rate_bound(medium_topology.params, tmax=100))
        assert system.path_discovery.config.max_traceroutes_per_host_per_second == pytest.approx(expected)


class TestConfigIsolation:
    def test_shared_config_not_mutated(self, medium_topology):
        # Regression: the constructor used to assign epoch_duration_s into the
        # caller's SimulationConfig in place, so two systems sharing one config
        # cross-contaminated each other.
        shared_simulation = SimulationConfig(simulate_setup_failures=False)
        config = SystemConfig(epoch_duration_s=30.0, simulation=shared_simulation)
        traffic = UniformTraffic(medium_topology, connections_per_host=5, packets_per_flow=10)

        first = Zero07System(medium_topology, traffic, config=config, rng=0)
        config.epoch_duration_s = 60.0
        second = Zero07System(medium_topology, traffic, config=config, rng=0)

        assert first.config.epoch_duration_s == 30.0
        assert first.config.simulation.epoch_duration_s == 30.0
        assert second.config.simulation.epoch_duration_s == 60.0
        assert first.path_discovery.config.epoch_duration_s == 30.0
        assert second.path_discovery.config.epoch_duration_s == 60.0
        # the caller's objects are untouched
        assert shared_simulation.epoch_duration_s == 30.0
        assert config.simulation is shared_simulation

    def test_engine_switch_wired_through(self, medium_topology):
        traffic = UniformTraffic(medium_topology, connections_per_host=5, packets_per_flow=10)
        for engine in ("dicts", "arrays"):
            system = Zero07System(
                medium_topology, traffic, config=SystemConfig(engine=engine), rng=0
            )
            assert system.analysis.engine == engine


class TestHealthyNetwork:
    def test_no_failures_no_detections(self, medium_topology):
        link_table = LinkStateTable(medium_topology, noise_high=0.0, rng=0)
        system, _ = _build_system(medium_topology, link_table=link_table)
        sim_result, report = system.run_epoch(0)
        assert sim_result.total_drops == 0
        assert report.detected_links == []
        assert report.num_paths_analyzed == 0


class TestSingleFailureLocalization:
    def test_bad_link_is_top_ranked_and_detected(self, medium_topology):
        link_table = LinkStateTable(medium_topology, rng=1)
        injector = FailureInjector(medium_topology, link_table, rng=1)
        scenario = injector.inject_random_failures(
            1, drop_rate_range=(5e-3, 5e-3), levels=(LinkLevel.LEVEL1,)
        )
        bad_link = scenario.bad_links[0]
        system, _ = _build_system(medium_topology, link_table=link_table, rng=2, connections=30)
        _, report = system.run_epoch(0)
        assert report.ranked_links[0][0] == bad_link
        assert bad_link in report.detected_links

    def test_per_flow_attribution_matches_ground_truth(self, medium_topology):
        link_table = LinkStateTable(medium_topology, rng=3)
        injector = FailureInjector(medium_topology, link_table, rng=3)
        scenario = injector.inject_random_failures(
            1, drop_rate_range=(1e-2, 1e-2), levels=(LinkLevel.LEVEL1,)
        )
        bad_link = scenario.bad_links[0]
        system, _ = _build_system(medium_topology, link_table=link_table, rng=4, connections=30)
        sim_result, report = system.run_epoch(0)
        hit_flows = [
            f for f in sim_result.flows
            if f.has_retransmission and f.true_drop_link() == bad_link
        ]
        assert hit_flows, "the injected failure should affect some flows"
        correct = sum(
            1 for f in hit_flows if report.cause_of_flow(f.flow_id) == bad_link
        )
        assert correct / len(hit_flows) >= 0.8

    def test_icmp_budget_respected(self, medium_topology):
        link_table = LinkStateTable(medium_topology, rng=5)
        injector = FailureInjector(medium_topology, link_table, rng=5)
        injector.inject_random_failures(2, drop_rate_range=(1e-2, 1e-2))
        system, _ = _build_system(medium_topology, link_table=link_table, rng=6, connections=30)
        system.run_epoch(0)
        stats = system.icmp_limiter.usage_stats(total_seconds=30)
        assert stats.max_rate <= system.icmp_limiter.tmax


class TestMultiEpochOperation:
    def test_reports_per_epoch(self, medium_topology):
        link_table = LinkStateTable(medium_topology, rng=7)
        injector = FailureInjector(medium_topology, link_table, rng=7)
        injector.inject_random_failures(1, drop_rate_range=(5e-3, 5e-3))
        system, _ = _build_system(medium_topology, link_table=link_table, rng=8)
        runs = system.run(3)
        assert len(runs) == 3
        assert [report.epoch for _, report in runs] == [0, 1, 2]

    def test_monitoring_state_cleared_between_epochs(self, medium_topology):
        link_table = LinkStateTable(medium_topology, rng=9)
        injector = FailureInjector(medium_topology, link_table, rng=9)
        injector.inject_random_failures(1, drop_rate_range=(1e-2, 1e-2))
        system, _ = _build_system(medium_topology, link_table=link_table, rng=10)
        system.run(2)
        assert system.monitoring.paths_for_epoch(0) == []
        assert system.monitoring.paths_for_epoch(1) == []
