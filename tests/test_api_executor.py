"""Shard-executor battery: process backend equivalence, failure, teardown.

The process backend must be *observationally identical* to the inline
backend (and therefore to the unsharded service) — same reports mid-epoch
and finalized, same checkpoints, across engines and adversarial orderings.
On top of equivalence, the transport has liveness obligations: a dead worker
surfaces as :class:`ShardExecutorError` on the next executor call (never a
hang), ``close()`` is idempotent, and a coordinator killed by ``SIGINT``
leaves no orphan worker processes behind.

The routing-layer regressions ride along: the bounded host→shard LRU, the
bounded vectorized-router host table, and the segmented bulk scan that must
keep clean stretches on the bulk path around pending-involved events.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.api import (
    EpochTick,
    PathEvidence,
    ProcessExecutor,
    RetransmissionEvidence,
    ShardedService,
    ShardExecutorError,
    Zero07Service,
)
from repro.api.sharded import _HostShardLru
from repro.discovery.agent import DiscoveredPath
from repro.loadgen import EvidenceLoadGenerator, WorkloadProfile
from repro.routing.fivetuple import FiveTuple
from repro.testing import report_signature
from repro.topology.elements import DirectedLink

L = [DirectedLink(f"n{i}", f"n{i + 1}") for i in range(8)]


def make_path(flow_id, links, retransmissions=1, src_host="h0", epoch=0):
    return DiscoveredPath(
        flow_id=flow_id,
        five_tuple=FiveTuple("10.0.0.1", "10.0.0.2", 1024 + flow_id, 443),
        src_host=src_host,
        dst_host="h1",
        links=list(links),
        complete=True,
        retransmissions=retransmissions,
        epoch=epoch,
    )


def loadgen_events(epochs=2, **overrides):
    defaults = dict(
        fabric="tiny",
        profile=WorkloadProfile.skewed(repeat_fraction=0.25),
        seed=19,
        events_per_epoch=400,
    )
    defaults.update(overrides)
    return list(EvidenceLoadGenerator(**defaults).stream(epochs))


def run_reports(service, events, epochs):
    """Feed ``events`` batch-wise, collecting mid-epoch + finalized sigs."""
    signatures = []
    try:
        by_epoch: dict = {}
        for event in events:
            by_epoch.setdefault(event.epoch, []).append(event)
        for epoch in sorted(by_epoch):
            body = [e for e in by_epoch[epoch] if not isinstance(e, EpochTick)]
            half = len(body) // 2
            service.ingest_batch(body[:half])
            signatures.append(report_signature(service.report(epoch)))
            service.ingest_batch(body[half:])
            service.ingest(EpochTick(epoch))
            signatures.append(report_signature(service.report(epoch)))
    finally:
        close = getattr(service, "close", None)
        if close is not None:
            close()
    return signatures


class TestProcessBackendEquivalence:
    @pytest.mark.parametrize("engine", ["arrays", "dicts"])
    def test_matches_inline_and_unsharded_on_generated_load(self, engine):
        events = loadgen_events(epochs=2)
        single = run_reports(Zero07Service(engine=engine), list(events), 2)
        inline = run_reports(
            ShardedService(3, engine=engine, backend="inline"), list(events), 2
        )
        process = run_reports(
            ShardedService(3, engine=engine, backend="process"), list(events), 2
        )
        assert single == inline == process

    def test_matches_on_adversarial_orderings(self):
        """Duplicates, update-before-path, out-of-order seqs: the fast paths
        must fall back without diverging from the unsharded service."""
        paths = [
            PathEvidence(epoch=0, seq=i * 3, path=make_path(i, L[i % 4 : i % 4 + 3],
                                                            src_host=f"h{i % 5}"))
            for i in range(30)
        ]
        events = []
        events.append(RetransmissionEvidence(epoch=0, flow_id=4, retransmissions=2, seq=1))
        events.extend(paths[:10])
        events.append(RetransmissionEvidence(epoch=0, flow_id=2, retransmissions=1, seq=2))
        events.append(RetransmissionEvidence(epoch=0, flow_id=2, retransmissions=1, seq=2))
        events.extend(paths[10:20])
        events.append(paths[3])  # out-of-order duplicate re-trace
        events.extend(paths[20:])
        events.append(RetransmissionEvidence(epoch=0, flow_id=999, retransmissions=7, seq=5))
        events.append(EpochTick(0))
        single = run_reports(Zero07Service(), list(events), 1)
        process = run_reports(ShardedService(4, backend="process"), list(events), 1)
        assert single == process

    def test_workers_fewer_than_shards(self):
        events = loadgen_events(epochs=1)
        inline = run_reports(ShardedService(4, backend="inline"), list(events), 1)
        process = run_reports(
            ShardedService(4, backend="process", workers=2), list(events), 1
        )
        assert inline == process

    def test_checkpoint_round_trips_across_backends(self):
        events = [e for e in loadgen_events(epochs=1) if not isinstance(e, EpochTick)]
        with ShardedService(3, backend="process") as fleet:
            fleet.ingest_batch(events[: len(events) // 2])
            checkpoint = fleet.checkpoint()
            mid = report_signature(fleet.report(0))
        from repro.api import Checkpoint

        restored_json = Checkpoint.from_json(checkpoint.to_json())
        for backend in ("inline", "process"):
            restored = ShardedService.restore(restored_json, backend=backend)
            try:
                assert report_signature(restored.report(0)) == mid
                restored.ingest_batch(events[len(events) // 2 :])
                restored.ingest(EpochTick(0))
                final = report_signature(restored.report(0))
            finally:
                restored.close()
            if backend == "inline":
                reference = final
            else:
                assert final == reference


class TestWorkerFailure:
    def test_dead_worker_raises_instead_of_hanging(self):
        events = [e for e in loadgen_events(epochs=1) if not isinstance(e, EpochTick)]
        fleet = ShardedService(2, backend="process")
        try:
            fleet.ingest_batch(events[:100])
            executor = fleet.executor
            executor.ping()  # barrier: workers alive and caught up
            executor._processes[0].kill()
            executor._processes[0].join(timeout=10.0)
            deadline = time.monotonic() + 30.0
            with pytest.raises(ShardExecutorError):
                # the death may latch on the wire lane (broken pipe) or at
                # the sync reply; either way it must surface, promptly.
                while time.monotonic() < deadline:
                    fleet.ingest_batch(list(events[100:200]))
                    executor.ping()
            with pytest.raises(ShardExecutorError):
                fleet.checkpoint()
        finally:
            fleet.close()  # must not raise or hang after a worker death

    def test_restore_respawns_a_dead_process_fleet(self):
        """Checkpoint restore overwrites every shard's state, so a restore
        onto a fleet whose workers died must respawn the pipeline and come
        back bit-identical instead of staying wedged on the latched error."""
        events = [e for e in loadgen_events(epochs=1) if not isinstance(e, EpochTick)]
        half = len(events) // 2
        fleet = ShardedService(2, backend="process")
        try:
            fleet.ingest_batch(events[:half])
            checkpoint = fleet.checkpoint()
            mid = report_signature(fleet.report(0))
            executor = fleet.executor
            executor.ping()
            executor._processes[0].kill()
            executor._processes[0].join(timeout=10.0)
            deadline = time.monotonic() + 30.0
            with pytest.raises(ShardExecutorError):
                while time.monotonic() < deadline:
                    executor.ping()
                    time.sleep(0.05)
            executor.restore_shards(
                checkpoint.payload["shards"], checkpoint.columns
            )
            assert report_signature(fleet.report(0)) == mid
            fleet.ingest_batch(events[half:])  # the revived fleet keeps working
            fleet.ingest(EpochTick(0))
            final = report_signature(fleet.report(0))
        finally:
            fleet.close()
        single = Zero07Service()
        single.ingest_batch(list(events))
        single.ingest(EpochTick(0))
        assert final == report_signature(single.report(0))

    def test_restore_shards_after_close_raises(self):
        fleet = ShardedService(2, backend="process")
        checkpoint = fleet.checkpoint()
        fleet.close()
        with pytest.raises(ShardExecutorError):
            fleet.executor.restore_shards(checkpoint.payload["shards"], None)

    def test_calls_after_close_raise(self):
        fleet = ShardedService(2, backend="process")
        fleet.close()
        fleet.close()  # idempotent
        with pytest.raises(ShardExecutorError):
            fleet.executor.ping()
        with pytest.raises(ShardExecutorError):
            fleet.ingest_batch(
                [PathEvidence(epoch=0, seq=0, path=make_path(1, L[:2]))] * 600
            )

    def test_shard_service_access_raises_on_process_backend(self):
        with ShardedService(2, backend="process") as fleet:
            with pytest.raises(ShardExecutorError):
                fleet.shard(0)


class TestTeardown:
    def test_close_reaps_all_workers(self):
        fleet = ShardedService(3, backend="process")
        processes = list(fleet.executor._processes)
        assert all(p.is_alive() for p in processes)
        fleet.close()
        assert all(not p.is_alive() for p in processes)

    def test_sigint_on_coordinator_leaves_no_orphans(self, tmp_path):
        """SIGINT kills the coordinator; workers must exit on pipe EOF."""
        script = textwrap.dedent(
            """
            import signal, sys
            from repro.api import ShardedService

            fleet = ShardedService(2, backend="process", engine="arrays")
            print(" ".join(str(p.pid) for p in fleet.executor._processes),
                  flush=True)
            signal.pause()
            """
        )
        child = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            text=True,
        )
        try:
            pids = [int(p) for p in child.stdout.readline().split()]
            assert pids
            child.send_signal(signal.SIGINT)
            child.wait(timeout=30)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                alive = []
                for pid in pids:
                    try:
                        os.kill(pid, 0)
                        alive.append(pid)
                    except ProcessLookupError:
                        pass
                if not alive:
                    break
                time.sleep(0.2)
            assert not alive, f"orphaned shard workers: {alive}"
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()

    def test_executor_refuses_zero_workers(self):
        with pytest.raises(ValueError):
            ProcessExecutor(2, {}, workers=0)


class TestRoutingStateBounds:
    def test_host_shard_lru_caps_and_evicts_least_recent(self):
        lru = _HostShardLru(capacity=3)
        for i in range(3):
            lru.store(f"h{i}", i)
        assert lru.lookup("h0") == 0  # refresh h0
        lru.store("h3", 3)  # evicts h1, the least recently used
        assert len(lru) == 3
        assert "h1" not in lru
        assert "h0" in lru and "h3" in lru
        assert lru.lookup("h1") is None

    def test_facade_host_memo_stays_bounded_under_host_churn(self):
        fleet = ShardedService(2, backend="inline")
        fleet._shard_by_host = _HostShardLru(capacity=16)
        events = [
            PathEvidence(
                epoch=0, seq=i, path=make_path(i, L[:2], src_host=f"host-{i}")
            )
            for i in range(64)
        ]
        # small stretches keep the scanning path (and its memo) in play
        for i in range(0, 64, 16):
            fleet.ingest_batch(events[i : i + 16])
        assert len(fleet._shard_by_host) <= 16

    def test_vectorized_router_table_stays_bounded_under_host_churn(self):
        import repro.api.sharded as sharded

        fleet = ShardedService(2, backend="inline")
        single = Zero07Service()
        original = sharded._HOST_INDEX_MAX
        sharded._HOST_INDEX_MAX = 600
        try:
            for batch in range(3):
                events = [
                    PathEvidence(
                        epoch=0,
                        seq=batch * 1000 + i,
                        path=make_path(
                            batch * 1000 + i,
                            L[:2],
                            src_host=f"churn-{batch}-{i}",
                        ),
                    )
                    for i in range(600)
                ]
                fleet.ingest_batch(events)
                single.ingest_batch(events)
            assert len(fleet._host_index) <= 601
            assert report_signature(fleet.report(0)) == report_signature(
                single.report(0)
            )
        finally:
            sharded._HOST_INDEX_MAX = original


class TestSegmentedBulkScan:
    def test_pending_involved_events_do_not_break_the_whole_run(self):
        """One update-before-path pair must punt just itself to the per-event
        path; the surrounding clean events stay on the bulk path."""
        events = []
        for i in range(40):
            events.append(
                PathEvidence(
                    epoch=0, seq=2 * i, path=make_path(i, L[:3], src_host=f"h{i % 4}")
                )
            )
        # flow 555's update precedes its path: both are per-event territory
        events.insert(
            10,
            RetransmissionEvidence(epoch=0, flow_id=555, retransmissions=3, seq=999),
        )
        events.insert(
            20, PathEvidence(epoch=0, seq=1000, path=make_path(555, L[2:5]))
        )
        fleet = ShardedService(2, backend="inline")
        submitted = []
        original = fleet.executor.submit_event

        def spy(shard, event):
            submitted.append(event)
            return original(shard, event)

        fleet.executor.submit_event = spy
        fleet.ingest_batch(events)
        # the pending update, its path, and the synthesized drain — not the
        # ~40 clean events around them
        assert 0 < len(submitted) <= 4
        single = Zero07Service()
        single.ingest_batch(
            [e for e in events]
        )
        fleet.ingest(EpochTick(0))
        single.ingest(EpochTick(0))
        assert report_signature(fleet.report(0)) == report_signature(
            single.report(0)
        )
