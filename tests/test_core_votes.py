"""Unit tests for the voting scheme (VoteTally)."""

from __future__ import annotations

import pytest

from repro.core.votes import VoteTally
from repro.discovery.agent import DiscoveredPath
from repro.routing.fivetuple import FiveTuple
from repro.topology.elements import DirectedLink


def _links(*pairs):
    return [DirectedLink(a, b) for a, b in pairs]


def _discovered(flow_id, links, retransmissions=1):
    return DiscoveredPath(
        flow_id=flow_id,
        five_tuple=FiveTuple("src", "dst", 1000 + flow_id, 443),
        src_host="src",
        dst_host="dst",
        links=links,
        complete=True,
        retransmissions=retransmissions,
    )


class TestVoteValues:
    def test_inverse_hops_weight(self):
        tally = VoteTally()
        links = _links(("h", "tor"), ("tor", "t1"), ("t1", "tor2"), ("tor2", "h2"))
        contribution = tally.add_flow(1, links)
        assert contribution.weight == pytest.approx(0.25)
        for link in links:
            assert tally.votes_of(link) == pytest.approx(0.25)
        assert tally.total_votes() == pytest.approx(1.0)

    def test_unit_policy(self):
        tally = VoteTally(policy="unit")
        links = _links(("a", "b"), ("b", "c"))
        tally.add_flow(1, links)
        assert tally.votes_of(links[0]) == 1.0
        assert tally.total_votes() == 2.0

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            VoteTally(policy="bogus")

    def test_empty_link_list_raises(self):
        with pytest.raises(ValueError):
            VoteTally().add_flow(1, [])

    def test_votes_accumulate_across_flows(self):
        tally = VoteTally()
        shared = DirectedLink("tor", "t1")
        tally.add_flow(1, [shared, DirectedLink("t1", "x")])
        tally.add_flow(2, [shared, DirectedLink("t1", "y")])
        assert tally.votes_of(shared) == pytest.approx(1.0)

    def test_votes_of_unvoted_link_is_zero(self):
        assert VoteTally().votes_of(DirectedLink("a", "b")) == 0.0


class TestDiscoveredPathIngestion:
    def test_add_discovered_path(self):
        tally = VoteTally()
        path = _discovered(7, _links(("a", "b"), ("b", "c")), retransmissions=3)
        contribution = tally.add_discovered_path(path)
        assert contribution.flow_id == 7
        assert contribution.retransmissions == 3
        assert contribution.hop_count == 2

    def test_add_many(self):
        tally = VoteTally()
        paths = [_discovered(i, _links(("a", "b"))) for i in range(5)]
        tally.add_discovered_paths(paths)
        assert tally.num_flows == 5
        assert tally.votes_of(DirectedLink("a", "b")) == pytest.approx(5.0)


class TestQueries:
    def test_items_sorted_by_votes(self):
        tally = VoteTally()
        tally.add_flow(1, _links(("a", "b")))
        tally.add_flow(2, _links(("a", "b")))
        tally.add_flow(3, _links(("c", "d"), ("d", "e")))
        items = tally.items()
        assert items[0][0] == DirectedLink("a", "b")
        assert items[0][1] >= items[1][1] >= items[2][1]

    def test_top_and_max(self):
        tally = VoteTally()
        tally.add_flow(1, _links(("a", "b")))
        tally.add_flow(2, _links(("c", "d"), ("d", "e")))
        assert tally.max_link() == DirectedLink("a", "b")
        assert len(tally.top(2)) == 2

    def test_empty_tally(self):
        tally = VoteTally()
        assert tally.max_link() is None
        assert tally.items() == []
        assert tally.total_votes() == 0.0

    def test_copy_is_independent(self):
        tally = VoteTally()
        tally.add_flow(1, _links(("a", "b")))
        clone = tally.copy()
        clone.add_flow(2, _links(("a", "b")))
        assert tally.votes_of(DirectedLink("a", "b")) == pytest.approx(1.0)
        assert clone.votes_of(DirectedLink("a", "b")) == pytest.approx(2.0)
        assert clone.policy == tally.policy

    def test_contributions_preserved(self):
        tally = VoteTally()
        tally.add_flow(1, _links(("a", "b")))
        tally.add_flow(2, _links(("c", "d")))
        assert [c.flow_id for c in tally.contributions] == [1, 2]
