"""Unit tests for the theoretical bounds (Theorems 1 and 2)."""

from __future__ import annotations

import math

import pytest

from repro.theory.theorem1 import (
    level1_icmp_rate,
    level2_icmp_rate,
    traceroute_rate_bound,
    validates_tmax,
)
from repro.theory.theorem2 import (
    alpha,
    error_probability_bound,
    kl_divergence_bernoulli,
    max_detectable_bad_links,
    noise_tolerance_bound,
    retransmission_probability,
    theorem2_conditions_hold,
    vote_probability_bounds,
)
from repro.topology.clos import ClosParameters

PAPER_LIKE = ClosParameters(npod=2, n0=20, n1=8, n2=8, hosts_per_tor=20)


class TestTheorem1:
    def test_bound_formula(self):
        params = PAPER_LIKE
        ct = traceroute_rate_bound(params, tmax=100)
        level2_term = params.n2 * (params.n0 * params.npod - 1) / (
            params.n0 * (params.npod - 1)
        )
        expected = 100 / (params.n0 * params.hosts_per_tor) * min(params.n1, level2_term)
        assert ct == pytest.approx(expected)

    def test_bound_keeps_switches_under_tmax(self):
        params = PAPER_LIKE
        ct = traceroute_rate_bound(params, tmax=100)
        assert validates_tmax(params, ct, tmax=100)
        assert not validates_tmax(params, ct * 4, tmax=100)

    def test_single_pod_uses_level1_term(self):
        params = ClosParameters(npod=1, n0=10, n1=4, n2=2, hosts_per_tor=4)
        ct = traceroute_rate_bound(params, tmax=100)
        assert ct == pytest.approx(100 / (10 * 4) * 4)
        assert level2_icmp_rate(params, ct) == 0.0

    def test_bound_scales_with_tmax(self):
        assert traceroute_rate_bound(PAPER_LIKE, tmax=200) == pytest.approx(
            2 * traceroute_rate_bound(PAPER_LIKE, tmax=100)
        )

    def test_invalid_tmax_raises(self):
        with pytest.raises(ValueError):
            traceroute_rate_bound(PAPER_LIKE, tmax=0)

    def test_level_rates_positive(self):
        ct = traceroute_rate_bound(PAPER_LIKE, tmax=100)
        assert level1_icmp_rate(PAPER_LIKE, ct) > 0
        assert level2_icmp_rate(PAPER_LIKE, ct) > 0


class TestRetransmissionProbability:
    def test_zero_drop_rate(self):
        assert retransmission_probability(0.0, 100) == 0.0

    def test_full_drop_rate(self):
        assert retransmission_probability(1.0, 1) == 1.0

    def test_monotone_in_packets(self):
        assert retransmission_probability(0.01, 200) > retransmission_probability(0.01, 10)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            retransmission_probability(-0.1, 10)
        with pytest.raises(ValueError):
            retransmission_probability(0.1, -1)


class TestTheorem2Constants:
    def test_alpha_positive_in_regime(self):
        assert alpha(PAPER_LIKE, num_bad_links=5) > 0

    def test_alpha_requires_two_pods(self):
        with pytest.raises(ValueError):
            alpha(ClosParameters(npod=1), num_bad_links=1)

    def test_alpha_rejects_too_many_bad_links(self):
        params = ClosParameters(npod=2, n0=20, n1=4, n2=2, hosts_per_tor=2)
        too_many = int(max_detectable_bad_links(params)) + 5
        with pytest.raises(ValueError):
            alpha(params, num_bad_links=too_many)

    def test_max_detectable_bad_links_formula(self):
        params = PAPER_LIKE
        expected = params.n2 * (params.n0 * params.npod - 1) / (
            params.n0 * (params.npod - 1)
        )
        assert max_detectable_bad_links(params) == pytest.approx(expected)

    def test_noise_tolerance_decreases_with_more_packets(self):
        loose = noise_tolerance_bound(PAPER_LIKE, 5e-4, 5, 50, 50)
        tight = noise_tolerance_bound(PAPER_LIKE, 5e-4, 5, 50, 500)
        assert tight < loose

    def test_noise_tolerance_invalid_packet_bounds(self):
        with pytest.raises(ValueError):
            noise_tolerance_bound(PAPER_LIKE, 5e-4, 5, 100, 50)

    def test_conditions_hold_for_large_enough_pod_count(self):
        # The structural condition needs npod >= 1 + n0/n1; with n0=20, n1=8
        # that means at least 4 pods.
        params = ClosParameters(npod=4, n0=20, n1=8, n2=8, hosts_per_tor=20)
        assert theorem2_conditions_hold(params, num_bad_links=5)
        assert not theorem2_conditions_hold(PAPER_LIKE, num_bad_links=5)

    def test_conditions_fail_for_single_pod(self):
        assert not theorem2_conditions_hold(
            ClosParameters(npod=1, n0=10, n1=4, n2=2, hosts_per_tor=2), 1
        )

    def test_paper_example_noise_tolerance_order_of_magnitude(self):
        # Paper: with pb >= 0.05% the tolerated good-link drop rate is ~1.8e-6,
        # far above the ~1e-8 observed in production.  Exact values depend on
        # their (unpublished) nl/nu; we check the order of magnitude story:
        # tolerance must comfortably exceed 1e-8.
        tolerance = noise_tolerance_bound(PAPER_LIKE, 5e-4, 10, 10, 1000)
        assert tolerance > 1e-8


class TestVoteProbabilityBounds:
    def test_bad_bound_scales_with_retx_probability(self):
        low_vb, _ = vote_probability_bounds(PAPER_LIKE, 0.1, 1e-6, 5)
        high_vb, _ = vote_probability_bounds(PAPER_LIKE, 0.5, 1e-6, 5)
        assert high_vb > low_vb

    def test_good_upper_bound_grows_with_noise(self):
        _, low_vg = vote_probability_bounds(PAPER_LIKE, 0.1, 1e-6, 5)
        _, high_vg = vote_probability_bounds(PAPER_LIKE, 0.1, 1e-3, 5)
        assert high_vg > low_vg

    def test_requires_two_pods(self):
        with pytest.raises(ValueError):
            vote_probability_bounds(ClosParameters(npod=1), 0.1, 1e-6, 1)

    def test_separation_in_low_noise_regime(self):
        vb, vg = vote_probability_bounds(PAPER_LIKE, 0.2, 1e-7, 5)
        assert vb > vg


class TestKlAndErrorBound:
    def test_kl_zero_for_identical(self):
        assert kl_divergence_bernoulli(0.3, 0.3) == pytest.approx(0.0)

    def test_kl_positive_for_different(self):
        assert kl_divergence_bernoulli(0.2, 0.4) > 0

    def test_kl_symmetric_edge_cases(self):
        assert kl_divergence_bernoulli(0.0, 0.5) == pytest.approx(math.log(2))
        assert math.isinf(kl_divergence_bernoulli(0.5, 0.0))

    def test_kl_invalid_probability(self):
        with pytest.raises(ValueError):
            kl_divergence_bernoulli(1.5, 0.5)

    def test_error_bound_decreases_with_connections(self):
        few = error_probability_bound(1_000, 1e-5, 1e-3)
        many = error_probability_bound(100_000, 1e-5, 1e-3)
        assert many < few

    def test_error_bound_trivial_when_no_separation(self):
        assert error_probability_bound(10_000, 1e-3, 1e-3) == 1.0
        assert error_probability_bound(10_000, 2e-3, 1e-3) == 1.0

    def test_error_bound_capped_at_one(self):
        assert error_probability_bound(0, 1e-5, 1e-3) <= 1.0

    def test_invalid_delta_raises(self):
        with pytest.raises(ValueError):
            error_probability_bound(100, 1e-5, 1e-3, delta=2.0)

    def test_negative_connections_raise(self):
        with pytest.raises(ValueError):
            error_probability_bound(-1, 1e-5, 1e-3)
