"""Socket-transport equivalence tests for the fleet analyzer.

N agent clients stream interleaved slices of a deterministic workload at an
in-process analyzer over real TCP/Unix sockets; every final report must be
bit-identical to a single-process ``ingest_batch`` replay — across both
ingest cores, both engines, and the sharded service.  Backpressure,
heartbeats, mid-epoch queries and version rejection ride the same harness.
"""

from __future__ import annotations

import struct
import time

import pytest

from repro.api.service import Zero07Service
from repro.api.sharded import ShardedService
from repro.fleet import protocol
from repro.fleet.agent import FleetAgentClient
from repro.fleet.analyzer import (
    AnalyzerThread,
    ColumnarIngestCore,
    FleetAnalyzer,
    ServiceIngestCore,
)
from repro.fleet.protocol import Endpoint, FrameReader
from repro.fleet.runner import FleetQueryClient, build_generator, json_signature

EPOCHS = 2
EVENTS_PER_EPOCH = 1_200
SEED = 11
AGENTS = 2


def generator():
    return build_generator("tiny", "skewed", "none", SEED, EVENTS_PER_EPOCH)


def reference_signatures(epochs=EPOCHS):
    """Signatures of the uninterrupted single-process replay."""
    service = Zero07Service(engine="arrays", retain_reports=epochs)
    gen = generator()
    signatures = []
    for epoch in range(epochs):
        service.ingest_batch(gen.epoch_events(epoch, tick=True))
        signatures.append(json_signature(service.report(epoch)))
    return signatures


def send_all_slices(endpoint, agents=AGENTS, epochs=EPOCHS, **client_kw):
    """Each agent streams its contiguous slice of every epoch, then drains."""
    gen = generator()
    clients = [
        FleetAgentClient(
            f"t-{index}", endpoint, chunk_events=256, **client_kw
        )
        for index in range(agents)
    ]
    for client in clients:
        client.connect()
    for epoch in range(epochs):
        for index, client in enumerate(clients):
            client.send_run(epoch, gen.agent_events(epoch, index, agents))
        for client in clients:
            client.tick(epoch)
    for client in clients:
        client.drain()
        client.close()
    return clients


def wait_finalized(query_endpoint, last_epoch, timeout=30.0):
    deadline = time.monotonic() + timeout
    with FleetQueryClient(query_endpoint) as query:
        while True:
            stats = query.request({"cmd": "stats"})
            if stats["last_finalized"] == last_epoch:
                return stats
            assert time.monotonic() < deadline, "analyzer never finalized"
            time.sleep(0.02)


def query_signatures(query_endpoint, epochs=EPOCHS):
    with FleetQueryClient(query_endpoint) as query:
        return [
            query.request({"cmd": "report", "epoch": epoch})["report"][
                "signature"
            ]
            for epoch in range(epochs)
        ]


def make_core(kind):
    if kind == "columns":
        return ColumnarIngestCore(retain_reports=EPOCHS)
    if kind == "events-arrays":
        return ServiceIngestCore(
            Zero07Service(engine="arrays", retain_reports=EPOCHS)
        )
    if kind == "events-dicts":
        return ServiceIngestCore(
            Zero07Service(engine="dicts", retain_reports=EPOCHS)
        )
    if kind == "sharded":
        return ServiceIngestCore(
            ShardedService(num_shards=2, retain_reports=EPOCHS)
        )
    raise AssertionError(kind)


@pytest.fixture
def tcp_thread():
    def start(core, **analyzer_kw):
        analyzer = FleetAnalyzer(
            core, expected_agents=AGENTS, idle_timeout=60.0, **analyzer_kw
        )
        thread = AnalyzerThread(
            analyzer,
            Endpoint(kind="tcp", host="127.0.0.1", port=0),
            Endpoint(kind="tcp", host="127.0.0.1", port=0),
        )
        threads.append(thread)
        return thread

    threads = []
    yield start
    for thread in threads:
        thread.stop()


@pytest.mark.parametrize(
    "core_kind", ["columns", "events-arrays", "events-dicts", "sharded"]
)
def test_tcp_reports_bit_identical_to_replay(tcp_thread, core_kind):
    thread = tcp_thread(make_core(core_kind))
    send_all_slices(thread.endpoint)
    wait_finalized(thread.query_endpoint, EPOCHS - 1)
    assert query_signatures(thread.query_endpoint) == reference_signatures()
    stats = thread.analyzer.stats
    assert stats.protocol_errors == 0
    assert stats.chunks_flushed > 0
    assert stats.evidence_events == EPOCHS * EVENTS_PER_EPOCH


def test_unix_socket_reports_bit_identical_to_replay(tmp_path):
    analyzer = FleetAnalyzer(
        ColumnarIngestCore(retain_reports=EPOCHS),
        expected_agents=AGENTS,
        idle_timeout=60.0,
    )
    thread = AnalyzerThread(
        analyzer,
        Endpoint(kind="unix", path=str(tmp_path / "evidence.sock")),
        Endpoint(kind="tcp", host="127.0.0.1", port=0),
    )
    try:
        send_all_slices(thread.endpoint)
        wait_finalized(thread.query_endpoint, EPOCHS - 1)
        assert (
            query_signatures(thread.query_endpoint) == reference_signatures()
        )
    finally:
        thread.stop()


def test_columnar_core_never_fell_back_to_replay(tcp_thread):
    core = ColumnarIngestCore(retain_reports=EPOCHS)
    thread = tcp_thread(core)
    send_all_slices(thread.endpoint)
    wait_finalized(thread.query_endpoint, EPOCHS - 1)
    assert core.replayed_epochs == 0


def test_backpressure_engages_and_run_stays_bit_identical(tcp_thread):
    # a deliberately tiny staging bound: the second agent's out-of-order
    # slice must push staged bytes past it, defer acks, and still converge.
    thread = tcp_thread(
        ColumnarIngestCore(retain_reports=EPOCHS), stage_limit_bytes=4096
    )
    gen = generator()
    tail = FleetAgentClient("t-1", thread.endpoint, chunk_events=256)
    head = FleetAgentClient("t-0", thread.endpoint, chunk_events=256)
    tail.connect()
    head.connect()
    for epoch in range(EPOCHS):
        # the tail slice arrives first, so nothing can flush until the
        # head slice closes the sequence gap.
        tail.send_run(epoch, gen.agent_events(epoch, 1, AGENTS))
        head.send_run(epoch, gen.agent_events(epoch, 0, AGENTS))
        tail.tick(epoch)
        head.tick(epoch)
    for client in (tail, head):
        client.drain()
        client.close()
    stats = wait_finalized(thread.query_endpoint, EPOCHS - 1)
    assert stats["stats"]["backpressure_engagements"] >= 1
    assert stats["stats"]["acks_deferred"] >= 1
    assert query_signatures(thread.query_endpoint) == reference_signatures()


def test_heartbeat_is_echoed(tcp_thread):
    thread = tcp_thread(ColumnarIngestCore())
    client = FleetAgentClient("t-0", thread.endpoint)
    client.connect()
    client.heartbeat()
    deadline = time.monotonic() + 10.0
    with FleetQueryClient(thread.query_endpoint) as query:
        while True:
            stats = query.request({"cmd": "stats"})
            if stats["stats"]["heartbeats"] >= 1:
                break
            assert time.monotonic() < deadline
            time.sleep(0.02)
    client.close()


def test_mid_epoch_report_matches_partial_replay(tcp_thread):
    thread = tcp_thread(ColumnarIngestCore())
    gen = generator()
    events = gen.epoch_events(0, tick=False)
    partial = events[:700]
    client = FleetAgentClient("t-0", thread.endpoint, chunk_events=128)
    client.connect()
    client.send_run(0, partial)
    client.drain()
    with FleetQueryClient(thread.query_endpoint) as query:
        response = query.request({"cmd": "report", "epoch": 0})
    client.close()
    reference = Zero07Service(engine="arrays")
    reference.ingest_batch(partial)
    assert response["ok"] is True
    assert response["report"]["signature"] == json_signature(
        reference.report(0)
    )


def test_version_mismatch_is_rejected_naming_both_versions(tcp_thread):
    thread = tcp_thread(ColumnarIngestCore())
    sock = thread.endpoint.connect(timeout=10.0)
    try:
        body = b'{"agent_id":"old","epoch_watermark":-1}'
        payload = struct.pack("<4sH", protocol.FLEET_MAGIC, 99) + body
        sock.sendall(protocol.encode_frame(protocol.FRAME_HELLO, payload))
        reader = FrameReader()
        frames = []
        while not frames:
            data = sock.recv(1 << 16)
            if not data:
                break
            reader.feed(data)
            frames.extend(reader.frames())
        assert frames, "analyzer closed without an ERROR frame"
        frame_type, payload = frames[0]
        assert frame_type == protocol.FRAME_ERROR
        error = protocol.decode_error(payload)
        assert error.code == "version-mismatch"
        assert "v99" in str(error)
        assert f"v{protocol.FLEET_PROTOCOL_VERSION}" in str(error)
    finally:
        sock.close()
    deadline = time.monotonic() + 10.0
    while thread.analyzer.stats.protocol_errors < 1:
        assert time.monotonic() < deadline
        time.sleep(0.02)


def test_describe_reports_protocol_version_and_core(tcp_thread):
    thread = tcp_thread(ColumnarIngestCore())
    with FleetQueryClient(thread.query_endpoint) as query:
        description = query.request({"cmd": "describe"})["describe"]
    assert description["protocol_version"] == protocol.FLEET_PROTOCOL_VERSION
    assert description["mode"] == "columns"
    assert description["expected_agents"] == AGENTS
