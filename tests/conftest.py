"""Shared fixtures: small topologies and pre-wired substrates for fast tests."""

from __future__ import annotations

import os

import pytest

from repro.netsim.links import LinkStateTable
from repro.routing.ecmp import EcmpRouter
from repro.topology.clos import ClosParameters, ClosTopology

# ----------------------------------------------------------------------
# hypothesis profiles (property-based tests)
#
# "ci" is fully derandomized — every run replays the same example sequence,
# so the pipeline can never flake on a freshly generated edge case.  "dev"
# (the default) explores new examples locally but keeps the same budget.
# Select with HYPOTHESIS_PROFILE=ci.
# ----------------------------------------------------------------------
try:
    from hypothesis import HealthCheck, settings as _hyp_settings
except ImportError:  # pragma: no cover - hypothesis is optional
    pass
else:
    _common = dict(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    _hyp_settings.register_profile("ci", derandomize=True, **_common)
    _hyp_settings.register_profile("dev", **_common)
    _hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def small_params() -> ClosParameters:
    """A tiny two-pod Clos sizing used across the unit tests."""
    return ClosParameters(npod=2, n0=3, n1=2, n2=2, hosts_per_tor=2)


@pytest.fixture(scope="session")
def small_topology(small_params) -> ClosTopology:
    """A tiny two-pod Clos topology (12 hosts, 42 physical links)."""
    return ClosTopology(small_params)


@pytest.fixture()
def router(small_topology) -> EcmpRouter:
    """A deterministic ECMP router over the small topology."""
    return EcmpRouter(small_topology, rng=0)


@pytest.fixture()
def link_table(small_topology) -> LinkStateTable:
    """A fresh link-state table (noise only) over the small topology."""
    return LinkStateTable(small_topology, rng=0)


@pytest.fixture(scope="session")
def medium_topology() -> ClosTopology:
    """A slightly larger fabric for integration-style tests."""
    return ClosTopology(ClosParameters(npod=2, n0=6, n1=3, n2=3, hosts_per_tor=2))


# ``pair_of_hosts`` lives in ``repro.testing`` — importing helpers from a
# conftest module is rootdir-dependent and once made this suite collect
# ``benchmarks/conftest.py`` instead.  Keep conftest fixtures-only.
