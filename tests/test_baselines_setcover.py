"""Unit tests for the greedy MAX COVERAGE / Tomo baseline."""

from __future__ import annotations

import pytest

from repro.baselines.setcover import greedy_max_coverage
from repro.routing.routing_matrix import build_routing_matrix
from repro.topology.elements import DirectedLink

A = DirectedLink("tor1", "t1")
B = DirectedLink("t1", "tor2")
C = DirectedLink("tor3", "t2")
D = DirectedLink("t2", "tor4")


class TestGreedyMaxCoverage:
    def test_single_common_link_explains_all(self):
        routing = build_routing_matrix([[A, B], [A, C], [A, D]])
        assert greedy_max_coverage(routing) == [A]

    def test_appendix_b_example(self):
        # Figure 15: flows 1-2 and 3-2 fail, 1-3 does not; the shared link is blamed.
        shared = DirectedLink("n2", "n4")
        flow_12 = [DirectedLink("n1", "n2"), shared]
        flow_32 = [DirectedLink("n3", "n2"), shared]
        routing = build_routing_matrix([flow_12, flow_32])
        assert greedy_max_coverage(routing) == [shared]

    def test_disjoint_failures_need_two_links(self):
        routing = build_routing_matrix([[A, B], [C, D]])
        chosen = greedy_max_coverage(routing)
        assert len(chosen) == 2
        assert {A, B} & set(chosen)
        assert {C, D} & set(chosen)

    def test_every_flow_covered(self):
        rows = [[A, B], [B, C], [C, D], [A, D], [B, D]]
        routing = build_routing_matrix(rows)
        chosen = set(greedy_max_coverage(routing))
        for row in rows:
            assert chosen & set(row)

    def test_empty_matrix(self):
        routing = build_routing_matrix([])
        assert greedy_max_coverage(routing) == []

    def test_restricted_rows(self):
        routing = build_routing_matrix([[A, B], [C, D]])
        chosen = greedy_max_coverage(routing, failed_rows=[0])
        assert len(chosen) == 1
        assert chosen[0] in {A, B}

    def test_greedy_is_minimal_on_star_instance(self):
        # One hub link covers everything; greedy must not pick extra links.
        hub = DirectedLink("hub", "x")
        rows = [[hub, DirectedLink(f"a{i}", "hub")] for i in range(6)]
        routing = build_routing_matrix(rows)
        assert greedy_max_coverage(routing) == [hub]

    def test_deterministic_tie_break(self):
        routing_a = build_routing_matrix([[A, B]])
        routing_b = build_routing_matrix([[A, B]])
        assert greedy_max_coverage(routing_a) == greedy_max_coverage(routing_b)
