"""Schema/golden tests for the ``BENCH_service.json`` perf artifact.

The document format is the repo's perf trajectory; it must not drift
silently.  A tiny in-process bench run must produce a schema-valid document
with exactly the pinned key sets, strictly increasing epoch counters and
positive throughput — and the validator must reject every class of
corruption CI is meant to catch.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    BenchSchemaError,
    format_bench_table,
    run_service_bench,
    validate_bench_report,
    write_bench_report,
)
from repro.loadgen import WorkloadProfile

#: the golden key sets; changing them is a schema bump.
GOLDEN_TOP_KEYS = {
    "schema_version",
    "generated_by",
    "created_unix",
    "config",
    "environment",
    "runs",
}
GOLDEN_RUN_KEYS_V1 = {
    "service",
    "engine",
    "num_shards",
    "ingest",
    "per_event_baseline",
    "speedup_vs_per_event",
    "report_latency",
    "finalize",
    "checkpoint",
    "epochs",
    "peak_rss_kb",
}
#: version 2 added the executor dimension.
GOLDEN_RUN_KEYS = GOLDEN_RUN_KEYS_V1 | {
    "backend",
    "workers",
    "scaling_efficiency",
}

#: version 3 checkpoint block: binary container is the primary format,
#: JSON kept for comparison, plus delta metrics and compat proofs.
GOLDEN_CHECKPOINT_KEYS = {
    "save_seconds",
    "restore_seconds",
    "binary_bytes",
    "json_save_seconds",
    "json_restore_seconds",
    "json_bytes",
    "delta_bytes",
    "delta_save_seconds",
    "delta_restore_seconds",
    "restore_bit_identical",
    "v1_restore_bit_identical",
    "delta_bit_identical",
}

#: version 3 report latency separates the cold first-query cost from the
#: (cached) steady-state percentiles.
GOLDEN_REPORT_LATENCY_KEYS = {
    "queries",
    "mean_seconds",
    "p50_seconds",
    "max_seconds",
    "cold_mean_seconds",
    "cold_max_seconds",
}


@pytest.fixture(scope="module")
def tiny_document():
    config = BenchConfig(
        fabric="tiny",
        events=2_000,
        epochs=2,
        seed=3,
        profile=WorkloadProfile.uniform(),
        engines=("arrays",),
        shard_counts=(1, 2),
        backends=("inline", "process"),
        baseline_events=500,
        report_queries=1,
    )
    return run_service_bench(config)


def valid_fleet_block():
    """A hand-built fleet block shaped exactly like ``run_fleet_bench``'s."""
    return {
        "fabric": "medium",
        "events": 400_000,
        "epochs": 4,
        "agents": 4,
        "shards": 1,
        "mode": "columns",
        "transports": {
            name: {
                "events": 400_000,
                "seconds": 1.0,
                "events_per_sec": 400_000.0,
            }
            for name in ("tcp", "unix", "inproc")
        },
        "backpressure_engagements": 1,
        "reconnect": {
            "recovery_seconds": 0.04,
            "redelivered_events": 1024,
            "bit_identical": True,
        },
    }


def as_version_3(document):
    """The same document as a version-3 writer would have produced it."""
    v3 = copy.deepcopy(document)
    v3["schema_version"] = 3
    v3.pop("fleet", None)
    return v3


def as_version_2(document):
    """The same document as a version-2 writer would have produced it."""
    v2 = copy.deepcopy(document)
    v2["schema_version"] = 2
    v2["config"].pop("report_queries")
    for run in v2["runs"]:
        checkpoint = run["checkpoint"]
        run["checkpoint"] = {
            key: checkpoint[key]
            for key in (
                "save_seconds",
                "restore_seconds",
                "json_bytes",
                "restore_bit_identical",
            )
        }
        latency = run["report_latency"]
        run["report_latency"] = {
            key: latency[key]
            for key in ("queries", "mean_seconds", "p50_seconds", "max_seconds")
        }
    return v2


def as_version_1(document):
    """The same document as a version-1 writer would have produced it."""
    v1 = as_version_2(document)
    v1["schema_version"] = 1
    v1["config"].pop("backends")
    v1["runs"] = [
        run for run in v1["runs"] if run["backend"] == "inline"
    ]
    for run in v1["runs"]:
        for key in ("backend", "workers", "scaling_efficiency"):
            run.pop(key)
    return v1


class TestProducedDocument:
    def test_document_is_schema_valid_and_json_round_trips(self, tiny_document):
        validate_bench_report(tiny_document)
        round_tripped = json.loads(json.dumps(tiny_document))
        validate_bench_report(round_tripped)

    def test_golden_key_sets(self, tiny_document):
        assert set(tiny_document) == GOLDEN_TOP_KEYS
        assert tiny_document["schema_version"] == BENCH_SCHEMA_VERSION
        for run in tiny_document["runs"]:
            assert set(run) == GOLDEN_RUN_KEYS
            assert set(run["checkpoint"]) == GOLDEN_CHECKPOINT_KEYS
            assert set(run["report_latency"]) == GOLDEN_REPORT_LATENCY_KEYS

    def test_epoch_counters_are_monotonic_and_throughput_positive(
        self, tiny_document
    ):
        for run in tiny_document["runs"]:
            epochs = [entry["epoch"] for entry in run["epochs"]]
            assert epochs == sorted(set(epochs))
            assert run["ingest"]["events_per_sec"] > 0
            assert run["per_event_baseline"]["events_per_sec"] > 0
            assert run["speedup_vs_per_event"] > 0
            assert run["checkpoint"]["restore_bit_identical"] is True
            assert run["checkpoint"]["v1_restore_bit_identical"] is True
            assert run["checkpoint"]["delta_bit_identical"] is True
            assert 0 < run["checkpoint"]["binary_bytes"] < (
                run["checkpoint"]["json_bytes"]
            )

    def test_matrix_covers_requested_configurations(self, tiny_document):
        configs = {
            (run["engine"], run["backend"], run["num_shards"])
            for run in tiny_document["runs"]
        }
        # process-1 is skipped on purpose: one worker behind a pipe measures
        # only transport overhead; the 1-shard reference is the inline run.
        assert configs == {
            ("arrays", "inline", 1),
            ("arrays", "inline", 2),
            ("arrays", "process", 2),
        }
        for run in tiny_document["runs"]:
            expected = "single" if run["num_shards"] == 1 else "sharded"
            assert run["service"] == expected
            if run["backend"] == "inline":
                assert run["workers"] == 0
            else:
                assert run["workers"] >= 1

    def test_scaling_efficiency_is_normalized_to_the_inline_reference(
        self, tiny_document
    ):
        by_key = {
            (run["backend"], run["num_shards"]): run
            for run in tiny_document["runs"]
        }
        reference = by_key[("inline", 1)]["ingest"]["events_per_sec"]
        assert by_key[("inline", 1)]["scaling_efficiency"] == 1.0
        for (backend, shards), run in by_key.items():
            expected = (run["ingest"]["events_per_sec"] / reference) / shards
            assert run["scaling_efficiency"] == pytest.approx(expected)

    def test_write_and_artifacts(self, tiny_document, tmp_path):
        out = tmp_path / "BENCH_service.json"
        write_bench_report(tiny_document, out, artifacts_dir=tmp_path / "runs")
        validate_bench_report(json.loads(out.read_text()))
        artifacts = sorted(p.name for p in (tmp_path / "runs").iterdir())
        assert artifacts == [
            "bench_run_arrays_inline_shards1.json",
            "bench_run_arrays_inline_shards2.json",
            "bench_run_arrays_process_shards2.json",
        ]

    def test_format_table_mentions_every_run(self, tiny_document):
        table = format_bench_table(tiny_document)
        assert table.count("arrays") == len(tiny_document["runs"])


class TestOlderVersionCompatibility:
    def test_version_1_documents_stay_readable(self, tiny_document):
        validate_bench_report(as_version_1(tiny_document))

    def test_version_2_documents_stay_readable(self, tiny_document):
        validate_bench_report(as_version_2(tiny_document))

    def test_version_3_documents_stay_readable(self, tiny_document):
        validate_bench_report(as_version_3(tiny_document))

    def test_version_1_rejects_version_2_keys(self, tiny_document):
        v1 = as_version_1(tiny_document)
        v1["runs"][0]["backend"] = "inline"
        with pytest.raises(BenchSchemaError):
            validate_bench_report(v1)

    def test_version_3_requires_the_new_checkpoint_metrics(self, tiny_document):
        broken = copy.deepcopy(tiny_document)
        del broken["runs"][0]["checkpoint"]["binary_bytes"]
        with pytest.raises(BenchSchemaError):
            validate_bench_report(broken)

    def test_version_3_requires_the_cold_latency_metrics(self, tiny_document):
        broken = copy.deepcopy(tiny_document)
        del broken["runs"][0]["report_latency"]["cold_mean_seconds"]
        with pytest.raises(BenchSchemaError):
            validate_bench_report(broken)


class TestFleetBlock:
    """Version 4: the optional ``fleet`` socket-ingest block."""

    def corrupt(self, document, mutate):
        broken = copy.deepcopy(document)
        broken["fleet"] = valid_fleet_block()
        mutate(broken)
        with pytest.raises(BenchSchemaError):
            validate_bench_report(broken)

    def test_document_with_fleet_block_is_valid(self, tiny_document):
        document = copy.deepcopy(tiny_document)
        document["fleet"] = valid_fleet_block()
        validate_bench_report(document)

    def test_fleet_block_stays_optional(self, tiny_document):
        assert "fleet" not in tiny_document
        validate_bench_report(tiny_document)

    def test_version_3_documents_must_not_carry_a_fleet_block(
        self, tiny_document
    ):
        v3 = as_version_3(tiny_document)
        validate_bench_report(v3)  # without the block it reads fine ...
        v3["fleet"] = valid_fleet_block()
        with pytest.raises(BenchSchemaError):  # ... with it, it is drift
            validate_bench_report(v3)

    def test_rejects_missing_fleet_keys(self, tiny_document):
        self.corrupt(tiny_document, lambda d: d["fleet"].pop("transports"))
        self.corrupt(tiny_document, lambda d: d["fleet"].pop("reconnect"))

    def test_rejects_unknown_fleet_keys(self, tiny_document):
        self.corrupt(
            tiny_document, lambda d: d["fleet"].update(warp_factor=9)
        )

    def test_rejects_unknown_transport(self, tiny_document):
        def mutate(document):
            document["fleet"]["transports"]["pigeon"] = {
                "events": 1, "seconds": 1.0, "events_per_sec": 1.0
            }

        self.corrupt(tiny_document, mutate)

    def test_rejects_zero_transport_throughput(self, tiny_document):
        def mutate(document):
            document["fleet"]["transports"]["tcp"]["events_per_sec"] = 0.0

        self.corrupt(tiny_document, mutate)

    def test_rejects_non_identical_reconnect(self, tiny_document):
        def mutate(document):
            document["fleet"]["reconnect"]["bit_identical"] = False

        self.corrupt(tiny_document, mutate)

    def test_rejects_bad_mode_and_counts(self, tiny_document):
        self.corrupt(
            tiny_document, lambda d: d["fleet"].update(mode="quantum")
        )
        self.corrupt(tiny_document, lambda d: d["fleet"].update(agents=0))
        self.corrupt(
            tiny_document,
            lambda d: d["fleet"].update(backpressure_engagements=-1),
        )


class TestValidatorRejectsDrift:
    def corrupt(self, document, mutate):
        broken = copy.deepcopy(document)
        mutate(broken)
        with pytest.raises(BenchSchemaError):
            validate_bench_report(broken)

    def test_rejects_wrong_version(self, tiny_document):
        self.corrupt(tiny_document, lambda d: d.update(schema_version=99))

    def test_rejects_missing_top_level_key(self, tiny_document):
        self.corrupt(tiny_document, lambda d: d.pop("config"))

    def test_rejects_unknown_top_level_key(self, tiny_document):
        self.corrupt(tiny_document, lambda d: d.update(vibes="good"))

    def test_rejects_empty_runs(self, tiny_document):
        self.corrupt(tiny_document, lambda d: d.update(runs=[]))

    def test_rejects_non_monotonic_epochs(self, tiny_document):
        def mutate(document):
            document["runs"][0]["epochs"][0]["epoch"] = 5

        self.corrupt(tiny_document, mutate)

    def test_rejects_zero_throughput(self, tiny_document):
        def mutate(document):
            document["runs"][0]["ingest"]["events_per_sec"] = 0.0

        self.corrupt(tiny_document, mutate)

    def test_rejects_unknown_engine_and_run_keys(self, tiny_document):
        self.corrupt(
            tiny_document, lambda d: d["runs"][0].update(engine="quantum")
        )
        self.corrupt(
            tiny_document, lambda d: d["runs"][0].update(warp_factor=9)
        )

    def test_rejects_non_identical_restore(self, tiny_document):
        def mutate(document):
            document["runs"][0]["checkpoint"]["restore_bit_identical"] = False

        self.corrupt(tiny_document, mutate)

    def test_rejects_non_identical_v1_restore(self, tiny_document):
        def mutate(document):
            document["runs"][0]["checkpoint"]["v1_restore_bit_identical"] = False

        self.corrupt(tiny_document, mutate)

    def test_rejects_non_identical_delta_restore(self, tiny_document):
        def mutate(document):
            document["runs"][0]["checkpoint"]["delta_bit_identical"] = False

        self.corrupt(tiny_document, mutate)

    def test_rejects_duplicate_run_configuration(self, tiny_document):
        def mutate(document):
            document["runs"].append(copy.deepcopy(document["runs"][0]))

        self.corrupt(tiny_document, mutate)

    def test_rejects_unknown_backend(self, tiny_document):
        self.corrupt(
            tiny_document, lambda d: d["runs"][0].update(backend="carrier-pigeon")
        )

    def test_rejects_inline_run_recording_workers(self, tiny_document):
        def mutate(document):
            for run in document["runs"]:
                if run["backend"] == "inline":
                    run["workers"] = 2
                    return

        self.corrupt(tiny_document, mutate)

    def test_rejects_process_run_without_workers(self, tiny_document):
        def mutate(document):
            for run in document["runs"]:
                if run["backend"] == "process":
                    run["workers"] = 0
                    return

        self.corrupt(tiny_document, mutate)

    def test_rejects_single_service_on_process_backend(self, tiny_document):
        def mutate(document):
            for run in document["runs"]:
                if run["service"] == "single":
                    run["backend"] = "process"
                    run["workers"] = 1
                    return

        self.corrupt(tiny_document, mutate)

    def test_error_lists_every_violation(self, tiny_document):
        broken = copy.deepcopy(tiny_document)
        broken["schema_version"] = 99
        broken["runs"][0]["ingest"]["events_per_sec"] = -1
        with pytest.raises(BenchSchemaError) as excinfo:
            validate_bench_report(broken)
        assert len(excinfo.value.errors) >= 2
