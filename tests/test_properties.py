"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.setcover import greedy_max_coverage
from repro.core.blame import BlameConfig, find_problematic_links
from repro.core.ranking import attribute_flow_cause
from repro.core.votes import VoteTally
from repro.metrics.evaluation import detection_precision_recall, top_k_recall
from repro.routing.fivetuple import FiveTuple
from repro.routing.paths import Path
from repro.routing.routing_matrix import build_routing_matrix
from repro.theory.theorem2 import (
    error_probability_bound,
    kl_divergence_bernoulli,
    retransmission_probability,
)
from repro.topology.elements import DirectedLink, Link

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
node_names = st.text(alphabet="abcdefgh", min_size=1, max_size=4)
link_strategy = st.builds(
    DirectedLink,
    src=st.sampled_from([f"n{i}" for i in range(8)]),
    dst=st.sampled_from([f"m{i}" for i in range(8)]),
)
path_links_strategy = st.lists(link_strategy, min_size=1, max_size=6, unique=True)
ports = st.integers(min_value=0, max_value=65535)


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
class TestLinkProperties:
    @given(src=node_names, dst=node_names)
    def test_directed_link_reverse_is_involution(self, src, dst):
        link = DirectedLink(src, dst)
        assert link.reversed().reversed() == link

    @given(src=node_names, dst=node_names)
    def test_undirected_link_is_order_independent(self, src, dst):
        assert Link.of(src, dst) == Link.of(dst, src)

    @given(src=node_names, dst=node_names)
    def test_directions_share_the_physical_link(self, src, dst):
        physical = Link.of(src, dst)
        for direction in physical.directions():
            assert direction.undirected() == physical


class TestFiveTupleProperties:
    @given(src=node_names, dst=node_names, sport=ports, dport=ports)
    def test_reverse_is_involution(self, src, dst, sport, dport):
        flow = FiveTuple(src, dst, sport, dport)
        assert flow.reversed().reversed() == flow

    @given(src=node_names, dst=node_names, sport=ports, dport=ports, new_dst=node_names)
    def test_destination_rewrite_preserves_source(self, src, dst, sport, dport, new_dst):
        flow = FiveTuple(src, dst, sport, dport)
        rewritten = flow.with_destination(new_dst)
        assert rewritten.src_ip == src and rewritten.src_port == sport
        assert rewritten.dst_ip == new_dst


class TestPathProperties:
    @given(nodes=st.lists(st.sampled_from([f"x{i}" for i in range(10)]), min_size=2, max_size=7, unique=True))
    def test_from_nodes_roundtrip(self, nodes):
        path = Path.from_nodes(nodes)
        assert path.nodes() == list(nodes)
        assert path.hop_count == len(nodes) - 1

    @given(
        nodes=st.lists(st.sampled_from([f"x{i}" for i in range(10)]), min_size=3, max_size=7, unique=True),
        keep=st.integers(min_value=1, max_value=6),
    )
    def test_prefix_is_a_prefix(self, nodes, keep):
        path = Path.from_nodes(nodes)
        keep = min(keep, path.hop_count)
        prefix = path.prefix(keep)
        assert prefix.links == path.links[:keep]


# ----------------------------------------------------------------------
# voting and Algorithm 1
# ----------------------------------------------------------------------
class TestVotingProperties:
    @given(paths=st.lists(path_links_strategy, min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_total_votes_equals_number_of_flows(self, paths):
        """With 1/h votes every voting flow contributes exactly one vote in total."""
        tally = VoteTally()
        for flow_id, links in enumerate(paths):
            tally.add_flow(flow_id, links)
        assert math.isclose(tally.total_votes(), len(paths), rel_tol=1e-9)

    @given(paths=st.lists(path_links_strategy, min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_votes_are_nonnegative_and_ranking_sorted(self, paths):
        tally = VoteTally()
        for flow_id, links in enumerate(paths):
            tally.add_flow(flow_id, links)
        items = tally.items()
        assert all(votes >= 0 for _, votes in items)
        assert all(a[1] >= b[1] for a, b in zip(items, items[1:]))

    @given(paths=st.lists(path_links_strategy, min_size=1, max_size=15))
    @settings(max_examples=50)
    def test_attributed_cause_lies_on_the_flow_path(self, paths):
        tally = VoteTally()
        for flow_id, links in enumerate(paths):
            tally.add_flow(flow_id, links)
        for links in paths:
            cause = attribute_flow_cause(tally, links)
            assert cause in links

    @given(paths=st.lists(path_links_strategy, min_size=1, max_size=15))
    @settings(max_examples=50)
    def test_max_link_has_max_votes(self, paths):
        tally = VoteTally()
        for flow_id, links in enumerate(paths):
            tally.add_flow(flow_id, links)
        top = tally.max_link()
        assert tally.votes_of(top) == max(v for _, v in tally.items())


class TestBlameProperties:
    @given(
        paths=st.lists(path_links_strategy, min_size=1, max_size=20),
        threshold=st.floats(min_value=0.001, max_value=0.5),
    )
    @settings(max_examples=50)
    def test_detected_links_have_votes_above_threshold(self, paths, threshold):
        tally = VoteTally()
        for flow_id, links in enumerate(paths):
            tally.add_flow(flow_id, links)
        result = find_problematic_links(tally, BlameConfig(threshold_fraction=threshold))
        for link in result.detected_links:
            assert result.votes_at_detection[link] >= result.threshold_votes - 1e-12
        # No duplicates are ever reported.
        assert len(result.detected_links) == len(set(result.detected_links))

    @given(paths=st.lists(path_links_strategy, min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_detection_monotone_in_threshold(self, paths):
        tally = VoteTally()
        for flow_id, links in enumerate(paths):
            tally.add_flow(flow_id, links)
        low = find_problematic_links(tally, BlameConfig(threshold_fraction=0.01))
        high = find_problematic_links(tally, BlameConfig(threshold_fraction=0.3))
        assert len(high.detected_links) <= len(low.detected_links)


# ----------------------------------------------------------------------
# set cover and metrics
# ----------------------------------------------------------------------
class TestSetCoverProperties:
    @given(paths=st.lists(path_links_strategy, min_size=1, max_size=15))
    @settings(max_examples=50)
    def test_greedy_cover_explains_every_flow(self, paths):
        routing = build_routing_matrix(paths)
        chosen = set(greedy_max_coverage(routing))
        for links in paths:
            assert chosen & set(links)

    @given(paths=st.lists(path_links_strategy, min_size=1, max_size=15))
    @settings(max_examples=50)
    def test_greedy_cover_never_larger_than_flow_count(self, paths):
        routing = build_routing_matrix(paths)
        assert len(greedy_max_coverage(routing)) <= len(paths)


class TestMetricProperties:
    @given(
        detected=st.lists(link_strategy, max_size=8, unique=True),
        truth=st.lists(link_strategy, max_size=8, unique=True),
    )
    def test_precision_recall_bounds(self, detected, truth):
        score = detection_precision_recall(detected, truth)
        assert 0.0 <= score.precision <= 1.0
        assert 0.0 <= score.recall <= 1.0
        assert 0.0 <= score.f1 <= 1.0

    @given(
        ranked=st.lists(link_strategy, max_size=10, unique=True),
        truth=st.lists(link_strategy, max_size=6, unique=True),
    )
    def test_top_k_recall_bounds_and_monotone_in_k(self, ranked, truth):
        full = top_k_recall(ranked, truth, k=len(ranked))
        partial = top_k_recall(ranked, truth, k=max(1, len(ranked) // 2))
        assert 0.0 <= partial <= full <= 1.0


# ----------------------------------------------------------------------
# theory
# ----------------------------------------------------------------------
class TestTheoryProperties:
    @given(p=st.floats(min_value=0.0, max_value=1.0), c=st.integers(min_value=0, max_value=500))
    def test_retransmission_probability_in_unit_interval(self, p, c):
        value = retransmission_probability(p, c)
        assert 0.0 <= value <= 1.0

    @given(
        p=st.floats(min_value=1e-6, max_value=0.1),
        c1=st.integers(min_value=1, max_value=200),
        c2=st.integers(min_value=1, max_value=200),
    )
    def test_retransmission_probability_monotone_in_packets(self, p, c1, c2):
        low, high = sorted((c1, c2))
        assert retransmission_probability(p, low) <= retransmission_probability(p, high) + 1e-12

    @given(q=st.floats(min_value=0.01, max_value=0.99), r=st.floats(min_value=0.01, max_value=0.99))
    def test_kl_nonnegative(self, q, r):
        assert kl_divergence_bernoulli(q, r) >= -1e-12

    @given(
        n1=st.integers(min_value=10, max_value=10_000),
        n2=st.integers(min_value=10, max_value=10_000),
        vg=st.floats(min_value=1e-7, max_value=1e-4),
        ratio=st.floats(min_value=2.0, max_value=100.0),
    )
    @settings(max_examples=50)
    def test_error_bound_monotone_in_connections(self, n1, n2, vg, ratio):
        vb = min(0.5, vg * ratio)
        low, high = sorted((n1, n2))
        assert error_probability_bound(high, vg, vb) <= error_probability_bound(low, vg, vb) + 1e-12
