"""Unit tests for the ICMP rate limiter (Theorem 1's operational side)."""

from __future__ import annotations

import pytest

from repro.discovery.icmp import IcmpRateLimiter


class TestRateLimiting:
    def test_allows_up_to_tmax_per_second(self):
        limiter = IcmpRateLimiter(tmax_per_second=3)
        assert all(limiter.allow("sw", 0.0) for _ in range(3))
        assert not limiter.allow("sw", 0.5)  # same second, budget exhausted
        assert limiter.allow("sw", 1.0)  # next second, budget renewed

    def test_independent_per_switch(self):
        limiter = IcmpRateLimiter(tmax_per_second=1)
        assert limiter.allow("a", 0.0)
        assert limiter.allow("b", 0.0)
        assert not limiter.allow("a", 0.0)

    def test_counters(self):
        limiter = IcmpRateLimiter(tmax_per_second=1)
        limiter.allow("a", 0.0)
        limiter.allow("a", 0.0)
        assert limiter.granted == 1
        assert limiter.denied == 1

    def test_invalid_tmax_raises(self):
        with pytest.raises(ValueError):
            IcmpRateLimiter(tmax_per_second=0)

    def test_responses_of_switch(self):
        limiter = IcmpRateLimiter()
        for second in range(5):
            limiter.allow("sw", float(second))
        assert limiter.responses_of_switch("sw") == 5
        assert limiter.per_second_counts("sw") == [1, 1, 1, 1, 1]

    def test_reset(self):
        limiter = IcmpRateLimiter()
        limiter.allow("sw", 0.0)
        limiter.reset()
        assert limiter.granted == 0
        assert limiter.responses_of_switch("sw") == 0


class TestUsageStats:
    def test_no_switches(self):
        stats = IcmpRateLimiter().usage_stats(10)
        assert stats.fraction_zero == 1.0
        assert stats.num_samples == 0

    def test_distribution_fractions_sum_to_one(self):
        limiter = IcmpRateLimiter()
        limiter.register_switches(["a", "b"])
        for _ in range(2):
            limiter.allow("a", 0.0)
        for _ in range(5):
            limiter.allow("b", 1.0)
        stats = limiter.usage_stats(total_seconds=10)
        assert stats.num_samples == 20
        total = stats.fraction_zero + stats.fraction_low + stats.fraction_high
        assert total == pytest.approx(1.0)
        assert stats.max_rate == 5

    def test_low_vs_high_buckets(self):
        limiter = IcmpRateLimiter()
        limiter.register_switch("a")
        for _ in range(3):
            limiter.allow("a", 0.0)  # exactly 3 -> "low" bucket
        for _ in range(4):
            limiter.allow("a", 1.0)  # 4 -> "high" bucket
        stats = limiter.usage_stats(total_seconds=4)
        assert stats.fraction_low == pytest.approx(1 / 4)
        assert stats.fraction_high == pytest.approx(1 / 4)
        assert stats.fraction_zero == pytest.approx(2 / 4)

    def test_as_row_keys(self):
        limiter = IcmpRateLimiter()
        limiter.register_switch("a")
        row = limiter.usage_stats(1).as_row()
        assert set(row) == {"T = 0", "T > 0 & T <= 3", "T > 3", "max(T)"}

    def test_invalid_total_seconds_raises(self):
        with pytest.raises(ValueError):
            IcmpRateLimiter().usage_stats(0)
