"""Unit tests for the routing matrix builder and the BGP rerouter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.bgp import BgpRerouter
from repro.routing.paths import Path
from repro.routing.routing_matrix import build_routing_matrix
from repro.topology.elements import DirectedLink, Link


class TestRoutingMatrix:
    @pytest.fixture()
    def paths(self):
        return [
            Path.from_nodes(["h1", "tor1", "t1", "tor2", "h2"]),
            Path.from_nodes(["h3", "tor1", "t1", "tor2", "h4"]),
            Path.from_nodes(["h1", "tor1", "t2", "tor2", "h2"]),
        ]

    def test_shape(self, paths):
        routing = build_routing_matrix(paths)
        assert routing.num_flows == 3
        assert routing.matrix.shape == (3, routing.num_links)

    def test_entries_reflect_membership(self, paths):
        routing = build_routing_matrix(paths)
        col = routing.column_of(DirectedLink("tor1", "t1"))
        assert list(routing.matrix[:, col]) == [1, 1, 0]

    def test_links_of_flow(self, paths):
        routing = build_routing_matrix(paths)
        assert set(routing.links_of_flow(0)) == set(paths[0].links)

    def test_accepts_plain_link_sequences(self):
        links = [DirectedLink("a", "b"), DirectedLink("x", "y")]
        routing = build_routing_matrix([links])
        assert routing.num_flows == 1
        assert routing.matrix.sum() == 2

    def test_custom_flow_ids(self, paths):
        routing = build_routing_matrix(paths, flow_ids=["a", "b", "c"])
        assert routing.flow_ids == ["a", "b", "c"]

    def test_flow_id_length_mismatch_raises(self, paths):
        with pytest.raises(ValueError):
            build_routing_matrix(paths, flow_ids=[1])

    def test_fixed_column_order(self, paths):
        fixed = [DirectedLink("tor1", "t1"), DirectedLink("t1", "tor2")]
        routing = build_routing_matrix(paths, links=fixed)
        assert routing.links == fixed
        assert routing.num_links == 2

    def test_rows_have_hop_count_ones(self, paths):
        routing = build_routing_matrix(paths)
        assert list(routing.matrix.sum(axis=1)) == [p.hop_count for p in paths]


class TestBgpRerouter:
    def test_withdraw_and_predicate(self):
        rerouter = BgpRerouter()
        link = Link.of("tor1", "t1")
        rerouter.withdraw_link(link)
        assert rerouter.is_link_down(DirectedLink("tor1", "t1"))
        assert rerouter.is_link_down(DirectedLink("t1", "tor1"))

    def test_restore(self):
        rerouter = BgpRerouter()
        link = Link.of("tor1", "t1")
        rerouter.withdraw_link(link)
        rerouter.restore_link(link)
        assert not rerouter.is_link_down(DirectedLink("tor1", "t1"))

    def test_withdraw_directed_link_affects_physical(self):
        rerouter = BgpRerouter()
        rerouter.withdraw_link(DirectedLink("t1", "tor1"))
        assert Link.of("tor1", "t1") in rerouter.withdrawn_links

    def test_convergence_delay(self):
        rerouter = BgpRerouter(convergence_epochs=2)
        link = Link.of("a", "b")
        rerouter.withdraw_link(link)
        assert not rerouter.is_link_down(DirectedLink("a", "b"))
        rerouter.advance_epoch()
        assert not rerouter.is_link_down(DirectedLink("a", "b"))
        rerouter.advance_epoch()
        assert rerouter.is_link_down(DirectedLink("a", "b"))

    def test_negative_convergence_raises(self):
        with pytest.raises(ValueError):
            BgpRerouter(convergence_epochs=-1)

    def test_withdraw_many(self):
        rerouter = BgpRerouter()
        rerouter.withdraw_many([Link.of("a", "b"), Link.of("c", "d")])
        assert len(rerouter.withdrawn_links) == 2
