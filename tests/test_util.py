"""Unit tests for repro.util (RNG plumbing and statistics helpers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rng
from repro.util.stats import empirical_cdf, mean_confidence_interval, percentile


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=5)
        b = ensure_rng(42).integers(0, 1_000_000, size=5)
        assert list(a) == list(b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRng:
    def test_deterministic_for_seed(self):
        a = spawn_rng(7, 1).integers(0, 1_000_000, size=3)
        b = spawn_rng(7, 1).integers(0, 1_000_000, size=3)
        assert list(a) == list(b)

    def test_different_indices_differ(self):
        a = spawn_rng(7, 1).integers(0, 1_000_000, size=8)
        b = spawn_rng(7, 2).integers(0, 1_000_000, size=8)
        assert list(a) != list(b)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(0)
        child = spawn_rng(gen, 0)
        assert isinstance(child, np.random.Generator)


class TestEmpiricalCdf:
    def test_empty(self):
        x, f = empirical_cdf([])
        assert x.size == 0 and f.size == 0

    def test_sorted_and_normalised(self):
        x, f = empirical_cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert f[-1] == pytest.approx(1.0)
        assert f[0] == pytest.approx(1 / 3)

    def test_monotone(self):
        _, f = empirical_cdf(np.random.default_rng(0).normal(size=50))
        assert all(b >= a for a, b in zip(f, f[1:]))


class TestMeanConfidenceInterval:
    def test_empty_is_nan(self):
        mean, half = mean_confidence_interval([])
        assert np.isnan(mean) and np.isnan(half)

    def test_single_sample_zero_width(self):
        mean, half = mean_confidence_interval([5.0])
        assert mean == 5.0 and half == 0.0

    def test_width_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        small = mean_confidence_interval(rng.normal(size=10))[1]
        large = mean_confidence_interval(rng.normal(size=1000))[1]
        assert large < small


class TestPercentile:
    def test_empty_is_nan(self):
        assert np.isnan(percentile([], 50))

    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_extremes(self):
        data = list(range(101))
        assert percentile(data, 0) == 0.0
        assert percentile(data, 100) == 100.0
