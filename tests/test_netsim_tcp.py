"""Unit tests for the flow-level TCP transfer model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.links import LinkStateTable
from repro.netsim.tcp import (
    probability_of_retransmission,
    simulate_transfer,
    simulate_transfers_batch,
)
from repro.routing.paths import Path
from repro.topology.clos import ClosTopology
from repro.topology.elements import DirectedLink


@pytest.fixture(scope="module")
def fabric():
    topology = ClosTopology(npod=1, n0=2, n1=2, n2=1, hosts_per_tor=2)
    table = LinkStateTable(topology, noise_high=0.0, rng=0)
    hosts = sorted(topology.hosts)
    src, dst = hosts[0], hosts[2]
    tor_src = topology.host(src).tor
    tor_dst = topology.host(dst).tor
    t1 = topology.tier1s(0)[0].name
    path = Path.from_nodes([src, tor_src, t1, tor_dst, dst])
    return topology, table, path


class TestLosslessTransfer:
    def test_all_packets_delivered(self, fabric):
        _, table, path = fabric
        result = simulate_transfer(path, 100, table, rng=0)
        assert result.packets_delivered == 100
        assert result.retransmissions == 0
        assert not result.has_retransmission
        assert not result.connection_failed
        assert result.dominant_drop_link() is None

    def test_zero_packets(self, fabric):
        _, table, path = fabric
        result = simulate_transfer(path, 0, table, rng=0)
        assert result.packets_delivered == 0
        assert result.retransmissions == 0

    def test_negative_packets_raise(self, fabric):
        _, table, path = fabric
        with pytest.raises(ValueError):
            simulate_transfer(path, -1, table)

    def test_invalid_rounds_raise(self, fabric):
        _, table, path = fabric
        with pytest.raises(ValueError):
            simulate_transfer(path, 10, table, max_rounds=0)


class TestLossyTransfer:
    def test_blackhole_drops_everything_on_first_link(self, fabric):
        _, table, path = fabric
        table.reset_noise(rng=0)
        table.inject_failure(path.links[0], 1.0)
        result = simulate_transfer(path, 50, table, rng=0, max_rounds=2)
        assert result.packets_delivered == 0
        assert result.connection_failed
        assert result.drops_by_link[path.links[0]] == 100  # 2 rounds x 50 packets
        table.reset_noise(rng=0)

    def test_drops_attributed_to_lossy_link(self, fabric):
        _, table, path = fabric
        table.reset_noise(rng=0)
        lossy = path.links[1]
        table.inject_failure(lossy, 0.2)
        result = simulate_transfer(path, 200, table, rng=1)
        assert result.has_retransmission
        assert result.dominant_drop_link() == lossy
        assert result.drops_by_link[lossy] > 0
        table.reset_noise(rng=0)

    def test_retransmissions_equal_total_drops(self, fabric):
        _, table, path = fabric
        table.reset_noise(rng=0)
        table.inject_failure(path.links[1], 0.1)
        result = simulate_transfer(path, 100, table, rng=2)
        assert result.retransmissions == result.total_drops
        table.reset_noise(rng=0)

    def test_delivery_plus_loss_conservation(self, fabric):
        _, table, path = fabric
        table.reset_noise(rng=0)
        table.inject_failure(path.links[2], 0.5)
        result = simulate_transfer(path, 100, table, rng=3, max_rounds=3)
        assert result.packets_delivered + result.packets_lost == 100
        table.reset_noise(rng=0)

    def test_more_rounds_deliver_more(self, fabric):
        _, table, path = fabric
        table.reset_noise(rng=0)
        table.inject_failure(path.links[0], 0.5)
        one_round = simulate_transfer(path, 200, table, rng=4, max_rounds=1)
        many_rounds = simulate_transfer(path, 200, table, rng=4, max_rounds=5)
        assert many_rounds.packets_delivered >= one_round.packets_delivered
        table.reset_noise(rng=0)

    def test_dominant_link_tie_break_is_deterministic(self):
        topology = ClosTopology(npod=1, n0=2, n1=1, n2=1, hosts_per_tor=1)
        table = LinkStateTable(topology, noise_high=0.0, rng=0)
        hosts = sorted(topology.hosts)
        path = Path.from_nodes(
            [hosts[0], topology.host(hosts[0]).tor, topology.tier1s(0)[0].name,
             topology.host(hosts[1]).tor, hosts[1]]
        )
        from repro.netsim.tcp import TransferResult

        result = TransferResult(
            num_packets=2,
            packets_delivered=0,
            packets_lost=2,
            retransmissions=2,
            drops_by_link={path.links[0]: 1, path.links[1]: 1},
        )
        assert result.dominant_drop_link() == min(path.links[0], path.links[1])


class TestBatchedTransfer:
    def test_empty_batch(self, fabric):
        _, table, _ = fabric
        assert simulate_transfers_batch([], [], table, rng=0) == []

    def test_mismatched_lengths_raise(self, fabric):
        _, table, path = fabric
        with pytest.raises(ValueError):
            simulate_transfers_batch([path], [10, 20], table)

    def test_negative_packets_raise(self, fabric):
        _, table, path = fabric
        with pytest.raises(ValueError):
            simulate_transfers_batch([path], [-1], table)

    def test_lossless_batch_delivers_everything(self, fabric):
        _, table, path = fabric
        table.reset_noise(rng=0)
        results = simulate_transfers_batch([path] * 10, 100, table, rng=0)
        assert all(r.packets_delivered == 100 for r in results)
        assert all(not r.has_retransmission for r in results)

    def test_scalar_packet_count_broadcasts(self, fabric):
        _, table, path = fabric
        results = simulate_transfers_batch([path, path, path], 25, table, rng=0)
        assert [r.num_packets for r in results] == [25, 25, 25]

    def test_conservation_per_flow(self, fabric):
        _, table, path = fabric
        table.reset_noise(rng=0)
        table.inject_failure(path.links[1], 0.3)
        results = simulate_transfers_batch([path] * 50, 100, table, rng=1, max_rounds=3)
        for r in results:
            assert r.packets_delivered + r.packets_lost == 100
            assert r.retransmissions == r.total_drops
        table.reset_noise(rng=0)

    def test_blackhole_fails_every_flow(self, fabric):
        _, table, path = fabric
        table.reset_noise(rng=0)
        table.inject_failure(path.links[0], 1.0)
        results = simulate_transfers_batch([path] * 5, [40] * 5, table, rng=0, max_rounds=2)
        for r in results:
            assert r.connection_failed
            assert r.drops_by_link[path.links[0]] == 80  # 2 rounds x 40 packets
        table.reset_noise(rng=0)

    def test_mixed_path_lengths(self, fabric):
        topology, table, long_path = fabric
        hosts = sorted(topology.hosts)
        short_path = Path.from_nodes([hosts[0], topology.host(hosts[0]).tor, hosts[1]])
        table.reset_noise(rng=0)
        table.inject_failure(long_path.links[1], 0.5)
        results = simulate_transfers_batch(
            [short_path, long_path], [30, 30], table, rng=2
        )
        assert results[0].packets_delivered == 30  # short path is clean
        assert set(results[1].drops_by_link) <= set(long_path.links)
        table.reset_noise(rng=0)

    def test_distribution_matches_scalar_model(self, fabric):
        """Batch and scalar sampling draw from the same distribution."""
        _, table, path = fabric
        table.reset_noise(rng=0)
        table.inject_failure(path.links[1], 0.05)
        rng = np.random.default_rng(7)
        batch = simulate_transfers_batch([path] * 400, 100, table, rng=rng)
        rng = np.random.default_rng(8)
        scalar = [simulate_transfer(path, 100, table, rng=rng) for _ in range(400)]
        batch_mean = np.mean([r.retransmissions for r in batch])
        scalar_mean = np.mean([r.retransmissions for r in scalar])
        # ~5 expected drops per flow; sample means over 400 flows are tight.
        assert abs(batch_mean - scalar_mean) < 1.0
        table.reset_noise(rng=0)


class TestAnalyticProbability:
    def test_zero_packets_zero_probability(self, fabric):
        _, table, path = fabric
        assert probability_of_retransmission(path, 0, table) == 0.0

    def test_blackhole_gives_one(self, fabric):
        _, table, path = fabric
        table.reset_noise(rng=0)
        table.inject_failure(path.links[0], 1.0)
        assert probability_of_retransmission(path, 1, table) == 1.0
        table.reset_noise(rng=0)

    def test_matches_monte_carlo(self, fabric):
        _, table, path = fabric
        table.reset_noise(rng=0)
        table.inject_failure(path.links[1], 0.01)
        analytic = probability_of_retransmission(path, 100, table)
        rng = np.random.default_rng(0)
        hits = sum(
            simulate_transfer(path, 100, table, rng=rng).has_retransmission
            for _ in range(300)
        )
        assert abs(hits / 300 - analytic) < 0.12
        table.reset_noise(rng=0)
