"""Unit tests for the Everflow-like ground-truth capture."""

from __future__ import annotations

import pytest

from repro.baselines.everflow import EverflowCapture
from repro.netsim.flows import FlowRecord
from repro.netsim.tcp import TransferResult
from repro.routing.fivetuple import FiveTuple
from repro.routing.paths import Path


def _flow(flow_id, src="h1", dst="h2", drops=0):
    path = Path.from_nodes([src, "tor1", "t1", "tor2", dst])
    drops_by_link = {path.links[1]: drops} if drops else {}
    result = TransferResult(
        num_packets=10,
        packets_delivered=10 - min(drops, 10),
        packets_lost=0,
        retransmissions=drops,
        drops_by_link=drops_by_link,
    )
    return FlowRecord(
        flow_id=flow_id,
        epoch=0,
        five_tuple=FiveTuple(src, dst, 1000 + flow_id, 443),
        src_host=src,
        dst_host=dst,
        path=path,
        result=result,
    )


class TestEverflowCapture:
    def test_captures_only_enabled_hosts(self):
        capture = EverflowCapture(enabled_hosts=["h1"])
        capture.capture_epoch([_flow(1, src="h1"), _flow(2, src="h9")])
        assert capture.is_captured(1)
        assert not capture.is_captured(2)
        assert capture.captured_flows == 1

    def test_capture_everything_when_unrestricted(self):
        capture = EverflowCapture()
        capture.capture_epoch([_flow(1), _flow(2, src="h9")])
        assert capture.captured_flows == 2

    def test_drop_link_reported(self):
        capture = EverflowCapture()
        flow = _flow(1, drops=3)
        capture.capture_epoch([flow])
        assert capture.drop_link_of(1) == flow.path.links[1]
        assert capture.flows_with_drops() == [1]

    def test_no_drop_returns_none(self):
        capture = EverflowCapture()
        capture.capture_epoch([_flow(1, drops=0)])
        assert capture.drop_link_of(1) is None
        assert capture.flows_with_drops() == []

    def test_path_of_captured_flow(self):
        capture = EverflowCapture()
        flow = _flow(1)
        capture.capture_epoch([flow])
        assert capture.path_of(1) == flow.path
        assert capture.path_of(42) is None
