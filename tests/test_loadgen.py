"""Tests for the synthetic evidence load generator (``repro.loadgen``)."""

from __future__ import annotations

import pytest

from repro.api import EpochTick, PathEvidence, RetransmissionEvidence, Zero07Service
from repro.loadgen import (
    FABRIC_PRESETS,
    EvidenceLoadGenerator,
    WorkloadProfile,
    fabric_parameters,
)
from repro.netsim.script import ScenarioScript
from repro.topology.clos import ClosParameters, ClosTopology
from repro.topology.elements import LinkLevel, SwitchTier


def make_generator(**overrides):
    defaults = dict(
        fabric="tiny",
        profile=WorkloadProfile.skewed(hot_tor_fraction=0.3),
        seed=7,
        events_per_epoch=400,
    )
    defaults.update(overrides)
    return EvidenceLoadGenerator(**defaults)


class TestProfilesAndPresets:
    def test_fabric_parameters_resolves_presets_and_passthrough(self):
        assert fabric_parameters("medium") == FABRIC_PRESETS["medium"]
        custom = ClosParameters(npod=2, n0=2, n1=2, n2=2, hosts_per_tor=1)
        assert fabric_parameters(custom) is custom
        with pytest.raises(ValueError, match="unknown fabric preset"):
            fabric_parameters("galactic")

    def test_named_profiles(self):
        assert WorkloadProfile.named("uniform").popularity == "uniform"
        assert WorkloadProfile.named("skewed").popularity == "zipf"
        assert WorkloadProfile.named("hot-tor").hot_tor_fraction > 0
        with pytest.raises(ValueError, match="unknown workload profile"):
            WorkloadProfile.named("bursty")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(popularity="pareto"),
            dict(hot_tor_fraction=1.5),
            dict(bad_path_fraction=-0.1),
            dict(repeat_fraction=1.0),
            dict(num_bad_links=-1),
            dict(max_initial_retransmissions=0),
            dict(max_extra_retransmissions=0),
        ],
    )
    def test_profile_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadProfile(**kwargs)


class TestStreamShape:
    def test_deterministic_per_seed_and_epoch(self):
        a = make_generator().epoch_events(3)
        b = make_generator().epoch_events(3)
        assert a == b
        # epoch k is independent of which epochs were generated before it
        generator = make_generator()
        generator.epoch_events(0)
        assert generator.epoch_events(3) == a
        assert make_generator(seed=8).epoch_events(3) != a

    def test_sequence_numbers_are_dense_and_ordered(self):
        events = make_generator().epoch_events(0)
        assert isinstance(events[-1], EpochTick)
        seqs = [e.seq for e in events[:-1]]
        assert seqs == list(range(len(seqs)))

    def test_event_mix_matches_profile(self):
        profile = WorkloadProfile(repeat_fraction=0.25)
        events = make_generator(profile=profile, events_per_epoch=1000).epoch_events(
            0, tick=False
        )
        repeats = sum(1 for e in events if isinstance(e, RetransmissionEvidence))
        assert repeats == 250
        # every repeat targets a flow whose path evidence came earlier
        seen = set()
        for event in events:
            if isinstance(event, PathEvidence):
                seen.add(event.path.flow_id)
            else:
                assert event.flow_id in seen

    def test_paths_are_fabric_valid_ecmp_walks(self):
        generator = make_generator(fabric="small", events_per_epoch=600)
        topology = ClosTopology(generator.params)
        valid = {(l.src, l.dst) for l in topology.directed_links()}
        for event in generator.epoch_events(0, tick=False):
            if not isinstance(event, PathEvidence):
                continue
            path = event.path
            assert path.links, "paths must carry at least one link"
            assert path.links[0].src == path.src_host
            assert path.links[-1].dst == path.dst_host
            previous = None
            for link in path.links:
                assert (link.src, link.dst) in valid
                if previous is not None:
                    assert previous.dst == link.src
                previous = link
            assert len(path.links) in (2, 4, 6)

    def test_evidence_concentrates_on_bad_links(self):
        generator = make_generator(
            fabric="small",
            profile=WorkloadProfile(bad_path_fraction=0.5, repeat_fraction=0.0),
            events_per_epoch=800,
        )
        bad = set(generator.bad_links_for_epoch(0))
        assert bad
        through_bad = sum(
            1
            for e in generator.epoch_events(0, tick=False)
            if any(link in bad for link in e.path.links)
        )
        # at least the forced fraction crosses a bad link (random paths add more)
        assert through_bad >= 0.45 * 800

    def test_stream_is_lazy_and_ticks_every_epoch(self):
        generator = make_generator(events_per_epoch=50)
        events = list(generator.stream(3))
        assert sum(1 for e in events if isinstance(e, EpochTick)) == 3
        assert events == [e for _, batch in generator.iter_epochs(3) for e in batch]


class TestDegenerateFabrics:
    def test_single_host_fabric_emits_only_ticks(self):
        params = ClosParameters(npod=1, n0=1, n1=1, n2=1, hosts_per_tor=1)
        generator = EvidenceLoadGenerator(params, seed=0, events_per_epoch=100)
        events = generator.epoch_events(0)
        assert events == [EpochTick(0)]

    def test_single_pod_fabric_never_picks_level2_bad_links(self):
        params = ClosParameters(npod=1, n0=3, n1=2, n2=2, hosts_per_tor=2)
        generator = EvidenceLoadGenerator(
            params,
            profile=WorkloadProfile(num_bad_links=4),
            seed=1,
            events_per_epoch=200,
        )
        topology = ClosTopology(params)
        for link in generator.bad_links_for_epoch(0):
            assert topology.link_level(link) != LinkLevel.LEVEL2
        # and the stream still analyses cleanly end to end
        service = Zero07Service()
        service.ingest_batch(generator.epoch_events(0))
        assert service.report(0).num_paths_analyzed > 0

    def test_zero_events_per_epoch(self):
        generator = make_generator(events_per_epoch=0)
        assert generator.epoch_events(0) == [EpochTick(0)]
        with pytest.raises(ValueError):
            make_generator(events_per_epoch=-1)


class TestScriptWindows:
    def test_flap_window_adds_and_removes_bad_links(self):
        script = ScenarioScript().flap(
            start=2, duration=2, drop_rate=0.01, level=LinkLevel.LEVEL1
        )
        generator = make_generator(
            script=script, profile=WorkloadProfile(num_bad_links=0)
        )
        assert generator.bad_links_for_epoch(0) == []
        assert generator.bad_links_for_epoch(4) == []
        assert len(generator.bad_links_for_epoch(2)) == 1
        assert len(generator.bad_links_for_epoch(3)) == 1

    def test_burst_and_drain_and_reboot_vocabulary(self):
        script = (
            ScenarioScript()
            .burst(start=1, duration=1, level=LinkLevel.LEVEL2, num_links=2)
            .drain(start=3, duration=1, level=LinkLevel.LEVEL1)
            .reboot_switch(epoch=5, tier=SwitchTier.T1, outage_epochs=1)
        )
        generator = make_generator(fabric="small", script=script)
        base = len(generator.bad_links_for_epoch(0))
        assert len(generator.bad_links_for_epoch(1)) == base + 2
        # drains take both directions of the physical link down
        assert len(generator.bad_links_for_epoch(3)) == base + 2
        # a rebooting switch blackholes every adjacent link, both directions
        topology = ClosTopology(generator.params)
        reboot_extra = len(generator.bad_links_for_epoch(5)) - base
        assert reboot_extra > 0 and reboot_extra % 2 == 0

    def test_scripted_victims_shift_the_evidence(self):
        script = ScenarioScript().flap(
            start=1, duration=1, drop_rate=0.01, level=LinkLevel.LEVEL1
        )
        generator = make_generator(
            fabric="small",
            script=script,
            profile=WorkloadProfile(bad_path_fraction=0.6, repeat_fraction=0.0),
            events_per_epoch=600,
        )
        [victim] = set(generator.bad_links_for_epoch(1)) - set(
            generator.bad_links_for_epoch(0)
        )
        def crossings(epoch):
            return sum(
                1
                for e in generator.epoch_events(epoch, tick=False)
                if victim in e.path.links
            )
        assert crossings(1) > 3 * max(1, crossings(0))
