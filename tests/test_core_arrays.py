"""Unit tests for the numpy-backed analysis engine (repro.core.arrays)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregate import MultiEpochAggregator
from repro.core.analysis import AnalysisAgent
from repro.core.arrays import (
    ArrayVoteTally,
    ItemIndex,
    LinkIndex,
    find_problematic_links_arrays,
)
from repro.core.blame import BlameConfig, find_problematic_links
from repro.core.switches import SwitchVoteTally, find_problematic_switches
from repro.core.votes import VoteTally
from repro.discovery.agent import DiscoveredPath
from repro.routing.fivetuple import FiveTuple
from repro.topology.elements import DirectedLink


def L(a: str, b: str) -> DirectedLink:
    return DirectedLink(a, b)


def _path(flow_id, links, retransmissions=1):
    return DiscoveredPath(
        flow_id=flow_id,
        five_tuple=FiveTuple("a", "b", 1000 + flow_id, 443),
        src_host="a",
        dst_host="b",
        links=list(links),
        complete=True,
        retransmissions=retransmissions,
    )


class TestLinkIndex:
    def test_interns_densely_in_first_seen_order(self):
        index = LinkIndex()
        assert index.intern(L("b", "c")) == 0
        assert index.intern(L("a", "b")) == 1
        assert index.intern(L("b", "c")) == 0  # idempotent
        assert len(index) == 2
        assert index.link_of(1) == L("a", "b")
        assert L("a", "b") in index
        assert index.get(L("x", "y")) is None

    def test_sort_ranks_follow_link_ordering(self):
        index = LinkIndex([L("c", "d"), L("a", "b"), L("b", "c")])
        ranks = index.sort_ranks()
        # a->b sorts first, then b->c, then c->d
        assert ranks.tolist() == [2, 0, 1]

    def test_sort_ranks_refresh_after_growth(self):
        index = LinkIndex([L("b", "c")])
        assert index.sort_ranks().tolist() == [0]
        index.intern(L("a", "b"))
        assert index.sort_ranks().tolist() == [1, 0]

    def test_from_topology_ids_equal_ranks(self, small_topology):
        index = LinkIndex.from_topology(small_topology)
        assert len(index) == small_topology.num_links(directed=True)
        assert index.sort_ranks().tolist() == list(range(len(index)))

    def test_item_index_interns_strings(self):
        index = ItemIndex(["tor1", "t2"])
        assert index.id_of("tor1") == 0
        assert index.item_of(1) == "t2"
        assert index.sort_ranks().tolist() == [1, 0]


class TestArrayVoteTally:
    def test_matches_dict_tally_on_small_example(self):
        paths = [
            _path(1, [L("a", "b"), L("b", "c")]),
            _path(2, [L("b", "c"), L("c", "d")], retransmissions=3),
            _path(3, [L("a", "b")]),
        ]
        ref, arr = VoteTally(), ArrayVoteTally()
        ref.add_discovered_paths(paths)
        arr.add_discovered_paths(paths)

        assert arr.num_flows == ref.num_flows
        assert arr.total_votes() == ref.total_votes()
        assert arr.items() == ref.items()
        assert arr.links() == ref.links()
        assert arr.as_dict() == ref.as_dict()
        assert arr.max_link() == ref.max_link()
        for link in ref.links() + [L("z", "z")]:
            assert arr.votes_of(link) == ref.votes_of(link)
            assert arr.support_of(link) == ref.support_of(link)
        assert arr.contributions == ref.contributions

    def test_rejects_empty_paths_and_bad_policy(self):
        with pytest.raises(ValueError):
            ArrayVoteTally(policy="bogus")
        with pytest.raises(ValueError):
            ArrayVoteTally().add_flow(1, [])

    def test_unit_policy(self):
        tally = ArrayVoteTally(policy="unit")
        tally.add_flow(1, [L("a", "b"), L("b", "c")])
        assert tally.votes_of(L("a", "b")) == 1.0

    def test_shared_index_across_epochs(self):
        index = LinkIndex()
        first = ArrayVoteTally(index=index)
        first.add_flow(1, [L("a", "b")])
        second = ArrayVoteTally(index=index)
        second.add_flow(2, [L("b", "c")])
        # second epoch's tally must not see first epoch's votes
        assert second.votes_of(L("a", "b")) == 0.0
        assert second.votes_of(L("b", "c")) == 1.0
        assert index.id_of(L("a", "b")) == 0 and index.id_of(L("b", "c")) == 1

    def test_copy_is_independent(self):
        tally = ArrayVoteTally()
        tally.add_flow(1, [L("a", "b")])
        clone = tally.copy()
        clone.add_flow(2, [L("a", "b")])
        assert tally.votes_of(L("a", "b")) == 1.0
        assert clone.votes_of(L("a", "b")) == 2.0

    def test_rank_of(self):
        tally = ArrayVoteTally()
        tally.add_flow(1, [L("a", "b")])
        tally.add_flow(2, [L("a", "b")])
        tally.add_flow(3, [L("b", "c")])
        assert tally.rank_of(L("a", "b")) == 1
        assert tally.rank_of(L("b", "c")) == 2
        assert tally.rank_of(L("x", "y")) is None


class TestArrayBlame:
    def test_dispatch_from_find_problematic_links(self):
        tally = ArrayVoteTally()
        for fid in range(5):
            tally.add_flow(fid, [L("a", "b"), L("b", "c")])
        result = find_problematic_links(tally, BlameConfig())
        assert result.detected_links  # the shared links dominate
        assert result.detected_links == find_problematic_links_arrays(tally).detected_links

    def test_empty_tally(self):
        result = find_problematic_links_arrays(ArrayVoteTally())
        assert result.detected_links == [] and result.threshold_votes == 0.0

    def test_min_flow_support_guard(self):
        tally = ArrayVoteTally()
        tally.add_flow(1, [L("a", "b")])
        config = BlameConfig(min_flow_support=2)
        assert find_problematic_links_arrays(tally, config).detected_links == []
        assert find_problematic_links(VoteTally(), config).detected_links == []


class TestSwitchEngines:
    def _tally(self, rng):
        tally = SwitchVoteTally()
        switches = [f"s{i}" for i in range(12)]
        for flow_id in range(60):
            count = int(rng.integers(1, 5))
            chosen = rng.choice(len(switches), size=count, replace=False)
            tally.add_flow(flow_id, [switches[i] for i in chosen])
        return tally

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_array_switch_blame_matches_dict(self, seed):
        tally = self._tally(np.random.default_rng(seed))
        for config in (BlameConfig(), BlameConfig(adjustment="none"),
                       BlameConfig(threshold_fraction=0.2)):
            assert find_problematic_switches(
                tally, config, engine="arrays"
            ) == find_problematic_switches(tally, config, engine="dicts")

    def test_empty_switch_tally(self):
        assert find_problematic_switches(SwitchVoteTally(), engine="arrays") == []

    def test_hand_populated_votes_fall_back_to_dict_loop(self):
        # A tally whose public votes dict was filled without contributions
        # has nothing for the CSR rebuild; the dict loop must serve it.
        tally = SwitchVoteTally(votes={"s1": 10.0})
        assert find_problematic_switches(tally, engine="arrays") == ["s1"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            find_problematic_switches(SwitchVoteTally(), engine="array")
        with pytest.raises(ValueError):
            AnalysisAgent(engine="array")


class TestArrayAggregator:
    def _reports(self, engine):
        agent = AnalysisAgent(engine=engine)
        paths_by_epoch = {
            0: [_path(1, [L("a", "b"), L("b", "c")], retransmissions=4),
                _path(2, [L("a", "b")], retransmissions=4)],
            1: [_path(3, [L("a", "b"), L("c", "d")], retransmissions=4),
                _path(4, [L("a", "b")], retransmissions=4)],
        }
        return agent.analyze_epochs(paths_by_epoch)

    @pytest.mark.parametrize("engine", ["dicts", "arrays"])
    def test_aggregates_match_across_engines(self, engine):
        reference = MultiEpochAggregator()
        reference.ingest_many(self._reports("dicts"))
        aggregator = MultiEpochAggregator()
        aggregator.ingest_many(self._reports(engine))

        assert aggregator.epochs_ingested == 2
        assert aggregator.detections_per_epoch() == reference.detections_per_epoch()
        assert aggregator.max_votes_per_epoch() == reference.max_votes_per_epoch()
        for link in (L("a", "b"), L("b", "c"), L("c", "d")):
            got, want = aggregator.record_of(link), reference.record_of(link)
            assert (got is None) == (want is None)
            if got is not None:
                assert got == want
        assert aggregator.record_of(L("z", "z")) is None
        offenders = aggregator.recurrent_offenders(min_epochs_detected=2)
        assert offenders == reference.recurrent_offenders(min_epochs_detected=2)

    def test_aggregator_mixing_engines(self):
        aggregator = MultiEpochAggregator()
        dict_reports = self._reports("dicts")
        array_reports = self._reports("arrays")
        aggregator.ingest(dict_reports[0])
        aggregator.ingest(array_reports[1])
        record = aggregator.record_of(L("a", "b"))
        assert record is not None and record.epochs_voted == 2

    def test_aggregator_shared_index_fast_path(self):
        index = LinkIndex()
        agent = AnalysisAgent(engine="arrays", link_index=index)
        report = agent.analyze_epoch(0, [_path(1, [L("a", "b")], retransmissions=4)])
        aggregator = MultiEpochAggregator(link_index=index)
        aggregator.ingest(report)
        assert aggregator.record_of(L("a", "b")).epochs_voted == 1
