"""Tests for the declarative time-varying scenario scripts."""

from __future__ import annotations

import pickle

import pytest

from repro.netsim.failures import TransientFailure, TransientFailureSchedule
from repro.netsim.links import LinkStateTable
from repro.netsim.script import (
    CongestionBurst,
    FabricExpansion,
    LinecardFailure,
    LinkFlap,
    ScenarioScript,
    TrafficShift,
    random_burst_script,
    random_flap_script,
)
from repro.netsim.traffic import HotTorTraffic, SkewedTraffic, UniformTraffic
from repro.routing.ecmp import EcmpRouter
from repro.topology.elements import DirectedLink, LinkLevel, SwitchTier


class TestScriptBuilder:
    def test_chaining_and_len(self):
        script = (
            ScenarioScript()
            .flap(start=1, duration=2)
            .burst(start=4, duration=1)
            .reboot_switch(epoch=6)
            .drain(start=8, duration=2)
            .shift_traffic(epoch=3, traffic="skewed")
        )
        assert len(script) == 5

    def test_horizon_is_first_epoch_after_all_events(self):
        script = ScenarioScript().flap(start=1, duration=2).burst(start=4, duration=3)
        assert script.horizon == 7

    def test_empty_script_horizon(self):
        assert ScenarioScript().horizon == 0

    def test_scripts_are_picklable(self):
        # the sweep runner ships configs (including scripts) to worker processes
        script = random_flap_script(3, epochs=10, rng=0).shift_traffic(5, "hot_tor")
        clone = pickle.loads(pickle.dumps(script))
        assert clone.events == script.events


class TestCompile:
    def test_explicit_link_is_respected(self, small_topology, link_table):
        link = DirectedLink("pod0-tor0", "pod0-t1-0")
        script = ScenarioScript().flap(start=0, duration=1, link=link)
        compiled = script.compile(small_topology, link_table, rng=0)
        assert [f.link for f in compiled.schedule.failures] == [link]

    def test_random_flap_victim_matches_level(self, small_topology, link_table):
        script = ScenarioScript().flap(start=0, duration=1, level=LinkLevel.LEVEL2)
        compiled = script.compile(small_topology, link_table, rng=3)
        (failure,) = compiled.schedule.failures
        assert small_topology.link_level(failure.link) == LinkLevel.LEVEL2

    def test_compile_is_deterministic_in_the_seed(self, small_topology):
        script = ScenarioScript().flap(start=0, duration=1, level=LinkLevel.LEVEL1)
        tables = [LinkStateTable(small_topology, rng=0) for _ in range(2)]
        compiled = [script.compile(small_topology, table, rng=42) for table in tables]
        assert (
            compiled[0].schedule.failures[0].link
            == compiled[1].schedule.failures[0].link
        )

    def test_burst_resolves_distinct_links_of_level(self, small_topology, link_table):
        script = ScenarioScript().burst(
            start=0, duration=1, level=LinkLevel.LEVEL1, num_links=4
        )
        compiled = script.compile(small_topology, link_table, rng=1)
        links = [f.link for f in compiled.schedule.failures]
        assert len(links) == 4
        assert len(set(links)) == 4
        assert all(
            small_topology.link_level(link) == LinkLevel.LEVEL1 for link in links
        )

    def test_burst_too_many_links_raises(self, small_topology, link_table):
        script = ScenarioScript().burst(
            start=0, duration=1, level=LinkLevel.LEVEL2, num_links=10_000
        )
        with pytest.raises(ValueError):
            script.compile(small_topology, link_table, rng=0)

    def test_drain_blackholes_both_directions(self, small_topology, link_table):
        physical = small_topology.links_of_level(LinkLevel.LEVEL1)[0]
        script = ScenarioScript().drain(start=1, duration=2, link=physical)
        compiled = script.compile(small_topology, link_table, rng=0)

        compiled.apply_epoch(0)
        assert not link_table.is_down(physical)
        compiled.apply_epoch(1)
        assert link_table.is_down(physical)
        for direction in physical.directions():
            assert link_table.drop_probability(direction) == 1.0
        compiled.apply_epoch(3)
        assert not link_table.is_down(physical)
        for direction in physical.directions():
            assert link_table.drop_probability(direction) < 1.0

    def test_reboot_blackholes_adjacent_links_then_reseeds(self, small_topology):
        link_table = LinkStateTable(small_topology, rng=0)
        router = EcmpRouter(small_topology, rng=0)
        switch = small_topology.switches_of_tier(SwitchTier.T1)[0].name
        script = ScenarioScript().reboot_switch(epoch=1, switch=switch, outage_epochs=2)
        # compile with a seed distinct from the router's: with the same seed
        # the reseed would redraw the very first sample the router's seeds
        # came from (the pipeline forks distinct streams for exactly this
        # reason).
        compiled = script.compile(small_topology, link_table, router=router, rng=99)

        seed_before = router.seed_of(switch)
        adjacent = small_topology.links_of_node(switch)

        truth = compiled.apply_epoch(1)
        assert router.seed_of(switch) == seed_before  # still down, not yet reseeded
        expected = {d for link in adjacent for d in link.directions()}
        assert set(truth.bad_links) == expected
        assert all(rate == 1.0 for rate in truth.drop_rates.values())

        truth = compiled.apply_epoch(3)  # back up, reseeded
        assert truth.bad_links == []
        assert router.seed_of(switch) != seed_before
        assert all(not link_table.is_down(link) for link in adjacent)

    def test_random_switch_matches_tier(self, small_topology, link_table):
        script = ScenarioScript().reboot_switch(epoch=0, tier=SwitchTier.T2)
        compiled = script.compile(small_topology, link_table, rng=5)
        truth = compiled.apply_epoch(0)
        names = {link.src for link in truth.bad_links} & {
            s.name for s in small_topology.switches_of_tier(SwitchTier.T2)
        }
        assert len(names) == 1

    def test_horizon_covers_reseed_epoch(self, small_topology, link_table):
        script = ScenarioScript().reboot_switch(epoch=2, outage_epochs=2)
        compiled = script.compile(small_topology, link_table, rng=0)
        # outage spans [2, 4), the reseed fires during epoch 4 -> horizon 5
        assert compiled.horizon == 5
        assert script.horizon == 5

    def test_reseed_catches_up_over_epoch_gaps(self, small_topology):
        link_table = LinkStateTable(small_topology, rng=0)
        router = EcmpRouter(small_topology, rng=0)
        switch = small_topology.switches_of_tier(SwitchTier.T1)[0].name
        script = ScenarioScript().reboot_switch(epoch=1, switch=switch, outage_epochs=1)
        compiled = script.compile(small_topology, link_table, router=router, rng=99)
        seed_before = router.seed_of(switch)
        compiled.apply_epoch(1)
        compiled.apply_epoch(5)  # epoch 2 (the due reseed) was never applied
        assert router.seed_of(switch) != seed_before
        seed_after = router.seed_of(switch)
        compiled.apply_epoch(6)  # the reseed fires exactly once
        assert router.seed_of(switch) == seed_after


class TestLinecardFailure:
    def test_strikes_the_requested_number_of_links_on_one_switch(
        self, small_topology, link_table
    ):
        switch = small_topology.switches_of_tier(SwitchTier.T1)[0].name
        script = ScenarioScript().linecard(
            start=1, duration=2, num_links=3, switch=switch
        )
        compiled = script.compile(small_topology, link_table, rng=0)

        assert compiled.apply_epoch(0).bad_links == []
        truth = compiled.apply_epoch(1)
        victims = {link.undirected() for link in truth.bad_links}
        assert len(victims) == 3
        assert len(truth.bad_links) == 6  # both directions of each victim
        adjacent = set(small_topology.links_of_node(switch))
        assert victims <= adjacent
        assert compiled.apply_epoch(3).bad_links == []

    def test_gray_mode_applies_the_drop_rate_without_downing_links(
        self, small_topology
    ):
        link_table = LinkStateTable(small_topology, rng=0)
        switch = small_topology.switches_of_tier(SwitchTier.T1)[0].name
        script = ScenarioScript().linecard(
            start=0, duration=1, num_links=2, drop_rate=0.05,
            blackhole=False, switch=switch,
        )
        compiled = script.compile(small_topology, link_table, rng=0)
        truth = compiled.apply_epoch(0)
        assert truth.bad_links
        for link in truth.bad_links:
            assert truth.drop_rates[link] == 0.05
            assert not link_table.is_down(link.undirected())

    def test_random_switch_matches_tier_and_is_seed_deterministic(
        self, small_topology
    ):
        script = ScenarioScript().linecard(start=0, duration=1, tier=SwitchTier.T2)
        names = set()
        for _ in range(2):
            table = LinkStateTable(small_topology, rng=0)
            truth = script.compile(small_topology, table, rng=7).apply_epoch(0)
            tier2 = {s.name for s in small_topology.switches_of_tier(SwitchTier.T2)}
            touched = {link.src for link in truth.bad_links} & tier2
            assert len(touched) == 1
            names |= touched
        assert len(names) == 1  # same rng seed -> same victim switch

    def test_too_many_links_raises(self, small_topology, link_table):
        switch = small_topology.switches_of_tier(SwitchTier.T2)[0].name
        degree = len(small_topology.links_of_node(switch))
        script = ScenarioScript().linecard(
            start=0, duration=1, num_links=degree + 1, switch=switch
        )
        with pytest.raises(ValueError):
            script.compile(small_topology, link_table, rng=0)


class TestFabricExpansion:
    def test_links_dark_before_cutover_healthy_after(self, small_topology):
        link_table = LinkStateTable(small_topology, rng=0)
        switch = small_topology.switches_of_tier(SwitchTier.T2)[0].name
        script = ScenarioScript().expand_fabric(epoch=2, switch=switch)
        compiled = script.compile(small_topology, link_table, rng=0)

        expected = {
            d
            for link in small_topology.links_of_node(switch)
            for d in link.directions()
        }
        for epoch in (0, 1):
            truth = compiled.apply_epoch(epoch)
            assert set(truth.bad_links) == expected
            assert all(rate == 1.0 for rate in truth.drop_rates.values())
        truth = compiled.apply_epoch(2)
        assert truth.bad_links == []
        assert all(
            not link_table.is_down(link)
            for link in small_topology.links_of_node(switch)
        )

    def test_expansion_at_epoch_zero_has_no_dark_window(
        self, small_topology, link_table
    ):
        switch = small_topology.switches_of_tier(SwitchTier.T2)[0].name
        script = ScenarioScript().expand_fabric(epoch=0, switch=switch)
        compiled = script.compile(small_topology, link_table, rng=0)
        assert compiled.apply_epoch(0).bad_links == []

    def test_horizon_includes_the_cutover_epoch(self, small_topology, link_table):
        script = ScenarioScript().expand_fabric(epoch=3)
        assert script.horizon == 4
        compiled = script.compile(small_topology, link_table, rng=0)
        # the dark window is [0, 3); the cutover epoch itself must still be
        # simulated for the links' return to health to be observable.
        assert compiled.horizon == script.horizon == 4


class TestTrafficShift:
    def test_shift_builds_generator_of_kind(self, small_topology, link_table):
        script = ScenarioScript().shift_traffic(
            epoch=2, traffic="skewed", num_hot_tors=2, hot_fraction=0.9
        )
        compiled = script.compile(small_topology, link_table, rng=0)
        assert compiled.traffic_for_epoch(0) is None
        shifted = compiled.traffic_for_epoch(2)
        assert isinstance(shifted, SkewedTraffic)

    def test_unset_parameters_inherit_from_current_generator(
        self, small_topology, link_table
    ):
        current = UniformTraffic(
            small_topology, connections_per_host=17, packets_per_flow=(10, 20)
        )
        script = ScenarioScript().shift_traffic(epoch=1, traffic="hot_tor")
        compiled = script.compile(small_topology, link_table, rng=0)
        shifted = compiled.traffic_for_epoch(1, current=current)
        assert isinstance(shifted, HotTorTraffic)
        assert shifted.connections_per_host == 17
        assert shifted.packets_per_flow == (10, 20)

    def test_unknown_kind_raises(self, small_topology, link_table):
        script = ScenarioScript().add(TrafficShift(epoch=0, traffic="mystery"))
        compiled = script.compile(small_topology, link_table, rng=0)
        with pytest.raises(ValueError):
            compiled.traffic_for_epoch(0)

    def test_shift_applies_when_epochs_start_late(self, small_topology, link_table):
        script = ScenarioScript().shift_traffic(epoch=0, traffic="skewed")
        compiled = script.compile(small_topology, link_table, rng=0)
        shifted = compiled.traffic_for_epoch(3)  # first epoch driven is 3
        assert isinstance(shifted, SkewedTraffic)
        assert compiled.traffic_for_epoch(4) is None  # fires only once


class TestRandomScheduleGenerators:
    def test_random_flap_script_event_count_and_bounds(self):
        script = random_flap_script(
            5, epochs=12, rng=7, drop_rate_range=(1e-3, 1e-2), duration_range=(1, 3)
        )
        assert len(script) == 5
        for event in script.events:
            assert isinstance(event, LinkFlap)
            assert event.link is None  # victims resolved at compile time
            assert 0 <= event.start_epoch
            assert event.end_epoch <= 12
            assert 1 <= event.duration_epochs <= 3
            assert 1e-3 <= event.drop_rate <= 1e-2

    def test_random_flap_script_is_seed_deterministic(self):
        assert (
            random_flap_script(4, epochs=10, rng=11).events
            == random_flap_script(4, epochs=10, rng=11).events
        )

    def test_random_burst_script_bounds(self):
        script = random_burst_script(3, epochs=6, rng=2, links_per_burst=(2, 3))
        assert len(script) == 3
        for event in script.events:
            assert isinstance(event, CongestionBurst)
            assert 2 <= event.num_links <= 3
            assert event.end_epoch <= 6

    def test_epochs_must_be_positive(self):
        with pytest.raises(ValueError):
            random_flap_script(1, epochs=0)


class TestTransientScheduleExtensions:
    def test_active_at_and_horizon(self, small_topology, link_table):
        schedule = TransientFailureSchedule(link_table)
        link = DirectedLink("pod0-tor0", "pod0-t1-0")
        flap = TransientFailure(link=link, drop_rate=0.1, start_epoch=2, duration_epochs=3)
        schedule.add(flap)
        assert schedule.horizon == 5
        assert schedule.active_at(1) == []
        assert schedule.active_at(2) == [flap]
        assert schedule.active_at(4) == [flap]
        assert schedule.active_at(5) == []

    def test_blackhole_failure_takes_link_down_and_restores(
        self, small_topology, link_table
    ):
        schedule = TransientFailureSchedule(link_table)
        link = DirectedLink("pod0-tor0", "pod0-t1-0")
        schedule.add(
            TransientFailure(
                link=link, drop_rate=1.0, start_epoch=0, duration_epochs=1, blackhole=True
            )
        )
        schedule.apply_epoch(0)
        assert link_table.is_down(link)
        schedule.apply_epoch(1)
        assert not link_table.is_down(link)
        assert link_table.drop_probability(link) < 1.0
