"""Unit tests for the path discovery agent (caching, rate caps, SLB queries)."""

from __future__ import annotations

import pytest

from repro.testing import pair_of_hosts
from repro.discovery.agent import PathDiscoveryAgent, PathDiscoveryConfig
from repro.discovery.icmp import IcmpRateLimiter
from repro.discovery.traceroute import TracerouteEngine
from repro.netsim.events import RetransmissionEvent
from repro.routing.fivetuple import FiveTuple
from repro.slb.loadbalancer import SoftwareLoadBalancer


def _event(flow_id, src, dst, five_tuple, epoch=0, timestamp=0.0, retransmissions=1):
    return RetransmissionEvent(
        flow_id=flow_id,
        epoch=epoch,
        src_host=src,
        dst_host=dst,
        five_tuple=five_tuple,
        retransmissions=retransmissions,
        timestamp=timestamp,
    )


@pytest.fixture()
def agent(small_topology, router, link_table):
    engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0, probe_loss=False)
    return PathDiscoveryAgent(engine, config=PathDiscoveryConfig())


class TestDiscovery:
    def test_discovers_complete_path(self, small_topology, router, agent):
        src, dst = pair_of_hosts(small_topology, cross_pod=True)
        flow = FiveTuple(src, dst, 1000, 443)
        discovered = agent.discover(_event(1, src, dst, flow))
        assert discovered is not None
        assert discovered.complete
        assert discovered.hop_count == router.route(flow, src, dst).hop_count
        assert agent.stats.traceroutes_sent == 1

    def test_cache_hit_avoids_second_traceroute(self, small_topology, agent):
        src, dst = pair_of_hosts(small_topology)
        flow = FiveTuple(src, dst, 1000, 443)
        first = agent.discover(_event(1, src, dst, flow))
        second = agent.discover(_event(1, src, dst, flow, retransmissions=2))
        assert second is first
        assert agent.stats.traceroutes_sent == 1
        assert agent.stats.served_from_cache == 1
        # Cache hits accumulate the retransmission count for the epoch.
        assert first.retransmissions == 3

    def test_new_epoch_clears_cache(self, small_topology, agent):
        src, dst = pair_of_hosts(small_topology)
        flow = FiveTuple(src, dst, 1000, 443)
        agent.discover(_event(1, src, dst, flow, epoch=0))
        agent.discover(_event(1, src, dst, flow, epoch=1))
        assert agent.stats.traceroutes_sent == 2

    def test_distinct_flows_distinct_traces(self, small_topology, agent):
        src, dst = pair_of_hosts(small_topology)
        for port in range(1000, 1005):
            flow = FiveTuple(src, dst, port, 443)
            assert agent.discover(_event(port, src, dst, flow)) is not None
        assert agent.stats.traceroutes_sent == 5


class TestRateLimits:
    def test_per_second_budget(self, small_topology, router, link_table):
        engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0, probe_loss=False)
        agent = PathDiscoveryAgent(
            engine,
            config=PathDiscoveryConfig(max_traceroutes_per_host_per_second=2),
        )
        src, dst = pair_of_hosts(small_topology)
        outcomes = []
        for port in range(1000, 1005):
            flow = FiveTuple(src, dst, port, 443)
            outcomes.append(agent.discover(_event(port, src, dst, flow, timestamp=0.4)))
        assert sum(1 for o in outcomes if o is not None) == 2
        assert agent.stats.rate_limited == 3

    def test_budget_renews_next_second(self, small_topology, router, link_table):
        engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0, probe_loss=False)
        agent = PathDiscoveryAgent(
            engine,
            config=PathDiscoveryConfig(max_traceroutes_per_host_per_second=1),
        )
        src, dst = pair_of_hosts(small_topology)
        a = agent.discover(_event(1, src, dst, FiveTuple(src, dst, 1000, 443), timestamp=0.0))
        b = agent.discover(_event(2, src, dst, FiveTuple(src, dst, 1001, 443), timestamp=1.0))
        assert a is not None and b is not None

    def test_per_epoch_budget_config(self):
        config = PathDiscoveryConfig(max_traceroutes_per_host_per_second=2, epoch_duration_s=30)
        assert config.per_epoch_budget == 60

    def test_sub_unit_rate_budget_rounds_up_to_one(self):
        # Regression: Ct * epoch < 1 used to truncate the per-epoch budget to
        # zero, rate-limiting every traceroute of the epoch.
        config = PathDiscoveryConfig(
            max_traceroutes_per_host_per_second=0.02, epoch_duration_s=30
        )
        assert config.per_epoch_budget == 1
        assert config.per_second_cap == 1

    def test_fractional_rate_uses_ceiling(self):
        # Regression: a fractional Ct was truncated (int) instead of ceiled.
        config = PathDiscoveryConfig(
            max_traceroutes_per_host_per_second=1.5, epoch_duration_s=30
        )
        assert config.per_second_cap == 2
        assert config.per_epoch_budget == 45

    def test_sub_unit_rate_still_traces(self, small_topology, router, link_table):
        engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0, probe_loss=False)
        agent = PathDiscoveryAgent(
            engine,
            config=PathDiscoveryConfig(
                max_traceroutes_per_host_per_second=0.02, epoch_duration_s=30
            ),
        )
        src, dst = pair_of_hosts(small_topology)
        assert agent.discover(_event(1, src, dst, FiveTuple(src, dst, 1000, 443))) is not None
        assert agent.stats.rate_limited == 0

    def test_fractional_rate_allows_ceiling_traces_per_second(
        self, small_topology, router, link_table
    ):
        engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0, probe_loss=False)
        agent = PathDiscoveryAgent(
            engine,
            config=PathDiscoveryConfig(max_traceroutes_per_host_per_second=1.5),
        )
        src, dst = pair_of_hosts(small_topology)
        outcomes = [
            agent.discover(_event(port, src, dst, FiveTuple(src, dst, port, 443), timestamp=0.1))
            for port in range(1000, 1004)
        ]
        assert sum(1 for o in outcomes if o is not None) == 2
        assert agent.stats.rate_limited == 2


class TestSlbInteraction:
    def test_vip_resolved_before_tracing(self, small_topology, router, link_table):
        slb = SoftwareLoadBalancer(rng=0)
        src, dst = pair_of_hosts(small_topology)
        app, data = slb.establish_connection(src, dst, 1000, 443)
        engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0, probe_loss=False)
        agent = PathDiscoveryAgent(engine, slb=slb)
        discovered = agent.discover(_event(1, src, dst, app))
        assert discovered is not None
        assert discovered.links == list(router.route(data, src, dst).links)

    def test_failed_slb_query_skips_trace(self, small_topology, router, link_table):
        slb = SoftwareLoadBalancer(query_failure_rate=1.0, rng=0)
        src, dst = pair_of_hosts(small_topology)
        app, _ = slb.establish_connection(src, dst, 1000, 443)
        engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0, probe_loss=False)
        agent = PathDiscoveryAgent(engine, slb=slb)
        assert agent.discover(_event(1, src, dst, app)) is None
        assert agent.stats.slb_failures == 1
        assert agent.stats.traceroutes_sent == 0

    def test_unknown_flow_mapping_skips_trace(self, small_topology, router, link_table):
        slb = SoftwareLoadBalancer(rng=0)
        src, dst = pair_of_hosts(small_topology)
        engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0, probe_loss=False)
        agent = PathDiscoveryAgent(engine, slb=slb)
        never_established = FiveTuple(src, f"vip:{dst}", 1000, 443)
        assert agent.discover(_event(1, src, dst, never_established)) is None
        assert agent.stats.slb_failures == 1

    def test_slb_failure_does_not_burn_trace_budget(
        self, small_topology, router, link_table
    ):
        # Regression: the per-host budget used to be charged before SLB
        # resolution, so failed VIP->DIP lookups consumed traceroute budget
        # (and later flows were reported as rate-limited) although no
        # traceroute was ever sent.
        slb = SoftwareLoadBalancer(query_failure_rate=1.0, rng=0)
        src, dst = pair_of_hosts(small_topology)
        engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0, probe_loss=False)
        agent = PathDiscoveryAgent(
            engine,
            slb=slb,
            config=PathDiscoveryConfig(max_traceroutes_per_host_per_second=1),
        )
        app, _ = slb.establish_connection(src, dst, 1000, 443)
        for port in range(1001, 1004):
            failed_app, _ = slb.establish_connection(src, dst, port, 443)
            assert agent.discover(_event(port, src, dst, failed_app, timestamp=0.2)) is None
        assert agent.stats.slb_failures == 3
        assert agent.stats.rate_limited == 0
        # the budget is intact: a resolvable flow in the same second still traces
        slb._query_failure_rate = 0.0
        assert agent.discover(_event(1, src, dst, app, timestamp=0.2)) is not None
        assert agent.stats.traceroutes_sent == 1


class TestNegativeTraceCache:
    class _EmptyTraceEngine:
        """A traceroute stub whose probes never discover any link."""

        def __init__(self):
            self.calls = 0

        def trace(self, five_tuple, src_host, dst_host, time_s=0.0):
            self.calls += 1
            from repro.discovery.traceroute import TracerouteResult

            return TracerouteResult(
                five_tuple=five_tuple, src_host=src_host, dst_host=dst_host
            )

    def test_empty_trace_cached_within_epoch(self, small_topology):
        # Regression: a trace that discovered no links was not cached, so every
        # retransmission of the flow re-traced and drained the host budget.
        engine = self._EmptyTraceEngine()
        agent = PathDiscoveryAgent(engine, config=PathDiscoveryConfig())
        src, dst = pair_of_hosts(small_topology)
        flow = FiveTuple(src, dst, 1000, 443)
        assert agent.discover(_event(1, src, dst, flow)) is None
        assert agent.discover(_event(1, src, dst, flow)) is None
        assert engine.calls == 1
        assert agent.stats.traceroutes_sent == 1
        assert agent.stats.served_from_cache == 1

    def test_negative_cache_cleared_on_new_epoch(self, small_topology):
        engine = self._EmptyTraceEngine()
        agent = PathDiscoveryAgent(engine, config=PathDiscoveryConfig())
        src, dst = pair_of_hosts(small_topology)
        flow = FiveTuple(src, dst, 1000, 443)
        agent.discover(_event(1, src, dst, flow, epoch=0))
        agent.discover(_event(1, src, dst, flow, epoch=1))
        assert engine.calls == 2
