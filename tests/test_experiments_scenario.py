"""Tests for the shared scenario runner and its scoring helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.scenario import (
    ScenarioConfig,
    build_traffic,
    inject_failures,
    run_scenario,
    run_trials,
)
from repro.netsim.links import LinkStateTable
from repro.netsim.traffic import HotTorTraffic, SkewedTraffic, UniformTraffic
from repro.topology.clos import ClosTopology
from repro.topology.elements import LinkLevel


#: a deliberately small configuration so the scenario tests stay fast.
FAST = dict(npod=2, n0=4, n1=2, n2=2, hosts_per_tor=2, connections_per_host=25)


class TestBuildTraffic:
    def test_uniform(self):
        config = ScenarioConfig(**FAST, traffic="uniform")
        topo = ClosTopology(config.topology_params())
        assert isinstance(build_traffic(config, topo), UniformTraffic)

    def test_skewed(self):
        config = ScenarioConfig(**FAST, traffic="skewed", num_hot_tors=2)
        topo = ClosTopology(config.topology_params())
        assert isinstance(build_traffic(config, topo), SkewedTraffic)

    def test_hot_tor(self):
        config = ScenarioConfig(**FAST, traffic="hot_tor")
        topo = ClosTopology(config.topology_params())
        assert isinstance(build_traffic(config, topo), HotTorTraffic)

    def test_unknown_kind_raises(self):
        config = ScenarioConfig(**FAST)
        config.traffic = "mystery"
        topo = ClosTopology(config.topology_params())
        with pytest.raises(ValueError):
            build_traffic(config, topo)


class TestInjectFailures:
    def test_random_failures(self):
        config = ScenarioConfig(**FAST, num_bad_links=3)
        topo = ClosTopology(config.topology_params())
        table = LinkStateTable(topo, rng=0)
        scenario = inject_failures(config, topo, table, seed=0)
        assert scenario.num_failures == 3

    def test_none_kind(self):
        config = ScenarioConfig(**FAST, failure_kind="none")
        topo = ClosTopology(config.topology_params())
        table = LinkStateTable(topo, rng=0)
        assert inject_failures(config, topo, table, 0).num_failures == 0

    def test_level_kind(self):
        config = ScenarioConfig(
            **FAST, failure_kind="level", failure_level=LinkLevel.LEVEL2, failure_downward=True
        )
        topo = ClosTopology(config.topology_params())
        table = LinkStateTable(topo, rng=0)
        scenario = inject_failures(config, topo, table, 0)
        assert scenario.num_failures == 1
        assert topo.link_level(scenario.bad_links[0]) == LinkLevel.LEVEL2

    def test_skewed_kind(self):
        config = ScenarioConfig(**FAST, failure_kind="skewed", num_bad_links=4)
        topo = ClosTopology(config.topology_params())
        table = LinkStateTable(topo, rng=0)
        scenario = inject_failures(config, topo, table, 0)
        assert max(scenario.drop_rates.values()) >= 0.1


class TestRunScenario:
    @pytest.fixture(scope="class")
    def result(self):
        config = ScenarioConfig(
            **FAST, num_bad_links=1, drop_rate_range=(1e-2, 1e-2), seed=5
        )
        return run_scenario(config)

    def test_structure(self, result):
        assert len(result.reports) == 1
        assert len(result.epoch_results) == 1
        assert result.failure_scenario.num_failures == 1

    def test_accuracy_scores_are_probabilities(self, result):
        accuracy = result.accuracy_007()
        assert np.isnan(accuracy) or 0.0 <= accuracy <= 1.0

    def test_detection_score_fields(self, result):
        score = result.detection_007()
        assert 0.0 <= score.precision <= 1.0
        assert 0.0 <= score.recall <= 1.0

    def test_ground_truth_consistency(self, result):
        truth = result.true_flow_causes()
        hit = result.flows_through_bad_links()
        assert set(hit) <= set(truth)

    def test_baseline_inputs_align(self, result):
        routing, counts = result.baseline_inputs()
        assert routing.num_flows == len(counts)

    def test_baseline_detections_run(self, result):
        binary = result.binary_program_detection(exact=False)
        integer = result.integer_program_detection(exact=False)
        assert 0.0 <= binary.recall <= 1.0
        assert 0.0 <= integer.recall <= 1.0

    def test_integer_program_accuracy_runs(self, result):
        accuracy = result.accuracy_integer_program(exact=False)
        assert np.isnan(accuracy) or 0.0 <= accuracy <= 1.0


class TestRunTrials:
    def test_trials_use_distinct_seeds(self):
        config = ScenarioConfig(**FAST, num_bad_links=1, seed=3, drop_rate_range=(5e-3, 5e-3))
        results = run_trials(config, trials=2)
        assert len(results) == 2
        assert results[0].config.seed != results[1].config.seed
