"""Property-based end-to-end tests: random small dynamic scenarios.

Hypothesis drives random (but reproducible — see the profiles registered in
``conftest.py``) time-varying scenarios through the whole pipeline and checks
the invariants no refactor may break:

* with a zero noise floor, epochs whose ground truth is empty produce **no**
  detections — 007 never blames a link when nothing dropped;
* every blamed link exists in the epoch's topology;
* the vectorized and dict analysis engines produce bit-identical reports
  even while the failure set changes under them.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.experiments.scenario import ScenarioConfig, run_scenario  # noqa: E402
from repro.netsim.script import ScenarioScript  # noqa: E402
from repro.topology.elements import LinkLevel  # noqa: E402

#: the smallest interesting fabric — 8 hosts, two pods, full Clos paths.
TINY = dict(
    npod=2,
    n0=2,
    n1=2,
    n2=2,
    hosts_per_tor=1,
    connections_per_host=10,
    packets_per_flow=50,
)

EPOCHS = 4

flap_starts = st.integers(min_value=0, max_value=2)
flap_durations = st.integers(min_value=1, max_value=2)
drop_rates = st.floats(min_value=0.05, max_value=0.3)
levels = st.sampled_from([LinkLevel.HOST, LinkLevel.LEVEL1, LinkLevel.LEVEL2])
seeds = st.integers(min_value=0, max_value=10_000)


def dynamic_config(
    engine: str,
    seed: int,
    flap_start: int,
    flap_duration: int,
    drop_rate: float,
    level: LinkLevel,
) -> ScenarioConfig:
    script = ScenarioScript().flap(
        start=flap_start, duration=flap_duration, drop_rate=drop_rate, level=level
    )
    return ScenarioConfig(
        **TINY,
        failure_kind="none",
        noise_range=(0.0, 0.0),
        epochs=EPOCHS,
        seed=seed,
        engine=engine,
        script=script,
    )


@given(
    seed=seeds,
    flap_start=flap_starts,
    flap_duration=flap_durations,
    drop_rate=drop_rates,
    level=levels,
)
def test_dynamic_scenario_invariants(seed, flap_start, flap_duration, drop_rate, level):
    result = run_scenario(
        dynamic_config("arrays", seed, flap_start, flap_duration, drop_rate, level)
    )
    directed = set(result.topology.directed_links())
    assert len(result.truth_by_epoch) == EPOCHS

    for i, report in enumerate(result.reports):
        truth = result.truth_for_epoch(i)
        # every blamed link must exist in the epoch's topology
        for link in report.detected_links:
            assert link in directed
        # zero noise floor: failure-free epochs must stay silent
        if not truth.bad_links:
            assert report.detected_links == []
        # ground truth links exist too (the script resolved real victims)
        for link in truth.bad_links:
            assert link in directed

    # the flap window is reflected verbatim in the per-epoch truth
    for epoch in range(EPOCHS):
        active = flap_start <= epoch < flap_start + flap_duration
        assert bool(result.truth_by_epoch[epoch].bad_links) == active


@given(
    seed=seeds,
    flap_start=flap_starts,
    flap_duration=flap_durations,
    drop_rate=drop_rates,
    level=levels,
)
def test_engine_equivalence_under_time_varying_truth(
    seed, flap_start, flap_duration, drop_rate, level
):
    arrays = run_scenario(
        dynamic_config("arrays", seed, flap_start, flap_duration, drop_rate, level)
    )
    dicts = run_scenario(
        dynamic_config("dicts", seed, flap_start, flap_duration, drop_rate, level)
    )
    assert [t.bad_links for t in arrays.truth_by_epoch] == [
        t.bad_links for t in dicts.truth_by_epoch
    ]
    for ref, got in zip(dicts.reports, arrays.reports):
        assert got.epoch == ref.epoch
        assert got.num_paths_analyzed == ref.num_paths_analyzed
        assert got.detected_links == ref.detected_links
        assert got.ranked_links == ref.ranked_links  # exact floats, exact order
        assert got.flow_causes == ref.flow_causes
        assert got.noise.noise_flows == ref.noise.noise_flows
        assert got.noise.failure_flows == ref.noise.failure_flows


@given(
    seed=seeds,
    flap_start=flap_starts,
    flap_duration=st.integers(min_value=1, max_value=1),
    drop_rate=st.floats(min_value=0.2, max_value=0.5),
    level=levels,
)
def test_cleared_failures_stop_drawing_blame(
    seed, flap_start, flap_duration, drop_rate, level
):
    """After the flap clears (zero noise), no stale detections may linger."""
    result = run_scenario(
        dynamic_config("arrays", seed, flap_start, flap_duration, drop_rate, level)
    )
    rate = result.false_alarm_rate_007()
    assert rate != rate or rate == 0.0  # nan (window too short) or exactly zero
