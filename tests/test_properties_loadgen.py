"""Property tests: loadgen streams, replay, checkpoints, batch equivalence.

The invariants the load generator + streaming service pair must hold for
*any* workload shape:

* replaying a generated stream through :class:`ReplayEvidenceSource` into a
  :class:`Zero07Service` produces reports bit-identical to an independent
  batch analysis of the same paths (both engines, batched or per-event,
  owned or copied);
* checkpointing at *any* mid-stream cut point and resuming is invisible in
  every subsequent report;
* a sharded fleet agrees with the unsharded service on the same stream.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.api import (
    Checkpoint,
    PathEvidence,
    ReplayEvidenceSource,
    RetransmissionEvidence,
    ShardedService,
    Zero07Service,
)
from repro.api.events import copy_path
from repro.core.analysis import AnalysisAgent
from repro.loadgen import EvidenceLoadGenerator, WorkloadProfile
from repro.netsim.script import ScenarioScript
from repro.testing import report_signature
from repro.topology.elements import LinkLevel


def profiles() -> st.SearchStrategy[WorkloadProfile]:
    return st.builds(
        WorkloadProfile,
        popularity=st.sampled_from(["uniform", "zipf"]),
        hot_tor_fraction=st.sampled_from([0.0, 0.4]),
        num_bad_links=st.integers(min_value=0, max_value=3),
        bad_path_fraction=st.sampled_from([0.0, 0.3, 0.7]),
        repeat_fraction=st.sampled_from([0.0, 0.2, 0.4]),
        max_initial_retransmissions=st.integers(min_value=1, max_value=3),
        max_extra_retransmissions=st.integers(min_value=1, max_value=3),
    )


def scripts() -> st.SearchStrategy:
    flap = st.builds(
        lambda start: ScenarioScript().flap(
            start=start, duration=1, drop_rate=0.01, level=LinkLevel.LEVEL1
        ),
        start=st.integers(min_value=0, max_value=2),
    )
    return st.one_of(st.none(), flap)


workloads = st.fixed_dictionaries(
    {
        "profile": profiles(),
        "script": scripts(),
        "seed": st.integers(min_value=0, max_value=2**16),
        "events_per_epoch": st.integers(min_value=8, max_value=120),
        "epochs": st.integers(min_value=1, max_value=3),
    }
)


def generate(workload) -> tuple:
    generator = EvidenceLoadGenerator(
        fabric="tiny",
        profile=workload["profile"],
        script=workload["script"],
        seed=workload["seed"],
        events_per_epoch=workload["events_per_epoch"],
    )
    return generator, list(generator.stream(workload["epochs"]))


def batch_reports(events, epochs, engine):
    """The legacy batch analysis over the stream's paths, per epoch.

    The batch loop saw the monitoring agent's *live* path objects, whose
    retransmission counts include every later repeat — so repeat updates are
    folded into (copies of) the discovered paths before analysing.
    """
    agent = AnalysisAgent(engine=engine)
    paths_by_epoch: dict = {}
    by_flow: dict = {}
    for event in events:
        if isinstance(event, PathEvidence):
            path = copy_path(event.path)
            paths_by_epoch.setdefault(event.epoch, []).append(path)
            by_flow[(event.epoch, path.flow_id)] = path
        elif isinstance(event, RetransmissionEvidence):
            path = by_flow.get((event.epoch, event.flow_id))
            if path is not None:
                path.retransmissions += event.retransmissions
    return [
        report_signature(agent.analyze_epoch(epoch, paths_by_epoch.get(epoch, [])))
        for epoch in range(epochs)
    ]


@settings(max_examples=20, deadline=None)
@given(workload=workloads, engine=st.sampled_from(["arrays", "dicts"]))
def test_replayed_stream_equals_batch_analysis(workload, engine):
    """Loadgen -> ReplayEvidenceSource -> service == batch analysis, bit for bit.

    The batch analysis sees each epoch's paths in discovery order with their
    *final* retransmission counts — so the service must fold every repeat
    update into the right flow before finalizing.
    """
    _, events = generate(workload)
    epochs = workload["epochs"]

    service = Zero07Service(engine=engine, retain_reports=epochs)
    service.consume(ReplayEvidenceSource(events))
    streamed = [report_signature(service.report(e)) for e in range(epochs)]
    assert streamed == batch_reports(events, epochs, engine)

    # the vectorized batched path and per-event ingestion agree too,
    # including ownership transfer (fresh generation, nobody else reads it)
    generator2 = EvidenceLoadGenerator(
        fabric="tiny",
        profile=workload["profile"],
        script=workload["script"],
        seed=workload["seed"],
        events_per_epoch=workload["events_per_epoch"],
    )
    owned = Zero07Service(engine=engine, retain_reports=epochs)
    owned.ingest_batch(list(generator2.stream(epochs)), owned=True)
    assert [report_signature(owned.report(e)) for e in range(epochs)] == streamed
    assert owned.stats.as_dict() == service.stats.as_dict()


@settings(max_examples=20, deadline=None)
@given(
    workload=workloads,
    engine=st.sampled_from(["arrays", "dicts"]),
    cut=st.floats(min_value=0.0, max_value=1.0),
)
def test_checkpoint_at_any_cut_point_is_invisible(workload, engine, cut):
    """Stop/restore at a random mid-stream point changes no final report."""
    _, events = generate(workload)
    epochs = workload["epochs"]
    split = int(len(events) * cut)

    interrupted = Zero07Service(engine=engine, retain_reports=epochs)
    interrupted.ingest_batch(events[:split])
    resumed = Zero07Service.restore(
        Checkpoint.from_json(interrupted.checkpoint().to_json())
    )
    resumed.ingest_batch(events[split:])

    uninterrupted = Zero07Service(engine=engine, retain_reports=epochs)
    uninterrupted.ingest_batch(events)

    finalized = interrupted.last_finalized_epoch
    start = 0 if finalized is None else finalized + 1
    for epoch in range(start, epochs):
        assert report_signature(resumed.report(epoch)) == report_signature(
            uninterrupted.report(epoch)
        )


@settings(max_examples=12, deadline=None)
@given(workload=workloads, num_shards=st.sampled_from([2, 3, 4]))
def test_sharded_fleet_agrees_on_any_workload(workload, num_shards):
    _, events = generate(workload)
    epochs = workload["epochs"]
    # defensive (copying) service first: the fleet then takes ownership of
    # the events and may mutate them freely.
    single = Zero07Service(retain_reports=epochs)
    single.ingest_batch(events)
    fleet = ShardedService(num_shards=num_shards, retain_reports=epochs)
    fleet.ingest_batch(events, owned=True)
    for epoch in range(epochs):
        assert report_signature(fleet.report(epoch)) == report_signature(
            single.report(epoch)
        )
