"""Unit tests for topology primitives (links, switches, hosts, LAGs)."""

from __future__ import annotations

import pytest

from repro.topology.elements import (
    DirectedLink,
    Host,
    Link,
    LinkAggregationGroup,
    LinkLevel,
    NodeKind,
    Switch,
    SwitchTier,
)


class TestDirectedLink:
    def test_reversed(self):
        link = DirectedLink("a", "b")
        assert link.reversed() == DirectedLink("b", "a")
        assert link.reversed().reversed() == link

    def test_undirected_is_canonical(self):
        assert DirectedLink("b", "a").undirected() == Link("a", "b")
        assert DirectedLink("a", "b").undirected() == Link("a", "b")

    def test_ordering_is_total(self):
        links = [DirectedLink("b", "a"), DirectedLink("a", "b"), DirectedLink("a", "a")]
        assert sorted(links) == sorted(links, key=lambda l: (l.src, l.dst))

    def test_str(self):
        assert str(DirectedLink("x", "y")) == "x->y"


class TestLink:
    def test_of_sorts_endpoints(self):
        assert Link.of("z", "a") == Link("a", "z")

    def test_directions(self):
        forward, backward = Link("a", "b").directions()
        assert forward == DirectedLink("a", "b")
        assert backward == DirectedLink("b", "a")

    def test_hashable_and_equal(self):
        assert len({Link.of("a", "b"), Link.of("b", "a")}) == 1


class TestSwitchAndHost:
    def test_switch_kind(self):
        switch = Switch(name="t2-0", tier=SwitchTier.T2, index=0)
        assert switch.kind == NodeKind.SWITCH
        assert switch.pod is None

    def test_host_kind(self):
        host = Host(name="h", tor="tor0", pod=0, index=1)
        assert host.kind == NodeKind.HOST

    def test_switch_tier_ordering(self):
        assert SwitchTier.TOR < SwitchTier.T1 < SwitchTier.T2 < SwitchTier.T3

    def test_link_level_values(self):
        assert LinkLevel.HOST == 0
        assert LinkLevel.LEVEL1 == 1
        assert LinkLevel.LEVEL2 == 2


class TestLinkAggregationGroup:
    def test_not_down_until_all_members_fail(self):
        lag = LinkAggregationGroup(link=Link.of("a", "b"), members=["m1", "m2"])
        assert not lag.is_down
        lag.fail_member("m1")
        assert not lag.is_down
        lag.fail_member("m2")
        assert lag.is_down

    def test_restore_member(self):
        lag = LinkAggregationGroup(link=Link.of("a", "b"), members=["m1"])
        lag.fail_member("m1")
        assert lag.is_down
        lag.restore_member("m1")
        assert not lag.is_down

    def test_unknown_member_raises(self):
        lag = LinkAggregationGroup(link=Link.of("a", "b"), members=["m1"])
        with pytest.raises(ValueError):
            lag.fail_member("m99")

    def test_empty_lag_is_never_down(self):
        lag = LinkAggregationGroup(link=Link.of("a", "b"))
        assert not lag.is_down
