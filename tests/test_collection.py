"""Collection smoke test: the whole suite must collect from the repo root.

Guards against the conftest-shadowing regression the seed shipped with, where
``from conftest import ...`` in ``tests/`` resolved to ``benchmarks/conftest.py``
and five modules failed at import time before a single test ran.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _collect(*pytest_args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "pytest", "--collect-only", "-q", *pytest_args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestCollection:
    def test_default_collection_has_zero_errors(self):
        """``python -m pytest --collect-only`` from the repo root succeeds."""
        proc = _collect()
        # Any collection error (like the seed's conftest shadowing, which hit
        # five modules with ImportError) makes pytest exit non-zero and print
        # an "N errors" summary line.
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "tests collected" in proc.stdout, proc.stdout

    def test_benchmarks_collect_alongside_tests(self):
        """Collecting tests/ and benchmarks/ together must not shadow either."""
        proc = _collect("tests", "benchmarks")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "tests collected" in proc.stdout, proc.stdout
