"""Unit tests for the five-tuple abstraction."""

from __future__ import annotations

import pytest

from repro.routing.fivetuple import FiveTuple


class TestFiveTuple:
    def test_defaults_to_tcp(self):
        flow = FiveTuple("a", "b", 1000, 443)
        assert flow.protocol == 6

    def test_reversed_swaps_endpoints(self):
        flow = FiveTuple("a", "b", 1000, 443)
        rev = flow.reversed()
        assert rev.src_ip == "b" and rev.dst_ip == "a"
        assert rev.src_port == 443 and rev.dst_port == 1000
        assert rev.reversed() == flow

    def test_with_destination_rewrites_dip(self):
        flow = FiveTuple("a", "vip:storage", 1000, 443)
        data = flow.with_destination("dip-host")
        assert data.dst_ip == "dip-host"
        assert data.dst_port == 443
        assert data.src_ip == flow.src_ip

    def test_with_destination_can_rewrite_port(self):
        flow = FiveTuple("a", "vip", 1000, 443)
        assert flow.with_destination("d", 8443).dst_port == 8443

    def test_with_source_rewrites_snat(self):
        flow = FiveTuple("a", "b", 1000, 443)
        nat = flow.with_source("nat", 40000)
        assert nat.src_ip == "nat" and nat.src_port == 40000

    def test_invalid_port_raises(self):
        with pytest.raises(ValueError):
            FiveTuple("a", "b", -1, 443)
        with pytest.raises(ValueError):
            FiveTuple("a", "b", 1000, 70000)

    def test_invalid_protocol_raises(self):
        with pytest.raises(ValueError):
            FiveTuple("a", "b", 1, 2, protocol=300)

    def test_canonical_key_is_direction_sensitive(self):
        flow = FiveTuple("a", "b", 1000, 443)
        assert flow.canonical_key() != flow.reversed().canonical_key()

    def test_hashable(self):
        flow = FiveTuple("a", "b", 1000, 443)
        assert flow in {flow}

    def test_ordering_is_deterministic(self):
        flows = [FiveTuple("b", "a", 2, 1), FiveTuple("a", "b", 1, 2)]
        assert sorted(flows)[0].src_ip == "a"
