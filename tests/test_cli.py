"""Tests for the repro-007 command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenario_defaults(self):
        args = build_parser().parse_args(["scenario"])
        assert args.command == "scenario"
        assert args.bad_links == 1

    def test_experiment_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_theory_arguments(self):
        args = build_parser().parse_args(["theory", "--pods", "4", "--tmax", "50"])
        assert args.pods == 4 and args.tmax == 50

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.fabric == "medium"
        assert args.events == 1_000_000
        assert args.shards == "1,2,4"
        assert args.engine == "both"
        assert args.json == "BENCH_service.json"

    def test_bench_rejects_unknown_fabric(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--fabric", "galactic"])


class TestCommands:
    def test_scenario_command_output(self):
        out = io.StringIO()
        code = main(
            [
                "scenario",
                "--pods", "2",
                "--tors-per-pod", "4",
                "--t1-per-pod", "2",
                "--t2", "2",
                "--hosts-per-tor", "2",
                "--bad-links", "1",
                "--drop-rate", "0.01",
                "--connections-per-host", "25",
                "--seed", "3",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "injected failures" in text
        assert "top 5 voted links" in text
        assert "precision" in text

    def test_theory_command_output(self):
        out = io.StringIO()
        code = main(["theory", "--pods", "2"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "Theorem 1" in text
        assert "Theorem 2" in text

    def test_theory_single_pod_message(self):
        out = io.StringIO()
        main(["theory", "--pods", "1"], out=out)
        assert "requires at least two pods" in out.getvalue()

    def test_theory_too_many_bad_links(self):
        out = io.StringIO()
        main(["theory", "--pods", "2", "--bad-links", "10000"], out=out)
        assert "exceeds the detectable bound" in out.getvalue()

    def test_bench_command_writes_schema_valid_document(self, tmp_path):
        import json

        from repro.bench import validate_bench_report

        out = io.StringIO()
        target = tmp_path / "BENCH_service.json"
        code = main(
            [
                "bench",
                "--fabric", "tiny",
                "--events", "1200",
                "--epochs", "2",
                "--shards", "1,2",
                "--engine", "arrays",
                "--baseline-events", "400",
                "--json", str(target),
                "--artifacts-dir", str(tmp_path / "runs"),
                "--quiet",
            ],
            out=out,
        )
        assert code == 0
        assert "wrote schema-valid perf document" in out.getvalue()
        document = validate_bench_report(json.loads(target.read_text()))
        assert {
            (r["engine"], r["backend"], r["num_shards"])
            for r in document["runs"]
        } == {
            ("arrays", "inline", 1),
            ("arrays", "inline", 2),
        }
        assert sorted(p.name for p in (tmp_path / "runs").iterdir()) == [
            "bench_run_arrays_inline_shards1.json",
            "bench_run_arrays_inline_shards2.json",
        ]

    def test_bench_command_accepts_process_backend(self, tmp_path):
        import json

        from repro.bench import validate_bench_report

        out = io.StringIO()
        target = tmp_path / "BENCH_service.json"
        code = main(
            [
                "bench",
                "--fabric", "tiny",
                "--events", "1200",
                "--epochs", "2",
                "--shards", "1,2",
                "--engine", "arrays",
                "--backend", "inline,process",
                "--workers", "2",
                "--baseline-events", "400",
                "--json", str(target),
                "--quiet",
            ],
            out=out,
        )
        assert code == 0
        document = validate_bench_report(json.loads(target.read_text()))
        assert {
            (r["backend"], r["num_shards"]) for r in document["runs"]
        } == {("inline", 1), ("inline", 2), ("process", 2)}

    def test_bench_rejects_bad_backend(self):
        assert main(["bench", "--backend", "smoke-signals", "--quiet"]) == 2

    def test_bench_rejects_bad_shards(self):
        assert main(["bench", "--shards", "nope", "--quiet"]) == 2
        assert main(["bench", "--shards", "0", "--quiet"]) == 2


class TestCheckpointCommand:
    """``repro-007 checkpoint``: inspect / convert / merge on-disk checkpoints."""

    @pytest.fixture()
    def checkpoints(self, tmp_path):
        from repro.api import Zero07Service
        from repro.loadgen import EvidenceLoadGenerator

        generator = EvidenceLoadGenerator(
            fabric="tiny", events_per_epoch=400, seed=5
        )
        service = Zero07Service()
        service.ingest_batch(generator.epoch_events(0, tick=False), owned=True)
        base = service.checkpoint()
        base.save(tmp_path / "base.bin")
        service.ingest_batch(generator.epoch_events(1, tick=False), owned=True)
        service.checkpoint(base=base).save(tmp_path / "delta.bin")
        service.checkpoint().save(tmp_path / "full.json", format="json")
        return tmp_path

    def test_inspect_prints_format_kind_and_epochs(self, checkpoints):
        out = io.StringIO()
        assert main(
            ["checkpoint", "inspect", str(checkpoints / "base.bin")], out=out
        ) == 0
        text = out.getvalue()
        assert "binary checkpoint" in text
        assert "kind=service" in text
        assert "epoch 0" in text

        out = io.StringIO()
        assert main(
            ["checkpoint", "inspect", str(checkpoints / "delta.bin")], out=out
        ) == 0
        assert "(delta)" in out.getvalue()

        out = io.StringIO()
        assert main(
            ["checkpoint", "inspect", str(checkpoints / "full.json")], out=out
        ) == 0
        assert "json checkpoint" in out.getvalue()

    def test_convert_round_trips_between_serializations(self, checkpoints):
        from repro.api import Checkpoint

        out = io.StringIO()
        assert main(
            [
                "checkpoint", "convert",
                str(checkpoints / "base.bin"),
                str(checkpoints / "base.json"),
                "--format", "json",
            ],
            out=out,
        ) == 0
        original = Checkpoint.load(checkpoints / "base.bin").materialize()
        converted = Checkpoint.load(checkpoints / "base.json")
        assert converted.payload == original.payload

    def test_merge_reproduces_the_full_checkpoint(self, checkpoints):
        from repro.api import Checkpoint

        out = io.StringIO()
        assert main(
            [
                "checkpoint", "merge",
                str(checkpoints / "base.bin"),
                str(checkpoints / "delta.bin"),
                str(checkpoints / "merged.bin"),
            ],
            out=out,
        ) == 0
        merged = Checkpoint.load(checkpoints / "merged.bin").materialize()
        full = Checkpoint.load(checkpoints / "full.json")
        assert merged.payload == full.payload

    def test_merge_rejects_a_mismatched_base(self, checkpoints, capsys):
        # full.json is not the base the delta was taken against — the
        # fingerprint check must fail loudly instead of merging garbage.
        assert main(
            [
                "checkpoint", "merge",
                str(checkpoints / "full.json"),
                str(checkpoints / "delta.bin"),
                str(checkpoints / "bad.bin"),
            ],
            out=io.StringIO(),
        ) == 2
        assert "fingerprint" in capsys.readouterr().err
        assert not (checkpoints / "bad.bin").exists()

    def test_inspect_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(
            ["checkpoint", "inspect", str(tmp_path / "nope.bin")],
            out=io.StringIO(),
        ) == 2
        assert "error:" in capsys.readouterr().err
