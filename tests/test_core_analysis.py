"""Unit tests for the analysis agent and EpochReport."""

from __future__ import annotations

import pytest

from repro.core.analysis import AnalysisAgent
from repro.core.blame import BlameConfig
from repro.discovery.agent import DiscoveredPath
from repro.routing.fivetuple import FiveTuple
from repro.topology.elements import DirectedLink

BAD = DirectedLink("t1-0", "tor0")


def _path(flow_id, links, retransmissions=1):
    return DiscoveredPath(
        flow_id=flow_id,
        five_tuple=FiveTuple("h1", "h2", 1000 + flow_id, 443),
        src_host="h1",
        dst_host="h2",
        links=links,
        complete=True,
        retransmissions=retransmissions,
    )


def _failure_paths(count=20):
    paths = []
    for i in range(count):
        links = [
            DirectedLink(f"h{i}", f"tor{i % 4}"),
            DirectedLink(f"tor{i % 4}", BAD.src),
            BAD,
            DirectedLink(BAD.dst, f"hd{i % 3}"),
        ]
        paths.append(_path(i, links))
    return paths


class TestAnalyzeEpoch:
    def test_report_structure(self):
        agent = AnalysisAgent()
        report = agent.analyze_epoch(3, _failure_paths())
        assert report.epoch == 3
        assert report.num_paths_analyzed == 20
        assert report.ranked_links[0][0] == BAD
        assert BAD in report.detected_links
        assert report.tally.num_flows == 20

    def test_flow_causes_point_to_bad_link(self):
        agent = AnalysisAgent()
        report = agent.analyze_epoch(0, _failure_paths())
        assert all(cause == BAD for cause in report.flow_causes.values())
        assert report.cause_of_flow(0) == BAD
        assert report.cause_of_flow(9999) is None

    def test_noise_flows_not_attributed_by_default(self):
        # Enough failure-driven flows that a single lone drop elsewhere stays
        # below Algorithm 1's 1% vote threshold and is classified as noise.
        paths = _failure_paths(60)
        noise = _path(500, [DirectedLink("hx", "torx"), DirectedLink("torx", "hy")])
        agent = AnalysisAgent()
        report = agent.analyze_epoch(0, paths + [noise])
        assert 500 in report.noise.noise_flows
        assert 500 not in report.flow_causes

    def test_noise_flows_attributed_when_requested(self):
        paths = _failure_paths(60)
        noise = _path(500, [DirectedLink("hx", "torx"), DirectedLink("torx", "hy")])
        agent = AnalysisAgent(attribute_noise_flows=True)
        report = agent.analyze_epoch(0, paths + [noise])
        assert 500 in report.flow_causes

    def test_empty_epoch(self):
        agent = AnalysisAgent()
        report = agent.analyze_epoch(0, [])
        assert report.detected_links == []
        assert report.flow_causes == {}
        assert report.num_paths_analyzed == 0
        assert "0 flows" in report.summary()

    def test_custom_blame_config_used(self):
        agent = AnalysisAgent(blame_config=BlameConfig(threshold_fraction=0.9))
        report = agent.analyze_epoch(0, _failure_paths())
        # With a 90% threshold only the dominant link can qualify.
        assert len(report.detected_links) <= 1
        assert agent.blame_config.threshold_fraction == 0.9

    def test_unit_vote_policy(self):
        agent = AnalysisAgent(vote_policy="unit")
        report = agent.analyze_epoch(0, _failure_paths(5))
        assert report.tally.policy == "unit"
        assert report.tally.votes_of(BAD) == pytest.approx(5.0)

    def test_summary_mentions_top_link(self):
        agent = AnalysisAgent()
        report = agent.analyze_epoch(0, _failure_paths())
        assert str(BAD) in report.summary()

    def test_top_links_limit(self):
        agent = AnalysisAgent()
        report = agent.analyze_epoch(0, _failure_paths())
        assert len(report.top_links(3)) == 3


class TestAnalyzeEpochs:
    def test_multiple_epochs_sorted(self):
        agent = AnalysisAgent()
        reports = agent.analyze_epochs({2: _failure_paths(5), 1: _failure_paths(3)})
        assert [r.epoch for r in reports] == [1, 2]
        assert reports[0].num_paths_analyzed == 3
