"""Unit tests for the experiment result containers."""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentPoint, ExperimentResult


class TestExperimentPoint:
    def test_as_row_merges_parameters_and_metrics(self):
        point = ExperimentPoint(parameters={"k": 2}, metrics={"accuracy": 0.9})
        assert point.as_row() == {"k": 2, "accuracy": 0.9}


class TestExperimentResult:
    @pytest.fixture()
    def result(self):
        result = ExperimentResult(name="Figure X", description="demo")
        result.add_point({"k": 2}, {"accuracy": 0.9, "recall": 1.0})
        result.add_point({"k": 6}, {"accuracy": 0.8, "recall": 0.7})
        return result

    def test_rows(self, result):
        rows = result.rows()
        assert len(rows) == 2
        assert rows[0]["k"] == 2
        assert rows[1]["accuracy"] == 0.8

    def test_columns_order(self, result):
        assert result.columns() == ["k", "accuracy", "recall"]

    def test_metric_series(self, result):
        assert result.metric_series("accuracy") == [0.9, 0.8]
        assert result.metric_series("missing") == []

    def test_format_table_contains_values(self, result):
        table = result.format_table()
        assert "Figure X" in table
        assert "0.900" in table
        assert "recall" in table

    def test_format_empty_result(self):
        empty = ExperimentResult(name="empty")
        assert "no data" in empty.format_table()

    def test_points_with_different_columns(self):
        result = ExperimentResult(name="mixed")
        result.add_point({"a": 1}, {"x": 0.5})
        result.add_point({"b": 2}, {"y": 0.6})
        table = result.format_table()
        assert "a" in table and "b" in table and "x" in table and "y" in table
