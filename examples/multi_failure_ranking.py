#!/usr/bin/env python3
"""Ranking simultaneous failures and comparing 007 against the optimization baselines.

The operators' problem from the paper's introduction: in a large network a
handful of links are bad at any time and fixes must be prioritised by customer
impact.  This example injects six failures with very different drop rates,
runs 007 for a few epochs, and prints

* the vote-based link ranking (the "heat map" used for prioritisation),
* Algorithm 1's detected set with precision/recall against ground truth, and
* the same detection metrics for the greedy binary program (MAX COVERAGE) and
  the integer program, showing the noise sensitivity the paper reports.

Run with:  python examples/multi_failure_ranking.py
"""

from __future__ import annotations

from repro.baselines.binary_program import solve_binary_program
from repro.baselines.integer_program import solve_integer_program
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.metrics.evaluation import detection_precision_recall


def main() -> None:
    config = ScenarioConfig(
        npod=2,
        n0=10,
        n1=4,
        n2=4,
        hosts_per_tor=3,
        num_bad_links=6,
        drop_rate_range=(5e-4, 1e-2),
        epochs=2,
        seed=42,
    )
    result = run_scenario(config)
    report = result.reports[-1]
    truth = {l: r for l, r in result.failure_scenario.drop_rates.items()}

    print("injected failures (ground truth):")
    for link, rate in sorted(truth.items(), key=lambda kv: -kv[1]):
        print(f"  {rate:7.3%}  {link}")

    print("\n007 vote ranking (top 10):")
    for link, votes in report.top_links(10):
        marker = f"   <-- failed at {truth[link]:.3%}" if link in truth else ""
        print(f"  {votes:7.2f}  {link}{marker}")

    score_007 = result.detection_007(epoch_index=len(result.reports) - 1)
    print(
        f"\nAlgorithm 1: {len(report.detected_links)} links flagged, "
        f"precision {score_007.precision:.0%}, recall {score_007.recall:.0%}"
    )

    routing, counts = result.baseline_inputs(epoch_index=len(result.reports) - 1)
    binary = solve_binary_program(routing, exact=False)
    integer = solve_integer_program(routing, counts, exact=False)
    for name, blamed in (("binary program (greedy set cover)", binary.blamed_links),
                         ("integer program", integer.blamed_links)):
        score = detection_precision_recall(blamed, result.true_bad_links())
        print(
            f"{name}: {len(blamed)} links blamed, "
            f"precision {score.precision:.0%}, recall {score.recall:.0%}"
        )


if __name__ == "__main__":
    main()
