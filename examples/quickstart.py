#!/usr/bin/env python3
"""Quickstart: deploy 007 over a small Clos fabric and localise a lossy link.

Builds a 2-pod Clos topology, injects one silently-dropping link, runs one
30-second epoch of the full 007 pipeline (TCP monitoring -> traceroute-based
path discovery -> voting analysis) and prints the link ranking, the detected
problematic links and the per-flow diagnosis accuracy.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.pipeline import SystemConfig, Zero07System
from repro.netsim.failures import FailureInjector
from repro.netsim.links import LinkStateTable
from repro.netsim.traffic import UniformTraffic
from repro.topology.clos import ClosParameters, ClosTopology


def main() -> None:
    # 1. A small Clos datacenter: 2 pods x 8 ToRs x 4 T1s, 4 T2 spines.
    topology = ClosTopology(ClosParameters(npod=2, n0=8, n1=4, n2=4, hosts_per_tor=3))
    print(topology.describe())

    # 2. Per-link drop state: healthy links drop at ~1e-6, one link misbehaves.
    link_table = LinkStateTable(topology, rng=1)
    injector = FailureInjector(topology, link_table, rng=1)
    scenario = injector.inject_random_failures(1, drop_rate_range=(5e-3, 5e-3))
    bad_link = scenario.bad_links[0]
    print(f"injected failure: {bad_link} at drop rate {scenario.drop_rates[bad_link]:.2%}")

    # 3. Traffic: every host opens 40 connections per epoch to random remote hosts.
    traffic = UniformTraffic(topology, connections_per_host=60, packets_per_flow=100)

    # 4. Deploy 007 and run one epoch.
    system = Zero07System(topology, traffic, link_table, SystemConfig(), rng=7)
    sim_result, report = system.run_epoch(0)

    print()
    print(report.summary())
    print("\ntop 5 voted links:")
    for link, votes in report.top_links(5):
        marker = "  <-- injected failure" if link == bad_link else ""
        print(f"  {votes:6.2f}  {link}{marker}")

    print("\nlinks flagged by Algorithm 1:", [str(l) for l in report.detected_links])

    # 5. Score the per-flow diagnosis against the simulator's ground truth.
    flows_hit = [
        f for f in sim_result.flows if f.has_retransmission and f.true_drop_link() == bad_link
    ]
    correct = sum(1 for f in flows_hit if report.cause_of_flow(f.flow_id) == bad_link)
    if flows_hit:
        print(
            f"\nper-flow diagnosis: {correct}/{len(flows_hit)} flows that lost packets on "
            f"the bad link were attributed to it ({correct / len(flows_hit):.0%})"
        )


if __name__ == "__main__":
    main()
