#!/usr/bin/env python3
"""Beyond packet drops: latency diagnosis and fleet-wide link health.

Two of the paper's discussion-section extensions in one script:

1. **Latency diagnosis (Section 9.2)** — a link silently adds 2 ms of queueing
   delay; thresholding smoothed RTTs and reusing the voting scheme points at
   the culprit cable.
2. **Multi-epoch aggregation (Section 8.3)** — a lossy link is tracked across
   several epochs; the aggregator surfaces it as a recurrent offender and
   reports the per-level breakdown operators use to prioritise repairs.

Run with:  python examples/latency_and_fleet_health.py
"""

from __future__ import annotations

from repro.core.aggregate import MultiEpochAggregator
from repro.core.latency import LatencyDiagnosis, RttObservation
from repro.core.pipeline import SystemConfig, Zero07System
from repro.netsim.failures import FailureInjector
from repro.netsim.latency import LinkLatencyModel
from repro.netsim.links import LinkStateTable
from repro.netsim.traffic import UniformTraffic
from repro.routing.ecmp import EcmpRouter
from repro.routing.fivetuple import FiveTuple
from repro.topology.clos import ClosParameters, ClosTopology


def latency_diagnosis(topology: ClosTopology) -> None:
    print("=== latency diagnosis (Section 9.2 extension) ===")
    router = EcmpRouter(topology, rng=3)
    latency = LinkLatencyModel(topology, rng=3)

    # A T1->ToR link develops 2 ms of extra queueing delay.
    hosts = sorted(topology.hosts)
    slow_path = router.route(FiveTuple(hosts[0], hosts[-1], 1000, 443), hosts[0], hosts[-1])
    slow_link = slow_path.links[-2]
    latency.inflate_link(slow_link, 2000.0)
    print(f"injected +2 ms of delay on {slow_link}")

    observations = []
    flow_id = 0
    for src in hosts:
        for port in range(1000, 1008):
            dst = hosts[(hosts.index(src) + 7) % len(hosts)]
            if dst == src or topology.host(dst).tor == topology.host(src).tor:
                continue
            flow = FiveTuple(src, dst, port, 443)
            path = router.route(flow, src, dst)
            observations.append(
                RttObservation.from_path(flow_id, latency.sample_smoothed_rtt(path), path)
            )
            flow_id += 1

    report = LatencyDiagnosis(baseline_multiplier=1.5).analyze(observations)
    print(
        f"{len(report.slow_flows)} of {len(observations)} flows exceeded the "
        f"{report.threshold_us:.0f} us threshold; top suspects:"
    )
    for link, votes in report.ranked_links[:3]:
        marker = "  <-- delayed link" if link.undirected() == slow_link.undirected() else ""
        print(f"  {votes:6.2f}  {link}{marker}")
    print()


def fleet_health(topology: ClosTopology) -> None:
    print("=== fleet-wide link health over a morning of epochs (Section 8.3) ===")
    link_table = LinkStateTable(topology, rng=9)
    injector = FailureInjector(topology, link_table, rng=9)
    scenario = injector.inject_random_failures(2, drop_rate_range=(2e-3, 8e-3))
    for link in scenario.bad_links:
        print(f"injected failure: {link} at {scenario.drop_rates[link]:.2%}")

    traffic = UniformTraffic(topology, connections_per_host=40, packets_per_flow=100)
    system = Zero07System(topology, traffic, link_table, SystemConfig(), rng=13)
    aggregator = MultiEpochAggregator(topology=topology)
    for epoch in range(6):
        _, report = system.run_epoch(epoch)
        aggregator.ingest(report)

    mean_detections, std_detections = aggregator.detections_per_epoch()
    print(f"\nlinks flagged per epoch: {mean_detections:.2f} +/- {std_detections:.2f}")
    print("recurrent offenders (detected in >= 3 epochs):")
    for record in aggregator.recurrent_offenders(min_epochs_detected=3):
        marker = "  <-- injected failure" if record.link in set(scenario.bad_links) else ""
        print(
            f"  {record.link}: detected in {record.epochs_detected}/6 epochs, "
            f"avg {record.mean_votes_when_voted:.1f} votes{marker}"
        )
    print("detection breakdown by link level:", aggregator.detection_breakdown_by_level())


def main() -> None:
    topology = ClosTopology(ClosParameters(npod=2, n0=8, n1=4, n2=4, hosts_per_tor=3))
    latency_diagnosis(topology)
    fleet_health(topology)


if __name__ == "__main__":
    main()
