#!/usr/bin/env python3
"""Diagnosing VM reboots caused by network drops (the paper's motivating workload).

VM images are mounted over the network from a storage service; even brief
outages on the path panic the guest and reboot it, and in the paper's
datacenters 70% of such reboots had no explanation from existing monitoring.
This example marks a quarter of all flows as storage (image-mount) flows,
injects a couple of lossy links, lets the VM-reboot model fire, and shows the
culprit link 007 names for every reboot.

Run with:  python examples/vm_reboot_diagnosis.py
"""

from __future__ import annotations

from collections import Counter

from repro.core.pipeline import SystemConfig, Zero07System
from repro.experiments.sec83_vm_reboots import StorageTraffic
from repro.netsim.failures import FailureInjector, VmRebootModel
from repro.netsim.links import LinkStateTable
from repro.topology.clos import ClosParameters, ClosTopology
from repro.topology.elements import LinkLevel


def main() -> None:
    topology = ClosTopology(ClosParameters(npod=2, n0=8, n1=4, n2=4, hosts_per_tor=3))
    link_table = LinkStateTable(topology, rng=5)
    injector = FailureInjector(topology, link_table, rng=5)
    scenario = injector.inject_random_failures(
        2,
        drop_rate_range=(5e-3, 3e-2),
        levels=(LinkLevel.HOST, LinkLevel.LEVEL1),
    )
    print("injected failures:")
    for link in scenario.bad_links:
        print(f"  {link} at {scenario.drop_rates[link]:.2%}")

    traffic = StorageTraffic(
        topology, connections_per_host=40, packets_per_flow=100, storage_fraction=0.25
    )
    system = Zero07System(topology, traffic, link_table, SystemConfig(), rng=11)
    reboot_model = VmRebootModel(retransmission_threshold=3)

    total_reboots = 0
    explained = Counter()
    for epoch in range(4):
        sim_result, report = system.run_epoch(epoch)
        reboots = reboot_model.reboots_for_epoch(sim_result.flows)
        total_reboots += len(reboots)
        for reboot in reboots:
            cause = None
            for flow in sim_result.flows:
                if (
                    flow.kind == "storage"
                    and flow.src_host == reboot.host
                    and flow.has_retransmission
                ):
                    cause = report.cause_of_flow(flow.flow_id)
                    break
            if cause is None and report.detected_links:
                cause = report.detected_links[0]
            label = str(cause) if cause is not None else "unexplained"
            explained[label] += 1
            print(
                f"epoch {epoch}: VM on {reboot.host} rebooted "
                f"({reboot.retransmissions} retransmissions on its image mount) "
                f"-> blamed link: {label}"
            )

    print(f"\n{total_reboots} reboots total; blame breakdown:")
    for label, count in explained.most_common():
        print(f"  {count:3d}  {label}")


if __name__ == "__main__":
    main()
