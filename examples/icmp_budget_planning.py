#!/usr/bin/env python3
"""Capacity-planning the deployment with the paper's theorems.

Before rolling 007 out, an operator wants to know (a) how many traceroutes per
second each host may send without exceeding the switches' ICMP budget
(Theorem 1) and (b) how much background noise the voting scheme tolerates while
still ranking genuinely bad links on top (Theorem 2), for datacenters of
different sizes.

Run with:  python examples/icmp_budget_planning.py
"""

from __future__ import annotations

from repro.theory.theorem1 import traceroute_rate_bound
from repro.theory.theorem2 import (
    error_probability_bound,
    max_detectable_bad_links,
    noise_tolerance_bound,
    retransmission_probability,
    vote_probability_bounds,
)
from repro.topology.clos import ClosParameters


def main() -> None:
    sizes = [
        ("small",  ClosParameters(npod=2, n0=20, n1=8, n2=8, hosts_per_tor=20)),
        ("medium", ClosParameters(npod=4, n0=48, n1=8, n2=16, hosts_per_tor=24)),
        ("large",  ClosParameters(npod=8, n0=48, n1=16, n2=16, hosts_per_tor=40)),
    ]
    tmax = 100
    bad_drop_rate = 5e-4       # 0.05%, the lowest rate the paper targets
    packets_lower, packets_upper = 50, 100
    num_bad_links = 10

    header = (
        f"{'fabric':8s} {'hosts':>8s} {'links':>8s} {'Ct (tr/s)':>10s} "
        f"{'max k':>7s} {'pg tolerance':>13s} {'err bound (N=2e7)':>18s}"
    )
    print(header)
    print("-" * len(header))
    for name, params in sizes:
        ct = traceroute_rate_bound(params, tmax=tmax)
        k_max = max_detectable_bad_links(params)
        pg = noise_tolerance_bound(
            params, bad_drop_rate, num_bad_links, packets_lower, packets_upper
        )
        # For the error bound use a *typical* production noise level (the paper
        # cites drop rates below 1e-8 on healthy links), not the worst case pg.
        rb = retransmission_probability(bad_drop_rate, packets_lower)
        rg = retransmission_probability(1e-8, packets_upper)
        vb, vg = vote_probability_bounds(params, rb, rg, num_bad_links)
        err = error_probability_bound(20_000_000, vote_prob_good=vg, vote_prob_bad=vb)
        print(
            f"{name:8s} {params.num_hosts:8d} {params.num_links:8d} {ct:10.2f} "
            f"{k_max:7.1f} {pg:13.2e} {err:18.2e}"
        )

    print(
        "\nReading the table: every host may start up to Ct traceroutes per second "
        "without any switch exceeding "
        f"{tmax} ICMP responses/s; up to 'max k' simultaneously failed links are "
        "rankable; good links may drop up to 'pg tolerance' per packet before noise "
        "threatens the ranking; and the probability of mis-ranking decays to the "
        "quoted bound with one million monitored connections."
    )


if __name__ == "__main__":
    main()
