"""Benchmark: regenerate Figure 3 (accuracy vs #failed links, Theorem 2 regime)."""

from bench_helpers import run_experiment

from repro.experiments.fig03_accuracy_optimal import run_fig03


def test_bench_fig03_accuracy(benchmark):
    result = run_experiment(
        benchmark, run_fig03, failed_link_counts=(2, 6, 10), trials=2, seed=1
    )
    accuracies = result.metric_series("accuracy_007")
    # Paper: average accuracy above ~96% in the Theorem 2 regime.
    assert all(a >= 0.7 for a in accuracies)
