"""Benchmark: regenerate Figure 6 (impact of noise on accuracy)."""

from bench_helpers import run_experiment

from repro.experiments.fig06_noise import run_fig06


def test_bench_fig06_noise(benchmark):
    result = run_experiment(
        benchmark, run_fig06, noise_levels=(1e-6, 1e-5, 5e-5), trials=2, seed=1
    )
    accuracies = result.metric_series("accuracy_007")
    # 007 should stay accurate as noise increases (paper: little sensitivity).
    assert min(accuracies) >= 0.6
