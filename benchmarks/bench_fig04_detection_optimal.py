"""Benchmark: regenerate Figure 4 (Algorithm 1 precision/recall, Theorem 2 regime)."""

from bench_helpers import run_experiment

from repro.experiments.fig04_detection_optimal import run_fig04


def test_bench_fig04_detection(benchmark):
    result = run_experiment(
        benchmark, run_fig04, failed_link_counts=(2, 6, 10), trials=2, seed=1
    )
    recalls = result.metric_series("recall_007")
    assert all(r >= 0.5 for r in recalls)
