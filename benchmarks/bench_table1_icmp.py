"""Benchmark: regenerate Table 1 (ICMP responses per second per switch)."""

from bench_helpers import run_experiment

from repro.experiments.table1_icmp import run_table1


def test_bench_table1_icmp(benchmark):
    result = run_experiment(benchmark, run_table1, epochs=6, num_bad_links=4, seed=1)
    ours = result.points[0].metrics
    # Theorem 1's budget must hold: the max per-second rate stays below Tmax.
    assert ours["max_T"] <= ours["tmax"]
