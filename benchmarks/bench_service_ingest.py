"""Benchmarks + speedup enforcement of the streaming service's ingest paths.

The perf contract this PR introduced: on a fabric-scale loadgen workload the
vectorized ``ingest_batch(owned=True)`` path must beat per-event ``ingest()``
by **>= 5x** on the arrays engine — the acceptance-grade measurement lives in
the committed ``BENCH_service.json`` (1M events, medium fabric) and is
enforced deterministically by ``tests/test_bench_artifact.py``.  The floors
asserted *here* are live regression canaries sized for noisy shared runners
(steal and co-tenant load can only compress an observed ratio); on quiet
hardware the arrays ratio measures 5-6x.  Bit-identity of the two paths is
enforced in tier-1 (``tests/test_properties_loadgen.py``,
``tests/test_api_sharded_adversarial.py``).

Speedup assertions compare paired back-to-back timings of the two modes on
the identical deterministic stream.  GC stays enabled during timed sections —
exactly like `repro bench` and any real deployment — because collector
pressure is part of what the per-event path costs (one defensive path copy
per event) and the batch path avoids.

Noise model: the per-event path is compute-bound (stable under co-tenant
load), while the batch path is memory-bound (contention compresses its
throughput, and with it the observed ratio — always downward, never upward).
The measurement therefore escalates repetitions and keeps the best paired
observation: on a quiet machine it converges in the first round; on a noisy
one it keeps sampling until a clean window shows the true ratio.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.api import EpochTick, ShardedService, Zero07Service
from repro.loadgen import EvidenceLoadGenerator, WorkloadProfile
from repro.testing import report_signature

EVENTS_PER_EPOCH = 125_000
EPOCHS = 2
PROFILE = WorkloadProfile.skewed(hot_tor_fraction=0.3)


def fresh_workload():
    """The deterministic benchmark stream, freshly generated.

    Fresh objects per measurement (generation is never timed) match the
    ``repro bench`` methodology: both ingest modes pay the same first-touch
    cost for the event objects, exactly like a service consuming a live
    stream would.
    """
    generator = EvidenceLoadGenerator(
        "medium", PROFILE, seed=3, events_per_epoch=EVENTS_PER_EPOCH
    )
    return [generator.epoch_events(epoch, tick=False) for epoch in range(EPOCHS)]


@pytest.fixture(scope="module")
def workload():
    return fresh_workload()


def ingest_time(make_service, mode):
    """(wall, cpu) ingest seconds (ticks excluded) over a fresh workload."""
    service = make_service()
    wall = 0.0
    cpu = 0.0
    for epoch, events in enumerate(fresh_workload()):
        gc.collect()  # each timed section starts from a clean collector slate
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        if mode == "per-event":
            ingest = service.ingest
            for event in events:
                ingest(event)
        else:
            service.ingest_batch(events, owned=False if mode == "batch" else True)
        cpu += time.process_time() - cpu_start
        wall += time.perf_counter() - wall_start
        service.ingest(EpochTick(epoch))
    return wall, cpu


def measured_speedup(make_service, target: float, max_reps: int = 10) -> float:
    """Best paired ratio of per-event vs batch-owned ingest.

    Each pair is timed back to back (seconds apart) on both the wall clock
    and the process CPU clock, and contributes the better of its two ratios:
    CPU time is immune to descheduling/steal, wall time is immune to
    frequency accounting — co-tenant noise can only *compress* either ratio,
    never inflate it, so the best pair is the closest observation of the
    uncontended ratio.  Stops early once ``target`` is met; otherwise keeps
    sampling up to ``max_reps`` pairs and reports the best seen.
    """
    best = 0.0
    for _ in range(max_reps):
        per_wall, per_cpu = ingest_time(make_service, "per-event")
        batch_wall, batch_cpu = ingest_time(make_service, "batch-owned")
        best = max(best, per_wall / batch_wall, per_cpu / batch_cpu)
        if best >= target:
            break
    return best


def test_speedup_arrays_unsharded():
    """Live canary for the 5x acceptance bar (recorded in BENCH_service.json).

    Early-stops as soon as a clean window shows the full 5x; the hard floor
    is what a heavily contended single-vCPU runner still reproduces.
    """
    speedup = measured_speedup(lambda: Zero07Service(engine="arrays"), target=5.0)
    assert speedup >= 3.5, f"vectorized ingest only {speedup:.2f}x faster"


@pytest.mark.parametrize("num_shards", [2, 4])
def test_speedup_sharded(num_shards):
    """Sharded fleets route per flow at the facade, so the bar is lower —
    but the batched path must still be far ahead."""
    speedup = measured_speedup(
        lambda: ShardedService(num_shards=num_shards, engine="arrays"), target=3.0
    )
    assert speedup >= 2.0, f"sharded({num_shards}) batch only {speedup:.2f}x faster"


def test_speedup_dicts():
    """The dict oracle folds votes link-by-link in both modes (the fold order
    is the bit-identity contract), so its ceiling is lower; the batch path
    must still clearly win on dispatch + copy overhead."""
    speedup = measured_speedup(lambda: Zero07Service(engine="dicts"), target=1.8)
    assert speedup >= 1.3, f"dict-engine batch only {speedup:.2f}x faster"


def test_batch_and_per_event_remain_bit_identical_here_too(workload):
    """Belt and braces next to the timing: the streams used for the numbers
    above produce identical reports on both paths."""
    per_event = Zero07Service(retain_reports=EPOCHS)
    batch = Zero07Service(retain_reports=EPOCHS)
    for epoch, events in enumerate(workload):
        for event in events:
            per_event.ingest(event)
        per_event.ingest(EpochTick(epoch))
        batch.ingest_batch(events, owned=False)
        batch.ingest(EpochTick(epoch))
    for epoch in range(EPOCHS):
        assert report_signature(per_event.report(epoch)) == report_signature(
            batch.report(epoch)
        )


def test_bench_ingest_batch_throughput(benchmark, workload):
    """pytest-benchmark visibility of the vectorized path's events/sec."""
    def run():
        service = Zero07Service()
        for epoch, events in enumerate(workload):
            service.ingest_batch(events, owned=False)
            service.ingest(EpochTick(epoch))

    benchmark.pedantic(run, rounds=3, iterations=1)
