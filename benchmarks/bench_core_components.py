"""Micro-benchmarks of the core components (overhead story of Section 3).

The paper stresses that 007 is lightweight: negligible CPU, tiny memory, and
an analysis step cheap enough to run centrally every 30 seconds.  These
micro-benchmarks measure the throughput of the building blocks: ECMP routing,
flow transfer simulation, vote tallying, Algorithm 1 (in both the dict
reference engine and the vectorized array engine), and traceroute path
discovery.
"""

from __future__ import annotations

import pytest

from repro.core.arrays import ArrayVoteTally, LinkIndex
from repro.core.blame import BlameConfig, find_problematic_links
from repro.core.votes import VoteTally
from repro.discovery.icmp import IcmpRateLimiter
from repro.discovery.traceroute import TracerouteEngine
from repro.netsim.links import LinkStateTable
from repro.netsim.tcp import simulate_transfer, simulate_transfers_batch
from repro.routing.ecmp import EcmpRouter
from repro.routing.fivetuple import FiveTuple
from repro.topology.clos import ClosParameters, ClosTopology


@pytest.fixture(scope="module")
def fabric():
    topology = ClosTopology(ClosParameters(npod=2, n0=10, n1=4, n2=4, hosts_per_tor=3))
    router = EcmpRouter(topology, rng=0)
    link_table = LinkStateTable(topology, rng=0)
    hosts = sorted(topology.hosts)
    return topology, router, link_table, hosts


def _flow(i: int, hosts) -> tuple[FiveTuple, str, str]:
    src = hosts[i % len(hosts)]
    dst = hosts[(i * 7 + 13) % len(hosts)]
    if dst == src:
        dst = hosts[(i * 7 + 14) % len(hosts)]
    return FiveTuple(src, dst, 1024 + i, 443), src, dst


def test_bench_ecmp_routing(benchmark, fabric):
    """Route 1000 flows through the fabric, no path cache (the seed baseline)."""
    topology, _, _, hosts = fabric
    router = EcmpRouter(topology, rng=0, cache_paths=False)

    def route_many():
        for i in range(1000):
            flow, src, dst = _flow(i, hosts)
            router.route(flow, src, dst)

    benchmark(route_many)


def test_bench_ecmp_routing_cached(benchmark, fabric):
    """Route the same 1000 flows with the per-epoch path cache warm.

    Compare against ``test_bench_ecmp_routing``: this is the steady-state cost
    the epoch simulator pays when data packets, traceroutes and later epochs
    re-route the same five-tuples.
    """
    topology, router, _, hosts = fabric
    for i in range(1000):  # warm the cache
        flow, src, dst = _flow(i, hosts)
        router.route(flow, src, dst)

    def route_many_cached():
        for i in range(1000):
            flow, src, dst = _flow(i, hosts)
            router.route(flow, src, dst)

    benchmark(route_many_cached)


def test_bench_flow_transfer(benchmark, fabric):
    """Simulate the TCP transfer of 500 flows of 100 packets, one at a time."""
    topology, router, link_table, hosts = fabric
    paths = []
    for i in range(500):
        flow, src, dst = _flow(i, hosts)
        paths.append(router.route(flow, src, dst))

    def transfer_many():
        for i, path in enumerate(paths):
            simulate_transfer(path, 100, link_table, rng=i)

    benchmark(transfer_many)


def test_bench_flow_transfer_batched(benchmark, fabric):
    """The same 500 transfers as one vectorized batch.

    Compare against ``test_bench_flow_transfer``: this is the path the epoch
    simulator takes since the batched engine landed.
    """
    topology, router, link_table, hosts = fabric
    paths = []
    for i in range(500):
        flow, src, dst = _flow(i, hosts)
        paths.append(router.route(flow, src, dst))

    benchmark(simulate_transfers_batch, paths, 100, link_table, rng=0)


def test_bench_vote_tally_and_blame(benchmark, fabric):
    """Tally votes for 2000 failed flows and run Algorithm 1 (dict engine)."""
    topology, router, _, hosts = fabric
    link_lists = []
    for i in range(2000):
        flow, src, dst = _flow(i, hosts)
        link_lists.append(router.route(flow, src, dst).links)

    def tally_and_blame():
        tally = VoteTally()
        for flow_id, links in enumerate(link_lists):
            tally.add_flow(flow_id, links)
        return find_problematic_links(tally, BlameConfig())

    benchmark(tally_and_blame)


def test_bench_vote_tally_and_blame_arrays(benchmark, fabric):
    """The same 2000-flow tally + Algorithm 1 on the vectorized array engine.

    Compare against ``test_bench_vote_tally_and_blame``: identical output
    (bit-for-bit), but the support scan and the discounting loop run over a
    CSR path matrix instead of per-flow contribution lists.
    """
    topology, router, _, hosts = fabric
    link_lists = []
    for i in range(2000):
        flow, src, dst = _flow(i, hosts)
        link_lists.append(router.route(flow, src, dst).links)

    def tally_and_blame_arrays():
        tally = ArrayVoteTally(index=LinkIndex())
        for flow_id, links in enumerate(link_lists):
            tally.add_flow(flow_id, links)
        return find_problematic_links(tally, BlameConfig())

    benchmark(tally_and_blame_arrays)


@pytest.fixture(scope="module")
def medium_link_lists():
    """1000 routed flows on a medium fabric (npod=4, n0=24) for the engine duel."""
    topology = ClosTopology(ClosParameters(npod=4, n0=24, n1=8, n2=8, hosts_per_tor=6))
    router = EcmpRouter(topology, rng=0)
    hosts = sorted(topology.hosts)
    link_lists = []
    for i in range(1000):
        flow, src, dst = _flow(i, hosts)
        link_lists.append(router.route(flow, src, dst).links)
    return link_lists


def test_bench_tally_blame_medium_dicts(benchmark, medium_link_lists):
    """Dict engine on the medium fabric: the O(links x flows) support scan bites."""

    def tally_and_blame():
        tally = VoteTally()
        for flow_id, links in enumerate(medium_link_lists):
            tally.add_flow(flow_id, links)
        return find_problematic_links(tally, BlameConfig())

    benchmark.pedantic(tally_and_blame, rounds=3, iterations=1)


def test_bench_tally_blame_medium_arrays(benchmark, medium_link_lists):
    """Array engine on the medium fabric — the acceptance target is >= 5x
    over ``test_bench_tally_blame_medium_dicts`` (measured ~200x)."""

    def tally_and_blame_arrays():
        tally = ArrayVoteTally(index=LinkIndex())
        for flow_id, links in enumerate(medium_link_lists):
            tally.add_flow(flow_id, links)
        return find_problematic_links(tally, BlameConfig())

    benchmark.pedantic(tally_and_blame_arrays, rounds=3, iterations=1)


def test_bench_traceroute(benchmark, fabric):
    """Trace 500 flows with the crafted-probe engine."""
    topology, router, link_table, hosts = fabric
    engine = TracerouteEngine(router, link_table, IcmpRateLimiter(), rng=0)

    def trace_many():
        for i in range(500):
            flow, src, dst = _flow(i, hosts)
            engine.trace(flow, src, dst, time_s=float(i % 30))

    benchmark(trace_many)
