"""Benchmark: regenerate Figure 12 (heavily skewed drop rates across failures)."""

from bench_helpers import run_experiment

from repro.experiments.fig12_skewed_drop_rates import run_fig12


def test_bench_fig12_skewed_drop_rates(benchmark):
    result = run_experiment(
        benchmark, run_fig12, failed_link_counts=(2, 6, 10), trials=2, seed=1
    )
    # Paper's shape: precision stays high even with heavily skewed drop rates,
    # while recall degrades as the dominant failure inflates the threshold.
    precisions = result.metric_series("precision_007")
    assert all(p >= 0.5 for p in precisions)
    recalls = result.metric_series("recall_007")
    assert all(0.0 <= r <= 1.0 for r in recalls)
