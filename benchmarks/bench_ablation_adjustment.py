"""Ablation benchmark: Algorithm 1 vote re-adjustment step on/off."""

from bench_helpers import run_experiment

from repro.experiments.ablations import run_adjustment_ablation


def test_bench_ablation_adjustment(benchmark):
    result = run_experiment(benchmark, run_adjustment_ablation, trials=2, seed=1)
    by_adjustment = {p.parameters["adjustment"]: p.metrics for p in result.points}
    # The adjustment exists to curb false positives: precision with it should
    # be at least as good as without it (paper reports a ~5% FP reduction).
    assert by_adjustment["paths"]["precision_007"] >= by_adjustment["none"]["precision_007"] - 0.05
