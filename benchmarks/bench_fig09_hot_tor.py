"""Benchmark: regenerate Figure 9 (hot ToR skew sweep)."""

from bench_helpers import run_experiment

from repro.experiments.fig09_hot_tor import run_fig09


def test_bench_fig09_hot_tor(benchmark):
    result = run_experiment(
        benchmark,
        run_fig09,
        skews=(0.1, 0.5, 0.7),
        failed_link_counts=(1, 5, 10),
        trials=1,
        seed=1,
    )
    assert len(result.points) == 9
