"""Benchmark: regenerate Figure 13 (test-cluster vote gap distribution)."""

from bench_helpers import run_experiment

from repro.experiments.fig13_testcluster_votes import run_fig13


def test_bench_fig13_testcluster(benchmark):
    result = run_experiment(benchmark, run_fig13, epochs=4, seed=1)
    # Higher drop rates must widen the bad-vs-good vote gap (monotone trend).
    gaps = result.metric_series("median_vote_gap")
    assert gaps[0] >= gaps[-1]
