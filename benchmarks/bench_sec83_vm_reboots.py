"""Benchmark: regenerate the Section 8.3 / Figure 14 VM-reboot diagnosis."""

from bench_helpers import run_experiment

from repro.experiments.sec83_vm_reboots import run_sec83


def test_bench_sec83_vm_reboots(benchmark):
    result = run_experiment(benchmark, run_sec83, epochs=6, seed=1)
    point = result.points[0]
    # Every reboot should receive a named cause (paper: a link found per case).
    assert point.metrics["total_reboots"] >= 1
    assert point.metrics["frac_reboots_with_cause_named"] >= 0.8
