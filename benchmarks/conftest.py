"""Shared helpers for the benchmark targets.

Every benchmark regenerates one table or figure of the paper at a scaled-down
configuration (documented in EXPERIMENTS.md), measures how long the
regeneration takes via pytest-benchmark, and prints the regenerated rows so
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction report.
"""

from __future__ import annotations

import pytest


def run_experiment(benchmark, fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` once under pytest-benchmark and print its table."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
    print()
    print(result.format_table())
    return result


@pytest.fixture
def report(capsys):
    """Fixture that disables output capture teardown issues for table printing."""
    yield
