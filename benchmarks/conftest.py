"""Benchmark-directory conftest (shared helpers live in ``bench_helpers``)."""
