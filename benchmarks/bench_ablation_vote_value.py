"""Ablation benchmark: 1/h votes vs unit votes."""

from bench_helpers import run_experiment

from repro.experiments.ablations import run_vote_policy_ablation


def test_bench_ablation_vote_value(benchmark):
    result = run_experiment(benchmark, run_vote_policy_ablation, trials=2, seed=1)
    assert {p.parameters["vote_policy"] for p in result.points} == {"inverse_hops", "unit"}
