"""Benchmark: regenerate the Section 8.2 Everflow cross-validation."""

from bench_helpers import run_experiment

from repro.experiments.sec82_everflow_validation import run_sec82


def test_bench_sec82_everflow(benchmark):
    result = run_experiment(benchmark, run_sec82, epochs=3, seed=1)
    point = result.points[0]
    # Paper: 007 matched Everflow in every compared case; paths matched exactly.
    assert point.metrics["path_match_rate"] >= 0.9
