"""Benchmark: regenerate Figure 1 (motivation CDFs)."""

from bench_helpers import run_experiment

from repro.experiments.fig01_motivation import run_fig01


def test_bench_fig01_motivation(benchmark):
    result = run_experiment(benchmark, run_fig01, epochs=6, num_bad_links=3, seed=1)
    panel_1a = [p for p in result.points if p.parameters["panel"] == "1a"]
    assert panel_1a, "Figure 1a rows must be produced"
