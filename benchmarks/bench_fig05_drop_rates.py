"""Benchmark: regenerate Figure 5 (accuracy vs failed-link drop rates)."""

from bench_helpers import run_experiment

from repro.experiments.fig05_drop_rates import run_fig05


def test_bench_fig05_drop_rates(benchmark):
    result = run_experiment(benchmark, run_fig05, trials=2, seed=1)
    assert len(result.points) >= 8
