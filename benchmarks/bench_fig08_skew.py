"""Benchmark: regenerate Figure 8 (skewed traffic)."""

from bench_helpers import run_experiment

from repro.experiments.fig08_skew import run_fig08


def test_bench_fig08_skew(benchmark):
    result = run_experiment(benchmark, run_fig08, trials=2, seed=1)
    assert len(result.points) >= 8
