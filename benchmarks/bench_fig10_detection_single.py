"""Benchmark: regenerate Figure 10 (Algorithm 1 vs drop rate, single failure)."""

from bench_helpers import run_experiment

from repro.experiments.fig10_detection_single import run_fig10


def test_bench_fig10_detection_single(benchmark):
    result = run_experiment(benchmark, run_fig10, trials=2, seed=1)
    # At the higher drop rates detection should be reliable.
    high_rate_points = [p for p in result.points if p.parameters["drop_rate"] >= 5e-3]
    assert all(p.metrics["recall_007"] >= 0.5 for p in high_rate_points)
