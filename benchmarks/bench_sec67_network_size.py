"""Benchmark: regenerate the Section 6.7 network-size study."""

from bench_helpers import run_experiment

from repro.experiments.sec67_network_size import run_sec67


def test_bench_sec67_network_size(benchmark):
    result = run_experiment(
        benchmark, run_sec67, pod_counts=(1, 2, 3), trials=1, seed=1, many_failures=20
    )
    assert len(result.points) == 4
