"""Benchmark: regenerate Figure 11 (impact of failed-link location)."""

from bench_helpers import run_experiment

from repro.experiments.fig11_link_location import run_fig11


def test_bench_fig11_link_location(benchmark):
    result = run_experiment(
        benchmark, run_fig11, drop_rates=(1e-3, 5e-3, 1e-2), trials=2, seed=1
    )
    locations = {p.parameters["location"] for p in result.points}
    assert locations == {"ToR-T1", "T1-T2", "T2-T1", "T1-ToR"}
