"""Benchmark: regenerate the Section 7.2 two-link test-cluster experiment."""

from bench_helpers import run_experiment

from repro.experiments.sec72_two_links import run_sec72


def test_bench_sec72_two_links(benchmark):
    result = run_experiment(benchmark, run_sec72, epochs=3, seed=1)
    point = result.points[0]
    # Paper: ~90% of flows attributed to the correct (higher drop rate) link.
    assert point.metrics["per_connection_accuracy"] >= 0.6
