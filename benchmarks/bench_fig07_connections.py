"""Benchmark: regenerate Figure 7 (random per-host connection counts)."""

from bench_helpers import run_experiment

from repro.experiments.fig07_connections import run_fig07


def test_bench_fig07_connections(benchmark):
    result = run_experiment(benchmark, run_fig07, trials=2, seed=1)
    assert len(result.points) >= 8
