"""Shared helpers for the benchmark targets.

Every benchmark regenerates one table or figure of the paper at a scaled-down
configuration (documented in EXPERIMENTS.md), measures how long the
regeneration takes via pytest-benchmark, and prints the regenerated rows so
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction report.

This module is deliberately *not* named ``conftest``: helper imports from a
conftest resolve against whichever conftest pytest loaded first (rootdir
dependent), which once made ``tests/`` modules import the benchmarks conftest.
A unique module name can never shadow or be shadowed.
"""

from __future__ import annotations


def run_experiment(benchmark, fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` once under pytest-benchmark and print its table."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
    print()
    print(result.format_table())
    return result
