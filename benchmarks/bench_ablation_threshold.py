"""Ablation benchmark: Algorithm 1 detection-threshold sweep."""

from bench_helpers import run_experiment

from repro.experiments.ablations import run_threshold_ablation


def test_bench_ablation_threshold(benchmark):
    result = run_experiment(
        benchmark, run_threshold_ablation, thresholds=(0.005, 0.01, 0.05), trials=2, seed=1
    )
    # Higher thresholds cannot increase recall (fewer links pass the bar).
    recalls = result.metric_series("recall_007")
    assert recalls[0] >= recalls[-1] - 1e-9
