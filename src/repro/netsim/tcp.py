"""Flow-level TCP transfer model.

A connection sends ``num_packets`` data packets along its path.  Each link
drops each arriving packet independently with the link's drop probability.
TCP is reliable: every dropped packet is detected (fast retransmit or RTO) and
retransmitted in a later round, where it is again exposed to drops.  The
number of *retransmissions* observed by the sender equals the total number of
drops across rounds — this is exactly the signal ETW reports to the 007
monitoring agent.

The model deliberately stays at the flow level (no per-packet sequence
numbers, no congestion window): the paper's own evaluation uses the same
abstraction, and Theorem 2 only depends on the probability that a connection
sees at least one drop on a given link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.netsim.links import LinkStateTable
from repro.routing.paths import Path
from repro.topology.elements import DirectedLink
from repro.util.rng import RngLike, ensure_rng


@dataclass
class TransferResult:
    """Outcome of transferring one connection's packets over its path."""

    num_packets: int
    packets_delivered: int
    packets_lost: int
    retransmissions: int
    drops_by_link: Dict[DirectedLink, int] = field(default_factory=dict)
    rounds: int = 1
    connection_failed: bool = False

    @property
    def has_retransmission(self) -> bool:
        """True when the sender observed at least one retransmission."""
        return self.retransmissions > 0

    @property
    def total_drops(self) -> int:
        """Total packets dropped across all transmission rounds."""
        return int(sum(self.drops_by_link.values()))

    def dominant_drop_link(self) -> Optional[DirectedLink]:
        """The link that dropped the most packets (ground truth for accuracy).

        Ties are broken deterministically by link ordering.  Returns ``None``
        when no packet was dropped.
        """
        if not self.drops_by_link:
            return None
        return max(sorted(self.drops_by_link), key=lambda l: self.drops_by_link[l])


def simulate_transfer(
    path: Path,
    num_packets: int,
    link_table: LinkStateTable,
    rng: RngLike = None,
    max_rounds: int = 4,
) -> TransferResult:
    """Simulate a TCP transfer of ``num_packets`` packets along ``path``.

    Parameters
    ----------
    path:
        The (forward) path of the connection.
    num_packets:
        Number of distinct data packets to deliver.
    link_table:
        Per-link drop probabilities.
    rng:
        Seed or generator.
    max_rounds:
        Maximum number of transmission rounds (original + retransmissions).
        Packets still undelivered after ``max_rounds`` mark the connection as
        failed — the VM-reboot model keys off this flag.

    Returns
    -------
    TransferResult
        Drop counts per link, retransmission count and delivery statistics.
    """
    if num_packets < 0:
        raise ValueError("num_packets must be >= 0")
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    generator = ensure_rng(rng)

    drop_probs = [link_table.drop_probability(link) for link in path.links]
    drops_by_link: Dict[DirectedLink, int] = {}
    delivered = 0
    outstanding = num_packets
    rounds = 0

    while outstanding > 0 and rounds < max_rounds:
        rounds += 1
        in_flight = outstanding
        for link, p in zip(path.links, drop_probs):
            if in_flight == 0:
                break
            if p <= 0.0:
                continue
            dropped = int(generator.binomial(in_flight, p)) if p < 1.0 else in_flight
            if dropped:
                drops_by_link[link] = drops_by_link.get(link, 0) + dropped
                in_flight -= dropped
        delivered += in_flight
        outstanding -= in_flight

    total_drops = int(sum(drops_by_link.values()))
    return TransferResult(
        num_packets=num_packets,
        packets_delivered=delivered,
        packets_lost=outstanding,
        retransmissions=total_drops,
        drops_by_link=drops_by_link,
        rounds=max(rounds, 1),
        connection_failed=outstanding > 0,
    )


def probability_of_retransmission(
    path: Path, num_packets: int, link_table: LinkStateTable
) -> float:
    """Analytic probability that a transfer over ``path`` sees >= 1 retransmission.

    ``1 - prod_l (1 - p_l)^n`` — used by the theory module and by tests as an
    oracle for the Monte-Carlo model above (first-round approximation).
    """
    if num_packets <= 0:
        return 0.0
    log_ok = 0.0
    for link in path.links:
        p = link_table.drop_probability(link)
        if p >= 1.0:
            return 1.0
        log_ok += num_packets * np.log1p(-p)
    return float(1.0 - np.exp(log_ok))
