"""Flow-level TCP transfer model.

A connection sends ``num_packets`` data packets along its path.  Each link
drops each arriving packet independently with the link's drop probability.
TCP is reliable: every dropped packet is detected (fast retransmit or RTO) and
retransmitted in a later round, where it is again exposed to drops.  The
number of *retransmissions* observed by the sender equals the total number of
drops across rounds — this is exactly the signal ETW reports to the 007
monitoring agent.

The model deliberately stays at the flow level (no per-packet sequence
numbers, no congestion window): the paper's own evaluation uses the same
abstraction, and Theorem 2 only depends on the probability that a connection
sees at least one drop on a given link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.netsim.links import LinkStateTable
from repro.routing.paths import Path
from repro.topology.elements import DirectedLink
from repro.util.rng import RngLike, ensure_rng


@dataclass
class TransferResult:
    """Outcome of transferring one connection's packets over its path."""

    num_packets: int
    packets_delivered: int
    packets_lost: int
    retransmissions: int
    drops_by_link: Dict[DirectedLink, int] = field(default_factory=dict)
    rounds: int = 1
    connection_failed: bool = False

    @property
    def has_retransmission(self) -> bool:
        """True when the sender observed at least one retransmission."""
        return self.retransmissions > 0

    @property
    def total_drops(self) -> int:
        """Total packets dropped across all transmission rounds."""
        return int(sum(self.drops_by_link.values()))

    def dominant_drop_link(self) -> Optional[DirectedLink]:
        """The link that dropped the most packets (ground truth for accuracy).

        Ties are broken deterministically by link ordering.  Returns ``None``
        when no packet was dropped.
        """
        if not self.drops_by_link:
            return None
        return max(sorted(self.drops_by_link), key=lambda l: self.drops_by_link[l])


def simulate_transfer(
    path: Path,
    num_packets: int,
    link_table: LinkStateTable,
    rng: RngLike = None,
    max_rounds: int = 4,
) -> TransferResult:
    """Simulate a TCP transfer of ``num_packets`` packets along ``path``.

    Parameters
    ----------
    path:
        The (forward) path of the connection.
    num_packets:
        Number of distinct data packets to deliver.
    link_table:
        Per-link drop probabilities.
    rng:
        Seed or generator.
    max_rounds:
        Maximum number of transmission rounds (original + retransmissions).
        Packets still undelivered after ``max_rounds`` mark the connection as
        failed — the VM-reboot model keys off this flag.

    Returns
    -------
    TransferResult
        Drop counts per link, retransmission count and delivery statistics.
    """
    if num_packets < 0:
        raise ValueError("num_packets must be >= 0")
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    generator = ensure_rng(rng)

    drop_probs = np.array(
        [link_table.drop_probability(link) for link in path.links], dtype=float
    )
    pvals = _round_outcome_pvals(drop_probs)
    num_links = len(path.links)
    drops = np.zeros(num_links, dtype=np.int64)
    delivered = 0
    outstanding = num_packets
    rounds = 0

    while outstanding > 0 and rounds < max_rounds:
        rounds += 1
        counts = generator.multinomial(outstanding, pvals)
        drops += counts[:num_links]
        delivered += int(counts[num_links])
        outstanding -= int(counts[num_links])

    drops_by_link = {
        link: int(count) for link, count in zip(path.links, drops) if count
    }
    return TransferResult(
        num_packets=num_packets,
        packets_delivered=delivered,
        packets_lost=outstanding,
        retransmissions=int(drops.sum()),
        drops_by_link=drops_by_link,
        rounds=max(rounds, 1),
        connection_failed=outstanding > 0,
    )


def _round_outcome_pvals(drop_probs: np.ndarray) -> np.ndarray:
    """Per-round outcome probabilities of one packet over a path.

    A packet traversing links with drop probabilities ``p_1 .. p_L`` is dropped
    at link ``j`` with probability ``p_j * prod_{k<j}(1 - p_k)`` and survives
    the whole path with probability ``prod_k (1 - p_k)`` — a single multinomial
    over ``L + 1`` outcomes, exactly equivalent in distribution to sampling a
    binomial chain link by link.  Supports a batched 2-D input of shape
    ``(num_flows, L)`` (pad short paths with drop probability 0).
    """
    survive = np.cumprod(1.0 - drop_probs, axis=-1)
    reach = np.concatenate(
        [np.ones_like(drop_probs[..., :1]), survive[..., :-1]], axis=-1
    )
    pvals = np.concatenate(
        [drop_probs * reach, survive[..., -1:]], axis=-1
    )
    # Guard against float round-off: rows must be non-negative and sum to 1.
    np.clip(pvals, 0.0, 1.0, out=pvals)
    pvals /= pvals.sum(axis=-1, keepdims=True)
    return pvals


def simulate_transfers_batch(
    paths: Sequence[Path],
    num_packets: Sequence[int] | int,
    link_table: LinkStateTable,
    rng: RngLike = None,
    max_rounds: int = 4,
) -> List[TransferResult]:
    """Simulate many TCP transfers at once with vectorized sampling.

    Equivalent in distribution to calling :func:`simulate_transfer` per flow,
    but the per-round losses of *all* flows are drawn with a single batched
    multinomial: each flow's link drop probabilities are stacked into one
    matrix (short paths padded with drop probability 0) and each round is one
    ``Generator.multinomial`` call over the whole batch.

    Parameters
    ----------
    paths:
        The (forward) path of every connection.
    num_packets:
        Per-flow packet counts, or one count shared by every flow.
    link_table, rng, max_rounds:
        As for :func:`simulate_transfer`.
    """
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    num_flows = len(paths)
    if isinstance(num_packets, (int, np.integer)):
        packets = np.full(num_flows, int(num_packets), dtype=np.int64)
    else:
        packets = np.asarray(num_packets, dtype=np.int64)
    if len(packets) != num_flows:
        raise ValueError("need one packet count per path")
    if np.any(packets < 0):
        raise ValueError("num_packets must be >= 0")
    if num_flows == 0:
        return []
    generator = ensure_rng(rng)

    hop_counts = np.array([len(path.links) for path in paths], dtype=np.int64)
    max_hops = int(hop_counts.max())
    probs = np.zeros((num_flows, max_hops), dtype=float)
    for i, path in enumerate(paths):
        probs[i, : hop_counts[i]] = [
            link_table.drop_probability(link) for link in path.links
        ]
    pvals = _round_outcome_pvals(probs)

    drops = np.zeros((num_flows, max_hops), dtype=np.int64)
    delivered = np.zeros(num_flows, dtype=np.int64)
    outstanding = packets.copy()
    rounds_taken = np.zeros(num_flows, dtype=np.int64)

    for _ in range(max_rounds):
        active = outstanding > 0
        if not active.any():
            break
        rounds_taken += active
        # Flows with outstanding == 0 draw all-zero rows, so no masking needed.
        counts = generator.multinomial(outstanding, pvals)
        drops += counts[:, :max_hops]
        delivered += counts[:, max_hops]
        outstanding -= counts[:, max_hops]

    results: List[TransferResult] = []
    for i, path in enumerate(paths):
        row = drops[i]
        drops_by_link = {
            link: int(count) for link, count in zip(path.links, row) if count
        }
        results.append(
            TransferResult(
                num_packets=int(packets[i]),
                packets_delivered=int(delivered[i]),
                packets_lost=int(outstanding[i]),
                retransmissions=int(row.sum()),
                drops_by_link=drops_by_link,
                rounds=max(int(rounds_taken[i]), 1),
                connection_failed=bool(outstanding[i] > 0),
            )
        )
    return results


def probability_of_retransmission(
    path: Path, num_packets: int, link_table: LinkStateTable
) -> float:
    """Analytic probability that a transfer over ``path`` sees >= 1 retransmission.

    ``1 - prod_l (1 - p_l)^n`` — used by the theory module and by tests as an
    oracle for the Monte-Carlo model above (first-round approximation).
    """
    if num_packets <= 0:
        return 0.0
    log_ok = 0.0
    for link in path.links:
        p = link_table.drop_probability(link)
        if p >= 1.0:
            return 1.0
        log_ok += num_packets * np.log1p(-p)
    return float(1.0 - np.exp(log_ok))
