"""The epoch-driven flow-level simulator.

Each epoch (30 s in the paper) the simulator asks the traffic generator for
connection demands, establishes each connection (optionally through the
software load balancer), routes it with ECMP, simulates its TCP transfer over
the per-link drop probabilities, and raises :class:`RetransmissionEvent`s to
subscribers (the 007 monitoring agent) exactly as ETW would on the end host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.netsim.events import ConnectionSetupFailureEvent, RetransmissionEvent
from repro.netsim.flows import FlowRecord
from repro.netsim.links import LinkStateTable
from repro.netsim.tcp import TransferResult, simulate_transfers_batch
from repro.netsim.traffic import TrafficDemand, TrafficGenerator
from repro.routing.ecmp import EcmpRouter, NoRouteError
from repro.routing.fivetuple import FiveTuple
from repro.routing.paths import Path
from repro.topology.clos import ClosTopology
from repro.util.rng import RngLike, ensure_rng

EventCallback = Callable[[object], None]

#: destination port used per flow kind (storage flows mimic SMB image mounts).
_PORT_BY_KIND = {"data": 443, "storage": 445, "background": 80}


class _PendingTransfer(TransferResult):
    """Placeholder result of an established flow awaiting its batched transfer."""

    def __init__(self, num_packets: int) -> None:
        super().__init__(
            num_packets=num_packets,
            packets_delivered=0,
            packets_lost=num_packets,
            retransmissions=0,
            drops_by_link={},
            connection_failed=True,
        )


@dataclass
class SimulationConfig:
    """Tunables of the epoch simulator."""

    epoch_duration_s: float = 30.0
    max_rounds: int = 4
    syn_retries: int = 3
    base_src_port: int = 1024
    simulate_setup_failures: bool = True
    #: how many established connections are simulated per vectorized TCP batch
    #: (bounds the working-set size of the stacked drop-probability matrices).
    transfer_batch_size: int = 4096


@dataclass
class EpochResult:
    """Everything that happened during one simulated epoch."""

    epoch: int
    flows: List[FlowRecord] = field(default_factory=list)
    retransmission_events: List[RetransmissionEvent] = field(default_factory=list)
    setup_failures: List[ConnectionSetupFailureEvent] = field(default_factory=list)

    @property
    def num_flows(self) -> int:
        """Number of connections attempted this epoch."""
        return len(self.flows)

    def flows_with_retransmissions(self) -> List[FlowRecord]:
        """The flows that suffered at least one retransmission."""
        return [f for f in self.flows if f.has_retransmission]

    @property
    def total_drops(self) -> int:
        """Total packets dropped across all flows this epoch."""
        return sum(f.result.total_drops for f in self.flows)

    def drops_by_flow(self) -> Dict[int, int]:
        """Mapping flow_id -> number of packets dropped (only flows with drops)."""
        return {
            f.flow_id: f.result.total_drops
            for f in self.flows
            if f.result.total_drops > 0
        }


class EpochSimulator:
    """Drives the network simulation epoch by epoch.

    Parameters
    ----------
    topology, router, link_table, traffic:
        The substrates to simulate over.
    slb:
        Optional :class:`~repro.slb.loadbalancer.SoftwareLoadBalancer`.  When
        present, connections are established against a VIP and the data
        packets carry the DIP chosen by the SLB, as in the paper's datacenter.
    config:
        Simulation tunables.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        topology: ClosTopology,
        router: EcmpRouter,
        link_table: LinkStateTable,
        traffic: TrafficGenerator,
        slb: Optional["SoftwareLoadBalancer"] = None,
        config: Optional[SimulationConfig] = None,
        rng: RngLike = 0,
    ) -> None:
        self._topology = topology
        self._router = router
        self._link_table = link_table
        self._traffic = traffic
        self._slb = slb
        self._config = config or SimulationConfig()
        self._rng = ensure_rng(rng)
        self._subscribers: List[EventCallback] = []
        self._next_flow_id = 0
        self._next_src_port = self._config.base_src_port

    # ------------------------------------------------------------------
    @property
    def topology(self) -> ClosTopology:
        return self._topology

    @property
    def router(self) -> EcmpRouter:
        return self._router

    @property
    def link_table(self) -> LinkStateTable:
        return self._link_table

    @property
    def config(self) -> SimulationConfig:
        return self._config

    @property
    def traffic(self) -> TrafficGenerator:
        """The traffic generator driving the epochs."""
        return self._traffic

    def set_traffic(self, traffic: TrafficGenerator) -> None:
        """Swap the traffic generator (time-varying scenarios shift workloads)."""
        self._traffic = traffic

    def subscribe(self, callback: EventCallback) -> None:
        """Register a callback invoked with every host-observable event."""
        self._subscribers.append(callback)

    # ------------------------------------------------------------------
    def run_epoch(self, epoch: int, demands: Optional[Sequence[TrafficDemand]] = None) -> EpochResult:
        """Simulate one epoch; returns its :class:`EpochResult`.

        The epoch runs in two phases.  First every demand is *established*:
        SLB VIP resolution, ECMP routing (served by the router's path cache
        for repeated five-tuple hash inputs) and the SYN handshake.  Then the
        established connections' TCP transfers are simulated in grouped
        vectorized batches instead of one flow at a time.
        """
        if demands is None:
            demands = self._traffic.generate(epoch, rng=self._rng)
        result = EpochResult(epoch=epoch)

        established = [
            flow
            for demand in demands
            if (flow := self._establish_connection(epoch, demand, result)) is not None
        ]
        self._transfer_batches(epoch, established, result)
        return result

    def run(self, num_epochs: int, start_epoch: int = 0) -> List[EpochResult]:
        """Simulate ``num_epochs`` consecutive epochs."""
        return [self.run_epoch(start_epoch + i) for i in range(num_epochs)]

    # ------------------------------------------------------------------
    def _establish_connection(
        self, epoch: int, demand: TrafficDemand, result: EpochResult
    ) -> Optional[FlowRecord]:
        """Set up one connection; returns its (transfer-less) flow record.

        Returns ``None`` when the network has no usable path at all.  When the
        SYN handshake fails, the record is returned with a failed
        :class:`TransferResult` already attached and appended to
        ``result.flows`` — the batch-transfer phase skips it.
        """
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        src_port = self._allocate_src_port()
        dst_port = _PORT_BY_KIND.get(demand.kind, 443)

        if self._slb is not None:
            app_tuple, data_tuple = self._slb.establish_connection(
                src_host=demand.src_host,
                dst_host=demand.dst_host,
                src_port=src_port,
                dst_port=dst_port,
            )
        else:
            data_tuple = FiveTuple(
                src_ip=demand.src_host,
                dst_ip=demand.dst_host,
                src_port=src_port,
                dst_port=dst_port,
            )
            app_tuple = data_tuple

        try:
            path = self._router.route(data_tuple, demand.src_host, demand.dst_host)
        except NoRouteError:
            # The network has no usable path (e.g. every uplink of the ToR is
            # down).  The application sees a connection timeout.
            event = ConnectionSetupFailureEvent(
                flow_id=flow_id,
                epoch=epoch,
                src_host=demand.src_host,
                dst_host=demand.dst_host,
                five_tuple=app_tuple,
            )
            result.setup_failures.append(event)
            self._publish(event)
            return None

        if self._config.simulate_setup_failures and self._setup_fails(path):
            event = ConnectionSetupFailureEvent(
                flow_id=flow_id,
                epoch=epoch,
                src_host=demand.src_host,
                dst_host=demand.dst_host,
                five_tuple=app_tuple,
            )
            result.setup_failures.append(event)
            self._publish(event)
            transfer_state: TransferResult = TransferResult(
                num_packets=demand.num_packets,
                packets_delivered=0,
                packets_lost=demand.num_packets,
                retransmissions=0,
                drops_by_link={},
                connection_failed=True,
            )
        else:
            transfer_state = _PendingTransfer(demand.num_packets)

        record = FlowRecord(
            flow_id=flow_id,
            epoch=epoch,
            five_tuple=app_tuple,
            src_host=demand.src_host,
            dst_host=demand.dst_host,
            path=path,
            result=transfer_state,
            kind=demand.kind,
        )
        result.flows.append(record)
        return record

    def _transfer_batches(
        self, epoch: int, records: Sequence[FlowRecord], result: EpochResult
    ) -> None:
        """Simulate the TCP transfers of every pending flow in grouped batches."""
        pending = [r for r in records if isinstance(r.result, _PendingTransfer)]
        batch_size = max(1, self._config.transfer_batch_size)
        for start in range(0, len(pending), batch_size):
            batch = pending[start : start + batch_size]
            transfers = simulate_transfers_batch(
                [record.path for record in batch],
                [record.result.num_packets for record in batch],
                self._link_table,
                rng=self._rng,
                max_rounds=self._config.max_rounds,
            )
            for record, transfer in zip(batch, transfers):
                record.result = transfer
                if transfer.has_retransmission:
                    event = RetransmissionEvent(
                        flow_id=record.flow_id,
                        epoch=epoch,
                        src_host=record.src_host,
                        dst_host=record.dst_host,
                        five_tuple=record.five_tuple,
                        retransmissions=transfer.retransmissions,
                        timestamp=float(
                            self._rng.uniform(0, self._config.epoch_duration_s)
                        ),
                    )
                    result.retransmission_events.append(event)
                    self._publish(event)

    def _setup_fails(self, path: Path) -> bool:
        """True when the SYN handshake fails ``syn_retries`` times in a row."""
        for _ in range(self._config.syn_retries):
            if not self._packet_dropped(path):
                return False
        return True

    def _packet_dropped(self, path: Path) -> bool:
        """Simulate one packet traversal; True when it is dropped anywhere."""
        for link in path.links:
            p = self._link_table.drop_probability(link)
            if p > 0.0 and self._rng.random() < p:
                return True
        return False

    def _allocate_src_port(self) -> int:
        port = self._next_src_port
        self._next_src_port += 1
        if self._next_src_port > 65535:
            self._next_src_port = self._config.base_src_port
        return port

    def _publish(self, event: object) -> None:
        for callback in self._subscribers:
            callback(event)
