"""Traffic generators: who talks to whom, how many packets, per epoch.

The paper's simulation setup: every host establishes a fixed (or uniformly
random) number of connections per epoch to hosts under a random ToR outside
its own rack, with up to 100 packets per connection.  The skewed and hot-ToR
variants reproduce the Section 6.5 experiments.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.topology.clos import ClosTopology
from repro.util.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class TrafficDemand:
    """One connection to establish during an epoch."""

    src_host: str
    dst_host: str
    num_packets: int
    kind: str = "data"


def _sample_packets(
    rng: np.random.Generator, packets_per_flow: int | Tuple[int, int]
) -> int:
    """Draw the packet count of one flow from a fixed value or inclusive range."""
    if isinstance(packets_per_flow, tuple):
        low, high = packets_per_flow
        return int(rng.integers(low, high + 1))
    return int(packets_per_flow)


def _sample_connection_count(
    rng: np.random.Generator, connections_per_host: int | Tuple[int, int]
) -> int:
    """Draw the per-host connection count (fixed or uniform range, Section 6.4)."""
    if isinstance(connections_per_host, tuple):
        low, high = connections_per_host
        return int(rng.integers(low, high + 1))
    return int(connections_per_host)


class TrafficGenerator(abc.ABC):
    """Base class for per-epoch traffic generation."""

    def __init__(
        self,
        topology: ClosTopology,
        connections_per_host: int | Tuple[int, int] = 60,
        packets_per_flow: int | Tuple[int, int] = 100,
    ) -> None:
        self._topology = topology
        self._connections_per_host = connections_per_host
        self._packets_per_flow = packets_per_flow
        self._hosts = sorted(topology.hosts)

    @property
    def topology(self) -> ClosTopology:
        """The topology demands are generated for."""
        return self._topology

    @property
    def connections_per_host(self) -> int | Tuple[int, int]:
        """The configured per-host connection count (fixed value or range)."""
        return self._connections_per_host

    @property
    def packets_per_flow(self) -> int | Tuple[int, int]:
        """The configured per-flow packet count (fixed value or range)."""
        return self._packets_per_flow

    @abc.abstractmethod
    def pick_destination(
        self, rng: np.random.Generator, src_host: str
    ) -> Optional[str]:
        """Pick the destination host for one connection from ``src_host``."""

    def generate(self, epoch: int, rng: RngLike = None) -> List[TrafficDemand]:
        """Generate the connection demands for one epoch."""
        generator = ensure_rng(rng)
        demands: List[TrafficDemand] = []
        for src in self._hosts:
            count = _sample_connection_count(generator, self._connections_per_host)
            for _ in range(count):
                dst = self.pick_destination(generator, src)
                if dst is None or dst == src:
                    continue
                demands.append(
                    TrafficDemand(
                        src_host=src,
                        dst_host=dst,
                        num_packets=_sample_packets(generator, self._packets_per_flow),
                    )
                )
        return demands

    # ------------------------------------------------------------------
    def _hosts_outside_rack(self, src_host: str) -> List[str]:
        """Hosts under a different ToR than ``src_host`` (the default victims)."""
        src_tor = self._topology.host(src_host).tor
        return [h for h in self._hosts if self._topology.host(h).tor != src_tor]


class UniformTraffic(TrafficGenerator):
    """Each host talks to uniformly random hosts outside its own rack."""

    def pick_destination(
        self, rng: np.random.Generator, src_host: str
    ) -> Optional[str]:
        candidates = self._hosts_outside_rack(src_host)
        if not candidates:
            return None
        return candidates[int(rng.integers(0, len(candidates)))]


class SkewedTraffic(TrafficGenerator):
    """Section 6.5 skew: a fraction of flows target hosts under a few hot ToRs.

    Parameters
    ----------
    hot_tors:
        Names of the hot ToR switches.  When omitted, ``num_hot_tors`` ToRs
        are chosen deterministically (the first ones in sorted order).
    hot_fraction:
        Probability that a connection targets a host under a hot ToR
        (the paper uses 0.8 with 25% of ToRs hot).
    """

    def __init__(
        self,
        topology: ClosTopology,
        connections_per_host: int | Tuple[int, int] = 60,
        packets_per_flow: int | Tuple[int, int] = 100,
        hot_tors: Optional[Sequence[str]] = None,
        num_hot_tors: int = 10,
        hot_fraction: float = 0.8,
    ) -> None:
        super().__init__(topology, connections_per_host, packets_per_flow)
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        all_tors = [s.name for s in topology.tors()]
        if hot_tors is None:
            hot_tors = all_tors[: min(num_hot_tors, len(all_tors))]
        unknown = set(hot_tors) - set(all_tors)
        if unknown:
            raise ValueError(f"unknown hot ToRs: {sorted(unknown)}")
        self._hot_tors = list(hot_tors)
        self._hot_fraction = hot_fraction
        self._hot_hosts = [
            h for h in self._hosts if topology.host(h).tor in set(self._hot_tors)
        ]

    @property
    def hot_tors(self) -> List[str]:
        """The ToRs receiving the skewed share of traffic."""
        return list(self._hot_tors)

    def pick_destination(
        self, rng: np.random.Generator, src_host: str
    ) -> Optional[str]:
        src_tor = self._topology.host(src_host).tor
        if rng.random() < self._hot_fraction:
            candidates = [
                h for h in self._hot_hosts if self._topology.host(h).tor != src_tor
            ]
        else:
            candidates = self._hosts_outside_rack(src_host)
        if not candidates:
            candidates = self._hosts_outside_rack(src_host)
        if not candidates:
            return None
        return candidates[int(rng.integers(0, len(candidates)))]


class HotTorTraffic(SkewedTraffic):
    """Section 6.5 "hot ToR": a single sink ToR attracts a fraction of all flows."""

    def __init__(
        self,
        topology: ClosTopology,
        hot_tor: Optional[str] = None,
        skew: float = 0.5,
        connections_per_host: int | Tuple[int, int] = 60,
        packets_per_flow: int | Tuple[int, int] = 100,
    ) -> None:
        all_tors = [s.name for s in topology.tors()]
        if hot_tor is None:
            hot_tor = all_tors[0]
        super().__init__(
            topology,
            connections_per_host=connections_per_host,
            packets_per_flow=packets_per_flow,
            hot_tors=[hot_tor],
            hot_fraction=skew,
        )

    @property
    def hot_tor(self) -> str:
        """The single sink ToR."""
        return self._hot_tors[0]


class ReplayTraffic(TrafficGenerator):
    """Replays a recorded list of demands, one list per epoch (Section 7 setup).

    Epochs beyond the recorded trace wrap around, mimicking the paper's replay
    of a 6-hour production capture with shifted start times.
    """

    def __init__(
        self,
        topology: ClosTopology,
        demands_per_epoch: Sequence[Sequence[TrafficDemand]],
    ) -> None:
        super().__init__(topology)
        if not demands_per_epoch:
            raise ValueError("demands_per_epoch must not be empty")
        self._trace = [list(epoch) for epoch in demands_per_epoch]

    def pick_destination(
        self, rng: np.random.Generator, src_host: str
    ) -> Optional[str]:  # pragma: no cover - not used by replay
        raise NotImplementedError("ReplayTraffic replays recorded demands")

    def generate(self, epoch: int, rng: RngLike = None) -> List[TrafficDemand]:
        return list(self._trace[epoch % len(self._trace)])
