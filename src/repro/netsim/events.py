"""Host-observable events raised by the simulator.

These play the role of the Windows ETW notifications used in production: the
TCP monitoring agent subscribes to them and reacts to retransmissions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.routing.fivetuple import FiveTuple


@dataclass(frozen=True)
class RetransmissionEvent:
    """A flow suffered one or more TCP retransmissions."""

    flow_id: int
    epoch: int
    src_host: str
    dst_host: str
    five_tuple: FiveTuple
    retransmissions: int
    timestamp: float = 0.0


@dataclass(frozen=True)
class ConnectionSetupFailureEvent:
    """TCP connection establishment itself failed (SYN lost repeatedly).

    007 does not trigger path discovery for these flows (Section 4.2).
    """

    flow_id: int
    epoch: int
    src_host: str
    dst_host: str
    five_tuple: FiveTuple
    timestamp: float = 0.0
