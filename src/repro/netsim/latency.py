"""Per-link latency model (used by the Section 9.2 latency-diagnosis extension).

Each directed link has a propagation/processing delay and an optional extra
queueing delay when it is congested or misbehaving.  A flow's RTT sample is
the sum of link delays along the forward path plus the reverse-path delay
(approximated as the same path traversed backwards) plus log-normal jitter —
enough structure for the RTT-thresholding extension of 007 to have a real
signal to detect, without simulating queues packet by packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.routing.paths import Path
from repro.topology.elements import DirectedLink
from repro.topology.topology import Topology
from repro.util.rng import RngLike, ensure_rng

#: per-hop base delay in microseconds (typical datacenter store-and-forward).
DEFAULT_HOP_DELAY_US = 10.0
#: multiplicative jitter applied to every RTT sample.
DEFAULT_JITTER_SIGMA = 0.05


class LinkLatencyModel:
    """Per-link one-way delays with inflation for misbehaving links."""

    def __init__(
        self,
        topology: Topology,
        base_delay_us: float = DEFAULT_HOP_DELAY_US,
        jitter_sigma: float = DEFAULT_JITTER_SIGMA,
        rng: RngLike = 0,
    ) -> None:
        if base_delay_us <= 0:
            raise ValueError("base_delay_us must be positive")
        if jitter_sigma < 0:
            raise ValueError("jitter_sigma must be >= 0")
        self._topology = topology
        self._jitter_sigma = jitter_sigma
        self._rng = ensure_rng(rng)
        self._delay_us: Dict[DirectedLink, float] = {
            link: base_delay_us for link in topology.directed_links()
        }
        self._inflated: Dict[DirectedLink, float] = {}

    # ------------------------------------------------------------------
    def delay_of(self, link: DirectedLink) -> float:
        """Current one-way delay (µs) of a directed link."""
        return self._delay_us[link] + self._inflated.get(link, 0.0)

    def inflate_link(self, link: DirectedLink, extra_us: float) -> None:
        """Add queueing/processing delay to a link (congestion, failing optics)."""
        if extra_us < 0:
            raise ValueError("extra_us must be >= 0")
        if link not in self._delay_us:
            raise KeyError(f"unknown link {link}")
        self._inflated[link] = extra_us

    def clear_inflation(self, link: DirectedLink) -> None:
        """Remove any extra delay from a link."""
        self._inflated.pop(link, None)

    @property
    def inflated_links(self) -> Dict[DirectedLink, float]:
        """Links currently carrying extra delay (ground truth for experiments)."""
        return dict(self._inflated)

    # ------------------------------------------------------------------
    def path_one_way_delay(self, path: Path) -> float:
        """Deterministic one-way delay (µs) of a path."""
        return float(sum(self.delay_of(link) for link in path.links))

    def sample_rtt(self, path: Path, reverse_path: Optional[Path] = None) -> float:
        """One RTT sample (µs) for a flow on ``path`` (jittered)."""
        forward = self.path_one_way_delay(path)
        if reverse_path is not None:
            backward = self.path_one_way_delay(reverse_path)
        else:
            backward = float(
                sum(self.delay_of(link.reversed()) for link in path.links)
            )
        jitter = float(np.exp(self._rng.normal(0.0, self._jitter_sigma))) if self._jitter_sigma else 1.0
        return (forward + backward) * jitter

    def sample_smoothed_rtt(
        self, path: Path, samples: int = 8, reverse_path: Optional[Path] = None
    ) -> float:
        """TCP-style smoothed RTT (µs): the EWMA of several samples."""
        if samples < 1:
            raise ValueError("samples must be >= 1")
        srtt = self.sample_rtt(path, reverse_path)
        for _ in range(samples - 1):
            srtt = 0.875 * srtt + 0.125 * self.sample_rtt(path, reverse_path)
        return float(srtt)
