"""Per-link packet-drop state: noise floors, injected failures, hard blackholes.

The table keys on *directed* links so that asymmetric failures (e.g. a
ToR->T1 direction dropping while T1->ToR is clean, Figure 11) can be
expressed.  Good links carry a small "noise" drop probability drawn uniformly
from ``(0, 1e-6)`` as in the paper's simulation setup; failed links carry a
higher, injected drop rate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.topology.elements import DirectedLink, Link
from repro.topology.topology import Topology
from repro.util.rng import RngLike, ensure_rng

DEFAULT_NOISE_LOW = 0.0
DEFAULT_NOISE_HIGH = 1e-6


class LinkStateTable:
    """Drop probabilities and up/down state for every directed link.

    Parameters
    ----------
    topology:
        Topology whose links are tracked.
    noise_low, noise_high:
        Range of the uniform noise drop probability assigned to good links.
    rng:
        Seed or generator used for the noise assignment.
    """

    def __init__(
        self,
        topology: Topology,
        noise_low: float = DEFAULT_NOISE_LOW,
        noise_high: float = DEFAULT_NOISE_HIGH,
        rng: RngLike = 0,
    ) -> None:
        if not 0.0 <= noise_low <= noise_high <= 1.0:
            raise ValueError("need 0 <= noise_low <= noise_high <= 1")
        self._topology = topology
        self._noise_low = noise_low
        self._noise_high = noise_high
        self._rng = ensure_rng(rng)
        self._drop_prob: Dict[DirectedLink, float] = {}
        self._failed: Set[DirectedLink] = set()
        self._down: Set[Link] = set()
        self.reset_noise()

    # ------------------------------------------------------------------
    # noise / reset
    # ------------------------------------------------------------------
    def reset_noise(self, rng: RngLike = None) -> None:
        """(Re)assign noise drop probabilities to every link and clear failures."""
        generator = ensure_rng(rng) if rng is not None else self._rng
        self._drop_prob = {
            link: float(generator.uniform(self._noise_low, self._noise_high))
            for link in self._topology.directed_links()
        }
        self._failed.clear()
        self._down.clear()

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def inject_failure(
        self,
        link: DirectedLink | Link,
        drop_rate: float,
        symmetric: bool = False,
    ) -> List[DirectedLink]:
        """Mark ``link`` as failed with per-packet drop probability ``drop_rate``.

        A :class:`DirectedLink` fails only that direction unless ``symmetric``
        is set; a :class:`Link` always fails both directions.  Returns the
        directed links affected.
        """
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError("drop_rate must be in [0, 1]")
        if isinstance(link, Link):
            targets = list(link.directions())
        elif symmetric:
            targets = [link, link.reversed()]
        else:
            targets = [link]
        for target in targets:
            if target not in self._drop_prob:
                raise KeyError(f"unknown link {target}")
            self._drop_prob[target] = float(drop_rate)
            self._failed.add(target)
        return targets

    def clear_failure(self, link: DirectedLink | Link) -> None:
        """Restore ``link`` to a (freshly drawn) noise drop rate."""
        targets = (
            list(link.directions()) if isinstance(link, Link) else [link, link.reversed()]
        )
        for target in targets:
            if target in self._failed:
                self._failed.discard(target)
                self._drop_prob[target] = float(
                    self._rng.uniform(self._noise_low, self._noise_high)
                )
        if isinstance(link, Link):
            self._down.discard(link)
        else:
            self._down.discard(link.undirected())

    def set_link_down(self, link: Link | DirectedLink) -> None:
        """Take a physical link completely down (blackhole: 100% drops)."""
        physical = link.undirected() if isinstance(link, DirectedLink) else link
        self._down.add(physical)
        for direction in physical.directions():
            self._drop_prob[direction] = 1.0
            self._failed.add(direction)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def drop_probability(self, link: DirectedLink) -> float:
        """Per-packet drop probability of a directed link."""
        return self._drop_prob[link]

    def is_down(self, link: DirectedLink | Link) -> bool:
        """True when the physical link is completely down."""
        physical = link.undirected() if isinstance(link, DirectedLink) else link
        return physical in self._down

    def is_failed(self, link: DirectedLink) -> bool:
        """True when this direction carries an injected failure."""
        return link in self._failed

    @property
    def failed_links(self) -> Set[DirectedLink]:
        """Ground-truth set of failed directed links."""
        return set(self._failed)

    @property
    def failed_physical_links(self) -> Set[Link]:
        """Ground-truth set of physical links with at least one failed direction."""
        return {link.undirected() for link in self._failed}

    @property
    def down_links(self) -> Set[Link]:
        """Physical links that are completely down."""
        return set(self._down)

    def good_links(self) -> List[DirectedLink]:
        """All directed links that are not failed."""
        return [l for l in self._drop_prob if l not in self._failed]

    def drop_probabilities(self) -> Dict[DirectedLink, float]:
        """A copy of the full drop-probability table."""
        return dict(self._drop_prob)

    def __len__(self) -> int:
        return len(self._drop_prob)
