"""Declarative time-varying scenario scripts.

The paper's production story is dynamic: links flap, congestion comes and
goes in bursts, switches reboot (changing their proprietary ECMP seeds), and
operators drain links — all while 007 keeps voting (Sections 6.6, 8.3).  A
:class:`ScenarioScript` captures such a timeline declaratively as a list of
*events* pinned to epochs:

>>> script = (
...     ScenarioScript()
...     .flap(start=2, duration=3, drop_rate=0.01, level=LinkLevel.LEVEL1)
...     .burst(start=6, duration=2, level=LinkLevel.LEVEL2, num_links=3)
...     .reboot_switch(epoch=9, tier=SwitchTier.T1)
... )

Scripts carry no topology references, so they are cheap to build, picklable
(the sweep runner ships them to worker processes inside a
:class:`~repro.experiments.scenario.ScenarioConfig`), and reusable across
fabrics.  :meth:`ScenarioScript.compile` resolves them against a concrete
topology/link table/router into a :class:`CompiledScenarioScript`, which
drives a :class:`~repro.netsim.failures.TransientFailureSchedule` (and the
router's ECMP reseeds, and traffic-generator swaps) epoch by epoch, returning
the per-epoch ground-truth :class:`~repro.netsim.failures.FailureScenario`.

Events with ``link=None``/``switch=None`` pick a random target of the given
level/tier at compile time, so one script describes a *family* of scenarios
whose concrete victims vary with the compile seed.  The module also ships
random-schedule generators (:func:`random_flap_script`,
:func:`random_burst_script`) for fuzzing-style studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.netsim.failures import FailureScenario, TransientFailure, TransientFailureSchedule
from repro.netsim.links import LinkStateTable
from repro.netsim.traffic import (
    HotTorTraffic,
    SkewedTraffic,
    TrafficGenerator,
    UniformTraffic,
)
from repro.topology.clos import ClosTopology
from repro.topology.elements import DirectedLink, Link, LinkLevel, SwitchTier
from repro.util.rng import RngLike, ensure_rng


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkFlap:
    """A lossy link for a window of epochs (the classic flapping optic)."""

    start_epoch: int
    duration_epochs: int
    drop_rate: float = 0.01
    #: concrete victim; when ``None`` a random directed link of ``level`` is
    #: chosen at compile time.
    link: Optional[DirectedLink] = None
    level: Optional[LinkLevel] = None

    @property
    def end_epoch(self) -> int:
        return self.start_epoch + self.duration_epochs


@dataclass(frozen=True)
class CongestionBurst:
    """Several links of one level dropping at once (a congestion episode)."""

    start_epoch: int
    duration_epochs: int
    level: LinkLevel = LinkLevel.LEVEL2
    num_links: int = 3
    drop_rate: float = 5e-3

    @property
    def end_epoch(self) -> int:
        return self.start_epoch + self.duration_epochs


@dataclass(frozen=True)
class SwitchReboot:
    """A switch goes dark for ``outage_epochs`` and comes back with a new ECMP seed.

    During the outage every link adjacent to the switch blackholes (as the
    paper's traceroutes would observe); when the switch returns its hash seed
    is re-drawn — the paper notes ECMP functions change across reboots, which
    is why 007 measures paths instead of computing them.
    """

    epoch: int
    outage_epochs: int = 1
    #: concrete switch name; when ``None`` a random switch of ``tier`` reboots.
    switch: Optional[str] = None
    tier: Optional[SwitchTier] = SwitchTier.T1

    @property
    def end_epoch(self) -> int:
        # +1: the switch returns (and is reseeded) during the epoch after the
        # outage, so that epoch is still part of the event.
        return self.epoch + max(1, self.outage_epochs) + 1


@dataclass(frozen=True)
class LinkDrain:
    """An operator drains a physical link (fully down, both directions)."""

    start_epoch: int
    duration_epochs: int
    link: Optional[Link] = None
    level: Optional[LinkLevel] = None

    @property
    def end_epoch(self) -> int:
        return self.start_epoch + self.duration_epochs


@dataclass(frozen=True)
class LinecardFailure:
    """Several links sharing one switch's linecard fail *together*.

    The correlated-fault mode of Section 8: one linecard serves many ports, so
    a single hardware fault takes a whole group of links down (or gray) at
    once.  ``num_links`` physical links adjacent to ``switch`` are struck for
    the window; ``blackhole=True`` (the default) takes them fully down, while
    ``blackhole=False`` with a sub-1.0 ``drop_rate`` models a gray linecard
    that drops silently instead of dying.
    """

    start_epoch: int
    duration_epochs: int
    num_links: int = 3
    drop_rate: float = 1.0
    blackhole: bool = True
    #: concrete switch name; when ``None`` a random switch of ``tier`` is
    #: chosen at compile time.
    switch: Optional[str] = None
    tier: Optional[SwitchTier] = SwitchTier.T1

    @property
    def end_epoch(self) -> int:
        return self.start_epoch + self.duration_epochs


@dataclass(frozen=True)
class FabricExpansion:
    """New capacity comes online mid-run: ``switch``'s links are dark before
    ``epoch`` and healthy from ``epoch`` onward.

    Models the expansion cutover: freshly-installed links blackhole every
    packet hashed onto them until the cutover epoch (the
    racked-but-misconfigured window operators fear), then turn healthy — 007
    must both flag the dark links while they drop and stop blaming them the
    epoch the cutover lands.
    """

    epoch: int
    #: concrete switch whose links come online; when ``None`` a random switch
    #: of ``tier`` is chosen at compile time.
    switch: Optional[str] = None
    tier: Optional[SwitchTier] = SwitchTier.T2

    @property
    def end_epoch(self) -> int:
        # the cutover epoch itself is part of the event: it must be simulated
        # for the links' return to health to be observable.
        return self.epoch + 1


@dataclass(frozen=True)
class TrafficShift:
    """Swap the traffic generator from ``epoch`` onward (workload change).

    Unset connection/packet parameters are inherited from the generator active
    at the time of the shift.
    """

    epoch: int
    traffic: str = "uniform"  # "uniform" | "skewed" | "hot_tor"
    connections_per_host: Optional[Union[int, Tuple[int, int]]] = None
    packets_per_flow: Optional[Union[int, Tuple[int, int]]] = None
    num_hot_tors: int = 3
    hot_fraction: float = 0.8
    hot_tor_skew: float = 0.5

    @property
    def end_epoch(self) -> int:
        # the shift takes effect during ``epoch`` itself
        return self.epoch + 1


ScenarioEvent = Union[
    LinkFlap,
    CongestionBurst,
    SwitchReboot,
    LinkDrain,
    LinecardFailure,
    FabricExpansion,
    TrafficShift,
]


# ----------------------------------------------------------------------
# event serialization (ScenarioScript.to_dict / from_dict)
# ----------------------------------------------------------------------
def pair_to_json(value):
    """Serialize an ``int | (int, int)`` field (``None`` passes through)."""
    if value is None or isinstance(value, int):
        return value
    return list(value)


def pair_from_json(value):
    """Invert :func:`pair_to_json` — tuples restore as tuples."""
    if value is None or isinstance(value, int):
        return value
    lo, hi = value
    return (int(lo), int(hi))


def _event_to_dict(event: ScenarioEvent) -> dict:
    """One scenario event as JSON-ready primitives with a ``"kind"`` tag."""
    if isinstance(event, LinkFlap):
        return {
            "kind": "flap",
            "start_epoch": event.start_epoch,
            "duration_epochs": event.duration_epochs,
            "drop_rate": event.drop_rate,
            "link": None if event.link is None else [event.link.src, event.link.dst],
            "level": None if event.level is None else int(event.level),
        }
    if isinstance(event, CongestionBurst):
        return {
            "kind": "burst",
            "start_epoch": event.start_epoch,
            "duration_epochs": event.duration_epochs,
            "level": int(event.level),
            "num_links": event.num_links,
            "drop_rate": event.drop_rate,
        }
    if isinstance(event, SwitchReboot):
        return {
            "kind": "reboot",
            "epoch": event.epoch,
            "outage_epochs": event.outage_epochs,
            "switch": event.switch,
            "tier": None if event.tier is None else int(event.tier),
        }
    if isinstance(event, LinkDrain):
        return {
            "kind": "drain",
            "start_epoch": event.start_epoch,
            "duration_epochs": event.duration_epochs,
            "link": None if event.link is None else [event.link.a, event.link.b],
            "level": None if event.level is None else int(event.level),
        }
    if isinstance(event, LinecardFailure):
        return {
            "kind": "linecard",
            "start_epoch": event.start_epoch,
            "duration_epochs": event.duration_epochs,
            "num_links": event.num_links,
            "drop_rate": event.drop_rate,
            "blackhole": event.blackhole,
            "switch": event.switch,
            "tier": None if event.tier is None else int(event.tier),
        }
    if isinstance(event, FabricExpansion):
        return {
            "kind": "expand",
            "epoch": event.epoch,
            "switch": event.switch,
            "tier": None if event.tier is None else int(event.tier),
        }
    if isinstance(event, TrafficShift):
        return {
            "kind": "shift",
            "epoch": event.epoch,
            "traffic": event.traffic,
            "connections_per_host": pair_to_json(event.connections_per_host),
            "packets_per_flow": pair_to_json(event.packets_per_flow),
            "num_hot_tors": event.num_hot_tors,
            "hot_fraction": event.hot_fraction,
            "hot_tor_skew": event.hot_tor_skew,
        }
    raise TypeError(f"unknown scenario event {event!r}")


def _event_from_dict(data: dict) -> ScenarioEvent:
    """Rebuild one scenario event from :func:`_event_to_dict` output."""
    kind = data.get("kind")
    if kind == "flap":
        link = data.get("link")
        return LinkFlap(
            start_epoch=int(data["start_epoch"]),
            duration_epochs=int(data["duration_epochs"]),
            drop_rate=float(data["drop_rate"]),
            link=None if link is None else DirectedLink(link[0], link[1]),
            level=None if data.get("level") is None else LinkLevel(data["level"]),
        )
    if kind == "burst":
        return CongestionBurst(
            start_epoch=int(data["start_epoch"]),
            duration_epochs=int(data["duration_epochs"]),
            level=LinkLevel(data["level"]),
            num_links=int(data["num_links"]),
            drop_rate=float(data["drop_rate"]),
        )
    if kind == "reboot":
        return SwitchReboot(
            epoch=int(data["epoch"]),
            outage_epochs=int(data["outage_epochs"]),
            switch=data.get("switch"),
            tier=None if data.get("tier") is None else SwitchTier(data["tier"]),
        )
    if kind == "drain":
        link = data.get("link")
        return LinkDrain(
            start_epoch=int(data["start_epoch"]),
            duration_epochs=int(data["duration_epochs"]),
            link=None if link is None else Link.of(link[0], link[1]),
            level=None if data.get("level") is None else LinkLevel(data["level"]),
        )
    if kind == "linecard":
        return LinecardFailure(
            start_epoch=int(data["start_epoch"]),
            duration_epochs=int(data["duration_epochs"]),
            num_links=int(data["num_links"]),
            drop_rate=float(data["drop_rate"]),
            blackhole=bool(data["blackhole"]),
            switch=data.get("switch"),
            tier=None if data.get("tier") is None else SwitchTier(data["tier"]),
        )
    if kind == "expand":
        return FabricExpansion(
            epoch=int(data["epoch"]),
            switch=data.get("switch"),
            tier=None if data.get("tier") is None else SwitchTier(data["tier"]),
        )
    if kind == "shift":
        connections = data.get("connections_per_host")
        packets = data.get("packets_per_flow")
        return TrafficShift(
            epoch=int(data["epoch"]),
            traffic=data["traffic"],
            connections_per_host=pair_from_json(connections),
            packets_per_flow=pair_from_json(packets),
            num_hot_tors=int(data["num_hot_tors"]),
            hot_fraction=float(data["hot_fraction"]),
            hot_tor_skew=float(data["hot_tor_skew"]),
        )
    raise ValueError(f"unknown scenario event kind {kind!r}")


# ----------------------------------------------------------------------
# the script
# ----------------------------------------------------------------------
@dataclass
class ScenarioScript:
    """A declarative, topology-free timeline of scenario events."""

    events: List[ScenarioEvent] = field(default_factory=list)

    # -- builder API ----------------------------------------------------
    def add(self, event: ScenarioEvent) -> "ScenarioScript":
        """Append one event; returns ``self`` for chaining."""
        self.events.append(event)
        return self

    def flap(
        self,
        start: int,
        duration: int,
        drop_rate: float = 0.01,
        link: Optional[DirectedLink] = None,
        level: Optional[LinkLevel] = None,
    ) -> "ScenarioScript":
        """A link flaps (drops at ``drop_rate``) during ``[start, start+duration)``."""
        return self.add(
            LinkFlap(
                start_epoch=start,
                duration_epochs=duration,
                drop_rate=drop_rate,
                link=link,
                level=level,
            )
        )

    def burst(
        self,
        start: int,
        duration: int,
        level: LinkLevel = LinkLevel.LEVEL2,
        num_links: int = 3,
        drop_rate: float = 5e-3,
    ) -> "ScenarioScript":
        """``num_links`` random links of ``level`` congest together."""
        return self.add(
            CongestionBurst(
                start_epoch=start,
                duration_epochs=duration,
                level=level,
                num_links=num_links,
                drop_rate=drop_rate,
            )
        )

    def reboot_switch(
        self,
        epoch: int,
        switch: Optional[str] = None,
        tier: Optional[SwitchTier] = SwitchTier.T1,
        outage_epochs: int = 1,
    ) -> "ScenarioScript":
        """A switch goes down for ``outage_epochs`` and returns reseeded."""
        return self.add(
            SwitchReboot(epoch=epoch, outage_epochs=outage_epochs, switch=switch, tier=tier)
        )

    def drain(
        self,
        start: int,
        duration: int,
        link: Optional[Link] = None,
        level: Optional[LinkLevel] = None,
    ) -> "ScenarioScript":
        """A physical link is drained (blackholed) during the window."""
        return self.add(
            LinkDrain(start_epoch=start, duration_epochs=duration, link=link, level=level)
        )

    def linecard(
        self,
        start: int,
        duration: int,
        num_links: int = 3,
        drop_rate: float = 1.0,
        blackhole: bool = True,
        switch: Optional[str] = None,
        tier: Optional[SwitchTier] = SwitchTier.T1,
    ) -> "ScenarioScript":
        """``num_links`` links on one switch's linecard fail together."""
        return self.add(
            LinecardFailure(
                start_epoch=start,
                duration_epochs=duration,
                num_links=num_links,
                drop_rate=drop_rate,
                blackhole=blackhole,
                switch=switch,
                tier=tier,
            )
        )

    def expand_fabric(
        self,
        epoch: int,
        switch: Optional[str] = None,
        tier: Optional[SwitchTier] = SwitchTier.T2,
    ) -> "ScenarioScript":
        """``switch``'s links are dark until ``epoch``, healthy from then on."""
        return self.add(FabricExpansion(epoch=epoch, switch=switch, tier=tier))

    def shift_traffic(self, epoch: int, traffic: str = "uniform", **kwargs) -> "ScenarioScript":
        """Swap the workload from ``epoch`` onward."""
        return self.add(TrafficShift(epoch=epoch, traffic=traffic, **kwargs))

    # -- introspection --------------------------------------------------
    @property
    def horizon(self) -> int:
        """First epoch at which every event has finished (0 for empty scripts)."""
        return max((event.end_epoch for event in self.events), default=0)

    def __len__(self) -> int:
        return len(self.events)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        """The script as JSON-ready primitives (lossless round-trip).

        Scenario scripts serialize so whole scenarios can be shared as
        ``*.json`` files (``ScenarioConfig.to_dict`` embeds this).
        """
        return {"events": [_event_to_dict(event) for event in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioScript":
        """Rebuild a script from :meth:`to_dict` output."""
        return cls(events=[_event_from_dict(entry) for entry in data.get("events", [])])

    # -- compilation ----------------------------------------------------
    def compile(
        self,
        topology: ClosTopology,
        link_table: LinkStateTable,
        router=None,
        rng: RngLike = 0,
    ) -> "CompiledScenarioScript":
        """Resolve the script against a concrete fabric.

        Random victims (events with ``link=None``/``switch=None``) are drawn
        here from ``rng``, so the same seed always yields the same concrete
        scenario — both analysis engines compile to identical timelines.
        """
        return CompiledScenarioScript(self, topology, link_table, router=router, rng=rng)


class CompiledScenarioScript:
    """A :class:`ScenarioScript` bound to a topology/link table/router.

    Call :meth:`apply_epoch` at the start of every epoch (the pipeline does
    this): it activates/clears the epoch's transient failures, performs due
    ECMP reseeds, and returns the epoch's active ground-truth scenario.
    """

    def __init__(
        self,
        script: ScenarioScript,
        topology: ClosTopology,
        link_table: LinkStateTable,
        router=None,
        rng: RngLike = 0,
    ) -> None:
        self._topology = topology
        self._router = router
        self._rng = ensure_rng(rng)
        self._schedule = TransientFailureSchedule(link_table)
        #: epoch -> switches whose ECMP seed is re-drawn once that epoch (or
        #: any later one) is applied; entries are consumed when they fire.
        self._reseeds: Dict[int, List[str]] = {}
        #: epoch -> traffic shift taking effect from that epoch onward.
        self._shifts: Dict[int, TrafficShift] = {}
        #: epoch of the shift most recently handed out (so a shift fires once
        #: even when epochs are driven from a nonzero start or with gaps).
        self._applied_shift_epoch: Optional[int] = None
        #: the script's declared horizon — kept so :attr:`horizon` always
        #: agrees with :attr:`ScenarioScript.horizon` for every event type
        #: (e.g. a reboot's reseed epoch and an expansion's cutover epoch are
        #: part of the event even though no failure is active during them).
        self._declared_horizon = script.horizon
        for event in script.events:
            self._resolve(event)

    # -- event resolution ----------------------------------------------
    def _resolve(self, event: ScenarioEvent) -> None:
        if isinstance(event, LinkFlap):
            link = event.link if event.link is not None else self._random_directed_link(
                event.level if event.level is not None else LinkLevel.LEVEL1
            )
            self._schedule.add(
                TransientFailure(
                    link=link,
                    drop_rate=event.drop_rate,
                    start_epoch=event.start_epoch,
                    duration_epochs=event.duration_epochs,
                )
            )
        elif isinstance(event, CongestionBurst):
            for link in self._random_directed_links(event.level, event.num_links):
                self._schedule.add(
                    TransientFailure(
                        link=link,
                        drop_rate=event.drop_rate,
                        start_epoch=event.start_epoch,
                        duration_epochs=event.duration_epochs,
                    )
                )
        elif isinstance(event, SwitchReboot):
            switch = event.switch if event.switch is not None else self._random_switch(
                event.tier if event.tier is not None else SwitchTier.T1
            )
            outage = max(1, event.outage_epochs)
            for physical in self._topology.links_of_node(switch):
                for direction in physical.directions():
                    self._schedule.add(
                        TransientFailure(
                            link=direction,
                            drop_rate=1.0,
                            start_epoch=event.epoch,
                            duration_epochs=outage,
                            blackhole=True,
                        )
                    )
            self._reseeds.setdefault(event.epoch + outage, []).append(switch)
        elif isinstance(event, LinkDrain):
            physical = event.link if event.link is not None else self._random_physical_link(
                event.level if event.level is not None else LinkLevel.LEVEL1
            )
            for direction in physical.directions():
                self._schedule.add(
                    TransientFailure(
                        link=direction,
                        drop_rate=1.0,
                        start_epoch=event.start_epoch,
                        duration_epochs=event.duration_epochs,
                        blackhole=True,
                    )
                )
        elif isinstance(event, LinecardFailure):
            switch = event.switch if event.switch is not None else self._random_switch(
                event.tier if event.tier is not None else SwitchTier.T1
            )
            for physical in self._linecard_links(switch, event.num_links):
                for direction in physical.directions():
                    self._schedule.add(
                        TransientFailure(
                            link=direction,
                            drop_rate=event.drop_rate,
                            start_epoch=event.start_epoch,
                            duration_epochs=event.duration_epochs,
                            blackhole=event.blackhole,
                        )
                    )
        elif isinstance(event, FabricExpansion):
            switch = event.switch if event.switch is not None else self._random_switch(
                event.tier if event.tier is not None else SwitchTier.T2
            )
            # links are dark from the start of the run until the cutover; an
            # expansion at epoch 0 has no dark window (links were always up).
            if event.epoch > 0:
                for physical in self._topology.links_of_node(switch):
                    for direction in physical.directions():
                        self._schedule.add(
                            TransientFailure(
                                link=direction,
                                drop_rate=1.0,
                                start_epoch=0,
                                duration_epochs=event.epoch,
                                blackhole=True,
                            )
                        )
        elif isinstance(event, TrafficShift):
            self._shifts[event.epoch] = event
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown scenario event {event!r}")

    # -- random victim selection ----------------------------------------
    def _level_candidates(self, level: LinkLevel) -> List[Link]:
        candidates = sorted(self._topology.links_of_level(level))
        if not candidates:
            raise ValueError(f"topology has no links of level {level!r}")
        return candidates

    def _random_physical_link(self, level: LinkLevel) -> Link:
        candidates = self._level_candidates(level)
        return candidates[int(self._rng.integers(0, len(candidates)))]

    def _random_directed_link(self, level: LinkLevel) -> DirectedLink:
        directed = [d for link in self._level_candidates(level) for d in link.directions()]
        return directed[int(self._rng.integers(0, len(directed)))]

    def _random_directed_links(self, level: LinkLevel, count: int) -> List[DirectedLink]:
        directed = [d for link in self._level_candidates(level) for d in link.directions()]
        if count > len(directed):
            raise ValueError(
                f"cannot pick {count} links, level {level!r} only has {len(directed)}"
            )
        chosen = self._rng.choice(len(directed), size=count, replace=False)
        return [directed[int(i)] for i in sorted(int(i) for i in chosen)]

    def _random_switch(self, tier: SwitchTier) -> str:
        names = sorted(s.name for s in self._topology.switches_of_tier(tier))
        if not names:
            raise ValueError(f"topology has no switches of tier {tier!r}")
        return names[int(self._rng.integers(0, len(names)))]

    def _linecard_links(self, switch: str, count: int) -> List[Link]:
        """``count`` of ``switch``'s physical links, drawn without replacement."""
        candidates = sorted(self._topology.links_of_node(switch))
        if not candidates:
            raise ValueError(f"switch {switch!r} has no links")
        if count > len(candidates):
            raise ValueError(
                f"cannot fail {count} linecard links, switch {switch!r} "
                f"only has {len(candidates)}"
            )
        chosen = self._rng.choice(len(candidates), size=count, replace=False)
        return [candidates[int(i)] for i in sorted(int(i) for i in chosen)]

    # -- epoch driving ---------------------------------------------------
    @property
    def schedule(self) -> TransientFailureSchedule:
        """The underlying transient-failure schedule (resolved events)."""
        return self._schedule

    @property
    def horizon(self) -> int:
        """First epoch at which every resolved failure/reseed/shift has finished.

        Always equals :attr:`ScenarioScript.horizon` of the source script: the
        resolved-state horizon (failure windows, pending reseeds, traffic
        shifts) is cross-checked against the declared per-event ``end_epoch``
        horizon so neither side can silently drop a scenario's last scripted
        epoch.
        """
        reseed_horizon = max((epoch + 1 for epoch in self._reseeds), default=0)
        shift_horizon = max((epoch + 1 for epoch in self._shifts), default=0)
        return max(
            self._schedule.horizon,
            reseed_horizon,
            shift_horizon,
            self._declared_horizon,
        )

    def apply_epoch(self, epoch: int) -> FailureScenario:
        """Apply all state changes due at ``epoch``; returns the active scenario.

        Reseeds due at or before ``epoch`` that have not fired yet fire now
        (in due-epoch order), so switches still come back reseeded when epochs
        are driven from a nonzero start or with gaps.
        """
        for due in sorted(e for e in self._reseeds if e <= epoch):
            for switch in self._reseeds.pop(due):
                if self._router is not None:
                    self._router.reseed_switch(switch, rng=self._rng)
        return self._schedule.apply_epoch(epoch)

    def traffic_for_epoch(
        self, epoch: int, current: Optional[TrafficGenerator] = None
    ) -> Optional[TrafficGenerator]:
        """The new traffic generator in effect from ``epoch`` (``None`` = keep).

        Returns the generator of the latest shift at or before ``epoch`` the
        first time that shift is seen — also when epochs start late or skip —
        and ``None`` while no new shift applies.  Unset connection/packet
        parameters inherit from ``current``.
        """
        due = [e for e in self._shifts if e <= epoch]
        if not due:
            return None
        latest = max(due)
        if latest == self._applied_shift_epoch:
            return None
        self._applied_shift_epoch = latest
        shift = self._shifts[latest]
        connections = shift.connections_per_host
        packets = shift.packets_per_flow
        if connections is None:
            connections = current.connections_per_host if current is not None else 60
        if packets is None:
            packets = current.packets_per_flow if current is not None else 100
        if shift.traffic == "uniform":
            return UniformTraffic(
                self._topology,
                connections_per_host=connections,
                packets_per_flow=packets,
            )
        if shift.traffic == "skewed":
            return SkewedTraffic(
                self._topology,
                connections_per_host=connections,
                packets_per_flow=packets,
                num_hot_tors=shift.num_hot_tors,
                hot_fraction=shift.hot_fraction,
            )
        if shift.traffic == "hot_tor":
            return HotTorTraffic(
                self._topology,
                skew=shift.hot_tor_skew,
                connections_per_host=connections,
                packets_per_flow=packets,
            )
        raise ValueError(f"unknown traffic kind {shift.traffic!r}")


# ----------------------------------------------------------------------
# random-schedule generators
# ----------------------------------------------------------------------
def random_flap_script(
    num_flaps: int,
    epochs: int,
    rng: RngLike = 0,
    levels: Sequence[LinkLevel] = (LinkLevel.LEVEL1, LinkLevel.LEVEL2),
    drop_rate_range: Tuple[float, float] = (1e-3, 1e-2),
    duration_range: Tuple[int, int] = (1, 3),
) -> ScenarioScript:
    """A script of ``num_flaps`` random link flaps inside ``epochs`` epochs.

    Start epochs, durations, drop rates and levels are drawn from ``rng``;
    the concrete victim links are still resolved at compile time, so the
    script itself stays topology-free.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    generator = ensure_rng(rng)
    script = ScenarioScript()
    low, high = duration_range
    for _ in range(num_flaps):
        duration = int(generator.integers(low, high + 1))
        start = int(generator.integers(0, max(1, epochs - duration + 1)))
        script.flap(
            start=start,
            duration=duration,
            drop_rate=float(generator.uniform(*drop_rate_range)),
            level=levels[int(generator.integers(0, len(levels)))],
        )
    return script


def random_burst_script(
    num_bursts: int,
    epochs: int,
    rng: RngLike = 0,
    level: LinkLevel = LinkLevel.LEVEL2,
    links_per_burst: Tuple[int, int] = (2, 4),
    drop_rate_range: Tuple[float, float] = (2e-3, 2e-2),
    duration_range: Tuple[int, int] = (1, 2),
) -> ScenarioScript:
    """A script of ``num_bursts`` random congestion bursts inside ``epochs``."""
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    generator = ensure_rng(rng)
    script = ScenarioScript()
    for _ in range(num_bursts):
        duration = int(generator.integers(duration_range[0], duration_range[1] + 1))
        start = int(generator.integers(0, max(1, epochs - duration + 1)))
        script.burst(
            start=start,
            duration=duration,
            level=level,
            num_links=int(generator.integers(links_per_burst[0], links_per_burst[1] + 1)),
            drop_rate=float(generator.uniform(*drop_rate_range)),
        )
    return script
