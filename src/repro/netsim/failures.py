"""Failure injection: random link failures, level-targeted failures, switch
failures, transient congestion bursts, link flaps and the VM-reboot model of
Section 8.3 / Appendix A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.netsim.flows import FlowRecord
from repro.netsim.links import LinkStateTable
from repro.topology.clos import ClosTopology
from repro.topology.elements import DirectedLink, Link, LinkLevel
from repro.util.rng import RngLike, ensure_rng


@dataclass
class FailureScenario:
    """Ground truth of an injected failure scenario."""

    bad_links: List[DirectedLink] = field(default_factory=list)
    drop_rates: Dict[DirectedLink, float] = field(default_factory=dict)

    @property
    def num_failures(self) -> int:
        """Number of failed directed links."""
        return len(self.bad_links)

    @property
    def bad_physical_links(self) -> Set[Link]:
        """Physical links with at least one failed direction."""
        return {link.undirected() for link in self.bad_links}

    def drop_rate_of(self, link: DirectedLink) -> float:
        """Injected drop rate of a failed link (0 for non-failed links)."""
        return self.drop_rates.get(link, 0.0)


class FailureInjector:
    """Injects failures into a :class:`LinkStateTable` over a Clos topology."""

    #: link levels eligible for random failures by default (the paper injects
    #: failures on fabric links and also observes host-ToR failures in
    #: production; tier-3 is excluded since only ~2% of flows traverse it).
    DEFAULT_LEVELS: Tuple[LinkLevel, ...] = (
        LinkLevel.HOST,
        LinkLevel.LEVEL1,
        LinkLevel.LEVEL2,
    )

    def __init__(
        self,
        topology: ClosTopology,
        link_table: LinkStateTable,
        rng: RngLike = 0,
    ) -> None:
        self._topology = topology
        self._link_table = link_table
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def inject_random_failures(
        self,
        num_failures: int,
        drop_rate_range: Tuple[float, float] = (1e-4, 1e-2),
        levels: Optional[Sequence[LinkLevel]] = None,
        symmetric: bool = False,
    ) -> FailureScenario:
        """Fail ``num_failures`` random directed links on the given levels.

        Drop rates are drawn uniformly from ``drop_rate_range`` — the paper's
        default is (0.01%, 1%).
        """
        levels = tuple(levels) if levels is not None else self.DEFAULT_LEVELS
        candidates: List[DirectedLink] = []
        for level in levels:
            for link in self._topology.links_of_level(level):
                candidates.extend(link.directions())
        if num_failures > len(candidates):
            raise ValueError(
                f"cannot fail {num_failures} links, only {len(candidates)} candidates"
            )
        chosen_idx = self._rng.choice(len(candidates), size=num_failures, replace=False)
        scenario = FailureScenario()
        for idx in sorted(int(i) for i in chosen_idx):
            link = candidates[idx]
            rate = float(self._rng.uniform(*drop_rate_range))
            self._link_table.inject_failure(link, rate, symmetric=symmetric)
            scenario.bad_links.append(link)
            scenario.drop_rates[link] = rate
        return scenario

    def inject_failure_on_level(
        self,
        level: LinkLevel,
        drop_rate: float,
        downward: bool = False,
        index: int = 0,
    ) -> FailureScenario:
        """Fail one specific link of ``level`` (Figure 11's location study).

        ``downward=False`` fails the "upward" direction (e.g. ToR->T1);
        ``downward=True`` fails the reverse (e.g. T1->ToR).  ``index`` selects
        which physical link of that level to fail.
        """
        links = self._topology.links_of_level(level)
        if not links:
            raise ValueError(f"topology has no links of level {level!r}")
        physical = links[index % len(links)]
        upward, downward_dir = self._oriented(physical)
        target = downward_dir if downward else upward
        self._link_table.inject_failure(target, drop_rate)
        return FailureScenario(bad_links=[target], drop_rates={target: drop_rate})

    def inject_skewed_failures(
        self,
        num_failures: int,
        dominant_range: Tuple[float, float] = (0.1, 1.0),
        minor_range: Tuple[float, float] = (1e-4, 1e-3),
        levels: Optional[Sequence[LinkLevel]] = None,
    ) -> FailureScenario:
        """Figure 12's heavily skewed scenario: one dominant failure, the rest minor."""
        scenario = self.inject_random_failures(
            num_failures, drop_rate_range=minor_range, levels=levels
        )
        if scenario.bad_links:
            dominant = scenario.bad_links[0]
            rate = float(self._rng.uniform(*dominant_range))
            self._link_table.inject_failure(dominant, rate)
            scenario.drop_rates[dominant] = rate
        return scenario

    def fail_switch(self, switch: str, drop_rate: float = 1.0) -> FailureScenario:
        """Fail every link adjacent to ``switch`` (both directions)."""
        scenario = FailureScenario()
        for physical in self._topology.links_of_node(switch):
            for direction in physical.directions():
                self._link_table.inject_failure(direction, drop_rate)
                scenario.bad_links.append(direction)
                scenario.drop_rates[direction] = drop_rate
        return scenario

    def blackhole_link(self, link: Link | DirectedLink) -> FailureScenario:
        """Take a physical link fully down (traceroutes die there too)."""
        physical = link.undirected() if isinstance(link, DirectedLink) else link
        self._link_table.set_link_down(physical)
        directions = list(physical.directions())
        return FailureScenario(
            bad_links=directions, drop_rates={d: 1.0 for d in directions}
        )

    # ------------------------------------------------------------------
    def _oriented(self, physical: Link) -> Tuple[DirectedLink, DirectedLink]:
        """Return (upward, downward) directions of a physical link.

        "Upward" means from the lower tier toward the higher tier (host->ToR,
        ToR->T1, T1->T2).
        """
        a, b = physical.a, physical.b
        rank_a = self._tier_rank(a)
        rank_b = self._tier_rank(b)
        if rank_a <= rank_b:
            return DirectedLink(a, b), DirectedLink(b, a)
        return DirectedLink(b, a), DirectedLink(a, b)

    def _tier_rank(self, node: str) -> int:
        if self._topology.is_host(node):
            return -1
        return int(self._topology.switch(node).tier)


@dataclass
class TransientFailure:
    """A failure active only for a window of epochs (link flap / congestion burst).

    ``blackhole=True`` takes the physical link fully down while active (drops
    traceroute probes too), modelling an operator drain or a dead cable rather
    than a lossy one.
    """

    link: DirectedLink
    drop_rate: float
    start_epoch: int
    duration_epochs: int
    blackhole: bool = False

    @property
    def end_epoch(self) -> int:
        """First epoch after the failure has cleared."""
        return self.start_epoch + self.duration_epochs

    def active(self, epoch: int) -> bool:
        """True when the failure is active during ``epoch``."""
        return self.start_epoch <= epoch < self.start_epoch + self.duration_epochs


class TransientFailureSchedule:
    """Applies/clears transient failures as epochs advance.

    Transients compose with pre-existing (static) failures: before overriding
    a link the schedule captures the link's baseline state — injected drop
    rate and down-ness, for *both* directions, since
    :meth:`LinkStateTable.clear_failure` resets the whole physical link — and
    restores it once every transient touching the physical link has cleared.
    When several active transients target the same directed link in one
    epoch, the most severe wins (blackhole first, then highest drop rate),
    and the returned scenario reports the rate actually in effect.
    """

    def __init__(self, link_table: LinkStateTable) -> None:
        self._link_table = link_table
        self._failures: List[TransientFailure] = []
        self._currently_active: Set[DirectedLink] = set()
        #: pre-transient injected drop rate per direction (``None`` = the
        #: direction carried no injected failure, just noise).
        self._baseline_rate: Dict[DirectedLink, Optional[float]] = {}
        #: pre-transient down-ness per physical link (doubles as the marker
        #: that a baseline was captured for that physical).
        self._baseline_down: Dict[Link, bool] = {}

    def add(self, failure: TransientFailure) -> None:
        """Register a transient failure."""
        self._failures.append(failure)

    @property
    def failures(self) -> List[TransientFailure]:
        """The registered transient failures (in registration order)."""
        return list(self._failures)

    @property
    def horizon(self) -> int:
        """First epoch at which every registered failure has cleared."""
        return max((f.end_epoch for f in self._failures), default=0)

    def active_at(self, epoch: int) -> List[TransientFailure]:
        """The failures active during ``epoch`` (registration order)."""
        return [f for f in self._failures if f.active(epoch)]

    # ------------------------------------------------------------------
    def _capture_baseline(self, link: DirectedLink) -> None:
        """Remember the pre-transient state of ``link``'s physical link."""
        physical = link.undirected()
        if physical in self._baseline_down:
            return  # already captured while another transient was active
        self._baseline_down[physical] = self._link_table.is_down(physical)
        for direction in physical.directions():
            self._baseline_rate[direction] = (
                self._link_table.drop_probability(direction)
                if self._link_table.is_failed(direction)
                else None
            )

    def _restore_baseline(
        self, link: DirectedLink, desired: Dict[DirectedLink, TransientFailure]
    ) -> None:
        """Re-apply the captured baseline after ``clear_failure`` wiped it."""
        physical = link.undirected()
        if physical not in self._baseline_down:
            return
        directions = physical.directions()
        for direction in directions:
            if direction in desired:
                continue  # a still-active transient re-applies right after
            rate = self._baseline_rate.get(direction)
            if rate is not None:
                self._link_table.inject_failure(direction, rate)
        if any(direction in desired for direction in directions):
            return  # keep the baseline until the physical link is fully quiet
        if self._baseline_down.pop(physical):
            self._link_table.set_link_down(physical)
        for direction in directions:
            self._baseline_rate.pop(direction, None)

    def apply_epoch(self, epoch: int) -> FailureScenario:
        """Activate/deactivate failures for ``epoch``; returns the active scenario."""
        active = self.active_at(epoch)
        desired: Dict[DirectedLink, TransientFailure] = {}
        for failure in active:
            current = desired.get(failure.link)
            if current is None or (failure.blackhole, failure.drop_rate) > (
                current.blackhole,
                current.drop_rate,
            ):
                desired[failure.link] = failure
        down_physicals = {f.link.undirected() for f in active if f.blackhole}

        # Deactivate expired failures first (clear_failure resets the whole
        # physical link), then restore the captured baselines in a second
        # pass so clearing one direction cannot wipe a just-restored reverse.
        cleared = [link for link in self._currently_active if link not in desired]
        for link in cleared:
            self._link_table.clear_failure(link)
            self._currently_active.discard(link)
        for link in cleared:
            self._restore_baseline(link, desired)

        scenario = FailureScenario()
        for link, failure in desired.items():
            if link not in self._currently_active:
                self._capture_baseline(link)
            blackholed = link.undirected() in down_physicals
            if blackholed:
                self._link_table.set_link_down(link)
            else:
                self._link_table.inject_failure(link, failure.drop_rate)
            self._currently_active.add(link)
            scenario.bad_links.append(link)
            scenario.drop_rates[link] = 1.0 if blackholed else failure.drop_rate
        return scenario


@dataclass(frozen=True)
class VmRebootEvent:
    """A VM rebooted because its image-mount flow failed (Appendix A)."""

    epoch: int
    host: str
    storage_host: str
    cause_link: Optional[DirectedLink]
    retransmissions: int


class VmRebootModel:
    """Models VM reboots caused by drops on storage (image-mount) flows.

    In the paper's datacenters VM images are mounted over the network; even a
    short outage on the path to the storage service can panic the guest and
    reboot it.  Here a VM on ``host`` reboots during an epoch when one of the
    host's ``kind == "storage"`` flows either fails outright or accumulates at
    least ``retransmission_threshold`` retransmissions.
    """

    def __init__(self, retransmission_threshold: int = 3) -> None:
        if retransmission_threshold < 1:
            raise ValueError("retransmission_threshold must be >= 1")
        self._threshold = retransmission_threshold

    def reboots_for_epoch(self, flows: Iterable[FlowRecord]) -> List[VmRebootEvent]:
        """Return the reboot events implied by this epoch's storage flows."""
        reboots: List[VmRebootEvent] = []
        rebooted_hosts: Set[str] = set()
        for flow in flows:
            if flow.kind != "storage":
                continue
            if flow.src_host in rebooted_hosts:
                continue
            if flow.connection_failed or flow.retransmissions >= self._threshold:
                reboots.append(
                    VmRebootEvent(
                        epoch=flow.epoch,
                        host=flow.src_host,
                        storage_host=flow.dst_host,
                        cause_link=flow.true_drop_link(),
                        retransmissions=flow.retransmissions,
                    )
                )
                rebooted_hosts.add(flow.src_host)
        return reboots
