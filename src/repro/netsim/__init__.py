"""Flow-level datacenter network simulator.

This is the substrate the paper itself evaluates on (its authors used a
MATLAB flow-level simulator): per-link Bernoulli packet-drop probabilities,
per-epoch TCP flows with bounded packet counts, traffic generators (uniform,
skewed, hot-ToR, replay), failure injection, and an epoch engine that raises
ETW-like retransmission events for the monitoring agent.
"""

from repro.netsim.links import LinkStateTable
from repro.netsim.tcp import TransferResult, simulate_transfer
from repro.netsim.flows import FlowRecord
from repro.netsim.traffic import (
    HotTorTraffic,
    ReplayTraffic,
    SkewedTraffic,
    TrafficDemand,
    TrafficGenerator,
    UniformTraffic,
)
from repro.netsim.events import ConnectionSetupFailureEvent, RetransmissionEvent
from repro.netsim.failures import (
    FailureInjector,
    FailureScenario,
    TransientFailure,
    TransientFailureSchedule,
    VmRebootModel,
)
from repro.netsim.script import (
    CompiledScenarioScript,
    CongestionBurst,
    LinkDrain,
    LinkFlap,
    ScenarioScript,
    SwitchReboot,
    TrafficShift,
    random_burst_script,
    random_flap_script,
)
from repro.netsim.simulator import EpochResult, EpochSimulator, SimulationConfig

__all__ = [
    "LinkStateTable",
    "TransferResult",
    "simulate_transfer",
    "FlowRecord",
    "TrafficDemand",
    "TrafficGenerator",
    "UniformTraffic",
    "SkewedTraffic",
    "HotTorTraffic",
    "ReplayTraffic",
    "RetransmissionEvent",
    "ConnectionSetupFailureEvent",
    "FailureInjector",
    "FailureScenario",
    "TransientFailure",
    "TransientFailureSchedule",
    "VmRebootModel",
    "CompiledScenarioScript",
    "CongestionBurst",
    "LinkDrain",
    "LinkFlap",
    "ScenarioScript",
    "SwitchReboot",
    "TrafficShift",
    "random_burst_script",
    "random_flap_script",
    "EpochResult",
    "EpochSimulator",
    "SimulationConfig",
]
