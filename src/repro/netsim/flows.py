"""Flow records: everything the simulator knows about one TCP connection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netsim.tcp import TransferResult
from repro.routing.fivetuple import FiveTuple
from repro.routing.paths import Path
from repro.topology.elements import DirectedLink


@dataclass
class FlowRecord:
    """One simulated TCP connection within an epoch.

    The record carries both what the end host can observe (five-tuple,
    retransmission count) and simulator-only ground truth (true path, per-link
    drop counts) used for scoring 007 and the baselines.
    """

    flow_id: int
    epoch: int
    five_tuple: FiveTuple
    src_host: str
    dst_host: str
    path: Path
    result: TransferResult
    kind: str = "data"

    @property
    def has_retransmission(self) -> bool:
        """True when the flow suffered at least one retransmission."""
        return self.result.has_retransmission

    @property
    def retransmissions(self) -> int:
        """Number of retransmissions the sender observed."""
        return self.result.retransmissions

    @property
    def connection_failed(self) -> bool:
        """True when TCP gave up before delivering every packet."""
        return self.result.connection_failed

    def true_drop_link(self) -> Optional[DirectedLink]:
        """Ground truth: the link that dropped the most of this flow's packets."""
        return self.result.dominant_drop_link()

    def drops_on(self, link: DirectedLink) -> int:
        """Ground truth: packets of this flow dropped by ``link``."""
        return self.result.drops_by_link.get(link, 0)
