"""Workload profiles and fabric presets for the evidence load generator.

A :class:`WorkloadProfile` is a topology-free description of *what the
evidence stream looks like*: how host popularity is distributed, how much of
the traffic sinks into a hot ToR, how concentrated path evidence is on the
currently-bad links, and how often already-traced flows retransmit again.
Profiles are frozen dataclasses, so they are hashable, picklable and cheap to
ship into worker processes; the named constructors mirror the paper's
Section 6.4/6.5 traffic mixes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Union

from repro.topology.clos import ClosParameters

#: named fabric sizings shared by ``repro bench`` and the test batteries.
#: ``medium`` is the default benchmark fabric: 3 pods x 8 ToRs x 6 hosts
#: (144 hosts, ~1.5k directed links) — big enough that per-event Python
#: dispatch dominates, small enough to run a million events in seconds.
FABRIC_PRESETS: Dict[str, ClosParameters] = {
    "tiny": ClosParameters(npod=2, n0=2, n1=2, n2=2, hosts_per_tor=2),
    "small": ClosParameters(npod=2, n0=4, n1=3, n2=3, hosts_per_tor=4),
    "medium": ClosParameters(npod=3, n0=8, n1=4, n2=4, hosts_per_tor=6),
    "large": ClosParameters(npod=4, n0=16, n1=8, n2=8, hosts_per_tor=10),
}


def fabric_parameters(fabric: Union[str, ClosParameters]) -> ClosParameters:
    """Resolve a fabric preset name (or pass a sizing through unchanged)."""
    if isinstance(fabric, ClosParameters):
        return fabric
    try:
        return FABRIC_PRESETS[fabric]
    except KeyError:
        raise ValueError(
            f"unknown fabric preset {fabric!r}; choose one of "
            f"{sorted(FABRIC_PRESETS)} or pass ClosParameters"
        ) from None


@dataclass(frozen=True)
class WorkloadProfile:
    """Shape of a synthetic evidence workload (topology-free).

    Parameters
    ----------
    popularity:
        ``"uniform"`` draws flow endpoints uniformly; ``"zipf"`` ranks hosts
        by a seed-shuffled permutation and draws them with probability
        proportional to ``1/rank**zipf_exponent`` (skewed host popularity).
    zipf_exponent:
        Skew strength of the ``"zipf"`` popularity model.
    hot_tor_fraction:
        Fraction of flows whose *destination* is drawn from under a single
        hot ToR (the Section 6.5 "hot ToR" sink).  0 disables the sink.
    num_bad_links:
        Statically bad directed links (level 1/2), chosen per seed at
        generator construction — the steady-state failures evidence
        concentrates on.  A :class:`~repro.netsim.script.ScenarioScript`
        passed to the generator adds time-varying windows on top.
    bad_path_fraction:
        Fraction of path evidence routed *through* a currently-bad link.
        In production almost all retransmitting flows cross a bad link; the
        remainder is noise drops with random paths.
    max_initial_retransmissions:
        Bad flows carry ``1..max_initial_retransmissions`` retransmissions on
        their path evidence (noise flows always carry 1).
    repeat_fraction:
        Fraction of the stream that is :class:`RetransmissionEvidence` —
        O(1) count bumps for flows whose path was already emitted earlier in
        the epoch.
    max_extra_retransmissions:
        Each repeat event bumps its flow by ``1..max_extra_retransmissions``.
    """

    popularity: str = "uniform"
    zipf_exponent: float = 1.1
    hot_tor_fraction: float = 0.0
    num_bad_links: int = 2
    bad_path_fraction: float = 0.35
    max_initial_retransmissions: int = 3
    repeat_fraction: float = 0.2
    max_extra_retransmissions: int = 4

    def __post_init__(self) -> None:
        if self.popularity not in ("uniform", "zipf"):
            raise ValueError(f"unknown popularity model {self.popularity!r}")
        if not 0.0 <= self.hot_tor_fraction <= 1.0:
            raise ValueError("hot_tor_fraction must be in [0, 1]")
        if not 0.0 <= self.bad_path_fraction <= 1.0:
            raise ValueError("bad_path_fraction must be in [0, 1]")
        if not 0.0 <= self.repeat_fraction < 1.0:
            raise ValueError("repeat_fraction must be in [0, 1)")
        if self.num_bad_links < 0:
            raise ValueError("num_bad_links must be >= 0")
        if self.max_initial_retransmissions < 1:
            raise ValueError("max_initial_retransmissions must be >= 1")
        if self.max_extra_retransmissions < 1:
            raise ValueError("max_extra_retransmissions must be >= 1")

    # -- named mixes ----------------------------------------------------
    @classmethod
    def uniform(cls, **overrides) -> "WorkloadProfile":
        """Uniform host popularity (the paper's baseline traffic)."""
        return replace(cls(), popularity="uniform", **overrides)

    @classmethod
    def skewed(cls, **overrides) -> "WorkloadProfile":
        """Zipf-skewed host popularity (Section 6.5 skewed traffic)."""
        return replace(cls(), popularity="zipf", **overrides)

    @classmethod
    def hot_tor(cls, **overrides) -> "WorkloadProfile":
        """Half the flows sink into one hot ToR (Section 6.5 hot ToR)."""
        return replace(cls(), hot_tor_fraction=0.5, **overrides)

    #: profile name -> constructor, for the CLI.
    @staticmethod
    def named(name: str) -> "WorkloadProfile":
        """Build one of the named mixes (``uniform``/``skewed``/``hot-tor``)."""
        factories = {
            "uniform": WorkloadProfile.uniform,
            "skewed": WorkloadProfile.skewed,
            "hot-tor": WorkloadProfile.hot_tor,
        }
        try:
            return factories[name]()
        except KeyError:
            raise ValueError(
                f"unknown workload profile {name!r}; choose one of "
                f"{sorted(factories)}"
            ) from None
