"""The synthetic evidence load generator.

:class:`EvidenceLoadGenerator` emits the event stream a fleet of 007
monitoring agents would produce on a Clos fabric — ECMP-valid discovered
paths for flows that suffered retransmissions, O(1) count bumps for flows
that retransmit again, and epoch ticks — without running the TCP simulator.
This is what lets the benchmark harness (and the hardening tests) drive
:class:`~repro.api.service.Zero07Service` at fabric scale: millions of
events, deterministic per ``(seed, epoch)``, generated in seconds.

Realism knobs come from the :class:`~repro.loadgen.profiles.WorkloadProfile`
(host popularity skew, hot-ToR sinks, evidence concentration on bad links,
repeat-retransmission mix) and, for time variation, from a
:class:`~repro.netsim.script.ScenarioScript`: flap/burst/drain/reboot events
are resolved against the fabric at construction time into *bad-link windows*,
so evidence shifts onto the scripted victims during exactly the epochs the
script says — the same event vocabulary the netsim scenario engine compiles.

Paths are assembled from pre-interned :class:`DirectedLink` objects (one
object per fabric link, shared by every event), which keeps generation fast
and lets the analysis engines intern links once instead of once per event.
Every stream is reproducible: the generator draws all randomness from
``numpy`` generators keyed on ``(seed, epoch)``, so epoch ``k`` of a given
generator configuration is identical no matter which epochs were generated
before it, from which process, in which order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.events import EpochTick, Evidence, PathEvidence, RetransmissionEvidence
from repro.discovery.agent import DiscoveredPath
from repro.loadgen.profiles import WorkloadProfile, fabric_parameters
from repro.netsim.script import (
    CongestionBurst,
    FabricExpansion,
    LinecardFailure,
    LinkDrain,
    LinkFlap,
    ScenarioScript,
    SwitchReboot,
)
from repro.routing.fivetuple import FiveTuple
from repro.topology.clos import ClosParameters, ClosTopology
from repro.topology.elements import DirectedLink, LinkLevel, SwitchTier


class _BadLinkSpec:
    """A resolved bad directed link plus everything needed to route through it.

    ``kind`` encodes the link's position in the Clos hierarchy (and its
    direction); ``src_candidates``/``dst_candidates`` are host-index arrays a
    flow through the link may start/end at; ``nodes`` carries the fixed
    switch names of the forced hops.
    """

    __slots__ = ("kind", "link", "src_candidates", "dst_candidates", "nodes")

    def __init__(self, kind, link, src_candidates, dst_candidates, nodes):
        self.kind = kind
        self.link = link
        self.src_candidates = src_candidates
        self.dst_candidates = dst_candidates
        self.nodes = nodes


class EvidenceLoadGenerator:
    """Generates fabric-scale evidence streams from a Clos sizing + profile.

    Parameters
    ----------
    fabric:
        A :class:`ClosParameters` sizing or a preset name
        (:data:`~repro.loadgen.profiles.FABRIC_PRESETS`).
    profile:
        The :class:`WorkloadProfile` (defaults to the uniform mix).
    script:
        Optional :class:`ScenarioScript`; its flap/burst/drain/reboot/
        linecard/expansion events are resolved (seeded random victims
        included) into time-varying bad-link windows that bias evidence
        during the scripted epochs.  ``TrafficShift`` events carry no
        failure information and are ignored.
    seed:
        Master seed; the whole stream is a pure function of
        ``(fabric, profile, script, seed, events_per_epoch)``.
    events_per_epoch:
        Evidence events per epoch (paths + repeat updates, excluding the
        final :class:`EpochTick`).
    """

    def __init__(
        self,
        fabric: Union[str, ClosParameters] = "medium",
        profile: Optional[WorkloadProfile] = None,
        script: Optional[ScenarioScript] = None,
        seed: int = 0,
        events_per_epoch: int = 100_000,
    ) -> None:
        if events_per_epoch < 0:
            raise ValueError("events_per_epoch must be >= 0")
        self._params = fabric_parameters(fabric)
        self._profile = profile if profile is not None else WorkloadProfile()
        self._seed = int(seed)
        self._events_per_epoch = int(events_per_epoch)
        self._topology = ClosTopology(self._params)
        self._index_fabric()
        rng = np.random.default_rng([self._seed, 0xFAB])
        self._static_specs = self._resolve_static_bad_links(rng)
        self._windows = self._resolve_script(script, rng)
        #: pure functions of the constructor arguments — computed once.
        self._weights = self._popularity_weights()
        self._hot = self._hot_hosts()

    # ------------------------------------------------------------------
    # fabric indexing
    # ------------------------------------------------------------------
    def _index_fabric(self) -> None:
        topo = self._topology
        self._hosts: List[str] = sorted(topo.hosts)
        self._host_ids: Dict[str, int] = {h: i for i, h in enumerate(self._hosts)}
        self._host_tor: List[str] = [topo.host(h).tor for h in self._hosts]
        self._host_pod: List[int] = [topo.host(h).pod for h in self._hosts]
        npod = self._params.npod
        self._pod_t1: List[List[str]] = [
            [s.name for s in topo.tier1s(pod)] for pod in range(npod)
        ]
        self._t2: List[str] = [s.name for s in topo.tier2s()]
        self._hosts_by_tor: Dict[str, np.ndarray] = {}
        self._hosts_by_pod: List[np.ndarray] = [np.empty(0, np.int64)] * npod
        by_tor: Dict[str, List[int]] = {}
        by_pod: List[List[int]] = [[] for _ in range(npod)]
        for i, h in enumerate(self._hosts):
            by_tor.setdefault(self._host_tor[i], []).append(i)
            by_pod[self._host_pod[i]].append(i)
        for tor, ids in by_tor.items():
            self._hosts_by_tor[tor] = np.asarray(ids, dtype=np.int64)
        for pod, ids in enumerate(by_pod):
            self._hosts_by_pod[pod] = np.asarray(ids, dtype=np.int64)
        #: one shared DirectedLink object per fabric direction — paths reuse
        #: them, so the analysis engines intern each link exactly once.
        self._links: Dict[Tuple[str, str], DirectedLink] = {
            (link.src, link.dst): link for link in topo.directed_links()
        }

    @property
    def params(self) -> ClosParameters:
        """The fabric sizing the stream is generated over."""
        return self._params

    @property
    def profile(self) -> WorkloadProfile:
        """The workload profile in effect."""
        return self._profile

    @property
    def events_per_epoch(self) -> int:
        """Evidence events per epoch (the final tick not included)."""
        return self._events_per_epoch

    @property
    def num_hosts(self) -> int:
        """Number of hosts in the fabric."""
        return len(self._hosts)

    def bad_links_for_epoch(self, epoch: int) -> List[DirectedLink]:
        """The directed links evidence concentrates on during ``epoch``."""
        return [spec.link for spec in self._active_specs(epoch)]

    def describe(self) -> str:
        """One-line human-readable description of the workload."""
        p = self._params
        return (
            f"{len(self._hosts)} hosts ({p.npod} pods x {p.n0} ToRs x "
            f"{p.hosts_per_tor}), {len(self._links)} directed links, "
            f"{self._events_per_epoch} events/epoch, "
            f"profile {self._profile.popularity}"
            + (
                f" + hot-ToR {self._profile.hot_tor_fraction:.0%}"
                if self._profile.hot_tor_fraction
                else ""
            )
            + f", {len(self._static_specs)} static bad link(s), "
            f"{len(self._windows)} scripted window(s)"
        )

    # ------------------------------------------------------------------
    # bad-link resolution
    # ------------------------------------------------------------------
    def _directed_candidates(self, levels: Sequence[LinkLevel]) -> List[DirectedLink]:
        out: List[DirectedLink] = []
        for level in levels:
            for link in sorted(self._topology.links_of_level(level)):
                for direction in link.directions():
                    out.append(self._links[(direction.src, direction.dst)])
        return out

    def _spec_for(self, link: DirectedLink) -> Optional[_BadLinkSpec]:
        """Resolve a directed link into a routing spec (``None`` if no flow
        over this fabric can traverse it — e.g. a level-2 link in a 1-pod
        fabric, or a leaf link in a single-rack fabric with no peers)."""
        topo = self._topology
        all_hosts = np.arange(len(self._hosts), dtype=np.int64)
        if topo.is_host(link.src):  # host -> ToR (up)
            src_fixed = self._host_ids[link.src]
            dst = all_hosts[all_hosts != src_fixed]
            if not len(dst):
                return None
            return _BadLinkSpec("host_up", link, None, dst, (src_fixed,))
        if topo.is_host(link.dst):  # ToR -> host (down)
            dst_fixed = self._host_ids[link.dst]
            src = all_hosts[all_hosts != dst_fixed]
            if not len(src):
                return None
            return _BadLinkSpec("host_down", link, src, None, (dst_fixed,))

        src_switch = topo.switch(link.src)
        dst_switch = topo.switch(link.dst)
        tiers = (src_switch.tier, dst_switch.tier)
        level = topo.link_level(link)
        if level == LinkLevel.LEVEL1:
            tor, t1 = (
                (link.src, link.dst) if tiers[0] == 0 else (link.dst, link.src)
            )
            under = self._hosts_by_tor.get(tor, np.empty(0, np.int64))
            outside = np.setdiff1d(all_hosts, under, assume_unique=True)
            if not len(under) or not len(outside):
                return None
            pod = topo.switch(tor).pod
            if tiers[0] == 0:  # ToR -> T1: flows *from* hosts under the ToR
                return _BadLinkSpec("l1_up", link, under, outside, (tor, t1, pod))
            return _BadLinkSpec("l1_down", link, outside, under, (t1, tor, pod))
        if level == LinkLevel.LEVEL2:
            t1, t2 = (
                (link.src, link.dst) if tiers[0] == 1 else (link.dst, link.src)
            )
            pod = topo.switch(t1).pod
            inside = self._hosts_by_pod[pod]
            outside = np.setdiff1d(all_hosts, inside, assume_unique=True)
            if not len(inside) or not len(outside):
                return None
            if tiers[0] == 1:  # T1 -> T2: cross-pod flows leaving ``pod``
                return _BadLinkSpec("l2_up", link, inside, outside, (t1, t2, pod))
            return _BadLinkSpec("l2_down", link, outside, inside, (t2, t1, pod))
        return None  # level-3 links are never traversed (paper Section 4.1)

    def _resolve_static_bad_links(self, rng: np.random.Generator) -> List[_BadLinkSpec]:
        count = self._profile.num_bad_links
        if count <= 0:
            return []
        levels = [LinkLevel.LEVEL1]
        if self._params.npod >= 2:
            levels.append(LinkLevel.LEVEL2)
        candidates = self._directed_candidates(levels)
        specs: List[_BadLinkSpec] = []
        if not candidates:
            return specs
        order = rng.permutation(len(candidates))
        for idx in order:
            spec = self._spec_for(candidates[int(idx)])
            if spec is not None:
                specs.append(spec)
            if len(specs) == count:
                break
        return specs

    def _resolve_script(
        self, script: Optional[ScenarioScript], rng: np.random.Generator
    ) -> List[Tuple[int, int, List[_BadLinkSpec]]]:
        """Resolve script events into ``(start, end, specs)`` windows."""
        if script is None:
            return []
        windows: List[Tuple[int, int, List[_BadLinkSpec]]] = []
        for event in script.events:
            if isinstance(event, LinkFlap):
                if event.link is not None:
                    victims = [self._canonical(event.link)]
                else:
                    victims = self._pick_of_level(event.level, 1, rng)
                windows.append((event.start_epoch, event.end_epoch, victims))
            elif isinstance(event, CongestionBurst):
                victims = self._pick_of_level(event.level, event.num_links, rng)
                windows.append((event.start_epoch, event.end_epoch, victims))
            elif isinstance(event, LinkDrain):
                if event.link is not None:
                    directions = [
                        self._links.get((d.src, d.dst))
                        for d in event.link.directions()
                    ]
                    victims = [d for d in directions if d is not None]
                else:
                    victims = self._pick_of_level(event.level, 1, rng, both=True)
                windows.append((event.start_epoch, event.end_epoch, victims))
            elif isinstance(event, SwitchReboot):
                victims = self._switch_victims(event, rng)
                end = event.epoch + max(1, event.outage_epochs)
                windows.append((event.epoch, end, victims))
            elif isinstance(event, LinecardFailure):
                victims = self._linecard_victims(event, rng)
                windows.append((event.start_epoch, event.end_epoch, victims))
            elif isinstance(event, FabricExpansion):
                # Expansion links are dark (blackholed) until the cutover
                # epoch: evidence concentrates on them during [0, epoch).
                if event.epoch > 0:
                    name = self._pick_switch(
                        event.switch,
                        event.tier if event.tier is not None else SwitchTier.T2,
                        rng,
                    )
                    victims = self._all_directions_of(name)
                    windows.append((0, event.epoch, victims))
            # TrafficShift carries no failure; popularity is profile-driven.
        resolved: List[Tuple[int, int, List[_BadLinkSpec]]] = []
        for start, end, victims in windows:
            specs = [
                spec
                for spec in (self._spec_for(v) for v in victims)
                if spec is not None
            ]
            if specs:
                resolved.append((start, end, specs))
        return resolved

    def _canonical(self, link: DirectedLink) -> DirectedLink:
        found = self._links.get((link.src, link.dst))
        if found is None:
            raise ValueError(f"scripted link {link} does not exist in the fabric")
        return found

    def _pick_of_level(
        self,
        level: Optional[LinkLevel],
        count: int,
        rng: np.random.Generator,
        both: bool = False,
    ) -> List[DirectedLink]:
        level = level if level is not None else LinkLevel.LEVEL1
        links = sorted(self._topology.links_of_level(level))
        if not links:
            return []
        picks = rng.permutation(len(links))[: max(1, count)]
        victims: List[DirectedLink] = []
        for idx in picks:
            link = links[int(idx)]
            directions = link.directions()
            if both:
                victims.extend(self._links[(d.src, d.dst)] for d in directions)
            else:
                chosen = directions[int(rng.integers(0, 2))]
                victims.append(self._links[(chosen.src, chosen.dst)])
        return victims

    def _pick_switch(
        self, name: Optional[str], tier: SwitchTier, rng: np.random.Generator
    ) -> Optional[str]:
        if name is not None:
            return name
        candidates = sorted(
            s.name for s in self._topology.switches_of_tier(tier)
        )
        if not candidates:
            return None
        return candidates[int(rng.integers(0, len(candidates)))]

    def _all_directions_of(self, name: Optional[str]) -> List[DirectedLink]:
        if name is None:
            return []
        victims: List[DirectedLink] = []
        for link in self._topology.links_of_node(name):
            for d in link.directions():
                victims.append(self._links[(d.src, d.dst)])
        return victims

    def _switch_victims(
        self, event: SwitchReboot, rng: np.random.Generator
    ) -> List[DirectedLink]:
        name = self._pick_switch(
            event.switch,
            event.tier if event.tier is not None else SwitchTier.T1,
            rng,
        )
        return self._all_directions_of(name)

    def _linecard_victims(
        self, event: LinecardFailure, rng: np.random.Generator
    ) -> List[DirectedLink]:
        name = self._pick_switch(
            event.switch,
            event.tier if event.tier is not None else SwitchTier.T1,
            rng,
        )
        if name is None:
            return []
        candidates = sorted(self._topology.links_of_node(name))
        if not candidates:
            return []
        count = min(event.num_links, len(candidates))
        chosen = rng.choice(len(candidates), size=count, replace=False)
        victims: List[DirectedLink] = []
        for idx in sorted(int(i) for i in chosen):
            for d in candidates[idx].directions():
                victims.append(self._links[(d.src, d.dst)])
        return victims

    def _active_specs(self, epoch: int) -> List[_BadLinkSpec]:
        specs = list(self._static_specs)
        for start, end, window_specs in self._windows:
            if start <= epoch < end:
                specs.extend(window_specs)
        return specs

    # ------------------------------------------------------------------
    # path assembly
    # ------------------------------------------------------------------
    def _normal_path(
        self, src_i: int, dst_i: int, t1u: int, t2c: int, t1d: int
    ) -> List[DirectedLink]:
        links = self._links
        hosts = self._hosts
        s, d = hosts[src_i], hosts[dst_i]
        st, dt = self._host_tor[src_i], self._host_tor[dst_i]
        if st == dt:
            return [links[(s, st)], links[(st, d)]]
        sp, dp = self._host_pod[src_i], self._host_pod[dst_i]
        up_t1s = self._pod_t1[sp]
        t1 = up_t1s[t1u % len(up_t1s)]
        if sp == dp:
            return [links[(s, st)], links[(st, t1)], links[(t1, dt)], links[(dt, d)]]
        t2 = self._t2[t2c % len(self._t2)]
        down_t1s = self._pod_t1[dp]
        t1b = down_t1s[t1d % len(down_t1s)]
        return [
            links[(s, st)],
            links[(st, t1)],
            links[(t1, t2)],
            links[(t2, t1b)],
            links[(t1b, dt)],
            links[(dt, d)],
        ]

    def _bad_path(
        self, spec: _BadLinkSpec, r_src: int, r_dst: int, t1u: int, t2c: int, t1d: int
    ) -> Tuple[int, int, List[DirectedLink]]:
        """A valid fabric path forced through ``spec``'s bad link."""
        links = self._links
        hosts = self._hosts
        kind = spec.kind
        if kind == "host_up":
            src_i = spec.nodes[0]
            dst_i = int(spec.dst_candidates[r_dst % len(spec.dst_candidates)])
            return src_i, dst_i, self._normal_path(src_i, dst_i, t1u, t2c, t1d)
        if kind == "host_down":
            dst_i = spec.nodes[0]
            src_i = int(spec.src_candidates[r_src % len(spec.src_candidates)])
            return src_i, dst_i, self._normal_path(src_i, dst_i, t1u, t2c, t1d)
        src_i = int(spec.src_candidates[r_src % len(spec.src_candidates)])
        dst_i = int(spec.dst_candidates[r_dst % len(spec.dst_candidates)])
        s, d = hosts[src_i], hosts[dst_i]
        st, dt = self._host_tor[src_i], self._host_tor[dst_i]
        sp, dp = self._host_pod[src_i], self._host_pod[dst_i]
        if kind == "l1_up":
            tor, t1, pod = spec.nodes
            if dp == pod:
                return src_i, dst_i, [
                    links[(s, tor)], links[(tor, t1)], links[(t1, dt)], links[(dt, d)],
                ]
            t2 = self._t2[t2c % len(self._t2)]
            down = self._pod_t1[dp]
            t1b = down[t1d % len(down)]
            return src_i, dst_i, [
                links[(s, tor)], links[(tor, t1)], links[(t1, t2)],
                links[(t2, t1b)], links[(t1b, dt)], links[(dt, d)],
            ]
        if kind == "l1_down":
            t1, tor, pod = spec.nodes
            if sp == pod:
                return src_i, dst_i, [
                    links[(s, st)], links[(st, t1)], links[(t1, tor)], links[(tor, d)],
                ]
            up = self._pod_t1[sp]
            t1a = up[t1u % len(up)]
            t2 = self._t2[t2c % len(self._t2)]
            return src_i, dst_i, [
                links[(s, st)], links[(st, t1a)], links[(t1a, t2)],
                links[(t2, t1)], links[(t1, tor)], links[(tor, d)],
            ]
        if kind == "l2_up":
            t1, t2, _pod = spec.nodes
            down = self._pod_t1[dp]
            t1b = down[t1d % len(down)]
            return src_i, dst_i, [
                links[(s, st)], links[(st, t1)], links[(t1, t2)],
                links[(t2, t1b)], links[(t1b, dt)], links[(dt, d)],
            ]
        # l2_down: T2 -> T1 into the destination pod
        t2, t1, _pod = spec.nodes
        up = self._pod_t1[sp]
        t1a = up[t1u % len(up)]
        return src_i, dst_i, [
            links[(s, st)], links[(st, t1a)], links[(t1a, t2)],
            links[(t2, t1)], links[(t1, dt)], links[(dt, d)],
        ]

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _popularity_weights(self) -> Optional[np.ndarray]:
        if self._profile.popularity != "zipf" or len(self._hosts) < 2:
            return None
        rng = np.random.default_rng([self._seed, 0x21F])
        ranks = rng.permutation(len(self._hosts)) + 1
        weights = 1.0 / np.power(ranks, self._profile.zipf_exponent)
        return weights / weights.sum()

    def _hot_hosts(self) -> Optional[np.ndarray]:
        if self._profile.hot_tor_fraction <= 0.0:
            return None
        rng = np.random.default_rng([self._seed, 0x407])
        tors = sorted(self._hosts_by_tor)
        hot = tors[int(rng.integers(0, len(tors)))]
        return self._hosts_by_tor[hot]

    def _draw_hosts(
        self, rng: np.random.Generator, count: int, weights: Optional[np.ndarray]
    ) -> np.ndarray:
        if weights is None:
            return rng.integers(0, len(self._hosts), size=count)
        return rng.choice(len(self._hosts), size=count, p=weights)

    def _make_paths(
        self, epoch: int, count: int, rng: np.random.Generator
    ) -> List[DiscoveredPath]:
        profile = self._profile
        specs = self._active_specs(epoch)
        weights = self._weights
        hot = self._hot

        src = self._draw_hosts(rng, count, weights)
        dst = self._draw_hosts(rng, count, weights)
        if hot is not None:
            sink = rng.random(count) < profile.hot_tor_fraction
            dst[sink] = hot[rng.integers(0, len(hot), size=int(sink.sum()))]
        raw = rng.integers(0, np.iinfo(np.int64).max, size=(5, count))
        t1u, t2c, t1d, r_src, r_dst = raw
        if specs:
            bad = rng.random(count) < profile.bad_path_fraction
            bad_pick = rng.integers(0, len(specs), size=count)
        else:
            bad = np.zeros(count, dtype=bool)
            bad_pick = None
        retrans = np.ones(count, dtype=np.int64)
        num_bad = int(bad.sum())
        if num_bad:
            retrans[bad] = rng.integers(
                1, profile.max_initial_retransmissions + 1, size=num_bad
            )
        ports = rng.integers(1024, 65536, size=count)

        hosts = self._hosts
        num_hosts = len(hosts)
        flow_base = epoch * self._events_per_epoch
        paths: List[DiscoveredPath] = []
        append = paths.append
        for i in range(count):
            if bad[i]:
                spec = specs[bad_pick[i]]
                src_i, dst_i, path_links = self._bad_path(
                    spec, int(r_src[i]), int(r_dst[i]),
                    int(t1u[i]), int(t2c[i]), int(t1d[i]),
                )
            else:
                src_i = int(src[i])
                dst_i = int(dst[i])
                if dst_i == src_i:
                    dst_i = (dst_i + 1) % num_hosts
                path_links = self._normal_path(
                    src_i, dst_i, int(t1u[i]), int(t2c[i]), int(t1d[i])
                )
            s, d = hosts[src_i], hosts[dst_i]
            append(
                DiscoveredPath(
                    flow_id=flow_base + i,
                    five_tuple=FiveTuple(
                        src_ip=s, dst_ip=d, src_port=int(ports[i]), dst_port=443
                    ),
                    src_host=s,
                    dst_host=d,
                    links=path_links,
                    complete=True,
                    retransmissions=int(retrans[i]),
                    epoch=epoch,
                )
            )
        return paths

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------
    def epoch_events(self, epoch: int, tick: bool = True) -> List[Evidence]:
        """The epoch's evidence events in emission (= sequence) order.

        Deterministic per ``(seed, epoch)`` — independent of which other
        epochs were generated, or in which order.  The list interleaves path
        evidence with repeat-retransmission updates (per
        ``profile.repeat_fraction``) and, with ``tick=True``, ends with the
        epoch's :class:`EpochTick`.
        """
        rng = np.random.default_rng([self._seed, 0x5EED, int(epoch)])
        n = self._events_per_epoch
        out: List[Evidence] = []
        if n > 0 and len(self._hosts) >= 2:
            repeats = int(n * self._profile.repeat_fraction)
            paths = self._make_paths(epoch, n - repeats, rng)
            is_repeat = np.zeros(n, dtype=bool)
            if repeats:
                positions = rng.choice(np.arange(1, n), size=repeats, replace=False)
                is_repeat[positions] = True
            pick = rng.integers(0, np.iinfo(np.int64).max, size=n)
            extra = rng.integers(
                1, self._profile.max_extra_retransmissions + 1, size=n
            )
            emitted: List[int] = []
            emit_flow = emitted.append
            next_path = iter(paths).__next__
            append = out.append
            for seq in range(n):
                if is_repeat[seq]:
                    flow_id = emitted[int(pick[seq]) % len(emitted)]
                    append(
                        RetransmissionEvidence(
                            epoch=epoch,
                            flow_id=flow_id,
                            retransmissions=int(extra[seq]),
                            seq=seq,
                        )
                    )
                else:
                    path = next_path()
                    emit_flow(path.flow_id)
                    append(PathEvidence(epoch=epoch, seq=seq, path=path))
        if tick:
            out.append(EpochTick(epoch))
        return out

    def agent_events(
        self, epoch: int, agent_index: int, num_agents: int
    ) -> List[Evidence]:
        """Agent ``agent_index``'s contiguous slice of the epoch's evidence.

        The fleet partitioning: agent ``i`` of ``n`` emits the events at
        positions ``[i*len/n, (i+1)*len/n)`` of :meth:`epoch_events` (no
        tick), keeping the original global sequence numbers.  Every agent
        process regenerates only its own slice deterministically, and the
        union across agents is exactly the single-process stream — which is
        what makes a fleet run's reports comparable bit-for-bit against an
        ``ingest_batch`` replay.
        """
        if not 0 <= agent_index < num_agents:
            raise ValueError(
                f"agent_index {agent_index} out of range for {num_agents} agents"
            )
        events = self.epoch_events(epoch, tick=False)
        n = len(events)
        lo = (agent_index * n) // num_agents
        hi = ((agent_index + 1) * n) // num_agents
        return events[lo:hi]

    def iter_epochs(
        self, epochs: int, tick: bool = True
    ) -> Iterator[Tuple[int, List[Evidence]]]:
        """Yield ``(epoch, events)`` for ``epochs`` consecutive epochs."""
        for epoch in range(epochs):
            yield epoch, self.epoch_events(epoch, tick=tick)

    def stream(self, epochs: int, tick: bool = True) -> Iterator[Evidence]:
        """The full evidence stream over ``epochs`` epochs, lazily.

        Memory stays bounded by one epoch's events; this is the
        :class:`~repro.api.service.EvidenceSource`-shaped entry point
        (``ReplayEvidenceSource(generator.stream(...))`` materializes it).
        """
        for _, events in self.iter_epochs(epochs, tick=tick):
            yield from events
