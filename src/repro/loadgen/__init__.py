"""``repro.loadgen``: fabric-scale synthetic evidence workloads.

The 007 analysis service must keep up with production traffic — millions of
flows per epoch across a Clos fabric — but exercising it through the full
TCP/netsim simulation caps realistic scale at a few thousand flows.  This
package generates :class:`~repro.api.events.PathEvidence` /
:class:`~repro.api.events.RetransmissionEvidence` / EpochTick streams
*directly* from a :class:`~repro.topology.clos.ClosParameters` fabric and a
traffic/failure profile, without running the simulator:

* :class:`WorkloadProfile` — who talks to whom (uniform, Zipf-skewed host
  popularity, hot-ToR sinks), how concentrated the evidence is on bad links,
  and how often already-traced flows retransmit again.
* :class:`EvidenceLoadGenerator` — emits realistic, ECMP-valid evidence paths
  over the fabric, deterministic per seed, at millions of events; accepts a
  :class:`~repro.netsim.script.ScenarioScript` whose flap/burst/drain/reboot
  events become time-varying bad-link windows.
* :data:`FABRIC_PRESETS` / :func:`fabric_parameters` — named fabric sizings
  shared with the ``repro bench`` CLI.

The exported names are snapshot-tested (``tests/test_api_surface.py``).
"""

from repro.loadgen.generator import EvidenceLoadGenerator
from repro.loadgen.profiles import (
    FABRIC_PRESETS,
    WorkloadProfile,
    fabric_parameters,
)

__all__ = [
    "EvidenceLoadGenerator",
    "WorkloadProfile",
    "FABRIC_PRESETS",
    "fabric_parameters",
]
