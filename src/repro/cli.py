"""Command-line interface for the 007 reproduction.

Three subcommands cover the common workflows:

* ``scenario`` — run the full pipeline on a synthetic Clos fabric with injected
  failures and print the epoch report plus accuracy/precision/recall.
  Scenarios are shareable files: ``--dump-config out.json`` writes the
  resolved :class:`~repro.experiments.scenario.ScenarioConfig` (including any
  ``--timeline`` script) without running it, ``--config out.json`` runs one.
* ``experiment`` — regenerate one of the paper's tables/figures by name
  (``fig03``, ``table1``, ``sec83`` ...) and print its rows.
* ``bench`` — drive the streaming service with a fabric-scale synthetic
  evidence workload (``repro.loadgen``) and write the versioned
  ``BENCH_service.json`` perf artifact (``repro.bench``).
* ``checkpoint`` — inspect, convert (JSON <-> binary) and merge (delta onto
  base) service checkpoints written by ``Checkpoint.save``.
* ``fleet`` — the distributed deployment: ``fleet analyzer`` serves the
  socket ingest front-end, ``fleet agent`` streams one agent's evidence
  slice at it, and ``fleet run`` orchestrates N agents + one analyzer on
  localhost into a self-describing run directory (``repro.fleet``).
* ``pack`` — the named scenario-pack library (``repro.scenarios``):
  ``pack list`` shows the registry, ``pack validate`` schema-checks every
  ``scenario.json``/``expected.json``, and ``pack run --all`` executes each
  scenario against its committed golden metrics, deterministically at any
  ``--workers`` count.
* ``theory`` — evaluate Theorems 1 and 2 for a given topology sizing.

Installed as the ``repro-007`` console script; also runnable via
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.netsim.script import ScenarioScript
from repro.topology.elements import LinkLevel, SwitchTier
from repro.theory.theorem1 import traceroute_rate_bound
from repro.theory.theorem2 import (
    max_detectable_bad_links,
    noise_tolerance_bound,
)
from repro.topology.clos import ClosParameters

#: experiment name -> zero-argument callable returning an ExperimentResult.
def _experiment_registry() -> Dict[str, Callable[[], ExperimentResult]]:
    from repro.experiments import (
        ablations,
        fig01_motivation,
        fig03_accuracy_optimal,
        fig04_detection_optimal,
        fig05_drop_rates,
        fig06_noise,
        fig07_connections,
        fig08_skew,
        fig09_hot_tor,
        fig10_detection_single,
        fig11_link_location,
        fig12_skewed_drop_rates,
        fig13_testcluster_votes,
        sec66_transient,
        sec67_network_size,
        sec72_two_links,
        sec82_everflow_validation,
        sec83_vm_reboots,
        table1_icmp,
    )

    return {
        "fig01": fig01_motivation.run_fig01,
        "table1": table1_icmp.run_table1,
        "fig03": fig03_accuracy_optimal.run_fig03,
        "fig04": fig04_detection_optimal.run_fig04,
        "fig05": fig05_drop_rates.run_fig05,
        "fig06": fig06_noise.run_fig06,
        "fig07": fig07_connections.run_fig07,
        "fig08": fig08_skew.run_fig08,
        "fig09": fig09_hot_tor.run_fig09,
        "fig10": fig10_detection_single.run_fig10,
        "fig11": fig11_link_location.run_fig11,
        "fig12": fig12_skewed_drop_rates.run_fig12,
        "sec66": sec66_transient.run_sec66,
        "sec67": sec67_network_size.run_sec67,
        "fig13": fig13_testcluster_votes.run_fig13,
        "sec72": sec72_two_links.run_sec72,
        "sec82": sec82_everflow_validation.run_sec82,
        "sec83": sec83_vm_reboots.run_sec83,
        "ablations": ablations.run_all_ablations,
    }


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-007",
        description="Reproduction of '007: Democratically Finding the Cause of Packet Drops'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenario = subparsers.add_parser("scenario", help="run the full pipeline once")
    scenario.add_argument("--pods", type=int, default=2)
    scenario.add_argument("--tors-per-pod", type=int, default=10)
    scenario.add_argument("--t1-per-pod", type=int, default=4)
    scenario.add_argument("--t2", type=int, default=4)
    scenario.add_argument("--hosts-per-tor", type=int, default=3)
    scenario.add_argument("--bad-links", type=int, default=1)
    scenario.add_argument("--drop-rate", type=float, default=5e-3)
    scenario.add_argument("--connections-per-host", type=int, default=40)
    scenario.add_argument("--epochs", type=int, default=1)
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument("--top", type=int, default=5, help="how many ranked links to print")
    scenario.add_argument(
        "--engine",
        choices=["arrays", "dicts"],
        default="arrays",
        help="analysis engine (vectorized default vs pure-Python reference)",
    )
    # time-varying timeline (scripted events on top of the static failures)
    scenario.add_argument(
        "--timeline",
        choices=["none", "flap", "burst", "reboot", "drain"],
        default="none",
        help="scripted per-epoch event timeline; victims are chosen randomly "
        "(seeded) at the given level",
    )
    scenario.add_argument(
        "--event-start", type=int, default=2, help="epoch the scripted event begins"
    )
    scenario.add_argument(
        "--event-duration", type=int, default=3, help="epochs the scripted event lasts"
    )
    scenario.add_argument(
        "--event-rate",
        type=float,
        default=1e-2,
        help="drop rate of flap/burst events (reboot/drain always blackhole)",
    )
    scenario.add_argument(
        "--num-events",
        type=int,
        default=1,
        help="how many flaps (or links per burst) the timeline contains",
    )
    scenario.add_argument(
        "--event-level",
        choices=["host", "1", "2"],
        default="1",
        help="link level the scripted events strike (host-ToR, ToR-T1, T1-T2)",
    )
    scenario.add_argument(
        "--config",
        metavar="PATH",
        default=None,
        help="run the scenario described by a JSON config file (written by "
        "--dump-config); the other scenario flags are ignored",
    )
    scenario.add_argument(
        "--dump-config",
        metavar="PATH",
        default=None,
        help="write the resolved scenario config as JSON ('-' for stdout) "
        "and exit without running",
    )

    experiment = subparsers.add_parser("experiment", help="regenerate a table/figure")
    experiment.add_argument("name", choices=sorted(_experiment_registry()))
    experiment.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sweep experiments (1 = serial; results are "
        "byte-identical at any worker count)",
    )
    experiment.add_argument(
        "--trials",
        type=int,
        default=None,
        help="override the experiment's default trials per sweep point",
    )

    bench = subparsers.add_parser(
        "bench",
        help="fabric-scale load benchmark of the streaming service "
        "(writes the versioned BENCH_service.json perf artifact)",
    )
    bench.add_argument(
        "--fabric",
        default="medium",
        choices=["tiny", "small", "medium", "large"],
        help="fabric preset the synthetic evidence workload is generated over",
    )
    bench.add_argument(
        "--events",
        type=int,
        default=1_000_000,
        help="total evidence events across all epochs (ticks not counted)",
    )
    bench.add_argument("--epochs", type=int, default=8)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts to benchmark (1 = unsharded)",
    )
    bench.add_argument(
        "--engine",
        choices=["arrays", "dicts", "both"],
        default="both",
        help="analysis engine(s) to benchmark",
    )
    bench.add_argument(
        "--backend",
        default="inline",
        help="comma-separated executor backends to benchmark "
        "(inline, process, or both as 'inline,process')",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-process cap for the process backend "
        "(default: one worker per shard)",
    )
    bench.add_argument(
        "--profile",
        choices=["uniform", "skewed", "hot-tor"],
        default="skewed",
        help="traffic mix of the synthetic workload",
    )
    bench.add_argument(
        "--timeline",
        choices=["none", "flap", "burst"],
        default="none",
        help="scripted failure timeline biasing the workload over time",
    )
    bench.add_argument(
        "--baseline-events",
        type=int,
        default=None,
        help="cap on the per-event ingest baseline measurement "
        "(default: min(events, 250000))",
    )
    bench.add_argument(
        "--json",
        metavar="PATH",
        default="BENCH_service.json",
        help="where to write the schema-validated perf document "
        "('-' prints it to stdout instead)",
    )
    bench.add_argument(
        "--artifacts-dir",
        metavar="DIR",
        default=None,
        help="also write one JSON artifact per (engine, backend, shards) "
        "run into DIR",
    )
    bench.add_argument(
        "--fleet",
        action="store_true",
        help="also measure socket ingest (tcp/unix/inproc agents) and record "
        "the v4 'fleet' block",
    )
    bench.add_argument(
        "--fleet-agents",
        type=int,
        default=4,
        help="agent sender processes for the fleet measurement",
    )
    bench.add_argument(
        "--fleet-events",
        type=int,
        default=400_000,
        help="total events of the fleet measurement (multiple of 4 epochs)",
    )
    bench.add_argument(
        "--quiet", action="store_true", help="suppress per-epoch progress lines"
    )

    checkpoint = subparsers.add_parser(
        "checkpoint",
        help="inspect, convert or merge service checkpoints",
    )
    checkpoint_sub = checkpoint.add_subparsers(
        dest="checkpoint_command", required=True
    )
    ckpt_inspect = checkpoint_sub.add_parser(
        "inspect",
        help="print a checkpoint's format, kind, counters and epoch contents",
    )
    ckpt_inspect.add_argument("path", help="checkpoint file (JSON or binary)")
    ckpt_convert = checkpoint_sub.add_parser(
        "convert",
        help="rewrite a checkpoint in the other serialization",
    )
    ckpt_convert.add_argument("src", help="source checkpoint (JSON or binary)")
    ckpt_convert.add_argument("dst", help="destination path")
    ckpt_convert.add_argument(
        "--format",
        choices=["binary", "json"],
        default="binary",
        help="serialization to write (default: binary)",
    )
    ckpt_merge = checkpoint_sub.add_parser(
        "merge",
        help="apply a delta checkpoint onto its full base",
    )
    ckpt_merge.add_argument("base", help="full base checkpoint")
    ckpt_merge.add_argument("delta", help="delta checkpoint taken against it")
    ckpt_merge.add_argument("out", help="where to write the merged checkpoint")
    ckpt_merge.add_argument(
        "--format",
        choices=["binary", "json"],
        default="binary",
        help="serialization to write (default: binary)",
    )

    fleet = subparsers.add_parser(
        "fleet",
        help="distributed fleet: socket analyzer, agent senders, run orchestration",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    def _fleet_workload_arguments(command, events_default: int) -> None:
        command.add_argument(
            "--fabric",
            default="tiny",
            choices=["tiny", "small", "medium", "large"],
            help="fabric preset the synthetic workload is generated over",
        )
        command.add_argument(
            "--profile",
            choices=["uniform", "skewed", "hot-tor"],
            default="skewed",
            help="traffic mix of the synthetic workload",
        )
        command.add_argument(
            "--timeline",
            choices=["none", "flap", "burst"],
            default="none",
            help="scripted failure timeline biasing the workload over time",
        )
        command.add_argument("--epochs", type=int, default=3)
        command.add_argument(
            "--events-per-epoch", type=int, default=events_default
        )
        command.add_argument("--seed", type=int, default=7)
        command.add_argument(
            "--chunk-events",
            type=int,
            default=1024,
            help="evidence events per wire chunk",
        )

    fleet_analyzer = fleet_sub.add_parser(
        "analyzer",
        help="serve the socket ingest front-end until a query-socket shutdown",
    )
    fleet_analyzer.add_argument(
        "--bind",
        default="tcp:127.0.0.1:0",
        help="evidence listener endpoint (tcp:HOST:PORT or unix:/PATH; "
        "port 0 = kernel-assigned)",
    )
    fleet_analyzer.add_argument(
        "--query-bind",
        default="tcp:127.0.0.1:0",
        help="newline-JSON query listener endpoint",
    )
    fleet_analyzer.add_argument(
        "--num-agents",
        type=int,
        default=1,
        help="agents whose ticks form each epoch's finalize barrier",
    )
    fleet_analyzer.add_argument(
        "--mode",
        choices=["events", "columns"],
        default="events",
        help="ingest core: decoded events through a real service, or the "
        "arrays-only columnar fold",
    )
    fleet_analyzer.add_argument(
        "--engine", choices=["arrays", "dicts"], default="arrays"
    )
    fleet_analyzer.add_argument(
        "--shards",
        type=int,
        default=1,
        help="service shards behind the events mode (1 = unsharded)",
    )
    fleet_analyzer.add_argument(
        "--backend",
        choices=["inline", "process"],
        default="inline",
        help="shard executor backend when --shards > 1",
    )
    fleet_analyzer.add_argument("--workers", type=int, default=None)
    fleet_analyzer.add_argument("--retain-reports", type=int, default=16)
    fleet_analyzer.add_argument(
        "--idle-timeout",
        type=float,
        default=30.0,
        help="seconds of agent silence before the connection is dropped",
    )
    fleet_analyzer.add_argument(
        "--ready-file",
        metavar="PATH",
        default=None,
        help="write the bound endpoints as JSON here once listening "
        "(how the runner discovers kernel-assigned ports)",
    )

    fleet_agent = fleet_sub.add_parser(
        "agent",
        help="stream one agent's deterministic workload slice at an analyzer",
    )
    fleet_agent.add_argument("--agent-id", required=True)
    fleet_agent.add_argument(
        "--connect", required=True, help="analyzer evidence endpoint"
    )
    fleet_agent.add_argument("--agent-index", type=int, required=True)
    fleet_agent.add_argument("--num-agents", type=int, required=True)
    _fleet_workload_arguments(fleet_agent, events_default=4000)
    fleet_agent.add_argument(
        "--fail-after-events",
        type=int,
        default=None,
        help="scripted chaos: die mid-run (exit 17, socket left severed) "
        "after sending this many events",
    )
    fleet_agent.add_argument(
        "--log",
        metavar="PATH",
        default=None,
        help="append lifecycle events as JSONL here",
    )

    fleet_run = fleet_sub.add_parser(
        "run",
        help="orchestrate N agents + one analyzer on localhost into a run dir",
    )
    fleet_run.add_argument(
        "--run-dir",
        required=True,
        help="directory for meta.json / summary.json / per-agent JSONL",
    )
    fleet_run.add_argument(
        "--transport", choices=["tcp", "unix"], default="tcp"
    )
    fleet_run.add_argument("--agents", type=int, default=4)
    fleet_run.add_argument("--shards", type=int, default=2)
    fleet_run.add_argument(
        "--mode", choices=["events", "columns"], default="events"
    )
    fleet_run.add_argument(
        "--engine", choices=["arrays", "dicts"], default="arrays"
    )
    fleet_run.add_argument(
        "--backend", choices=["inline", "process"], default="inline"
    )
    fleet_run.add_argument("--workers", type=int, default=None)
    _fleet_workload_arguments(fleet_run, events_default=4000)
    fleet_run.add_argument(
        "--kill-agent",
        type=int,
        default=None,
        help="index of the agent to kill mid-run and relaunch",
    )
    fleet_run.add_argument(
        "--kill-after-events",
        type=int,
        default=None,
        help="events the victim sends before dying "
        "(default: half its share)",
    )
    fleet_run.add_argument(
        "--no-verify-replay",
        action="store_true",
        help="skip the bit-identity check against a single-process replay",
    )
    fleet_run.add_argument(
        "--timeout",
        type=float,
        default=180.0,
        help="hard deadline on the whole run, seconds",
    )

    pack = subparsers.add_parser(
        "pack", help="run, list or validate the named scenario-pack library"
    )
    pack_sub = pack.add_subparsers(dest="pack_command", required=True)

    def _pack_dir_argument(command) -> None:
        command.add_argument(
            "--dir",
            default=None,
            help="pack directory (default: $REPRO_SCENARIO_PACK, ./scenarios, "
            "or the checkout's scenarios/)",
        )

    pack_list = pack_sub.add_parser("list", help="list the pack's scenarios")
    _pack_dir_argument(pack_list)

    pack_validate = pack_sub.add_parser(
        "validate", help="schema-validate every scenario.json + expected.json"
    )
    _pack_dir_argument(pack_validate)

    pack_run = pack_sub.add_parser(
        "run", help="run scenarios and compare against their goldens"
    )
    _pack_dir_argument(pack_run)
    pack_run.add_argument(
        "names", nargs="*", help="scenario names to run (default with --all: every one)"
    )
    pack_run.add_argument(
        "--all", action="store_true", help="run every scenario in the pack"
    )
    pack_run.add_argument(
        "--workers", type=int, default=1, help="worker processes (results identical at any count)"
    )
    pack_run.add_argument(
        "--update-goldens",
        action="store_true",
        help="write expected.json from this run instead of comparing",
    )
    pack_run.add_argument(
        "--report-dir",
        default=None,
        help="write one <name>.report.json per scenario into this directory",
    )

    theory = subparsers.add_parser("theory", help="evaluate Theorems 1 and 2")
    theory.add_argument("--pods", type=int, default=2)
    theory.add_argument("--tors-per-pod", type=int, default=20)
    theory.add_argument("--t1-per-pod", type=int, default=8)
    theory.add_argument("--t2", type=int, default=8)
    theory.add_argument("--hosts-per-tor", type=int, default=20)
    theory.add_argument("--tmax", type=int, default=100)
    theory.add_argument("--bad-links", type=int, default=10)
    theory.add_argument("--bad-drop-rate", type=float, default=5e-4)
    theory.add_argument("--packets-lower", type=int, default=50)
    theory.add_argument("--packets-upper", type=int, default=100)
    return parser


_EVENT_LEVELS = {
    "host": LinkLevel.HOST,
    "1": LinkLevel.LEVEL1,
    "2": LinkLevel.LEVEL2,
}


def _build_timeline(args: argparse.Namespace) -> Optional[ScenarioScript]:
    """Translate the ``--timeline`` flags into a :class:`ScenarioScript`."""
    if args.timeline == "none":
        return None
    level = _EVENT_LEVELS[args.event_level]
    script = ScenarioScript()
    if args.timeline == "flap":
        # successive (non-overlapping) flaps: simultaneous random flaps could
        # resolve to the same victim and silently collapse into one; links
        # congesting together is what --timeline burst expresses.
        for i in range(max(1, args.num_events)):
            script.flap(
                start=args.event_start + i * (args.event_duration + 1),
                duration=args.event_duration,
                drop_rate=args.event_rate,
                level=level,
            )
    elif args.timeline == "burst":
        script.burst(
            start=args.event_start,
            duration=args.event_duration,
            level=level,
            num_links=max(1, args.num_events),
            drop_rate=args.event_rate,
        )
    elif args.timeline == "reboot":
        script.reboot_switch(
            epoch=args.event_start,
            tier=SwitchTier.T1,
            outage_epochs=args.event_duration,
        )
    elif args.timeline == "drain":
        script.drain(start=args.event_start, duration=args.event_duration, level=level)
    return script


def _run_scenario_command(args: argparse.Namespace, out) -> int:
    if args.config is not None:
        with open(args.config) as handle:
            data = json.load(handle)
        if "pack_version" in data and "config" in data:
            # a scenario-pack envelope (scenarios/<name>/scenario.json):
            # run the wrapped config directly
            data = data["config"]
        config = ScenarioConfig.from_dict(data)
        script = config.script
    else:
        script = _build_timeline(args)
        config = ScenarioConfig(
            npod=args.pods,
            n0=args.tors_per_pod,
            n1=args.t1_per_pod,
            n2=args.t2,
            hosts_per_tor=args.hosts_per_tor,
            num_bad_links=args.bad_links,
            drop_rate_range=(args.drop_rate, args.drop_rate),
            connections_per_host=args.connections_per_host,
            epochs=args.epochs,
            seed=args.seed,
            engine=args.engine,
            script=script,
        )
    if args.dump_config is not None:
        text = json.dumps(config.to_dict(), indent=2, sort_keys=True)
        if args.dump_config == "-":
            print(text, file=out)
        else:
            with open(args.dump_config, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote scenario config to {args.dump_config}", file=out)
        return 0

    # the multi-epoch aggregator rides along as a report sink, folding in
    # every finalized epoch as the analysis service produces it.
    from repro.core.aggregate import MultiEpochAggregator

    aggregator = MultiEpochAggregator()
    result = run_scenario(config, sinks=(aggregator,))
    report = result.reports[-1]
    print(result.topology.describe(), file=out)
    print("injected failures:", file=out)
    for link, rate in sorted(result.failure_scenario.drop_rates.items()):
        print(f"  {link} at {rate:.3%}", file=out)
    if script is not None:
        per_epoch = result.per_epoch_detection_007()
        print("per-epoch timeline:", file=out)
        for i, score in enumerate(per_epoch):
            truth = result.truth_for_epoch(i)
            detected = result.reports[i].detected_links
            print(
                f"  epoch {i}: {len(truth.bad_links)} bad link(s), "
                f"{len(detected)} detected, precision {score.precision:.2f}, "
                f"recall {score.recall:.2f}",
                file=out,
            )
        for link, latency in sorted(result.time_to_detection_007().items()):
            latency_text = "never" if latency is None else f"{latency} epoch(s)"
            print(f"  time to detection of {link}: {latency_text}", file=out)
        false_alarms = result.false_alarm_rate_007()
        if false_alarms == false_alarms:  # not nan
            print(f"  false-alarm rate after clear: {false_alarms:.2f}", file=out)
    print(report.summary(), file=out)
    print(f"top {args.top} voted links:", file=out)
    for link, votes in report.top_links(args.top):
        print(f"  {votes:8.2f}  {link}", file=out)
    score = result.detection_007(epoch_index=len(result.reports) - 1)
    print(
        f"detection: precision {score.precision:.2f}, recall {score.recall:.2f}; "
        f"per-flow accuracy {result.accuracy_007(len(result.reports) - 1):.2f}",
        file=out,
    )
    mean_det, std_det = aggregator.detections_per_epoch()
    print(
        f"aggregate over {aggregator.epochs_ingested} epoch(s): "
        f"{mean_det:.2f} ± {std_det:.2f} link(s) flagged per epoch",
        file=out,
    )
    return 0


def _run_experiment_command(args: argparse.Namespace, out) -> int:
    experiment_fn = _experiment_registry()[args.name]
    # Sweep-based experiments accept a SweepRunner and a trial count; the
    # cluster/production regenerations (fig01, table1, fig13, sec72/82/83)
    # don't — forward only the keywords each experiment understands.
    parameters = inspect.signature(experiment_fn).parameters
    kwargs: Dict[str, object] = {}
    if args.workers and args.workers > 1:
        if "runner" in parameters:
            kwargs["runner"] = SweepRunner(workers=args.workers)
        else:
            print(
                f"warning: experiment {args.name!r} does not run sweeps; "
                "--workers ignored",
                file=sys.stderr,
            )
    if args.trials is not None:
        if "trials" in parameters:
            kwargs["trials"] = args.trials
        else:
            print(
                f"warning: experiment {args.name!r} has no trial count; "
                "--trials ignored",
                file=sys.stderr,
            )
    result = experiment_fn(**kwargs)
    print(result.format_table(), file=out)
    return 0


def _run_bench_command(args: argparse.Namespace, out) -> int:
    import json as json_module

    from repro.bench import (
        BenchConfig,
        format_bench_table,
        run_service_bench,
        write_bench_report,
    )
    from repro.loadgen import WorkloadProfile

    try:
        shard_counts = tuple(
            int(part) for part in args.shards.split(",") if part.strip()
        )
    except ValueError:
        print(f"error: --shards must be comma-separated ints: {args.shards!r}",
              file=sys.stderr)
        return 2
    shard_counts = tuple(dict.fromkeys(shard_counts))  # dedupe, keep order
    engines = ("arrays", "dicts") if args.engine == "both" else (args.engine,)
    backends = tuple(
        dict.fromkeys(
            part.strip() for part in args.backend.split(",") if part.strip()
        )
    )
    try:
        config = BenchConfig(
            fabric=args.fabric,
            events=args.events,
            epochs=args.epochs,
            seed=args.seed,
            profile=WorkloadProfile.named(args.profile),
            engines=engines,
            shard_counts=shard_counts,
            backends=backends,
            workers=args.workers,
            baseline_events=args.baseline_events,
            timeline=args.timeline,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    progress = None if args.quiet else (lambda message: print(message, file=out))
    document = run_service_bench(config, progress=progress)
    if args.fleet:
        from repro.bench.fleet import FleetBenchConfig, run_fleet_bench

        try:
            fleet_config = FleetBenchConfig(
                fabric=args.fabric,
                events=args.fleet_events,
                agents=args.fleet_agents,
                profile=args.profile,
                seed=args.seed,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        document["fleet"] = run_fleet_bench(fleet_config, progress=progress)
    print(format_bench_table(document), file=out)
    if args.json == "-":
        print(json_module.dumps(document, indent=2, sort_keys=True), file=out)
        if args.artifacts_dir is not None:
            # per-run artifacts are still wanted; keep a document copy next
            # to them so the directory is self-contained.
            from pathlib import Path

            write_bench_report(
                document,
                Path(args.artifacts_dir) / "BENCH_service.json",
                artifacts_dir=args.artifacts_dir,
            )
            print(f"wrote per-run artifacts to {args.artifacts_dir}", file=out)
    else:
        write_bench_report(document, args.json, artifacts_dir=args.artifacts_dir)
        print(f"wrote schema-valid perf document to {args.json}", file=out)
    return 0


def _entry_record_count(entry) -> int:
    """Record count of one epoch entry, either serialization."""
    records = entry["records"]
    return int(records["count"]) if isinstance(records, dict) else len(records)


def _run_checkpoint_command(args: argparse.Namespace, out) -> int:
    from pathlib import Path

    from repro.api.checkpoint import (
        CHECKPOINT_MAGIC,
        Checkpoint,
        epoch_retransmission_seqs,
    )

    try:
        if args.checkpoint_command == "inspect":
            path = Path(args.path)
            data = path.read_bytes()
            fmt = "binary" if data.startswith(CHECKPOINT_MAGIC) else "json"
            checkpoint = Checkpoint.load(path)
            payload = checkpoint.payload
            delta_text = " (delta)" if checkpoint.is_delta else ""
            print(
                f"{path}: {fmt} checkpoint, payload v{checkpoint.version}, "
                f"kind={checkpoint.kind}{delta_text}, {len(data):,} bytes",
                file=out,
            )
            print(
                f"  last_finalized={payload.get('last_finalized')} "
                f"max_epoch_seen={payload.get('max_epoch_seen')}",
                file=out,
            )
            if checkpoint.kind == "sharded":
                sections = [
                    (f"shard {i}", shard)
                    for i, shard in enumerate(payload["shards"])
                ]
                print(f"  num_shards={payload['num_shards']}", file=out)
            else:
                sections = [("service", payload)]
            for label, section in sections:
                epochs = section.get("epochs", [])
                if not epochs:
                    print(f"  {label}: no open epochs", file=out)
                    continue
                for entry in epochs:
                    updates = len(
                        epoch_retransmission_seqs(entry, checkpoint.columns)
                    )
                    print(
                        f"  {label}: epoch {entry['epoch']}: "
                        f"{_entry_record_count(entry):,} path records, "
                        f"{updates:,} consumed update seqs",
                        file=out,
                    )
            return 0
        if args.checkpoint_command == "convert":
            checkpoint = Checkpoint.load(args.src)
            checkpoint.save(args.dst, format=args.format)
            size = Path(args.dst).stat().st_size
            print(
                f"wrote {args.format} checkpoint to {args.dst} "
                f"({size:,} bytes)",
                file=out,
            )
            return 0
        if args.checkpoint_command == "merge":
            base = Checkpoint.load(args.base)
            delta = Checkpoint.load(args.delta)
            merged = base.apply_delta(delta)
            merged.save(args.out, format=args.format)
            size = Path(args.out).stat().st_size
            print(
                f"merged {args.delta} onto {args.base}; wrote {args.format} "
                f"checkpoint to {args.out} ({size:,} bytes)",
                file=out,
            )
            return 0
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(
        f"unhandled checkpoint command {args.checkpoint_command!r}"
    )  # pragma: no cover


def _run_fleet_analyzer_command(args: argparse.Namespace, out) -> int:
    import asyncio
    import os

    from repro.fleet.analyzer import (
        ColumnarIngestCore,
        FleetAnalyzer,
        ServiceIngestCore,
    )
    from repro.fleet.protocol import parse_endpoint

    if args.mode == "columns":
        if args.engine != "arrays":
            print("error: the columns mode is arrays-only", file=sys.stderr)
            return 2
        core = ColumnarIngestCore(retain_reports=args.retain_reports)
    else:
        from repro.api.service import Zero07Service
        from repro.api.sharded import ShardedService

        if args.shards == 1:
            service = Zero07Service(
                engine=args.engine, retain_reports=args.retain_reports
            )
        else:
            service = ShardedService(
                num_shards=args.shards,
                engine=args.engine,
                backend=args.backend,
                workers=args.workers,
                retain_reports=args.retain_reports,
            )
        core = ServiceIngestCore(service)
    analyzer = FleetAnalyzer(
        core,
        expected_agents=args.num_agents,
        idle_timeout=args.idle_timeout,
    )

    async def serve() -> None:
        bound, query_bound = await analyzer.start(
            parse_endpoint(args.bind), parse_endpoint(args.query_bind)
        )
        ready = {"evidence": str(bound), "query": str(query_bound)}
        if args.ready_file is not None:
            # atomic publish: the runner reads the file as soon as it exists.
            tmp = args.ready_file + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(ready, sort_keys=True) + "\n")
            os.replace(tmp, args.ready_file)
        print(
            f"FLEET-ANALYZER READY evidence={ready['evidence']} "
            f"query={ready['query']}",
            file=out,
            flush=True,
        )
        await analyzer.run()

    asyncio.run(serve())
    print(
        f"fleet analyzer done: {analyzer.stats.evidence_events} events from "
        f"{len(analyzer.agents)} agent(s), "
        f"{analyzer.stats.epochs_finalized} epoch(s) finalized",
        file=out,
    )
    return 0


def _run_fleet_agent_command(args: argparse.Namespace, out) -> int:
    from repro.fleet.agent import FleetAgentClient, jsonl_logger
    from repro.fleet.protocol import parse_endpoint
    from repro.fleet.runner import build_generator

    generator = build_generator(
        args.fabric, args.profile, args.timeline, args.seed,
        args.events_per_epoch,
    )
    client = FleetAgentClient(
        args.agent_id,
        parse_endpoint(args.connect),
        chunk_events=args.chunk_events,
        reconnect_seed=args.seed * 10007 + args.agent_index,
        fail_after_events=args.fail_after_events,
        log=jsonl_logger(args.log) if args.log else None,
    )
    client.connect()
    try:
        for epoch in range(args.epochs):
            client.send_run(
                epoch,
                generator.agent_events(
                    epoch, args.agent_index, args.num_agents
                ),
            )
            client.tick(epoch)
        client.drain()
    finally:
        client.close()
    stats = client.stats
    print(
        f"{args.agent_id}: {stats.events_sent} events in "
        f"{stats.chunks_sent} chunk(s), {stats.reconnects} reconnect(s), "
        f"{stats.redelivered_chunks} redelivered chunk(s)",
        file=out,
    )
    return 0


def _run_fleet_run_command(args: argparse.Namespace, out) -> int:
    from repro.fleet.runner import FleetRunConfig, run_fleet

    try:
        config = FleetRunConfig(
            run_dir=args.run_dir,
            agents=args.agents,
            shards=args.shards,
            transport=args.transport,
            mode=args.mode,
            engine=args.engine,
            backend=args.backend,
            workers=args.workers,
            fabric=args.fabric,
            profile=args.profile,
            timeline=args.timeline,
            epochs=args.epochs,
            events_per_epoch=args.events_per_epoch,
            seed=args.seed,
            chunk_events=args.chunk_events,
            kill_agent=args.kill_agent,
            kill_after_events=args.kill_after_events,
            verify_replay=not args.no_verify_replay,
            timeout=args.timeout,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        summary = run_fleet(
            config, progress=lambda message: print(message, file=out)
        )
    except Exception as error:
        print(f"error: fleet run failed: {error}", file=sys.stderr)
        return 1
    for entry in summary["epochs"]:
        marker = (
            ""
            if entry.get("replay_match") is None
            else (" replay=match" if entry["replay_match"] else " replay=DIFF")
        )
        print(
            f"epoch {entry['epoch']}: {len(entry['truth'])} bad link(s), "
            f"{len(entry['detected'])} detected{marker}",
            file=out,
        )
    if summary.get("kill"):
        kill = summary["kill"]
        print(
            f"scripted kill: agent-{kill['agent']} exit {kill['exit_code']}, "
            f"recovered in {kill.get('recovery_seconds', 0.0):.2f}s",
            file=out,
        )
    verdict = summary.get("replay_equivalent")
    print(
        f"fleet run {'converged' if summary['converged'] else 'FAILED'} in "
        f"{summary['duration_seconds']:.2f}s; replay equivalence: "
        f"{'not checked' if verdict is None else ('bit-identical' if verdict else 'MISMATCH')}",
        file=out,
    )
    print(f"run directory: {args.run_dir}", file=out)
    ok = summary["converged"] and verdict is not False
    return 0 if ok else 1


def _run_fleet_command(args: argparse.Namespace, out) -> int:
    if args.fleet_command == "analyzer":
        return _run_fleet_analyzer_command(args, out)
    if args.fleet_command == "agent":
        return _run_fleet_agent_command(args, out)
    if args.fleet_command == "run":
        return _run_fleet_run_command(args, out)
    raise AssertionError(
        f"unhandled fleet command {args.fleet_command!r}"
    )  # pragma: no cover


def _run_pack_command(args: argparse.Namespace, out) -> int:
    from repro.scenarios import (
        PackValidationError,
        compare_to_golden,
        load_pack,
        outcome_document,
        run_pack,
        write_golden,
    )

    try:
        pack = load_pack(args.dir)
    except PackValidationError as exc:
        print(f"pack error: {exc}", file=out)
        return 1

    if args.pack_command == "list":
        for name, scenario in pack.items():
            golden = "golden" if scenario.expected is not None else "NO GOLDEN"
            print(
                f"{name}: {scenario.title or '(untitled)'} "
                f"[epochs={scenario.config.epochs}, trials={scenario.trials}, "
                f"{golden}]",
                file=out,
            )
        return 0

    if args.pack_command == "validate":
        # load_pack already schema-validated every file; report what it saw.
        missing = [n for n, s in pack.items() if s.expected is None]
        print(f"{len(pack)} scenario(s) valid", file=out)
        if missing:
            print(f"missing goldens: {', '.join(missing)}", file=out)
            return 1
        return 0

    # pack run ----------------------------------------------------------
    if args.all and args.names:
        print("pack run: pass either --all or scenario names, not both", file=out)
        return 2
    if args.all:
        selected = list(pack.values())
    elif args.names:
        unknown = [name for name in args.names if name not in pack]
        if unknown:
            print(
                f"unknown scenario(s): {', '.join(unknown)} "
                f"(known: {', '.join(pack)})",
                file=out,
            )
            return 2
        selected = [pack[name] for name in args.names]
    else:
        print("pack run: give scenario names or --all", file=out)
        return 2

    runner = SweepRunner(workers=args.workers)
    outcomes = run_pack(selected, runner=runner)

    if args.report_dir is not None:
        import os

        os.makedirs(args.report_dir, exist_ok=True)

    failed = False
    for scenario in selected:
        outcome = outcomes[scenario.name]
        if args.update_goldens:
            document = write_golden(scenario, outcome)
            print(f"{scenario.name}: wrote {scenario.expected_path}", file=out)
            violations: List[str] = []
        elif scenario.expected is None:
            document = outcome_document(outcome)
            violations = [
                "no expected.json committed (run with --update-goldens)"
            ]
        else:
            document = outcome_document(outcome)
            violations = compare_to_golden(scenario.expected, outcome)

        if args.report_dir is not None:
            report_path = f"{args.report_dir}/{scenario.name}.report.json"
            with open(report_path, "w") as handle:
                json.dump(
                    {
                        "scenario": scenario.name,
                        "actual": document,
                        "violations": violations,
                    },
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")

        if not args.update_goldens:
            if violations:
                failed = True
                print(f"{scenario.name}: FAIL", file=out)
                for violation in violations:
                    print(f"  {violation}", file=out)
            else:
                print(f"{scenario.name}: ok", file=out)
    return 1 if failed else 0


def _run_theory_command(args: argparse.Namespace, out) -> int:
    params = ClosParameters(
        npod=args.pods,
        n0=args.tors_per_pod,
        n1=args.t1_per_pod,
        n2=args.t2,
        hosts_per_tor=args.hosts_per_tor,
    )
    ct = traceroute_rate_bound(params, tmax=args.tmax)
    print(f"Theorem 1: per-host traceroute budget Ct = {ct:.2f}/s (Tmax={args.tmax})", file=out)
    if params.npod >= 2:
        k_max = max_detectable_bad_links(params)
        print(f"Theorem 2: detectable simultaneous bad links k < {k_max:.1f}", file=out)
        if args.bad_links < k_max:
            pg = noise_tolerance_bound(
                params, args.bad_drop_rate, args.bad_links, args.packets_lower, args.packets_upper
            )
            print(
                f"Theorem 2: with {args.bad_links} bad links at drop rate {args.bad_drop_rate:.2%}, "
                f"good links may drop up to {pg:.2e} per packet",
                file=out,
            )
        else:
            print("Theorem 2: requested bad-link count exceeds the detectable bound", file=out)
    else:
        print("Theorem 2: requires at least two pods", file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "scenario":
        return _run_scenario_command(args, out)
    if args.command == "experiment":
        return _run_experiment_command(args, out)
    if args.command == "bench":
        return _run_bench_command(args, out)
    if args.command == "checkpoint":
        return _run_checkpoint_command(args, out)
    if args.command == "fleet":
        return _run_fleet_command(args, out)
    if args.command == "pack":
        return _run_pack_command(args, out)
    if args.command == "theory":
        return _run_theory_command(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
