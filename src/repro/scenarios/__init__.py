"""The named scenario-pack library.

A *pack* is a directory of named, versioned scenario definitions
(``scenarios/<name>/scenario.json``), each carrying a golden
``expected.json`` of time-aware metrics with stated tolerances.  The loader
validates every file against a strict schema (unknown keys and unsupported
versions are rejected), the runner executes scenarios deterministically at
any worker count through :class:`~repro.experiments.runner.SweepRunner`,
and the comparator checks results against the committed goldens —
``repro-007 pack run|list|validate`` is the CLI front-end and the
``scenario-pack`` CI matrix job runs every scenario against its golden.
"""

from repro.scenarios.pack import (
    PACK_VERSION,
    PackScenario,
    PackValidationError,
    ScenarioOutcome,
    compare_to_golden,
    default_pack_dir,
    load_pack,
    load_scenario,
    outcome_document,
    run_pack,
    write_golden,
)

__all__ = [
    "PACK_VERSION",
    "PackScenario",
    "PackValidationError",
    "ScenarioOutcome",
    "compare_to_golden",
    "default_pack_dir",
    "load_pack",
    "load_scenario",
    "outcome_document",
    "run_pack",
    "write_golden",
]
