"""Loader, validator, runner and golden comparator for scenario packs.

On-disk layout (one directory per scenario)::

    scenarios/
      gray_failure_silent_drops/
        scenario.json     # versioned envelope around ScenarioConfig.to_dict()
        expected.json     # golden time-aware metrics with stated tolerances

``scenario.json`` schema (``pack_version`` 1; unknown keys are rejected)::

    {
      "pack_version": 1,
      "name": "gray_failure_silent_drops",   # must match the directory name
      "title": "...",                        # optional one-liner
      "description": "...",                  # optional prose
      "tags": ["gray", "silent-drops"],      # optional labels
      "trials": 3,                           # optional, default 1
      "config": { ... }                      # ScenarioConfig.to_dict()
    }

``expected.json`` schema (same versioning rules)::

    {
      "pack_version": 1,
      "name": "gray_failure_silent_drops",
      "metrics": {
        "mean_epoch_recall_007": {"value": 0.95, "tolerance": 0.02},
        "time_to_detection_007": {"value": null, "tolerance": 0.25},
        ...
      },
      "per_epoch": {
        "precision": [...], "recall": [...],  # trial-0 timelines
        "tolerance": 0.005
      }
    }

``"value": null`` means *expected nan* — e.g. ``false_alarm_rate_007`` on a
scenario whose failure never clears.  A golden ``null`` only matches an
actual ``nan`` and vice versa; ``nan`` never silently passes a numeric bar.

Every run is a pure function of ``scenario.json``: scalars are nan-aware
means over ``trials`` forked-seed runs, per-epoch timelines come from trial
0 (whose seed is the config's own), and the fan-out goes through
:meth:`repro.experiments.runner.SweepRunner.map`, which preserves task
order — so ``pack run --all`` produces identical documents at any worker
count.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.runner import SweepRunner, fork_trial_seed
from repro.experiments.scenario import ScenarioConfig, run_scenario
from repro.experiments.sweeps import dynamic_metrics

#: the one scenario/expected schema version this loader understands.
PACK_VERSION = 1

_SCENARIO_REQUIRED = {"pack_version", "name", "config"}
_SCENARIO_KEYS = _SCENARIO_REQUIRED | {"title", "description", "tags", "trials"}
_EXPECTED_REQUIRED = {"pack_version", "name", "metrics"}
_EXPECTED_KEYS = _EXPECTED_REQUIRED | {"per_epoch"}
_PER_EPOCH_KEYS = {"precision", "recall", "tolerance"}

#: default golden tolerances written by ``write_golden`` / ``--update-goldens``.
#: Runs are deterministic, so these only absorb float noise across platforms
#: and tiny refactors — while still being *stated* bounds a reviewer can read.
DEFAULT_METRIC_TOLERANCES = {
    "time_to_detection_007": 0.25,
}
DEFAULT_METRIC_TOLERANCE = 0.02
DEFAULT_PER_EPOCH_TOLERANCE = 0.005


class PackValidationError(ValueError):
    """A scenario/expected file violated the pack schema."""


@dataclass(frozen=True)
class PackScenario:
    """One validated scenario directory: envelope + config + optional golden."""

    name: str
    config: ScenarioConfig
    path: Path
    title: str = ""
    description: str = ""
    tags: Tuple[str, ...] = ()
    trials: int = 1
    expected: Optional[Dict] = field(default=None, compare=False)

    @property
    def expected_path(self) -> Path:
        """Where this scenario's golden document lives."""
        return self.path / "expected.json"


@dataclass(frozen=True)
class ScenarioOutcome:
    """The measured document of one scenario run (pre-tolerance)."""

    name: str
    trials: int
    #: nan-aware mean of each dynamic metric over the trials.
    metrics: Dict[str, float]
    #: trial-0 per-epoch precision/recall timelines.
    per_epoch_precision: List[float]
    per_epoch_recall: List[float]


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
def _require_version(data: Dict, where: str) -> None:
    version = data.get("pack_version")
    if version != PACK_VERSION:
        raise PackValidationError(
            f"{where}: unsupported pack_version {version!r} "
            f"(this loader understands {PACK_VERSION})"
        )


def _reject_unknown(data: Dict, allowed: set, where: str) -> None:
    unknown = set(data) - allowed
    if unknown:
        raise PackValidationError(f"{where}: unknown keys {sorted(unknown)}")


def _require_keys(data: Dict, required: set, where: str) -> None:
    missing = required - set(data)
    if missing:
        raise PackValidationError(f"{where}: missing keys {sorted(missing)}")


def validate_scenario_data(data: Dict, name: str, where: str = "scenario.json") -> Dict:
    """Validate a ``scenario.json`` document; returns the parsed envelope.

    The returned dict has the envelope fields plus ``config`` replaced by
    the parsed :class:`ScenarioConfig`.  Raises :class:`PackValidationError`
    on any schema violation: unknown/missing keys, an unsupported version, a
    name not matching the directory, a non-positive trial count, a config
    :meth:`ScenarioConfig.from_dict` rejects, or a scripted timeline longer
    than the simulated epochs (a silently-truncated tail is the off-by-one
    class of bug the pack exists to catch).
    """
    if not isinstance(data, dict):
        raise PackValidationError(f"{where}: expected a JSON object")
    _require_version(data, where)
    _reject_unknown(data, _SCENARIO_KEYS, where)
    _require_keys(data, _SCENARIO_REQUIRED, where)
    if data["name"] != name:
        raise PackValidationError(
            f"{where}: name {data['name']!r} does not match directory {name!r}"
        )
    trials = data.get("trials", 1)
    if not isinstance(trials, int) or trials < 1:
        raise PackValidationError(f"{where}: trials must be an int >= 1")
    tags = data.get("tags", [])
    if not (isinstance(tags, list) and all(isinstance(t, str) for t in tags)):
        raise PackValidationError(f"{where}: tags must be a list of strings")
    try:
        config = ScenarioConfig.from_dict(data["config"])
    except (TypeError, ValueError, KeyError) as exc:
        raise PackValidationError(f"{where}: invalid config: {exc}") from exc
    if config.script is not None and config.epochs < config.script.horizon:
        raise PackValidationError(
            f"{where}: epochs={config.epochs} < script horizon="
            f"{config.script.horizon}; the timeline's tail would never be "
            f"simulated"
        )
    return {
        "name": data["name"],
        "title": data.get("title", ""),
        "description": data.get("description", ""),
        "tags": tuple(tags),
        "trials": trials,
        "config": config,
    }


def validate_expected_data(data: Dict, name: str, where: str = "expected.json") -> Dict:
    """Validate a golden ``expected.json`` document; returns it unchanged."""
    if not isinstance(data, dict):
        raise PackValidationError(f"{where}: expected a JSON object")
    _require_version(data, where)
    _reject_unknown(data, _EXPECTED_KEYS, where)
    _require_keys(data, _EXPECTED_REQUIRED, where)
    if data["name"] != name:
        raise PackValidationError(
            f"{where}: name {data['name']!r} does not match directory {name!r}"
        )
    known_metrics = set(dynamic_metrics())
    metrics = data["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        raise PackValidationError(f"{where}: metrics must be a non-empty object")
    for metric_name, entry in metrics.items():
        if metric_name not in known_metrics:
            raise PackValidationError(
                f"{where}: unknown metric {metric_name!r} "
                f"(known: {sorted(known_metrics)})"
            )
        if not isinstance(entry, dict):
            raise PackValidationError(f"{where}: metric {metric_name!r} must be an object")
        _reject_unknown(entry, {"value", "tolerance"}, f"{where}:{metric_name}")
        _require_keys(entry, {"value", "tolerance"}, f"{where}:{metric_name}")
        if entry["value"] is not None and not isinstance(entry["value"], (int, float)):
            raise PackValidationError(
                f"{where}: metric {metric_name!r} value must be a number or null"
            )
        if not isinstance(entry["tolerance"], (int, float)) or entry["tolerance"] < 0:
            raise PackValidationError(
                f"{where}: metric {metric_name!r} tolerance must be a number >= 0"
            )
    per_epoch = data.get("per_epoch")
    if per_epoch is not None:
        _reject_unknown(per_epoch, _PER_EPOCH_KEYS, f"{where}:per_epoch")
        _require_keys(per_epoch, _PER_EPOCH_KEYS, f"{where}:per_epoch")
        for key in ("precision", "recall"):
            series = per_epoch[key]
            if not (
                isinstance(series, list)
                and all(isinstance(v, (int, float)) for v in series)
            ):
                raise PackValidationError(
                    f"{where}: per_epoch.{key} must be a list of numbers"
                )
    return data


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def default_pack_dir() -> Path:
    """The pack directory: ``$REPRO_SCENARIO_PACK``, else ``./scenarios``,
    else the repository's ``scenarios/`` next to this checkout."""
    env = os.environ.get("REPRO_SCENARIO_PACK")
    if env:
        return Path(env)
    cwd_pack = Path.cwd() / "scenarios"
    if cwd_pack.is_dir():
        return cwd_pack
    return Path(__file__).resolve().parents[3] / "scenarios"


def load_scenario(directory: Union[str, Path]) -> PackScenario:
    """Load and validate one scenario directory (golden included if present)."""
    directory = Path(directory)
    scenario_path = directory / "scenario.json"
    if not scenario_path.is_file():
        raise PackValidationError(f"{directory}: no scenario.json")
    with open(scenario_path) as handle:
        try:
            raw = json.load(handle)
        except json.JSONDecodeError as exc:
            raise PackValidationError(f"{scenario_path}: invalid JSON: {exc}") from exc
    parsed = validate_scenario_data(raw, directory.name, where=str(scenario_path))
    expected = None
    expected_path = directory / "expected.json"
    if expected_path.is_file():
        with open(expected_path) as handle:
            try:
                raw_expected = json.load(handle)
            except json.JSONDecodeError as exc:
                raise PackValidationError(
                    f"{expected_path}: invalid JSON: {exc}"
                ) from exc
        expected = validate_expected_data(
            raw_expected, directory.name, where=str(expected_path)
        )
    return PackScenario(path=directory, expected=expected, **parsed)


def load_pack(pack_dir: Union[str, Path, None] = None) -> Dict[str, PackScenario]:
    """Load every scenario in the pack, keyed and ordered by name.

    The registry: names are the directory names, sorted — the iteration
    order of the returned dict is the canonical pack order used by
    ``pack run --all`` and the CI matrix.
    """
    pack_dir = Path(pack_dir) if pack_dir is not None else default_pack_dir()
    if not pack_dir.is_dir():
        raise PackValidationError(f"pack directory {pack_dir} does not exist")
    scenarios: Dict[str, PackScenario] = {}
    for child in sorted(pack_dir.iterdir()):
        if child.is_dir() and (child / "scenario.json").is_file():
            scenarios[child.name] = load_scenario(child)
    if not scenarios:
        raise PackValidationError(f"pack directory {pack_dir} holds no scenarios")
    return scenarios


# ----------------------------------------------------------------------
# running
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _PackTrialTask:
    """One (scenario, trial) unit — module-level and frozen, so picklable."""

    name: str
    trial: int
    config: ScenarioConfig


def _run_pack_trial(task: _PackTrialTask) -> Dict:
    """Worker entry point: run one trial, return its measured document."""
    result = run_scenario(task.config)
    scores = result.per_epoch_detection_007()
    return {
        "metrics": {
            metric: float(fn(result)) for metric, fn in dynamic_metrics().items()
        },
        "precision": [float(s.precision) for s in scores],
        "recall": [float(s.recall) for s in scores],
    }


def _nan_mean(values: Sequence[float]) -> float:
    """Mean over the non-nan values; ``nan`` when every value is nan.

    A trial with nothing to measure (e.g. ``time_to_detection_007`` when no
    episode was detected) must not poison the trials that did measure.
    """
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return float("nan")
    return float(sum(finite)) / len(finite)


def run_pack(
    scenarios: Sequence[PackScenario],
    runner: Optional[SweepRunner] = None,
) -> Dict[str, ScenarioOutcome]:
    """Run scenarios (all trials fanned out together) and aggregate outcomes.

    Every ``(scenario, trial)`` pair becomes one task; the whole batch goes
    through a single :meth:`SweepRunner.map`, so the pool is saturated even
    when individual scenarios have a single trial, and results are
    reassembled in task order — identical at any worker count.
    """
    active = runner if runner is not None else SweepRunner(workers=1)
    tasks: List[_PackTrialTask] = []
    for scenario in scenarios:
        base = scenario.config.seed
        for trial in range(scenario.trials):
            tasks.append(
                _PackTrialTask(
                    name=scenario.name,
                    trial=trial,
                    config=replace(
                        scenario.config,
                        seed=fork_trial_seed(base, trial),
                        blame=replace(scenario.config.blame),
                    ),
                )
            )
    results = active.map(_run_pack_trial, tasks)

    outcomes: Dict[str, ScenarioOutcome] = {}
    for scenario in scenarios:
        trial_docs = [
            doc
            for task, doc in zip(tasks, results)
            if task.name == scenario.name
        ]
        metrics = {
            metric: _nan_mean([doc["metrics"][metric] for doc in trial_docs])
            for metric in dynamic_metrics()
        }
        outcomes[scenario.name] = ScenarioOutcome(
            name=scenario.name,
            trials=scenario.trials,
            metrics=metrics,
            per_epoch_precision=trial_docs[0]["precision"],
            per_epoch_recall=trial_docs[0]["recall"],
        )
    return outcomes


# ----------------------------------------------------------------------
# golden comparison
# ----------------------------------------------------------------------
def outcome_document(
    outcome: ScenarioOutcome,
    metric_tolerances: Optional[Dict[str, float]] = None,
    per_epoch_tolerance: float = DEFAULT_PER_EPOCH_TOLERANCE,
) -> Dict:
    """Render an outcome as an ``expected.json``-shaped document (nan → null)."""
    tolerances = dict(DEFAULT_METRIC_TOLERANCES)
    if metric_tolerances:
        tolerances.update(metric_tolerances)
    metrics = {}
    for metric, value in sorted(outcome.metrics.items()):
        metrics[metric] = {
            "value": None if math.isnan(value) else value,
            "tolerance": tolerances.get(metric, DEFAULT_METRIC_TOLERANCE),
        }
    return {
        "pack_version": PACK_VERSION,
        "name": outcome.name,
        "metrics": metrics,
        "per_epoch": {
            "precision": outcome.per_epoch_precision,
            "recall": outcome.per_epoch_recall,
            "tolerance": per_epoch_tolerance,
        },
    }


def _mismatch(expected: Optional[float], actual: float, tolerance: float) -> bool:
    """True when ``actual`` violates the golden value within ``tolerance``.

    nan-aware: a golden ``null`` (None) matches exactly an actual ``nan``;
    an actual ``nan`` against a numeric golden is always a violation —
    a metric silently degrading to "no data" must fail the comparison.
    """
    actual_nan = math.isnan(actual)
    if expected is None:
        return not actual_nan
    if actual_nan:
        return True
    return abs(actual - float(expected)) > tolerance


def compare_to_golden(expected: Dict, outcome: ScenarioOutcome) -> List[str]:
    """Check an outcome against a golden document; returns violation strings.

    Empty list = pass.  Only the metrics present in the golden are enforced
    (a golden may pin a subset), but per-epoch timelines — when the golden
    carries them — must match in length and value-for-value within the
    stated tolerance.
    """
    violations: List[str] = []
    for metric, entry in expected["metrics"].items():
        actual = outcome.metrics.get(metric, float("nan"))
        if _mismatch(entry["value"], actual, entry["tolerance"]):
            violations.append(
                f"{metric}: actual {actual!r} vs golden {entry['value']!r} "
                f"(tolerance {entry['tolerance']})"
            )
    per_epoch = expected.get("per_epoch")
    if per_epoch is not None:
        tolerance = per_epoch["tolerance"]
        for key, actual_series in (
            ("precision", outcome.per_epoch_precision),
            ("recall", outcome.per_epoch_recall),
        ):
            golden_series = per_epoch[key]
            if len(golden_series) != len(actual_series):
                violations.append(
                    f"per_epoch.{key}: {len(actual_series)} epochs vs golden "
                    f"{len(golden_series)}"
                )
                continue
            for epoch, (want, got) in enumerate(zip(golden_series, actual_series)):
                if _mismatch(want, got, tolerance):
                    violations.append(
                        f"per_epoch.{key}[{epoch}]: actual {got!r} vs golden "
                        f"{want!r} (tolerance {tolerance})"
                    )
    return violations


def write_golden(
    scenario: PackScenario,
    outcome: ScenarioOutcome,
    metric_tolerances: Optional[Dict[str, float]] = None,
    per_epoch_tolerance: float = DEFAULT_PER_EPOCH_TOLERANCE,
) -> Dict:
    """Write (and return) the scenario's ``expected.json`` from an outcome.

    Existing golden tolerances are preserved metric-for-metric, so
    regenerating values after an intended behaviour change does not silently
    reset hand-tuned bounds.
    """
    tolerances = dict(metric_tolerances or {})
    existing = scenario.expected
    if existing is not None:
        for metric, entry in existing["metrics"].items():
            tolerances.setdefault(metric, entry["tolerance"])
        if existing.get("per_epoch") is not None:
            per_epoch_tolerance = existing["per_epoch"]["tolerance"]
    document = outcome_document(
        outcome,
        metric_tolerances=tolerances,
        per_epoch_tolerance=per_epoch_tolerance,
    )
    with open(scenario.expected_path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document
