"""Scoring 007 and the baselines against simulator ground truth.

The paper uses three measures (Section 6):

* **accuracy** — the fraction of flows whose drop cause was identified
  correctly (per-connection diagnosis);
* **recall** — the fraction of genuinely failed links that were detected
  (false negatives);
* **precision** — the fraction of detected links that had genuinely failed
  (false positives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Set

from repro.topology.elements import DirectedLink, Link


@dataclass(frozen=True)
class DetectionScore:
    """Precision/recall of a detected link set against ground truth."""

    precision: float
    recall: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def _normalize(links: Iterable[DirectedLink | Link], physical: bool) -> Set:
    """Optionally collapse directed links onto physical links before comparing."""
    result = set()
    for link in links:
        if physical and isinstance(link, DirectedLink):
            result.add(link.undirected())
        else:
            result.add(link)
    return result


def detection_precision_recall(
    detected: Iterable[DirectedLink | Link],
    true_bad: Iterable[DirectedLink | Link],
    physical: bool = False,
) -> DetectionScore:
    """Score a detected link set against the injected (ground truth) failures.

    ``physical=True`` compares undirected cables instead of directions, which
    matches how an operator would act on the report (replace the cable/port).
    """
    detected_set = _normalize(detected, physical)
    true_set = _normalize(true_bad, physical)
    tp = len(detected_set & true_set)
    fp = len(detected_set - true_set)
    fn = len(true_set - detected_set)
    precision = tp / (tp + fp) if (tp + fp) else (1.0 if not true_set else 0.0)
    recall = tp / (tp + fn) if (tp + fn) else 1.0
    return DetectionScore(
        precision=precision,
        recall=recall,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )


def per_flow_accuracy(
    predicted_causes: Mapping[int, DirectedLink],
    true_causes: Mapping[int, Optional[DirectedLink]],
    restrict_to: Optional[Iterable[int]] = None,
    physical: bool = False,
) -> float:
    """Fraction of flows whose predicted culprit matches the ground truth.

    Only flows present in ``true_causes`` with a non-``None`` true cause are
    scored (flows whose drops were pure noise have no meaningful culprit).
    ``restrict_to`` further narrows the scored flows (e.g. only flows that
    traversed an injected failure, as in Section 7.2).  Returns ``nan`` when
    no flow qualifies.
    """
    eligible = [
        flow_id
        for flow_id, true_link in true_causes.items()
        if true_link is not None
    ]
    if restrict_to is not None:
        allowed = set(restrict_to)
        eligible = [flow_id for flow_id in eligible if flow_id in allowed]
    if not eligible:
        return float("nan")
    correct = 0
    for flow_id in eligible:
        predicted = predicted_causes.get(flow_id)
        if predicted is None:
            continue
        true_link = true_causes[flow_id]
        if physical:
            if predicted.undirected() == true_link.undirected():
                correct += 1
        elif predicted == true_link:
            correct += 1
    return correct / len(eligible)


# ----------------------------------------------------------------------
# time-aware scoring (dynamic scenarios)
# ----------------------------------------------------------------------
def _check_epoch_alignment(
    detected_by_epoch: Sequence, truth_by_epoch: Sequence
) -> None:
    """All time-aware scorers require one detection set per truth epoch."""
    if len(detected_by_epoch) != len(truth_by_epoch):
        raise ValueError(
            f"epoch count mismatch: {len(detected_by_epoch)} detection sets vs "
            f"{len(truth_by_epoch)} truth sets"
        )


def per_epoch_detection(
    detected_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    truth_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    physical: bool = False,
) -> list:
    """Score every epoch's detections against that epoch's ground truth.

    Both sequences are epoch-ordered and must have equal length; entry ``i``
    of the result is the :class:`DetectionScore` of epoch ``i``.  This is the
    dynamic-scenario generalisation of :func:`detection_precision_recall`:
    when failures flap on and off, a link counts as a true positive only in
    the epochs where it was genuinely bad.
    """
    _check_epoch_alignment(detected_by_epoch, truth_by_epoch)
    return [
        detection_precision_recall(detected, truth, physical=physical)
        for detected, truth in zip(detected_by_epoch, truth_by_epoch)
    ]


def _active_epochs(
    truth_by_epoch: Sequence[Iterable[DirectedLink | Link]], physical: bool
) -> Dict:
    """Map each ever-bad link to the sorted list of epochs it was bad in."""
    active: Dict = {}
    for epoch, truth in enumerate(truth_by_epoch):
        for link in _normalize(truth, physical):
            active.setdefault(link, []).append(epoch)
    return active


def _episodes(
    truth_by_epoch: Sequence[Iterable[DirectedLink | Link]], physical: bool
) -> Dict:
    """Map each ever-bad link to its *episodes*: maximal runs of consecutive
    bad epochs.  A link flapping over ``[2, 4)`` and again over ``[6, 8)``
    has two episodes, ``[2, 3]`` and ``[6, 7]``."""
    episodes: Dict = {}
    for link, epochs in _active_epochs(truth_by_epoch, physical).items():
        runs = [[epochs[0]]]
        for epoch in epochs[1:]:
            if epoch == runs[-1][-1] + 1:
                runs[-1].append(epoch)
            else:
                runs.append([epoch])
        episodes[link] = runs
    return episodes


def detection_latencies(
    detected_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    truth_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    physical: bool = False,
) -> Dict:
    """Per-episode detection latency for every link that ever went bad.

    For each link, one entry per failure *episode* (maximal run of
    consecutive bad epochs), in time order: the number of epochs between the
    episode starting and the first epoch inside it in which 007 flagged the
    link (0 = caught in the episode's first epoch), or ``None`` when the
    link was never flagged during that episode.  On intermittent/flapping
    truth, every recurrence is scored independently — a link detected in its
    first bad window and missed in its second yields ``[0, None]``.
    Detections *between* episodes do not count; they are false alarms,
    measured by :func:`false_alarm_rate_after_clear`.
    """
    _check_epoch_alignment(detected_by_epoch, truth_by_epoch)
    detected_sets = [_normalize(d, physical) for d in detected_by_epoch]
    latencies: Dict = {}
    for link, runs in _episodes(truth_by_epoch, physical).items():
        per_episode = []
        for run in runs:
            latency = None
            for epoch in run:
                if link in detected_sets[epoch]:
                    latency = epoch - run[0]
                    break
            per_episode.append(latency)
        latencies[link] = per_episode
    return latencies


def time_to_detection(
    detected_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    truth_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    physical: bool = False,
) -> Dict:
    """First-detection latency (in epochs) for every link that ever went bad.

    For each link appearing in the ground truth of any epoch: the
    within-episode latency of the link's first *detected* failure episode
    (0 = caught in that episode's first epoch), or ``None`` when no episode
    was ever detected.  Latency is always measured from the start of the
    episode the detection landed in — a link that flaps, clears, and is
    caught immediately when it comes back scores 0, not the gap-spanning
    distance from its first-ever bad epoch.  Per-episode detail (including
    missed recurrences) is in :func:`detection_latencies`.
    """
    latencies = detection_latencies(
        detected_by_epoch, truth_by_epoch, physical=physical
    )
    return {
        link: next((lat for lat in per_episode if lat is not None), None)
        for link, per_episode in latencies.items()
    }


def mean_time_to_detection(
    detected_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    truth_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    physical: bool = False,
) -> float:
    """Mean latency over every *detected* failure episode (``nan`` if none).

    Episode-weighted: a link that failed twice and was caught both times
    contributes two latencies, so re-detections of flapping links count
    instead of being discarded after the first window.  Undetected episodes
    are excluded from the mean (coverage is recall's job); when no episode
    was ever detected the mean is ``nan`` — callers aggregating across
    trials must treat ``nan`` as "no data", not as a value
    (:func:`repro.experiments.runner.run_sweep` does).
    """
    latencies = [
        latency
        for per_episode in detection_latencies(
            detected_by_epoch, truth_by_epoch, physical=physical
        ).values()
        for latency in per_episode
        if latency is not None
    ]
    if not latencies:
        return float("nan")
    return float(sum(latencies)) / len(latencies)


def false_alarm_rate_after_clear(
    detected_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    truth_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    physical: bool = False,
    include_gaps: bool = False,
) -> float:
    """How often 007 keeps blaming a link after its failure has cleared.

    Over every (link, epoch) pair counted as a *clear* opportunity: the
    fraction in which the link is still flagged.  0.0 means the votes decay
    cleanly once a transient clears (the paper's requirement that stale
    failures stop drawing blame); ``nan`` when no failure ever cleared
    inside the observed window.

    By default only the epochs after a link's *final* bad epoch count as
    opportunities.  Gaps between an intermittent link's failure episodes are
    excluded: blaming a genuinely flapping link during a short quiet window
    is a timeliness artefact, not stale blame, and those epochs are already
    penalized by per-epoch precision.  Pass ``include_gaps=True`` to also
    count every in-gap epoch as an opportunity (the strictest reading, in
    which any blame outside a bad epoch is a false alarm).
    """
    _check_epoch_alignment(detected_by_epoch, truth_by_epoch)
    detected_sets = [_normalize(d, physical) for d in detected_by_epoch]
    truth_sets = [_normalize(t, physical) for t in truth_by_epoch]
    alarms = 0
    opportunities = 0
    for link, epochs in _active_epochs(truth_by_epoch, physical).items():
        start = (epochs[0] if include_gaps else epochs[-1]) + 1
        for epoch in range(start, len(truth_sets)):
            if link in truth_sets[epoch]:
                continue
            opportunities += 1
            if link in detected_sets[epoch]:
                alarms += 1
    if opportunities == 0:
        return float("nan")
    return alarms / opportunities


def top_k_recall(
    ranked_links: Sequence[DirectedLink],
    true_bad: Iterable[DirectedLink],
    k: Optional[int] = None,
) -> float:
    """Fraction of true bad links appearing among the top ``k`` ranked links.

    ``k`` defaults to the number of true bad links (the "if the top k links
    had been selected" analysis of Section 6.6).  Returns 1.0 when there are
    no true bad links.
    """
    true_set = set(true_bad)
    if not true_set:
        return 1.0
    if k is None:
        k = len(true_set)
    top = set(ranked_links[:k])
    return len(top & true_set) / len(true_set)


# ----------------------------------------------------------------------
# streaming scoring (the ReportSink path)
# ----------------------------------------------------------------------
class StreamingDetectionScorer:
    """A report sink that scores detections online, epoch by epoch.

    Attach to a streaming service (``Zero07Service(sinks=[scorer])`` or
    ``run_scenario(config, sinks=[scorer])``) with a ``truth_lookup`` mapping
    an epoch to its live ground-truth bad links; every finalized report is
    scored immediately, so long scenarios never need to retain their reports
    to compute precision/recall timelines.
    """

    def __init__(self, truth_lookup, physical: bool = False) -> None:
        self._truth_lookup = truth_lookup
        self._physical = physical
        self.scores: Dict[int, DetectionScore] = {}

    def on_report(self, report) -> None:
        """Score one finalized epoch report against its epoch's truth.

        Epochs whose ``truth_lookup`` returns ``None`` (no ground truth
        available) are skipped rather than scored against nothing.
        """
        truth = self._truth_lookup(report.epoch)
        if truth is None:
            return
        bad_links = getattr(truth, "bad_links", truth)
        self.scores[report.epoch] = detection_precision_recall(
            report.detected_links, bad_links, physical=self._physical
        )

    @property
    def epochs_scored(self) -> int:
        """Number of epochs scored so far."""
        return len(self.scores)

    def mean_precision(self) -> float:
        """Mean per-epoch precision (``nan`` before any epoch was scored)."""
        if not self.scores:
            return float("nan")
        return sum(s.precision for s in self.scores.values()) / len(self.scores)

    def mean_recall(self) -> float:
        """Mean per-epoch recall (``nan`` before any epoch was scored)."""
        if not self.scores:
            return float("nan")
        return sum(s.recall for s in self.scores.values()) / len(self.scores)
