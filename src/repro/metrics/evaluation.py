"""Scoring 007 and the baselines against simulator ground truth.

The paper uses three measures (Section 6):

* **accuracy** — the fraction of flows whose drop cause was identified
  correctly (per-connection diagnosis);
* **recall** — the fraction of genuinely failed links that were detected
  (false negatives);
* **precision** — the fraction of detected links that had genuinely failed
  (false positives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Set

from repro.topology.elements import DirectedLink, Link


@dataclass(frozen=True)
class DetectionScore:
    """Precision/recall of a detected link set against ground truth."""

    precision: float
    recall: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def _normalize(links: Iterable[DirectedLink | Link], physical: bool) -> Set:
    """Optionally collapse directed links onto physical links before comparing."""
    result = set()
    for link in links:
        if physical and isinstance(link, DirectedLink):
            result.add(link.undirected())
        else:
            result.add(link)
    return result


def detection_precision_recall(
    detected: Iterable[DirectedLink | Link],
    true_bad: Iterable[DirectedLink | Link],
    physical: bool = False,
) -> DetectionScore:
    """Score a detected link set against the injected (ground truth) failures.

    ``physical=True`` compares undirected cables instead of directions, which
    matches how an operator would act on the report (replace the cable/port).
    """
    detected_set = _normalize(detected, physical)
    true_set = _normalize(true_bad, physical)
    tp = len(detected_set & true_set)
    fp = len(detected_set - true_set)
    fn = len(true_set - detected_set)
    precision = tp / (tp + fp) if (tp + fp) else (1.0 if not true_set else 0.0)
    recall = tp / (tp + fn) if (tp + fn) else 1.0
    return DetectionScore(
        precision=precision,
        recall=recall,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )


def per_flow_accuracy(
    predicted_causes: Mapping[int, DirectedLink],
    true_causes: Mapping[int, Optional[DirectedLink]],
    restrict_to: Optional[Iterable[int]] = None,
    physical: bool = False,
) -> float:
    """Fraction of flows whose predicted culprit matches the ground truth.

    Only flows present in ``true_causes`` with a non-``None`` true cause are
    scored (flows whose drops were pure noise have no meaningful culprit).
    ``restrict_to`` further narrows the scored flows (e.g. only flows that
    traversed an injected failure, as in Section 7.2).  Returns ``nan`` when
    no flow qualifies.
    """
    eligible = [
        flow_id
        for flow_id, true_link in true_causes.items()
        if true_link is not None
    ]
    if restrict_to is not None:
        allowed = set(restrict_to)
        eligible = [flow_id for flow_id in eligible if flow_id in allowed]
    if not eligible:
        return float("nan")
    correct = 0
    for flow_id in eligible:
        predicted = predicted_causes.get(flow_id)
        if predicted is None:
            continue
        true_link = true_causes[flow_id]
        if physical:
            if predicted.undirected() == true_link.undirected():
                correct += 1
        elif predicted == true_link:
            correct += 1
    return correct / len(eligible)


# ----------------------------------------------------------------------
# time-aware scoring (dynamic scenarios)
# ----------------------------------------------------------------------
def _check_epoch_alignment(
    detected_by_epoch: Sequence, truth_by_epoch: Sequence
) -> None:
    """All time-aware scorers require one detection set per truth epoch."""
    if len(detected_by_epoch) != len(truth_by_epoch):
        raise ValueError(
            f"epoch count mismatch: {len(detected_by_epoch)} detection sets vs "
            f"{len(truth_by_epoch)} truth sets"
        )


def per_epoch_detection(
    detected_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    truth_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    physical: bool = False,
) -> list:
    """Score every epoch's detections against that epoch's ground truth.

    Both sequences are epoch-ordered and must have equal length; entry ``i``
    of the result is the :class:`DetectionScore` of epoch ``i``.  This is the
    dynamic-scenario generalisation of :func:`detection_precision_recall`:
    when failures flap on and off, a link counts as a true positive only in
    the epochs where it was genuinely bad.
    """
    _check_epoch_alignment(detected_by_epoch, truth_by_epoch)
    return [
        detection_precision_recall(detected, truth, physical=physical)
        for detected, truth in zip(detected_by_epoch, truth_by_epoch)
    ]


def _active_epochs(
    truth_by_epoch: Sequence[Iterable[DirectedLink | Link]], physical: bool
) -> Dict:
    """Map each ever-bad link to the sorted list of epochs it was bad in."""
    active: Dict = {}
    for epoch, truth in enumerate(truth_by_epoch):
        for link in _normalize(truth, physical):
            active.setdefault(link, []).append(epoch)
    return active


def time_to_detection(
    detected_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    truth_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    physical: bool = False,
) -> Dict:
    """Detection latency (in epochs) for every link that ever went bad.

    For each link appearing in the ground truth of any epoch: the number of
    epochs between the link first becoming bad and the first epoch in which
    007 flagged it *while it was bad* (0 = caught in the first bad epoch).
    ``None`` when the link was never flagged during any of its bad epochs —
    detections of an already-cleared link do not count; they are false alarms,
    measured by :func:`false_alarm_rate_after_clear`.
    """
    _check_epoch_alignment(detected_by_epoch, truth_by_epoch)
    detected_sets = [_normalize(d, physical) for d in detected_by_epoch]
    latencies: Dict = {}
    for link, epochs in _active_epochs(truth_by_epoch, physical).items():
        first_bad = epochs[0]
        latencies[link] = None
        for epoch in epochs:
            if link in detected_sets[epoch]:
                latencies[link] = epoch - first_bad
                break
    return latencies


def mean_time_to_detection(
    detected_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    truth_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    physical: bool = False,
) -> float:
    """Mean detection latency over the links that *were* detected (``nan`` if none)."""
    latencies = [
        latency
        for latency in time_to_detection(
            detected_by_epoch, truth_by_epoch, physical=physical
        ).values()
        if latency is not None
    ]
    if not latencies:
        return float("nan")
    return float(sum(latencies)) / len(latencies)


def false_alarm_rate_after_clear(
    detected_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    truth_by_epoch: Sequence[Iterable[DirectedLink | Link]],
    physical: bool = False,
) -> float:
    """How often 007 keeps blaming a link after its failure has cleared.

    Over every (link, epoch) pair where the link is *not* bad in that epoch
    but had been bad in some earlier epoch: the fraction in which the link is
    still flagged.  0.0 means the votes decay cleanly once a transient clears
    (the paper's requirement that stale failures stop drawing blame);
    ``nan`` when no failure ever cleared inside the observed window.
    """
    _check_epoch_alignment(detected_by_epoch, truth_by_epoch)
    detected_sets = [_normalize(d, physical) for d in detected_by_epoch]
    truth_sets = [_normalize(t, physical) for t in truth_by_epoch]
    alarms = 0
    opportunities = 0
    for link, epochs in _active_epochs(truth_by_epoch, physical).items():
        first_bad = epochs[0]
        for epoch in range(first_bad + 1, len(truth_sets)):
            if link in truth_sets[epoch]:
                continue
            opportunities += 1
            if link in detected_sets[epoch]:
                alarms += 1
    if opportunities == 0:
        return float("nan")
    return alarms / opportunities


def top_k_recall(
    ranked_links: Sequence[DirectedLink],
    true_bad: Iterable[DirectedLink],
    k: Optional[int] = None,
) -> float:
    """Fraction of true bad links appearing among the top ``k`` ranked links.

    ``k`` defaults to the number of true bad links (the "if the top k links
    had been selected" analysis of Section 6.6).  Returns 1.0 when there are
    no true bad links.
    """
    true_set = set(true_bad)
    if not true_set:
        return 1.0
    if k is None:
        k = len(true_set)
    top = set(ranked_links[:k])
    return len(top & true_set) / len(true_set)


# ----------------------------------------------------------------------
# streaming scoring (the ReportSink path)
# ----------------------------------------------------------------------
class StreamingDetectionScorer:
    """A report sink that scores detections online, epoch by epoch.

    Attach to a streaming service (``Zero07Service(sinks=[scorer])`` or
    ``run_scenario(config, sinks=[scorer])``) with a ``truth_lookup`` mapping
    an epoch to its live ground-truth bad links; every finalized report is
    scored immediately, so long scenarios never need to retain their reports
    to compute precision/recall timelines.
    """

    def __init__(self, truth_lookup, physical: bool = False) -> None:
        self._truth_lookup = truth_lookup
        self._physical = physical
        self.scores: Dict[int, DetectionScore] = {}

    def on_report(self, report) -> None:
        """Score one finalized epoch report against its epoch's truth.

        Epochs whose ``truth_lookup`` returns ``None`` (no ground truth
        available) are skipped rather than scored against nothing.
        """
        truth = self._truth_lookup(report.epoch)
        if truth is None:
            return
        bad_links = getattr(truth, "bad_links", truth)
        self.scores[report.epoch] = detection_precision_recall(
            report.detected_links, bad_links, physical=self._physical
        )

    @property
    def epochs_scored(self) -> int:
        """Number of epochs scored so far."""
        return len(self.scores)

    def mean_precision(self) -> float:
        """Mean per-epoch precision (``nan`` before any epoch was scored)."""
        if not self.scores:
            return float("nan")
        return sum(s.precision for s in self.scores.values()) / len(self.scores)

    def mean_recall(self) -> float:
        """Mean per-epoch recall (``nan`` before any epoch was scored)."""
        if not self.scores:
            return float("nan")
        return sum(s.recall for s in self.scores.values()) / len(self.scores)
