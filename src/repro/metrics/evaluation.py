"""Scoring 007 and the baselines against simulator ground truth.

The paper uses three measures (Section 6):

* **accuracy** — the fraction of flows whose drop cause was identified
  correctly (per-connection diagnosis);
* **recall** — the fraction of genuinely failed links that were detected
  (false negatives);
* **precision** — the fraction of detected links that had genuinely failed
  (false positives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Set

from repro.topology.elements import DirectedLink, Link


@dataclass(frozen=True)
class DetectionScore:
    """Precision/recall of a detected link set against ground truth."""

    precision: float
    recall: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def _normalize(links: Iterable[DirectedLink | Link], physical: bool) -> Set:
    """Optionally collapse directed links onto physical links before comparing."""
    result = set()
    for link in links:
        if physical and isinstance(link, DirectedLink):
            result.add(link.undirected())
        else:
            result.add(link)
    return result


def detection_precision_recall(
    detected: Iterable[DirectedLink | Link],
    true_bad: Iterable[DirectedLink | Link],
    physical: bool = False,
) -> DetectionScore:
    """Score a detected link set against the injected (ground truth) failures.

    ``physical=True`` compares undirected cables instead of directions, which
    matches how an operator would act on the report (replace the cable/port).
    """
    detected_set = _normalize(detected, physical)
    true_set = _normalize(true_bad, physical)
    tp = len(detected_set & true_set)
    fp = len(detected_set - true_set)
    fn = len(true_set - detected_set)
    precision = tp / (tp + fp) if (tp + fp) else (1.0 if not true_set else 0.0)
    recall = tp / (tp + fn) if (tp + fn) else 1.0
    return DetectionScore(
        precision=precision,
        recall=recall,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )


def per_flow_accuracy(
    predicted_causes: Mapping[int, DirectedLink],
    true_causes: Mapping[int, Optional[DirectedLink]],
    restrict_to: Optional[Iterable[int]] = None,
    physical: bool = False,
) -> float:
    """Fraction of flows whose predicted culprit matches the ground truth.

    Only flows present in ``true_causes`` with a non-``None`` true cause are
    scored (flows whose drops were pure noise have no meaningful culprit).
    ``restrict_to`` further narrows the scored flows (e.g. only flows that
    traversed an injected failure, as in Section 7.2).  Returns ``nan`` when
    no flow qualifies.
    """
    eligible = [
        flow_id
        for flow_id, true_link in true_causes.items()
        if true_link is not None
    ]
    if restrict_to is not None:
        allowed = set(restrict_to)
        eligible = [flow_id for flow_id in eligible if flow_id in allowed]
    if not eligible:
        return float("nan")
    correct = 0
    for flow_id in eligible:
        predicted = predicted_causes.get(flow_id)
        if predicted is None:
            continue
        true_link = true_causes[flow_id]
        if physical:
            if predicted.undirected() == true_link.undirected():
                correct += 1
        elif predicted == true_link:
            correct += 1
    return correct / len(eligible)


def top_k_recall(
    ranked_links: Sequence[DirectedLink],
    true_bad: Iterable[DirectedLink],
    k: Optional[int] = None,
) -> float:
    """Fraction of true bad links appearing among the top ``k`` ranked links.

    ``k`` defaults to the number of true bad links (the "if the top k links
    had been selected" analysis of Section 6.6).  Returns 1.0 when there are
    no true bad links.
    """
    true_set = set(true_bad)
    if not true_set:
        return 1.0
    if k is None:
        k = len(true_set)
    top = set(ranked_links[:k])
    return len(top & true_set) / len(true_set)
