"""Evaluation metrics: per-flow accuracy, detection precision and recall."""

from repro.metrics.evaluation import (
    DetectionScore,
    detection_precision_recall,
    per_flow_accuracy,
    top_k_recall,
)

__all__ = [
    "DetectionScore",
    "detection_precision_recall",
    "per_flow_accuracy",
    "top_k_recall",
]
