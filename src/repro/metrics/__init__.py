"""Evaluation metrics: per-flow accuracy, detection precision and recall."""

from repro.metrics.evaluation import (
    DetectionScore,
    detection_latencies,
    detection_precision_recall,
    false_alarm_rate_after_clear,
    mean_time_to_detection,
    per_epoch_detection,
    per_flow_accuracy,
    time_to_detection,
    top_k_recall,
)

__all__ = [
    "DetectionScore",
    "detection_latencies",
    "detection_precision_recall",
    "false_alarm_rate_after_clear",
    "mean_time_to_detection",
    "per_epoch_detection",
    "per_flow_accuracy",
    "time_to_detection",
    "top_k_recall",
]
