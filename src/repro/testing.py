"""Reusable test/benchmark helpers shipped with the package.

Living inside ``repro`` (instead of a ``conftest.py``) makes these helpers
importable from any test or benchmark directory without relying on pytest's
rootdir-dependent ``conftest`` module resolution — ``from conftest import x``
silently resolves to whichever conftest pytest imported first, which is how
the ``tests/`` suite once ended up importing ``benchmarks/conftest.py``.
"""

from __future__ import annotations

from repro.topology.clos import ClosTopology


def pair_of_hosts(topology: ClosTopology, cross_pod: bool = True) -> tuple[str, str]:
    """Return a (src, dst) host pair, cross-pod when requested."""
    hosts = sorted(topology.hosts)
    src = hosts[0]
    src_pod = topology.host(src).pod
    for dst in hosts[1:]:
        host = topology.host(dst)
        if cross_pod and host.pod != src_pod:
            return src, dst
        if not cross_pod and host.pod == src_pod and host.tor != topology.host(src).tor:
            return src, dst
    raise RuntimeError("no suitable host pair found")


def report_signature(report) -> tuple:
    """Every user-visible field of an :class:`EpochReport`, exact floats.

    Two reports with equal signatures are bit-identical for every consumer:
    same detections (order included), same ranked tally, same flow causes,
    same noise split, same thresholds.  Used by the streaming-vs-batch,
    checkpoint and shard equivalence tests.
    """
    return (
        report.epoch,
        [str(link) for link in report.detected_links],
        [(str(link), votes) for link, votes in report.ranked_links],
        sorted((flow, str(link)) for flow, link in report.flow_causes.items()),
        sorted(report.noise.noise_flows),
        sorted(report.noise.failure_flows),
        report.num_paths_analyzed,
        report.blame.threshold_votes,
        sorted((str(link), votes) for link, votes in report.blame.votes_at_detection.items()),
        sorted((str(link), votes) for link, votes in report.blame.final_votes.items()),
    )
