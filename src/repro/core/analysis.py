"""The 007 analysis agent.

At the end of every epoch the (centralised) analysis agent receives the
discovered paths of all flows that suffered retransmissions, tallies their
votes, ranks the links, runs Algorithm 1 to flag problematic links, classifies
noise drops, and attributes a most-likely culprit link to every failure-drop
flow.  The result is an :class:`EpochReport`.

Two interchangeable engines back the agent: ``"arrays"`` (the default) runs
the vectorized pipeline of :mod:`repro.core.arrays` over a persistent
:class:`~repro.core.arrays.LinkIndex`, while ``"dicts"`` runs the original
pure-Python tally and serves as the reference oracle.  Both produce identical
reports — same detections, same deterministic tie-breaks, same floats.
"""

from __future__ import annotations

import numpy as np
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Literal, Optional, Sequence, Tuple

from repro.core.blame import BlameConfig, BlameResult, find_problematic_links
from repro.core.noise import NoiseClassification, classify_noise_flows
from repro.core.ranking import attribute_flow_causes, rank_links
from repro.core.votes import VotePolicy, VoteTally
from repro.discovery.agent import DiscoveredPath
from repro.topology.elements import DirectedLink

EngineKind = Literal["dicts", "arrays"]


@dataclass
class EpochReport:
    """Everything 007 concluded about one epoch."""

    epoch: int
    tally: VoteTally
    ranked_links: List[Tuple[DirectedLink, float]]
    blame: BlameResult
    flow_causes: Dict[int, DirectedLink]
    noise: NoiseClassification
    num_paths_analyzed: int

    @property
    def detected_links(self) -> List[DirectedLink]:
        """The problematic links found by Algorithm 1, most voted first."""
        return list(self.blame.detected_links)

    def cause_of_flow(self, flow_id: int) -> Optional[DirectedLink]:
        """The culprit link attributed to ``flow_id`` (``None`` if unknown/noise)."""
        return self.flow_causes.get(flow_id)

    def top_links(self, n: int = 5) -> List[Tuple[DirectedLink, float]]:
        """The ``n`` most voted links of the epoch."""
        return self.ranked_links[:n]

    def summary(self) -> str:
        """One-line human-readable summary of the epoch."""
        top = self.ranked_links[0] if self.ranked_links else None
        top_text = f"{top[0]} ({top[1]:.2f} votes)" if top else "none"
        return (
            f"epoch {self.epoch}: {self.num_paths_analyzed} flows voted, "
            f"{len(self.detected_links)} problematic link(s), top link {top_text}, "
            f"{self.noise.num_noise} noise drops"
        )


class AnalysisAgent:
    """Turns an epoch's discovered paths into an :class:`EpochReport`."""

    def __init__(
        self,
        blame_config: Optional[BlameConfig] = None,
        vote_policy: VotePolicy = "inverse_hops",
        attribute_noise_flows: bool = False,
        engine: EngineKind = "arrays",
        link_index=None,
    ) -> None:
        if engine not in ("dicts", "arrays"):
            raise ValueError(f"unknown analysis engine {engine!r}")
        self._blame_config = blame_config or BlameConfig()
        self._vote_policy: VotePolicy = vote_policy
        self._attribute_noise_flows = attribute_noise_flows
        self._engine: EngineKind = engine
        #: persistent link interner shared across epochs (arrays engine only),
        #: so link ids are stable for multi-epoch aggregation.
        self._link_index = link_index

    # ------------------------------------------------------------------
    @property
    def blame_config(self) -> BlameConfig:
        """The Algorithm 1 configuration used for every epoch."""
        return self._blame_config

    @property
    def engine(self) -> EngineKind:
        """Which tally/blame implementation this agent runs."""
        return self._engine

    def analyze_epoch(
        self, epoch: int, paths: Sequence[DiscoveredPath]
    ) -> EpochReport:
        """Analyse one epoch's worth of discovered paths (batch entry point)."""
        if self._engine == "arrays":
            from repro.core.arrays import ArrayVoteTally, LinkIndex

            if self._link_index is None:
                self._link_index = LinkIndex()
            tally = ArrayVoteTally(policy=self._vote_policy, index=self._link_index)
            tally.add_discovered_paths(paths)
            return self._analyze_array_tally(epoch, tally)

        tally = VoteTally(policy=self._vote_policy)
        tally.add_discovered_paths(paths)
        return self._analyze_dict_tally(epoch, tally, list(paths))

    def analyze_tally(
        self,
        epoch: int,
        tally,
        paths: Optional[Sequence[DiscoveredPath]] = None,
    ) -> EpochReport:
        """Materialize a report from an *externally accumulated* tally.

        This is the streaming entry point: the 007 service grows a tally
        incrementally as evidence arrives and materializes reports on demand
        (including mid-epoch) by handing the tally here.  Array-backed tallies
        are dispatched to the vectorized path regardless of this agent's
        ``engine`` setting; dict tallies need ``paths`` — the discovered paths
        behind the tally, in contribution order (defaults to the tally's own
        contribution records, which carry the same flow ids, links and
        retransmission counts).
        """
        if hasattr(tally, "votes_array"):
            return self._analyze_array_tally(epoch, tally)
        if paths is None:
            paths = tally.contributions
        return self._analyze_dict_tally(epoch, tally, paths)

    def _analyze_dict_tally(
        self, epoch: int, tally: VoteTally, paths: Sequence
    ) -> EpochReport:
        """The reference (pure-Python) epoch analysis over a built tally."""
        blame = find_problematic_links(tally, self._blame_config)
        noise = classify_noise_flows(paths, blame.detected_links)

        if self._attribute_noise_flows:
            attributable = list(paths)
        else:
            attributable = [p for p in paths if p.flow_id in noise.failure_flows]
        flow_causes = attribute_flow_causes(tally, attributable)

        return EpochReport(
            epoch=epoch,
            tally=tally,
            ranked_links=rank_links(tally),
            blame=blame,
            flow_causes=flow_causes,
            noise=noise,
            num_paths_analyzed=len(paths),
        )

    def _analyze_array_tally(self, epoch: int, tally) -> EpochReport:
        """The vectorized epoch analysis over a built tally (bit-identical)."""
        from repro.core.arrays import (
            attribute_flow_causes_arrays,
            classify_noise_flows_arrays,
            find_problematic_links_arrays,
        )

        blame = find_problematic_links_arrays(tally, self._blame_config)
        noise = classify_noise_flows_arrays(tally, blame.detected_links)

        if self._attribute_noise_flows:
            rows = np.arange(tally.num_flows, dtype=np.int64)
        elif noise.failure_flows:
            # membership by flow id, not by per-row failure mask: a flow id
            # appearing in several rows keeps every one of its rows (and thus
            # the same last-row-wins cause) exactly like the dict engine.
            failure_ids = np.fromiter(
                noise.failure_flows, dtype=np.int64, count=len(noise.failure_flows)
            )
            rows = np.flatnonzero(np.isin(tally.flow_ids_array(), failure_ids))
        else:
            rows = np.empty(0, dtype=np.int64)
        flow_causes = attribute_flow_causes_arrays(tally, rows)

        return EpochReport(
            epoch=epoch,
            tally=tally,
            ranked_links=tally.items(),
            blame=blame,
            flow_causes=flow_causes,
            noise=noise,
            num_paths_analyzed=tally.num_flows,
        )

    def analyze_epochs(
        self, paths_by_epoch: Dict[int, Sequence[DiscoveredPath]]
    ) -> List[EpochReport]:
        """Analyse several epochs and return their reports in epoch order."""
        return [
            self.analyze_epoch(epoch, paths_by_epoch[epoch])
            for epoch in sorted(paths_by_epoch)
        ]
