"""The 007 analysis agent.

At the end of every epoch the (centralised) analysis agent receives the
discovered paths of all flows that suffered retransmissions, tallies their
votes, ranks the links, runs Algorithm 1 to flag problematic links, classifies
noise drops, and attributes a most-likely culprit link to every failure-drop
flow.  The result is an :class:`EpochReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.blame import BlameConfig, BlameResult, find_problematic_links
from repro.core.noise import NoiseClassification, classify_noise_flows
from repro.core.ranking import attribute_flow_causes, rank_links
from repro.core.votes import VotePolicy, VoteTally
from repro.discovery.agent import DiscoveredPath
from repro.topology.elements import DirectedLink


@dataclass
class EpochReport:
    """Everything 007 concluded about one epoch."""

    epoch: int
    tally: VoteTally
    ranked_links: List[Tuple[DirectedLink, float]]
    blame: BlameResult
    flow_causes: Dict[int, DirectedLink]
    noise: NoiseClassification
    num_paths_analyzed: int

    @property
    def detected_links(self) -> List[DirectedLink]:
        """The problematic links found by Algorithm 1, most voted first."""
        return list(self.blame.detected_links)

    def cause_of_flow(self, flow_id: int) -> Optional[DirectedLink]:
        """The culprit link attributed to ``flow_id`` (``None`` if unknown/noise)."""
        return self.flow_causes.get(flow_id)

    def top_links(self, n: int = 5) -> List[Tuple[DirectedLink, float]]:
        """The ``n`` most voted links of the epoch."""
        return self.ranked_links[:n]

    def summary(self) -> str:
        """One-line human-readable summary of the epoch."""
        top = self.ranked_links[0] if self.ranked_links else None
        top_text = f"{top[0]} ({top[1]:.2f} votes)" if top else "none"
        return (
            f"epoch {self.epoch}: {self.num_paths_analyzed} flows voted, "
            f"{len(self.detected_links)} problematic link(s), top link {top_text}, "
            f"{self.noise.num_noise} noise drops"
        )


class AnalysisAgent:
    """Turns an epoch's discovered paths into an :class:`EpochReport`."""

    def __init__(
        self,
        blame_config: Optional[BlameConfig] = None,
        vote_policy: VotePolicy = "inverse_hops",
        attribute_noise_flows: bool = False,
    ) -> None:
        self._blame_config = blame_config or BlameConfig()
        self._vote_policy: VotePolicy = vote_policy
        self._attribute_noise_flows = attribute_noise_flows

    # ------------------------------------------------------------------
    @property
    def blame_config(self) -> BlameConfig:
        """The Algorithm 1 configuration used for every epoch."""
        return self._blame_config

    def analyze_epoch(
        self, epoch: int, paths: Sequence[DiscoveredPath]
    ) -> EpochReport:
        """Analyse one epoch's worth of discovered paths."""
        tally = VoteTally(policy=self._vote_policy)
        tally.add_discovered_paths(paths)

        blame = find_problematic_links(tally, self._blame_config)
        noise = classify_noise_flows(paths, blame.detected_links)

        if self._attribute_noise_flows:
            attributable = list(paths)
        else:
            attributable = [p for p in paths if p.flow_id in noise.failure_flows]
        flow_causes = attribute_flow_causes(tally, attributable)

        return EpochReport(
            epoch=epoch,
            tally=tally,
            ranked_links=rank_links(tally),
            blame=blame,
            flow_causes=flow_causes,
            noise=noise,
            num_paths_analyzed=len(paths),
        )

    def analyze_epochs(
        self, paths_by_epoch: Dict[int, Sequence[DiscoveredPath]]
    ) -> List[EpochReport]:
        """Analyse several epochs and return their reports in epoch order."""
        return [
            self.analyze_epoch(epoch, paths_by_epoch[epoch])
            for epoch in sorted(paths_by_epoch)
        ]
