"""The 007 voting scheme.

A flow that suffers at least one retransmission votes for every link on its
path; each vote is worth ``1/h`` where ``h`` is the number of links on the
path (every link is a priori equally likely to have caused the drop).  Flows
without retransmissions cast no votes (their value is 0, so they need not be
traced at all).  Votes are tallied per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Literal, Optional, Sequence, Tuple

from repro.discovery.agent import DiscoveredPath
from repro.topology.elements import DirectedLink

VotePolicy = Literal["inverse_hops", "unit"]


@dataclass(frozen=True)
class VoteContribution:
    """The votes one flow contributed to the tally."""

    flow_id: int
    links: Tuple[DirectedLink, ...]
    weight: float
    retransmissions: int = 1

    @property
    def hop_count(self) -> int:
        """Number of links the flow voted for."""
        return len(self.links)


class VoteTally:
    """Accumulates link votes for one epoch.

    Parameters
    ----------
    policy:
        ``"inverse_hops"`` (the paper's scheme, default) gives each link of a
        bad flow ``1/h`` votes; ``"unit"`` gives each link a full vote and is
        provided for the ablation benchmark.
    """

    def __init__(self, policy: VotePolicy = "inverse_hops") -> None:
        if policy not in ("inverse_hops", "unit"):
            raise ValueError(f"unknown vote policy {policy!r}")
        self._policy: VotePolicy = policy
        self._votes: Dict[DirectedLink, float] = {}
        self._support: Dict[DirectedLink, int] = {}
        self._contributions: List[VoteContribution] = []
        self._row_by_flow: Dict[int, int] = {}
        self._items_cache: Optional[List[Tuple[DirectedLink, float]]] = None
        self._rank_cache: Optional[Dict[DirectedLink, int]] = None

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def add_flow(
        self,
        flow_id: int,
        links: Sequence[DirectedLink],
        retransmissions: int = 1,
    ) -> VoteContribution:
        """Record the votes of one flow that suffered retransmissions."""
        if not links:
            raise ValueError("a voting flow must have at least one known link")
        weight = 1.0 if self._policy == "unit" else 1.0 / len(links)
        contribution = VoteContribution(
            flow_id=flow_id,
            links=tuple(links),
            weight=weight,
            retransmissions=retransmissions,
        )
        for link in links:
            self._votes[link] = self._votes.get(link, 0.0) + weight
        # a link repeated within one path still counts this flow once
        for link in set(links):
            self._support[link] = self._support.get(link, 0) + 1
        self._row_by_flow[flow_id] = len(self._contributions)
        self._contributions.append(contribution)
        self._items_cache = None
        self._rank_cache = None
        return contribution

    def row_of_flow(self, flow_id: int) -> Optional[int]:
        """Row index of ``flow_id``'s latest contribution (``None`` if unknown)."""
        return self._row_by_flow.get(flow_id)

    def bump_retransmissions(self, flow_id: int, extra: int) -> None:
        """Add ``extra`` retransmissions to ``flow_id``'s latest contribution.

        The streaming service uses this O(1) update when an already-traced
        flow retransmits again mid-epoch: the flow's path (and therefore its
        votes) is unchanged, only the retransmission count — which noise
        classification reads — grows.  Raises ``KeyError`` for unknown flows.
        """
        row = self._row_by_flow[flow_id]
        contribution = self._contributions[row]
        self._contributions[row] = replace(
            contribution, retransmissions=contribution.retransmissions + extra
        )

    def bump_rows(self, rows: Sequence[int], extras: Sequence[int]) -> None:
        """Bulk :meth:`bump_retransmissions` by row index.

        Row indices come from :meth:`row_of_flow`; state-identical to bumping
        each flow individually.
        """
        contributions = self._contributions
        for row, extra in zip(rows, extras):
            contribution = contributions[row]
            contributions[row] = replace(
                contribution, retransmissions=contribution.retransmissions + extra
            )

    def add_discovered_path(self, path: DiscoveredPath) -> VoteContribution:
        """Record the votes of a flow from its discovered (possibly partial) path."""
        return self.add_flow(
            flow_id=path.flow_id,
            links=path.links,
            retransmissions=path.retransmissions,
        )

    def add_discovered_paths(self, paths: Iterable[DiscoveredPath]) -> None:
        """Record votes for many discovered paths."""
        for path in paths:
            self.add_discovered_path(path)

    def add_flows(self, paths: Sequence[DiscoveredPath]) -> None:
        """Record the votes of many flows in one pass (the streaming bulk path).

        State-identical to calling :meth:`add_flow` per path in list order —
        votes are folded in the same traversal order, so every float matches —
        but with the per-call dispatch and cache-invalidation overhead paid
        once per batch instead of once per flow.
        """
        unit = self._policy == "unit"
        votes = self._votes
        votes_get = votes.get
        support = self._support
        support_get = support.get
        contributions = self._contributions
        row_by_flow = self._row_by_flow
        row = len(contributions)
        for path in paths:
            links = path.links
            if not links:
                raise ValueError("a voting flow must have at least one known link")
            weight = 1.0 if unit else 1.0 / len(links)
            for link in links:
                votes[link] = votes_get(link, 0.0) + weight
            for link in set(links):
                support[link] = support_get(link, 0) + 1
            row_by_flow[path.flow_id] = row
            contributions.append(
                VoteContribution(
                    flow_id=path.flow_id,
                    links=tuple(links),
                    weight=weight,
                    retransmissions=path.retransmissions,
                )
            )
            row += 1
        self._items_cache = None
        self._rank_cache = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def policy(self) -> VotePolicy:
        """The vote-value policy in use."""
        return self._policy

    def votes_of(self, link: DirectedLink) -> float:
        """Current vote tally of ``link`` (0 for links never voted for)."""
        return self._votes.get(link, 0.0)

    def support_of(self, link: DirectedLink) -> int:
        """Number of distinct flows that voted for ``link`` (O(1) lookup)."""
        return self._support.get(link, 0)

    def support_map(self) -> Dict[DirectedLink, int]:
        """Per-link distinct-flow support as maintained incrementally.

        Equals ``{link: support_of(link)}`` over every voted link.  The map is
        accumulated as flows are added (a link repeated within one path still
        counts its flow once), so materializing it for Algorithm 1's
        eligibility filter costs a dict copy instead of an O(total hops)
        rescan of every contribution.
        """
        return dict(self._support)

    def total_votes(self) -> float:
        """Sum of all votes cast."""
        return float(sum(self._votes.values()))

    def links(self) -> List[DirectedLink]:
        """Links with at least one vote, sorted."""
        return sorted(self._votes)

    def items(self) -> List[Tuple[DirectedLink, float]]:
        """``(link, votes)`` pairs sorted by decreasing votes, ties by link order.

        The sorted order is cached until the next :meth:`add_flow`, so ranking
        queries after the tally is complete cost a copy, not a sort.
        """
        if self._items_cache is None:
            self._items_cache = sorted(
                self._votes.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return list(self._items_cache)

    def as_dict(self) -> Dict[DirectedLink, float]:
        """A copy of the tally."""
        return dict(self._votes)

    @property
    def contributions(self) -> List[VoteContribution]:
        """Per-flow contributions (used by Algorithm 1's adjustment step)."""
        return list(self._contributions)

    @property
    def num_flows(self) -> int:
        """Number of flows that cast votes."""
        return len(self._contributions)

    def top(self, n: int = 1) -> List[Tuple[DirectedLink, float]]:
        """The ``n`` most voted links."""
        return self.items()[:n]

    def max_link(self) -> Optional[DirectedLink]:
        """The single most voted link (``None`` when no votes were cast)."""
        items = self.items()
        return items[0][0] if items else None

    def rank_of(self, link: DirectedLink) -> Optional[int]:
        """1-based rank of ``link`` in :meth:`items` (``None`` when unvoted).

        Backed by a position map built once per tally state, so repeated rank
        queries (Figure 13 computes one per trial) do not re-sort the tally.
        """
        if self._rank_cache is None:
            self._rank_cache = {
                candidate: position
                for position, (candidate, _) in enumerate(self.items(), start=1)
            }
        return self._rank_cache.get(link)

    def copy(self) -> "VoteTally":
        """A deep copy of the tally (Algorithm 1 adjusts a copy)."""
        clone = VoteTally(policy=self._policy)
        clone._votes = dict(self._votes)
        clone._support = dict(self._support)
        clone._contributions = list(self._contributions)
        clone._row_by_flow = dict(self._row_by_flow)
        return clone

    def snapshot(self) -> "VoteTally":
        """An isolated point-in-time view for mid-epoch reporting.

        The dict tally's :meth:`copy` is already O(flows + links) — votes and
        support are shallow dict copies and contributions are immutable — so
        the snapshot is simply a copy; the method exists so the streaming
        service can take snapshots uniformly across both engines.
        """
        return self.copy()
