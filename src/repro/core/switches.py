"""Switch-level voting (the extension sketched at the end of Section 5.1).

007's votes normally target links; applying the same scheme to switches lets
the operator detect a misbehaving device (e.g. a ToR silently corrupting
packets on many of its ports) rather than a single cable.  A flow's vote is
split across the switches its path visits, and the same threshold/adjustment
loop of Algorithm 1 flags problematic switches.

:func:`find_problematic_switches` defaults to the vectorized kernel shared
with the link engine (:func:`repro.core.arrays.blame_kernel`), interning
switch names through an :class:`~repro.core.arrays.ItemIndex`; the original
dict loop is kept as the ``engine="dicts"`` reference and both produce
identical detections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Literal, Optional, Tuple

import numpy as np

from repro.core.blame import BlameConfig
from repro.core.votes import VoteTally
from repro.discovery.agent import DiscoveredPath
from repro.topology.elements import DirectedLink
from repro.topology.topology import Topology


@dataclass
class SwitchVoteTally:
    """Per-switch vote accumulation for one epoch."""

    votes: Dict[str, float] = field(default_factory=dict)
    contributions: List[Tuple[int, Tuple[str, ...], float]] = field(default_factory=list)

    def add_flow(self, flow_id: int, switches: Iterable[str]) -> None:
        """Record one failed flow's votes, split evenly across its switches."""
        switch_list = tuple(switches)
        if not switch_list:
            raise ValueError("a voting flow must traverse at least one switch")
        weight = 1.0 / len(switch_list)
        for switch in switch_list:
            self.votes[switch] = self.votes.get(switch, 0.0) + weight
        self.contributions.append((flow_id, switch_list, weight))

    def total_votes(self) -> float:
        """Sum of all switch votes cast."""
        return float(sum(self.votes.values()))

    def items(self) -> List[Tuple[str, float]]:
        """Switches sorted by decreasing votes (ties by name)."""
        return sorted(self.votes.items(), key=lambda kv: (-kv[1], kv[0]))

    def votes_of(self, switch: str) -> float:
        """Votes of one switch (0 when it never received any)."""
        return self.votes.get(switch, 0.0)


def switches_of_links(topology: Topology, links: Iterable[DirectedLink]) -> List[str]:
    """The switches touched by a set of (discovered) links, in path order."""
    seen: List[str] = []
    for link in links:
        for end in (link.src, link.dst):
            if topology.is_switch(end) and end not in seen:
                seen.append(end)
    return seen


def build_switch_tally(
    topology: Topology, paths: Iterable[DiscoveredPath]
) -> SwitchVoteTally:
    """Tally switch votes for the failed flows of one epoch."""
    tally = SwitchVoteTally()
    for path in paths:
        switches = switches_of_links(topology, path.links)
        if switches:
            tally.add_flow(path.flow_id, switches)
    return tally


def find_problematic_switches(
    tally: SwitchVoteTally,
    config: Optional[BlameConfig] = None,
    engine: Literal["dicts", "arrays"] = "arrays",
) -> List[str]:
    """Algorithm 1 applied to switches instead of links."""
    if engine not in ("dicts", "arrays"):
        raise ValueError(f"unknown blame engine {engine!r}")
    config = config or BlameConfig()
    # The array kernel rebuilds votes from the contributions; a tally whose
    # public votes dict was populated by hand (no contributions) only the
    # dict loop can serve.
    if engine == "arrays" and not (tally.votes and not tally.contributions):
        return _find_problematic_switches_arrays(tally, config)
    total = tally.total_votes()
    if total <= 0.0:
        return []
    threshold = config.threshold_fraction * total

    votes = dict(tally.votes)
    remaining = list(tally.contributions)
    detected: List[str] = []

    while len(detected) < config.max_links:
        candidates = [(s, v) for s, v in votes.items() if s not in detected]
        if not candidates:
            break
        best = max(v for _, v in candidates)
        smax = sorted(s for s, v in candidates if v == best)[0]
        if best < threshold or best <= 0.0:
            break
        detected.append(smax)
        if config.adjustment == "paths":
            survivors = []
            for flow_id, switches, weight in remaining:
                if smax not in switches:
                    survivors.append((flow_id, switches, weight))
                    continue
                for switch in switches:
                    if switch != smax:
                        votes[switch] = max(0.0, votes.get(switch, 0.0) - weight)
            remaining = survivors
    return detected


def _find_problematic_switches_arrays(
    tally: SwitchVoteTally, config: BlameConfig
) -> List[str]:
    """The switch blame loop on the vectorized kernel (bit-identical)."""
    from repro.core.arrays import ItemIndex, blame_kernel

    index = ItemIndex()
    cols: List[int] = []
    indptr: List[int] = [0]
    weights: List[float] = []
    for _, switches, weight in tally.contributions:
        cols.extend(index.intern(switch) for switch in switches)
        indptr.append(len(cols))
        weights.append(weight)

    votes = np.bincount(
        np.asarray(cols, dtype=np.int64),
        weights=np.repeat(
            np.asarray(weights, dtype=np.float64),
            np.diff(np.asarray(indptr, dtype=np.int64)),
        ),
        minlength=len(index),
    )
    # same left fold as float(sum(dict.values())) over first-interned order
    total = float(sum(votes.tolist()))
    if total <= 0.0:
        return []
    detected, _, _ = blame_kernel(
        votes,
        np.asarray(indptr, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
        np.ones(len(index), dtype=bool),
        index.sort_ranks(),
        config.threshold_fraction * total,
        config,
    )
    return [index.item_of(sid) for sid in detected]


def link_tally_to_switch_votes(
    topology: Topology, link_tally: VoteTally
) -> SwitchVoteTally:
    """Re-derive switch votes from an existing link vote tally.

    Useful when the epoch analysis already ran: the per-flow contributions of
    the link tally are reinterpreted at switch granularity.
    """
    tally = SwitchVoteTally()
    for contribution in link_tally.contributions:
        switches = switches_of_links(topology, contribution.links)
        if switches:
            tally.add_flow(contribution.flow_id, switches)
    return tally
