"""Link ranking and per-flow culprit attribution.

Theorem 2 guarantees that links with higher drop rates end up with more votes,
so the tally gives a natural ranking ("heat map") of links, and the most voted
link on a flow's own path is the most likely cause of that flow's drops.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.votes import VoteTally
from repro.discovery.agent import DiscoveredPath
from repro.topology.elements import DirectedLink


def rank_links(tally: VoteTally) -> List[Tuple[DirectedLink, float]]:
    """Links sorted by decreasing vote tally (ties broken by link order)."""
    return tally.items()


def attribute_flow_cause(
    tally: VoteTally, links: Sequence[DirectedLink]
) -> Optional[DirectedLink]:
    """The most likely culprit for one flow: its most voted link.

    Returns ``None`` when the flow has no known links.  Ties are broken
    deterministically by link ordering so repeated analyses agree.
    """
    if not links:
        return None
    return max(sorted(links), key=lambda link: tally.votes_of(link))


def attribute_flow_causes(
    tally: VoteTally, paths: Iterable[DiscoveredPath]
) -> Dict[int, DirectedLink]:
    """Attribute a culprit link to every flow with a discovered path."""
    causes: Dict[int, DirectedLink] = {}
    for path in paths:
        culprit = attribute_flow_cause(tally, path.links)
        if culprit is not None:
            causes[path.flow_id] = culprit
    return causes


def vote_gap(
    tally: VoteTally,
    bad_links: Sequence[DirectedLink],
) -> float:
    """Difference between the max votes on a known-bad link and on any other link.

    This is the quantity plotted in Figure 13: positive values mean the bad
    link out-ranks every good link.
    """
    bad_set = set(bad_links)
    bad_votes = max((tally.votes_of(link) for link in bad_set), default=0.0)
    good_votes = max(
        (votes for link, votes in tally.items() if link not in bad_set),
        default=0.0,
    )
    return bad_votes - good_votes


def rank_of_link(tally: VoteTally, link: DirectedLink) -> Optional[int]:
    """1-based rank of ``link`` in the tally (``None`` when it has no votes).

    Delegates to the tally's cached position map (:meth:`VoteTally.rank_of`)
    instead of re-sorting the full tally on every call.
    """
    rank_of = getattr(tally, "rank_of", None)
    if rank_of is not None:
        return rank_of(link)
    for position, (candidate, _) in enumerate(tally.items(), start=1):
        if candidate == link:
            return position
    return None
