"""NumPy-backed analysis engine: interned links, CSR path matrices, array Algorithm 1.

The dict-based reference engine (:mod:`repro.core.votes`, :mod:`repro.core.blame`)
keys every tally on :class:`~repro.topology.elements.DirectedLink` objects and
re-scans the per-flow ``VoteContribution`` lists inside Algorithm 1, which makes
the per-epoch analysis the dominant cost at large fabric sizes.  This module is
its vectorized twin:

* :class:`ItemIndex` / :class:`LinkIndex` intern hashable items (links, switch
  names) to dense integer ids so per-link state lives in flat arrays;
* :class:`ArrayVoteTally` stores an epoch's discovered paths as a CSR matrix
  (``indptr``/``cols``/``weights``) and computes the vote tally *and* the
  per-link distinct-flow support in one :func:`numpy.bincount` pass;
* :func:`find_problematic_links_arrays` runs Algorithm 1 as argmax + masked
  per-row discounting over the CSR rows instead of re-scanning contribution
  lists;
* helpers vectorize ranking, per-flow culprit attribution and noise
  classification over the same matrix.

Every function is bit-compatible with the dict engine: votes are accumulated in
the same traversal order (``numpy.bincount`` adds weights sequentially, exactly
like the dict fold), totals are summed in first-seen link order, and ties break
on the same lexicographic link ordering — so the two engines produce identical
detections, rankings, flow causes and thresholds, and the dict engine remains
the reference oracle in the equivalence tests.
"""

from __future__ import annotations

import operator
from itertools import chain
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.blame import BlameConfig, BlameResult
from repro.core.noise import NoiseClassification
from repro.core.votes import VoteContribution, VotePolicy
from repro.discovery.agent import DiscoveredPath
from repro.topology.elements import DirectedLink


class ItemIndex:
    """Interns hashable, orderable items to dense integer ids.

    Ids are assigned in first-intern order; :meth:`sort_ranks` provides the
    rank of each id under the items' natural ordering, which the blame kernel
    uses for the deterministic "smallest item wins" tie-break.
    """

    #: identity-memo bound; when exceeded the memo is dropped wholesale
    #: (epoch-cache semantics) so sources that allocate fresh link objects
    #: per path cannot grow it without limit.
    MAX_ID_MEMO = 65_536

    def __init__(self, items: Iterable = ()) -> None:
        self._items: List = []
        self._ids: Dict[object, int] = {}
        self._ranks: Optional[np.ndarray] = None
        #: id(object) -> id, plus strong refs keeping those objects alive so
        #: a recycled id() can never alias a dead memo entry.  The sorted
        #: key/value arrays are the memo's vectorized view (searchsorted
        #: lookup over fresh object batches beats per-item boxed-int dict
        #: lookups); rebuilt whenever the dict grows.
        self._id_memo: Dict[int, int] = {}
        self._memo_refs: List = []
        self._memo_keys: Optional[np.ndarray] = None
        self._memo_vals: Optional[np.ndarray] = None
        #: dense pointer table: cell ``(id - base) >> 4`` -> interned id.
        #: Live CPython objects are >= 16 bytes, so object starts are unique
        #: at 16-byte granularity and the mapping is collision-free while the
        #: memo's strong refs keep its objects alive.  ``None`` when the
        #: memoized ids span too wide a heap range (searchsorted fallback).
        self._memo_table: Optional[np.ndarray] = None
        self._memo_base = 0
        for item in items:
            self.intern(item)

    # ------------------------------------------------------------------
    def intern(self, item) -> int:
        """Return the id of ``item``, assigning the next free id if new."""
        idx = self._ids.get(item)
        if idx is None:
            idx = len(self._items)
            self._ids[item] = idx
            self._items.append(item)
            self._ranks = None
        return idx

    def id_of(self, item) -> int:
        """The id of an already-interned item (raises ``KeyError`` if unknown)."""
        return self._ids[item]

    def fast_ids(self, items: Sequence) -> List[int]:
        """Intern many items, resolving repeat *objects* at C speed.

        Items are hashed by (often slow, Python-level) ``__hash__`` only on
        the first sighting of each distinct object; afterwards an identity
        memo answers through a builtin int lookup, so callers that reuse one
        object per logical item (the evidence load generator shares one
        ``DirectedLink`` per fabric direction) pay no Python-level work at
        all.  Equivalent to ``[self.intern(x) for x in items]``.
        """
        if not isinstance(items, (list, tuple)):
            items = list(items)
        if not items:
            return []
        resolved = self.lookup_ids(map(id, items), len(items))
        if resolved is not None:
            return resolved
        memo = self._id_memo
        if len(memo) > self.MAX_ID_MEMO:
            memo.clear()
            self._memo_refs.clear()
        intern = self.intern
        refs_append = self._memo_refs.append
        memo_get = memo.get
        ids = []
        ids_append = ids.append
        for item in items:
            key = id(item)
            idx = memo_get(key)
            if idx is None:
                idx = intern(item)
                memo[key] = idx
                refs_append(item)
            ids_append(idx)
        memo_keys = np.fromiter(memo.keys(), dtype=np.int64, count=len(memo))
        order = np.argsort(memo_keys)
        self._memo_keys = memo_keys[order]
        self._memo_vals = np.fromiter(memo.values(), dtype=np.int64, count=len(memo))[
            order
        ]
        base = int(self._memo_keys[0])
        span = ((int(self._memo_keys[-1]) - base) >> 4) + 1
        if span <= max(1 << 21, 64 * len(memo)):
            table = np.full(span, -1, dtype=np.int64)
            table[(self._memo_keys - base) >> 4] = self._memo_vals
            self._memo_table = table
            self._memo_base = base
        else:
            self._memo_table = None
        return ids

    def lookup_ids(self, object_ids, count: int) -> Optional[List[int]]:
        """Vectorized memo lookup over an iterable of ``id()`` values.

        One ``fromiter`` + one ``searchsorted`` — no per-item boxed-int dict
        lookups.  Returns ``None`` when any object is not memoized yet (the
        caller falls back to :meth:`fast_ids` on the materialized items).
        """
        if count == 0:
            return []
        keys = self._memo_keys
        if keys is None or not len(keys):
            return None
        obj_ids = np.fromiter(object_ids, dtype=np.int64, count=count)
        table = self._memo_table
        if table is not None:
            cells = (obj_ids - self._memo_base) >> 4
            if bool((cells >= 0).all()) and bool((cells < len(table)).all()):
                vals = table[cells]
                if int(vals.min()) >= 0:
                    return vals.tolist()
            return None
        pos = keys.searchsorted(obj_ids)
        pos[pos == len(keys)] = 0
        if not bool((keys[pos] == obj_ids).all()):
            return None
        return self._memo_vals[pos].tolist()

    def get(self, item) -> Optional[int]:
        """The id of ``item`` or ``None`` when it was never interned."""
        return self._ids.get(item)

    def item_of(self, idx: int):
        """The item with id ``idx``."""
        return self._items[idx]

    @property
    def items(self) -> List:
        """All interned items in id order (live list — do not mutate)."""
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item) -> bool:
        return item in self._ids

    def sort_ranks(self) -> np.ndarray:
        """``ranks[id]`` = position of the item in the sorted item order."""
        if self._ranks is None or len(self._ranks) != len(self._items):
            order = sorted(range(len(self._items)), key=self._items.__getitem__)
            ranks = np.empty(len(self._items), dtype=np.int64)
            ranks[np.asarray(order, dtype=np.int64)] = np.arange(
                len(self._items), dtype=np.int64
            )
            self._ranks = ranks
        return self._ranks


class LinkIndex(ItemIndex):
    """An :class:`ItemIndex` specialised to :class:`DirectedLink` objects."""

    @classmethod
    def from_topology(cls, topology) -> "LinkIndex":
        """Pre-populate the index with every directed link of a topology.

        Links are interned in sorted order so ids coincide with sort ranks.
        """
        return cls(sorted(topology.directed_links()))

    def link_of(self, idx: int) -> DirectedLink:
        """The link with id ``idx``."""
        return self._items[idx]

    @property
    def links(self) -> List[DirectedLink]:
        """All interned links in id order (live list — do not mutate)."""
        return self._items


def _extend_buffer(buf: np.ndarray, used: int, tail: np.ndarray) -> np.ndarray:
    """Append ``tail`` after ``buf[:used]``, growing capacity geometrically.

    Growth reallocates instead of resizing in place, so array views handed out
    by earlier snapshots keep the old buffer alive and never observe the new
    writes; within one buffer, appends only touch ``buf[used:]``.
    """
    need = used + len(tail)
    if need > len(buf):
        grown = np.empty(max(need, 2 * len(buf), 1024), dtype=buf.dtype)
        grown[:used] = buf[:used]
        buf = grown
    buf[used:need] = tail
    return buf


class ArrayVoteTally:
    """A drop-in, array-backed replacement for :class:`~repro.core.votes.VoteTally`.

    Paths are stored as a CSR matrix over a :class:`LinkIndex`: ``cols`` holds
    the interned link ids of every path back to back, ``indptr`` delimits the
    rows (flows), and ``weights`` holds each flow's per-link vote value.  The
    vote tally and the per-link distinct-flow support are an incrementally
    maintained materialized view: each query folds only the rows appended
    since the last query into running accumulators (an unbuffered
    ``np.add.at`` applies the new votes per occurrence, left to right — the
    very fold one ``bincount`` over the whole epoch performs, so the floats
    are bit-identical to a from-scratch build and to the dict engine).
    Mid-epoch queries therefore cost O(rows touched since the last query),
    not O(epoch).
    """

    def __init__(
        self,
        policy: VotePolicy = "inverse_hops",
        index: Optional[LinkIndex] = None,
    ) -> None:
        if policy not in ("inverse_hops", "unit"):
            raise ValueError(f"unknown vote policy {policy!r}")
        self._policy: VotePolicy = policy
        self._index = index if index is not None else LinkIndex()
        self._cols: List[int] = []
        self._indptr: List[int] = [0]
        self._weights: List[float] = []
        self._flow_ids: List[int] = []
        self._retransmissions: List[int] = []
        self._row_by_flow: Optional[Dict[int, int]] = {}
        self._first_seen: List[int] = []  # voted link ids, first-vote order
        self._voted: set = set()
        # The materialized view: numpy mirrors of the accumulation lists plus
        # running vote/support accumulators, advanced past only the rows
        # appended since the last query (watermarks ``_m_rows``/``_m_hops``).
        self._m_rows = 0
        self._m_hops = 0
        self._buf_cols = np.empty(0, dtype=np.int64)
        self._buf_indptr = np.zeros(1, dtype=np.int64)
        self._buf_weights = np.empty(0, dtype=np.float64)
        self._buf_flows = np.empty(0, dtype=np.int64)
        self._buf_retrans = np.empty(0, dtype=np.int64)
        self._votes_m = np.zeros(0, dtype=np.float64)
        self._support_m = np.zeros(0, dtype=np.int64)
        self._invalidate()

    def _invalidate(self) -> None:
        # Drops only the derived views/caches; the incremental fold state
        # (buffers, accumulators, watermarks) survives — that is the point.
        self._arrays: Optional[Tuple[np.ndarray, ...]] = None
        self._items_cache: Optional[List[Tuple[DirectedLink, float]]] = None
        self._rank_cache: Optional[Dict[DirectedLink, int]] = None
        self._contributions_cache: Optional[List[VoteContribution]] = None

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def add_flow(
        self,
        flow_id: int,
        links: Sequence[DirectedLink],
        retransmissions: int = 1,
    ) -> VoteContribution:
        """Record the votes of one flow that suffered retransmissions."""
        if not links:
            raise ValueError("a voting flow must have at least one known link")
        weight = 1.0 if self._policy == "unit" else 1.0 / len(links)
        intern = self._index.intern
        for link in links:
            lid = intern(link)
            self._cols.append(lid)
            if lid not in self._voted:
                self._voted.add(lid)
                self._first_seen.append(lid)
        self._indptr.append(len(self._cols))
        self._weights.append(weight)
        self._row_by_flow[flow_id] = len(self._flow_ids)
        self._flow_ids.append(flow_id)
        self._retransmissions.append(retransmissions)
        self._invalidate()
        return VoteContribution(
            flow_id=flow_id,
            links=tuple(links),
            weight=weight,
            retransmissions=retransmissions,
        )

    def add_discovered_path(self, path: DiscoveredPath) -> VoteContribution:
        """Record the votes of a flow from its discovered (possibly partial) path."""
        return self.add_flow(
            flow_id=path.flow_id,
            links=path.links,
            retransmissions=path.retransmissions,
        )

    def add_discovered_paths(self, paths: Iterable[DiscoveredPath]) -> None:
        """Record votes for many discovered paths."""
        for path in paths:
            self.add_discovered_path(path)

    def add_flows(self, paths: Sequence[DiscoveredPath]) -> None:
        """Record the votes of many flows in one pass (the streaming bulk path).

        State-identical to calling :meth:`add_flow` per path in list order —
        the CSR rows, the first-vote link order (which fixes the vote fold
        order, and therefore every float) and the flow bookkeeping all come
        out the same — but the per-call overhead (contribution objects, cache
        invalidation, interner dispatch) is paid once per batch.  Workloads
        that reuse link objects (the load generator shares one object per
        fabric link) hit the interner's dict once per hop.
        """
        if not isinstance(paths, list):
            paths = list(paths)
        if not paths:
            return
        cols = self._cols
        row = len(self._flow_ids)
        col_start = len(cols)

        # Column-wise extraction: every per-path field is pulled through
        # C-level iterators (map/attrgetter/chain), no Python-level loop.
        links_list = [path.links for path in paths]
        lengths = np.fromiter(map(len, links_list), dtype=np.int64, count=len(paths))
        if lengths.min() == 0:
            raise ValueError("a voting flow must have at least one known link")
        if self._policy == "unit":
            self._weights.extend([1.0] * len(paths))
        else:
            self._weights.extend((1.0 / lengths).tolist())
        self._indptr.extend((np.cumsum(lengths) + col_start).tolist())

        # One flattened hop pass through the index's identity memo: repeat
        # link objects (sources share one object per fabric direction) are
        # resolved by a vectorized searchsorted lookup streaming straight off
        # ``chain`` — no intermediate hop list, no per-hop dict lookups.
        total_hops = int(lengths.sum())
        lids = self._index.lookup_ids(
            map(id, chain.from_iterable(links_list)), total_hops
        )
        if lids is None:  # first sighting of some link object: full intern
            lids = self._index.fast_ids(list(chain.from_iterable(links_list)))
        cols.extend(lids)

        flow_id_list = list(map(operator.attrgetter("flow_id"), paths))
        self._row_by_flow.update(zip(flow_id_list, range(row, row + len(paths))))
        self._flow_ids.extend(flow_id_list)
        self._retransmissions.extend(
            map(operator.attrgetter("retransmissions"), paths)
        )
        voted = self._voted
        if len(voted) != len(self._index):
            # only scan for first votes while unvoted interned links remain;
            # once every known link has voted (the steady state of a
            # long-running stream) the scan can never add anything.
            first_seen_append = self._first_seen.append
            for lid in dict.fromkeys(cols[col_start:]):
                if lid not in voted:
                    voted.add(lid)
                    first_seen_append(lid)
        self._invalidate()

    @classmethod
    def from_arrays(
        cls,
        index: LinkIndex,
        cols: np.ndarray,
        indptr: np.ndarray,
        weights: np.ndarray,
        flow_ids: np.ndarray,
        retransmissions: np.ndarray,
        first_seen: np.ndarray,
        policy: VotePolicy = "inverse_hops",
        votes: Optional[np.ndarray] = None,
        support: Optional[np.ndarray] = None,
    ) -> "ArrayVoteTally":
        """Wrap already-materialized CSR columns as a finished tally.

        The merged-evidence path of the sharded service accumulates one
        epoch's columns in global sequence order as a byproduct of wire
        encoding; this constructor turns them into a tally without replaying
        per-path ``add_flow`` calls.  Bit-identity holds as long as the
        caller provides columns in the same fold order an incremental tally
        would have used: ``cols`` in sequence order (fixes the vote fold and
        ``first_seen``), ``weights = 1.0 / path_length`` (the same double
        division), and integer ``support`` counted over distinct
        ``(row, link)`` pairs.  ``votes``/``support`` may be passed when the
        caller already accumulated them; they are derived otherwise.

        The tally is read-only in spirit: further ``add_flow`` calls are not
        supported (the accumulation lists are replaced by arrays).
        """
        tally = cls(policy=policy, index=index)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        tally._cols = cols  # type: ignore[assignment]
        tally._indptr = indptr  # type: ignore[assignment]
        tally._weights = weights  # type: ignore[assignment]
        tally._flow_ids = np.ascontiguousarray(flow_ids, dtype=np.int64)  # type: ignore[assignment]
        tally._retransmissions = np.ascontiguousarray(  # type: ignore[assignment]
            retransmissions, dtype=np.int64
        )
        tally._first_seen = np.ascontiguousarray(first_seen, dtype=np.int64)  # type: ignore[assignment]
        tally._voted = set(tally._first_seen.tolist())
        tally._row_by_flow = None  # built lazily; analysis never needs it
        n = len(index)
        if votes is None:
            lengths = np.diff(indptr)
            votes = np.bincount(cols, weights=np.repeat(weights, lengths), minlength=n)
        if support is None:
            lengths = np.diff(indptr)
            rows = np.repeat(np.arange(len(weights), dtype=np.int64), lengths)
            pair_keys = np.unique(rows * np.int64(max(n, 1)) + cols)
            support = np.bincount(pair_keys % np.int64(max(n, 1)), minlength=n)
        votes = np.ascontiguousarray(votes, dtype=np.float64)
        support = np.ascontiguousarray(support, dtype=np.int64)
        if len(votes) < n:
            votes = np.concatenate([votes, np.zeros(n - len(votes))])
        if len(support) < n:
            support = np.concatenate(
                [support, np.zeros(n - len(support), dtype=np.int64)]
            )
        tally._arrays = (cols, indptr, weights, votes, support)
        return tally

    def _flow_rows(self) -> Dict[int, int]:
        """The flow-id -> row map, built lazily for array-backed tallies."""
        if self._row_by_flow is None:
            flow_ids = self._flow_ids
            if isinstance(flow_ids, np.ndarray):
                flow_ids = flow_ids.tolist()
            self._row_by_flow = dict(zip(flow_ids, range(len(flow_ids))))
        return self._row_by_flow

    def row_of_flow(self, flow_id: int) -> Optional[int]:
        """Row index of ``flow_id``'s latest contribution (``None`` if unknown)."""
        return self._flow_rows().get(flow_id)

    def bump_rows(self, rows: Sequence[int], extras: Sequence[int]) -> None:
        """Bulk :meth:`bump_retransmissions` by row index.

        One cache invalidation for the whole batch instead of one per flow;
        row indices come from :meth:`row_of_flow`.
        """
        retransmissions = self._retransmissions
        buf = self._buf_retrans
        mirrored = self._m_rows
        for row, extra in zip(rows, extras):
            retransmissions[row] += extra
            if row < mirrored:
                buf[row] += extra
        self._contributions_cache = None

    def bump_retransmissions(self, flow_id: int, extra: int) -> None:
        """Add ``extra`` retransmissions to ``flow_id``'s latest row.

        O(1): votes/weights are untouched (the flow's path is unchanged), so
        only the rebuilt-on-demand contribution view is invalidated, not the
        CSR arrays.  Raises ``KeyError`` for unknown flows.
        """
        row = self._flow_rows()[flow_id]
        self._retransmissions[row] += extra
        if row < self._m_rows:
            self._buf_retrans[row] += extra
        self._contributions_cache = None

    # ------------------------------------------------------------------
    # array views
    # ------------------------------------------------------------------
    def _finalized(self) -> Tuple[np.ndarray, ...]:
        if self._arrays is not None:
            return self._arrays
        if not isinstance(self._cols, list):
            # Array-backed tallies (:meth:`from_arrays`, :meth:`snapshot`) set
            # ``_arrays`` at construction; rebuild from scratch defensively.
            n = len(self._index)
            cols = np.asarray(self._cols, dtype=np.int64)
            indptr = np.asarray(self._indptr, dtype=np.int64)
            weights = np.asarray(self._weights, dtype=np.float64)
            lengths = np.diff(indptr)
            votes = np.bincount(
                cols, weights=np.repeat(weights, lengths), minlength=n
            )
            rows = np.repeat(np.arange(len(weights), dtype=np.int64), lengths)
            pair_keys = np.unique(rows * np.int64(max(n, 1)) + cols)
            support = np.bincount(pair_keys % np.int64(max(n, 1)), minlength=n)
            self._arrays = (cols, indptr, weights, votes, support)
            return self._arrays

        n = len(self._index)
        total_rows = len(self._weights)
        total_hops = len(self._cols)
        if len(self._votes_m) < n:
            # the shared interner grew (new links voted, here or by sibling
            # epochs); new ids carry zero votes/support until folded.
            self._votes_m = np.concatenate(
                [self._votes_m, np.zeros(n - len(self._votes_m))]
            )
            self._support_m = np.concatenate(
                [self._support_m, np.zeros(n - len(self._support_m), dtype=np.int64)]
            )
        if total_rows > self._m_rows:
            tail_cols = np.asarray(self._cols[self._m_hops :], dtype=np.int64)
            tail_weights = np.asarray(self._weights[self._m_rows :], dtype=np.float64)
            tail_bounds = np.asarray(self._indptr[self._m_rows :], dtype=np.int64)
            lengths = np.diff(tail_bounds)
            self._buf_cols = _extend_buffer(self._buf_cols, self._m_hops, tail_cols)
            self._buf_weights = _extend_buffer(
                self._buf_weights, self._m_rows, tail_weights
            )
            self._buf_indptr = _extend_buffer(
                self._buf_indptr, self._m_rows + 1, tail_bounds[1:]
            )
            self._buf_flows = _extend_buffer(
                self._buf_flows,
                self._m_rows,
                np.asarray(self._flow_ids[self._m_rows :], dtype=np.int64),
            )
            self._buf_retrans = _extend_buffer(
                self._buf_retrans,
                self._m_rows,
                np.asarray(self._retransmissions[self._m_rows :], dtype=np.int64),
            )
            # Unbuffered in-place add: the tail's votes land per occurrence,
            # left to right, continuing the accumulator exactly where the
            # previous fold stopped — the same left-to-right double fold one
            # bincount over the whole epoch performs (a chunk-wise partial
            # bincount would reassociate the additions and drift by ULPs).
            np.add.at(
                self._votes_m, tail_cols, np.repeat(tail_weights, lengths)
            )
            # Support is integer-exact in any order: count the distinct
            # (row, link) pairs of the tail rows (each row's hops are folded
            # exactly once, so pairs never repeat across folds).
            rows = np.repeat(
                np.arange(self._m_rows, total_rows, dtype=np.int64), lengths
            )
            pair_keys = np.unique(rows * np.int64(max(n, 1)) + tail_cols)
            self._support_m += np.bincount(
                pair_keys % np.int64(max(n, 1)), minlength=n
            )
            self._m_rows = total_rows
            self._m_hops = total_hops
        self._arrays = (
            self._buf_cols[:total_hops],
            self._buf_indptr[: total_rows + 1],
            self._buf_weights[:total_rows],
            self._votes_m,
            self._support_m,
        )
        return self._arrays

    @property
    def index(self) -> LinkIndex:
        """The link interner backing this tally."""
        return self._index

    def votes_array(self) -> np.ndarray:
        """Votes per link id (length = size of the index at finalize time)."""
        return self._finalized()[3]

    def support_array(self) -> np.ndarray:
        """Distinct voting flows per link id."""
        return self._finalized()[4]

    def path_matrix(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The CSR rows: ``(indptr, cols, weights)``."""
        cols, indptr, weights, _, _ = self._finalized()
        return indptr, cols, weights

    def voted_ids(self) -> np.ndarray:
        """Ids of links with at least one vote, in first-vote order."""
        return np.asarray(self._first_seen, dtype=np.int64)

    def flow_ids_array(self) -> np.ndarray:
        """Flow ids per row (a view of the materialized mirror)."""
        if isinstance(self._flow_ids, list):
            self._finalized()
            return self._buf_flows[: len(self._flow_ids)]
        return np.asarray(self._flow_ids, dtype=np.int64)

    def retransmissions_array(self) -> np.ndarray:
        """Retransmission counts per row (a view of the materialized mirror)."""
        if isinstance(self._retransmissions, list):
            self._finalized()
            return self._buf_retrans[: len(self._retransmissions)]
        return np.asarray(self._retransmissions, dtype=np.int64)

    # ------------------------------------------------------------------
    # queries (the VoteTally API)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> VotePolicy:
        """The vote-value policy in use."""
        return self._policy

    def votes_of(self, link: DirectedLink) -> float:
        """Current vote tally of ``link`` (0 for links never voted for)."""
        lid = self._index.get(link)
        if lid is None or lid not in self._voted:
            return 0.0
        return float(self.votes_array()[lid])

    def support_of(self, link: DirectedLink) -> int:
        """Number of distinct flows that voted for ``link``."""
        lid = self._index.get(link)
        if lid is None or lid not in self._voted:
            return 0
        return int(self.support_array()[lid])

    def total_votes(self) -> float:
        """Sum of all votes cast (same fold order as the dict engine)."""
        votes = self.votes_array()
        return float(sum(votes[self.voted_ids()].tolist()))

    def links(self) -> List[DirectedLink]:
        """Links with at least one vote, sorted."""
        link_of = self._index.link_of
        return sorted(link_of(lid) for lid in self._first_seen)

    def items(self) -> List[Tuple[DirectedLink, float]]:
        """``(link, votes)`` pairs sorted by decreasing votes, ties by link order.

        Ordered by one ``lexsort`` over ``(-votes, sort rank)`` instead of a
        Python tuple sort: the rank array is the links' natural order, so the
        result is the exact list ``sorted(pairs, key=(-votes, link))`` builds,
        without constructing and comparing O(links) tuples.
        """
        if self._items_cache is None:
            votes = self.votes_array()
            ids = self.voted_ids()
            if len(ids):
                ranks = self._index.sort_ranks()
                ordered = ids[np.lexsort((ranks[ids], -votes[ids]))]
                link_of = self._index.link_of
                self._items_cache = list(
                    zip(map(link_of, ordered.tolist()), votes[ordered].tolist())
                )
            else:
                self._items_cache = []
        return list(self._items_cache)

    def as_dict(self) -> Dict[DirectedLink, float]:
        """A copy of the tally, keyed by link in first-vote order."""
        votes = self.votes_array()
        link_of = self._index.link_of
        return {link_of(lid): float(votes[lid]) for lid in self._first_seen}

    @property
    def contributions(self) -> List[VoteContribution]:
        """Per-flow contributions, rebuilt from the CSR rows on demand."""
        if self._contributions_cache is None:
            link_of = self._index.link_of
            out: List[VoteContribution] = []
            for row in range(len(self._weights)):
                start, stop = self._indptr[row], self._indptr[row + 1]
                out.append(
                    VoteContribution(
                        flow_id=self._flow_ids[row],
                        links=tuple(link_of(c) for c in self._cols[start:stop]),
                        weight=self._weights[row],
                        retransmissions=self._retransmissions[row],
                    )
                )
            self._contributions_cache = out
        return list(self._contributions_cache)

    @property
    def num_flows(self) -> int:
        """Number of flows that cast votes."""
        return len(self._weights)

    def top(self, n: int = 1) -> List[Tuple[DirectedLink, float]]:
        """The ``n`` most voted links."""
        return self.items()[:n]

    def max_link(self) -> Optional[DirectedLink]:
        """The single most voted link (``None`` when no votes were cast)."""
        items = self.items()
        return items[0][0] if items else None

    def rank_of(self, link: DirectedLink) -> Optional[int]:
        """1-based rank of ``link`` in :meth:`items` (``None`` when unvoted)."""
        if self._rank_cache is None:
            self._rank_cache = {
                candidate: position
                for position, (candidate, _) in enumerate(self.items(), start=1)
            }
        return self._rank_cache.get(link)

    def copy(self) -> "ArrayVoteTally":
        """A deep copy of the tally sharing the link index (O(total hops))."""
        clone = ArrayVoteTally(policy=self._policy, index=self._index)
        clone._cols = list(self._cols)
        clone._indptr = list(self._indptr)
        clone._weights = list(self._weights)
        clone._flow_ids = list(self._flow_ids)
        clone._retransmissions = list(self._retransmissions)
        clone._row_by_flow = dict(self._flow_rows())
        clone._first_seen = list(self._first_seen)
        clone._voted = set(self._voted)
        return clone

    def snapshot(self) -> "ArrayVoteTally":
        """A frozen point-in-time view for mid-epoch reporting.

        O(rows + links) instead of :meth:`copy`'s O(total hops): the CSR
        mirrors are shared as array views (safe — later ingests append past
        this snapshot's watermark or reallocate, they never write inside it)
        and only the state mutated in place afterwards is copied: votes,
        support, retransmission counts and the voted-link bookkeeping.  The
        snapshot is read-only — analyze it, do not add flows to it.
        """
        cols, indptr, weights, votes, support = self._finalized()
        clone = ArrayVoteTally(policy=self._policy, index=self._index)
        clone._cols = cols  # type: ignore[assignment]
        clone._indptr = indptr  # type: ignore[assignment]
        clone._weights = weights  # type: ignore[assignment]
        clone._flow_ids = self.flow_ids_array()  # type: ignore[assignment]
        clone._retransmissions = self.retransmissions_array().copy()  # type: ignore[assignment]
        clone._row_by_flow = None
        clone._first_seen = np.array(self._first_seen, dtype=np.int64)  # type: ignore[assignment]
        clone._voted = set(self._voted)
        clone._arrays = (cols, indptr, weights, votes.copy(), support.copy())
        return clone


# ----------------------------------------------------------------------
# Algorithm 1 over arrays
# ----------------------------------------------------------------------
def blame_kernel(
    votes: np.ndarray,
    indptr: np.ndarray,
    cols: np.ndarray,
    weights: np.ndarray,
    eligible: np.ndarray,
    sort_ranks: np.ndarray,
    threshold_votes: float,
    config: BlameConfig,
) -> Tuple[List[int], List[float], np.ndarray]:
    """The argmax + masked-discounting loop shared by link and switch blame.

    Returns ``(detected_ids, votes_at_detection, final_votes)``.  The input
    ``votes`` array is not modified.  Discounting walks only the CSR rows that
    contain the blamed id, in row order, so the clamped subtraction sequence —
    and therefore every float — matches the dict engine's contribution scan.
    """
    votes = votes.copy()
    num_items = len(votes)
    num_rows = len(indptr) - 1
    blamed = np.zeros(num_items, dtype=bool)
    alive = np.ones(num_rows, dtype=bool)
    detected: List[int] = []
    votes_at: List[float] = []
    # CSC-style lookup (rows containing a given id, ascending); built lazily
    # on the first detection since most epochs detect nothing.
    sorted_cols: Optional[np.ndarray] = None
    rows_by_col: Optional[np.ndarray] = None

    while len(detected) < config.max_links:
        candidate = eligible & ~blamed
        if not candidate.any():
            break
        masked = np.where(candidate, votes, -np.inf)
        vmax = float(masked.max())
        if vmax < threshold_votes or vmax <= 0.0:
            break
        tied = np.flatnonzero(masked == vmax)
        best = int(tied[np.argmin(sort_ranks[tied])]) if len(tied) > 1 else int(tied[0])
        blamed[best] = True
        detected.append(best)
        votes_at.append(vmax)

        if config.adjustment == "paths":
            if sorted_cols is None:
                lengths = np.diff(indptr)
                row_of_pos = np.repeat(np.arange(num_rows, dtype=np.int64), lengths)
                order = np.argsort(cols, kind="stable")
                sorted_cols = cols[order]
                rows_by_col = row_of_pos[order]
                # The discount walk is a sequential clamped fold per affected
                # link, so it cannot vectorize — but plain Python floats over
                # list views run it ~6x faster than per-row numpy fancy
                # indexing, with the exact same doubles (CPython floats are
                # C doubles, and ``max(0.0, v - w)`` is the dict engine's own
                # expression).  A link repeated within one path is discounted
                # once per occurrence with clamping in between, which the
                # per-occurrence loop does natively.
                indptr_list = indptr.tolist()
                cols_list = cols.tolist()
                weights_list = weights.tolist()
            lo = np.searchsorted(sorted_cols, best, side="left")
            hi = np.searchsorted(sorted_cols, best, side="right")
            votes_list = votes.tolist()
            for row in rows_by_col[lo:hi].tolist():
                if not alive[row]:
                    continue
                weight = weights_list[row]
                for col in cols_list[indptr_list[row] : indptr_list[row + 1]]:
                    if col == best:
                        continue
                    discounted = votes_list[col] - weight
                    votes_list[col] = discounted if discounted > 0.0 else 0.0
                alive[row] = False
            votes = np.asarray(votes_list, dtype=np.float64)
    return detected, votes_at, votes


def find_problematic_links_arrays(
    tally: ArrayVoteTally, config: Optional[BlameConfig] = None
) -> BlameResult:
    """Algorithm 1 over an :class:`ArrayVoteTally` (see :mod:`repro.core.blame`)."""
    config = config or BlameConfig()
    total_votes = tally.total_votes()
    result = BlameResult(threshold_votes=config.threshold_fraction * total_votes)
    if total_votes <= 0.0:
        return result

    votes = tally.votes_array()
    support = tally.support_array()
    indptr, cols, weights = tally.path_matrix()
    eligible = support >= config.min_flow_support
    detected, votes_at, final = blame_kernel(
        votes,
        indptr,
        cols,
        weights,
        eligible,
        tally.index.sort_ranks(),
        result.threshold_votes,
        config,
    )
    link_of = tally.index.link_of
    result.detected_links = [link_of(lid) for lid in detected]
    result.votes_at_detection = {
        link_of(lid): v for lid, v in zip(detected, votes_at)
    }
    result.final_votes = {
        link_of(lid): float(final[lid]) for lid in tally.voted_ids()
    }
    return result


# ----------------------------------------------------------------------
# vectorized ranking, attribution and noise classification
# ----------------------------------------------------------------------
def attribute_flow_causes_arrays(
    tally: ArrayVoteTally, rows: np.ndarray
) -> Dict[int, DirectedLink]:
    """Per-flow culprit attribution for the given rows of the path matrix.

    For each selected flow the most voted link on its own path wins; ties go to
    the smallest link, matching the dict engine's ``max(sorted(links), ...)``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return {}
    indptr, cols, _ = tally.path_matrix()
    votes = tally.votes_array()
    ranks = tally.index.sort_ranks()
    flow_ids = tally.flow_ids_array()

    lengths = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    offsets = np.concatenate(([0], np.cumsum(lengths)))
    # flat positions of every (row, hop) pair of the selected rows
    flat = np.repeat(indptr[rows], lengths) + (
        np.arange(offsets[-1], dtype=np.int64) - np.repeat(offsets[:-1], lengths)
    )
    seg_cols = cols[flat]
    seg_votes = votes[seg_cols]
    seg_max = np.maximum.reduceat(seg_votes, offsets[:-1])
    is_max = seg_votes == np.repeat(seg_max, lengths)
    seg_ranks = np.where(is_max, ranks[seg_cols], np.iinfo(np.int64).max)
    best_rank = np.minimum.reduceat(seg_ranks, offsets[:-1])

    # map the winning rank back to its link id
    rank_to_id = np.empty(len(ranks), dtype=np.int64)
    rank_to_id[ranks] = np.arange(len(ranks), dtype=np.int64)
    best_ids = rank_to_id[best_rank]

    link_of = tally.index.link_of
    return dict(
        zip(flow_ids[rows].tolist(), map(link_of, best_ids.tolist()))
    )


def classify_noise_flows_arrays(
    tally: ArrayVoteTally,
    detected_links: Sequence[DirectedLink],
    max_noise_retransmissions: int = 1,
) -> NoiseClassification:
    """Vectorized twin of :func:`repro.core.noise.classify_noise_flows`."""
    indptr, cols, _ = tally.path_matrix()
    num_rows = len(indptr) - 1
    flow_ids = tally.flow_ids_array()
    retrans = tally.retransmissions_array()

    detected_mask = np.zeros(max(len(tally.index), 1), dtype=bool)
    for link in detected_links:
        lid = tally.index.get(link)
        if lid is not None:
            detected_mask[lid] = True

    if num_rows:
        hit = detected_mask[cols].astype(np.int64)
        touches = np.maximum.reduceat(hit, indptr[:-1]).astype(bool)
    else:
        touches = np.zeros(0, dtype=bool)
    failure = touches | (retrans > max_noise_retransmissions)
    return NoiseClassification(
        noise_flows=frozenset(flow_ids[~failure].tolist()),
        failure_flows=frozenset(flow_ids[failure].tolist()),
    )
