"""The 007 analysis core: voting, ranking, Algorithm 1 and the full pipeline.

The analysis comes in two interchangeable engines — the dict-based reference
and the numpy-backed array engine of :mod:`repro.core.arrays` — selected via
``AnalysisAgent(engine=...)`` / ``SystemConfig.engine``.
"""

from repro.core.votes import VoteContribution, VoteTally
from repro.core.ranking import attribute_flow_causes, rank_links
from repro.core.noise import classify_noise_flows
from repro.core.blame import BlameConfig, BlameResult, find_problematic_links
from repro.core.analysis import AnalysisAgent, EngineKind, EpochReport
from repro.core.arrays import (
    ArrayVoteTally,
    ItemIndex,
    LinkIndex,
    find_problematic_links_arrays,
)
from repro.core.pipeline import SystemConfig, Zero07System
from repro.core.switches import (
    SwitchVoteTally,
    build_switch_tally,
    find_problematic_switches,
    link_tally_to_switch_votes,
)
from repro.core.latency import LatencyDiagnosis, LatencyReport, RttObservation
from repro.core.aggregate import LinkHealthRecord, MultiEpochAggregator

__all__ = [
    "VoteTally",
    "VoteContribution",
    "ArrayVoteTally",
    "ItemIndex",
    "LinkIndex",
    "EngineKind",
    "find_problematic_links_arrays",
    "rank_links",
    "attribute_flow_causes",
    "classify_noise_flows",
    "BlameConfig",
    "BlameResult",
    "find_problematic_links",
    "AnalysisAgent",
    "EpochReport",
    "SystemConfig",
    "Zero07System",
    "SwitchVoteTally",
    "build_switch_tally",
    "find_problematic_switches",
    "link_tally_to_switch_votes",
    "LatencyDiagnosis",
    "LatencyReport",
    "RttObservation",
    "MultiEpochAggregator",
    "LinkHealthRecord",
]
