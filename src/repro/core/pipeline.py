"""The end-to-end 007 system.

:class:`Zero07System` wires every component of Figure 2 together over the
simulated datacenter: the flow-level simulator plays the role of the real
network + ETW, the monitoring agent reacts to retransmissions, the path
discovery agent traces the affected flows within the ICMP budget — and the
evidence streams into an always-on :class:`~repro.api.service.Zero07Service`
*while the epoch runs*, so "which link is bad right now" can be answered
mid-epoch through ``system.service.report(...)``.  ``run_epoch``/``run`` are
thin batch adapters over the service (bit-identical to the historical batch
loop, enforced by the golden-report suite), and :meth:`Zero07System.iter_epochs`
streams ``(EpochResult, EpochReport)`` pairs without accumulating them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.analysis import EngineKind, EpochReport
from repro.core.blame import BlameConfig
from repro.core.votes import VotePolicy
from repro.discovery.agent import PathDiscoveryAgent, PathDiscoveryConfig
from repro.discovery.icmp import IcmpRateLimiter
from repro.discovery.traceroute import TracerouteEngine
from repro.monitoring.agent import TcpMonitoringAgent
from repro.netsim.failures import FailureScenario
from repro.netsim.links import LinkStateTable
from repro.netsim.script import CompiledScenarioScript, ScenarioScript
from repro.netsim.simulator import EpochResult, EpochSimulator, SimulationConfig
from repro.netsim.traffic import TrafficGenerator
from repro.routing.ecmp import EcmpRouter
from repro.slb.loadbalancer import SoftwareLoadBalancer
from repro.theory.theorem1 import traceroute_rate_bound
from repro.topology.clos import ClosTopology
from repro.util.rng import RngLike, ensure_rng, spawn_rng


@dataclass
class SystemConfig:
    """Configuration of the full 007 deployment."""

    epoch_duration_s: float = 30.0
    #: per-switch ICMP response cap (the paper's Tmax).
    tmax_icmp_per_second: int = 100
    #: per-host traceroute rate cap Ct; ``None`` derives it from Theorem 1.
    max_traceroutes_per_host_per_second: Optional[float] = None
    blame: BlameConfig = field(default_factory=BlameConfig)
    vote_policy: VotePolicy = "inverse_hops"
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    #: whether traceroute probes are themselves subject to packet loss.
    traceroute_probe_loss: bool = True
    use_slb: bool = True
    #: analysis engine: ``"arrays"`` (vectorized, default) or ``"dicts"``
    #: (the pure-Python reference; both produce identical reports).
    engine: EngineKind = "arrays"


class Zero07System:
    """007 deployed over a simulated Clos datacenter.

    Parameters
    ----------
    topology:
        The datacenter to monitor.
    traffic:
        The traffic generator driving the simulation.
    link_table:
        Per-link drop state (inject failures into it before running epochs).
    config:
        System configuration; sensible defaults reproduce the paper's setup.
    rng:
        Seed or generator for all stochastic components.
    script:
        Optional :class:`~repro.netsim.script.ScenarioScript` describing a
        time-varying timeline (flaps, bursts, reboots, drains, traffic
        shifts).  The system applies it at the start of every epoch, so the
        failure set — and therefore the ground truth — changes over time.
    sinks:
        Optional :class:`~repro.api.service.ReportSink` observers notified
        with every finalized epoch report (aggregators, scorers, alerting).
    """

    def __init__(
        self,
        topology: ClosTopology,
        traffic: TrafficGenerator,
        link_table: Optional[LinkStateTable] = None,
        config: Optional[SystemConfig] = None,
        rng: RngLike = 0,
        script: Optional[ScenarioScript] = None,
        sinks: Sequence = (),
    ) -> None:
        self._topology = topology
        # Copy the caller's config instead of aliasing it: the constructor
        # derives simulation.epoch_duration_s from epoch_duration_s, and two
        # systems sharing one SimulationConfig instance must not see each
        # other's (or the caller's later) mutations.
        config = config or SystemConfig()
        self._config = replace(
            config,
            simulation=replace(
                config.simulation, epoch_duration_s=config.epoch_duration_s
            ),
        )
        base_rng = ensure_rng(rng)

        self.link_table = link_table or LinkStateTable(topology, rng=spawn_rng(rng, 1))
        self.router = EcmpRouter(topology, rng=spawn_rng(rng, 2))
        self.slb = (
            SoftwareLoadBalancer(rng=spawn_rng(rng, 3)) if self._config.use_slb else None
        )

        self.simulator = EpochSimulator(
            topology=topology,
            router=self.router,
            link_table=self.link_table,
            traffic=traffic,
            slb=self.slb,
            config=self._config.simulation,
            rng=spawn_rng(rng, 4),
        )

        self.icmp_limiter = IcmpRateLimiter(self._config.tmax_icmp_per_second)
        self.icmp_limiter.register_switches(topology.switches)
        self.traceroute_engine = TracerouteEngine(
            router=self.router,
            link_table=self.link_table,
            icmp_limiter=self.icmp_limiter,
            probe_loss=self._config.traceroute_probe_loss,
            rng=spawn_rng(rng, 5),
        )

        ct = self._config.max_traceroutes_per_host_per_second
        if ct is None:
            ct = traceroute_rate_bound(
                topology.params, tmax=self._config.tmax_icmp_per_second
            )
        self.path_discovery = PathDiscoveryAgent(
            traceroute=self.traceroute_engine,
            slb=self.slb,
            config=PathDiscoveryConfig(
                max_traceroutes_per_host_per_second=max(1.0, ct),
                epoch_duration_s=self._config.epoch_duration_s,
            ),
        )
        self.monitoring = TcpMonitoringAgent(self.path_discovery)
        self.simulator.subscribe(self.monitoring.handle_event)

        # The always-on analysis service: monitoring evidence streams into it
        # while the epoch runs (via the hook bridge below), run_epoch merely
        # ticks the epoch closed and picks up the finalized report.  Imported
        # lazily — repro.api sits above repro.core in the layering.
        from repro.api.service import Zero07Service
        from repro.api.sources import MonitoringEvidenceStream

        self.service = Zero07Service(
            blame_config=self._config.blame,
            vote_policy=self._config.vote_policy,
            engine=self._config.engine,
            sinks=sinks,
        )
        self._evidence_stream = MonitoringEvidenceStream(self.monitoring, self.service)
        #: the agent reports are materialized with (kept for back-compat).
        self.analysis = self.service.agent
        self._base_rng = base_rng

        # The compiled timeline (if any) and the per-epoch ground truth.  The
        # compile rng is forked from the system seed, so both analysis engines
        # resolve a script to the exact same concrete timeline.
        self._script: Optional[CompiledScenarioScript] = (
            script.compile(
                topology, self.link_table, router=self.router, rng=spawn_rng(rng, 6)
            )
            if script is not None
            else None
        )
        self._truth_by_epoch: dict[int, FailureScenario] = {}

    # ------------------------------------------------------------------
    @property
    def topology(self) -> ClosTopology:
        """The monitored topology."""
        return self._topology

    @property
    def config(self) -> SystemConfig:
        """The system configuration."""
        return self._config

    @property
    def script(self) -> Optional[CompiledScenarioScript]:
        """The compiled scenario timeline driving the epochs (``None`` if static)."""
        return self._script

    # ------------------------------------------------------------------
    def ground_truth(self, epoch: int) -> FailureScenario:
        """The failure ground truth that was live while ``epoch`` ran.

        Recorded at the start of every simulated epoch — *after* the scenario
        script's events for that epoch were applied — so it reflects exactly
        the failure set the epoch's flows experienced (static injections plus
        whatever transients were active).
        """
        try:
            return self._truth_by_epoch[epoch]
        except KeyError:
            raise KeyError(f"epoch {epoch} has not been simulated yet") from None

    @property
    def truth_by_epoch(self) -> dict:
        """All recorded per-epoch ground truths (epoch -> FailureScenario)."""
        return dict(self._truth_by_epoch)

    def _snapshot_truth(self) -> FailureScenario:
        """The current failure ground truth, read straight off the link table."""
        bad = sorted(self.link_table.failed_links)
        return FailureScenario(
            bad_links=bad,
            drop_rates={link: self.link_table.drop_probability(link) for link in bad},
        )

    # ------------------------------------------------------------------
    def run_epoch(self, epoch: int) -> Tuple[EpochResult, EpochReport]:
        """Simulate one epoch and analyse it; returns (simulation, 007 report).

        A thin adapter over the streaming service: the epoch's evidence
        already flowed into :attr:`service` during simulation; this merely
        ticks the epoch closed and returns the finalized report —
        bit-identical to the historical batch loop.
        """
        # epoch rollover: per-epoch observability counters start fresh, so
        # one long-lived system object reports per-epoch (not all-time) stats.
        self.monitoring.stats.reset()
        self.path_discovery.stats.reset()

        if self._script is not None:
            new_traffic = self._script.traffic_for_epoch(
                epoch, current=self.simulator.traffic
            )
            if new_traffic is not None:
                self.simulator.set_traffic(new_traffic)
            self._script.apply_epoch(epoch)
        self._truth_by_epoch[epoch] = self._snapshot_truth()
        self.path_discovery.new_epoch(epoch)
        sim_result = self.simulator.run_epoch(epoch)
        last_finalized = self.service.last_finalized_epoch
        if last_finalized is not None and epoch <= last_finalized:
            # replaying an epoch the service already closed (the streamed
            # evidence was dropped as late): recompute out-of-band, exactly
            # like the legacy batch loop, so the returned report always
            # matches this run's simulation.
            paths = self.monitoring.paths_for_epoch(epoch)
            report = self.analysis.analyze_epoch(epoch, paths)
        else:
            report = self.service.advance_epoch(epoch)
        self.monitoring.clear_epoch(epoch)
        self._evidence_stream.epoch_done(epoch)
        return sim_result, report

    def iter_epochs(
        self, num_epochs: int, start_epoch: int = 0
    ) -> Iterator[Tuple[EpochResult, EpochReport]]:
        """Stream consecutive epochs without accumulating their results.

        Long (dynamic) scenarios should iterate this generator instead of
        calling :meth:`run`: each ``(EpochResult, EpochReport)`` pair is
        yielded as soon as its epoch finalizes and can be dropped by the
        consumer.  The heavyweight per-epoch state (simulation results with
        every flow, evidence buffers, reports beyond the service's retention
        window) is released as the run streams; only the small per-epoch
        ground-truth snapshots (the failed-link sets behind
        :meth:`ground_truth`) are retained for post-hoc scoring.
        """
        for i in range(num_epochs):
            yield self.run_epoch(start_epoch + i)

    def run(self, num_epochs: int, start_epoch: int = 0) -> List[Tuple[EpochResult, EpochReport]]:
        """Run several consecutive epochs (materialized; see :meth:`iter_epochs`)."""
        return list(self.iter_epochs(num_epochs, start_epoch=start_epoch))
