"""Multi-epoch aggregation of 007 reports.

Section 8.3 reports day-long aggregates: how many links are flagged per
epoch on average, which links recur, and how detections break down by link
location (server-ToR vs ToR-T1 vs T1-T2).  The aggregator consumes the
per-epoch :class:`~repro.core.analysis.EpochReport`s the pipeline already
produces and maintains exactly those summaries, giving operators the
"heat map over time" view the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.analysis import EpochReport
from repro.topology.elements import DirectedLink, LinkLevel
from repro.topology.topology import Topology


@dataclass
class LinkHealthRecord:
    """Everything the aggregator knows about one link across epochs."""

    link: DirectedLink
    epochs_detected: int = 0
    epochs_voted: int = 0
    total_votes: float = 0.0
    max_votes: float = 0.0
    last_detected_epoch: Optional[int] = None

    @property
    def mean_votes_when_voted(self) -> float:
        """Average votes over the epochs in which the link received any."""
        return self.total_votes / self.epochs_voted if self.epochs_voted else 0.0


class MultiEpochAggregator:
    """Accumulates epoch reports into link-health and fleet-wide summaries."""

    def __init__(self, topology: Optional[Topology] = None) -> None:
        self._topology = topology
        self._records: Dict[DirectedLink, LinkHealthRecord] = {}
        self._detections_per_epoch: List[int] = []
        self._max_votes_per_epoch: List[float] = []
        self._epochs_seen: List[int] = []

    # ------------------------------------------------------------------
    def ingest(self, report: EpochReport) -> None:
        """Fold one epoch's report into the running aggregates."""
        self._epochs_seen.append(report.epoch)
        self._detections_per_epoch.append(len(report.detected_links))
        top_votes = report.ranked_links[0][1] if report.ranked_links else 0.0
        self._max_votes_per_epoch.append(top_votes)

        for link, votes in report.ranked_links:
            record = self._records.setdefault(link, LinkHealthRecord(link=link))
            record.epochs_voted += 1
            record.total_votes += votes
            record.max_votes = max(record.max_votes, votes)
        for link in report.detected_links:
            record = self._records.setdefault(link, LinkHealthRecord(link=link))
            record.epochs_detected += 1
            record.last_detected_epoch = report.epoch

    def ingest_many(self, reports: List[EpochReport]) -> None:
        """Fold several epoch reports in order."""
        for report in reports:
            self.ingest(report)

    # ------------------------------------------------------------------
    @property
    def epochs_ingested(self) -> int:
        """Number of epochs aggregated so far."""
        return len(self._epochs_seen)

    def record_of(self, link: DirectedLink) -> Optional[LinkHealthRecord]:
        """The health record of one link (``None`` if it never received votes)."""
        return self._records.get(link)

    def recurrent_offenders(self, min_epochs_detected: int = 2) -> List[LinkHealthRecord]:
        """Links detected in at least ``min_epochs_detected`` epochs, worst first.

        Recurrence across epochs is the paper's cue that an intervention
        (reboot / replace) is worth its cost.
        """
        offenders = [
            r for r in self._records.values() if r.epochs_detected >= min_epochs_detected
        ]
        return sorted(offenders, key=lambda r: (-r.epochs_detected, -r.total_votes))

    def detections_per_epoch(self) -> Tuple[float, float]:
        """Mean and standard deviation of links flagged per epoch (Section 8.3)."""
        if not self._detections_per_epoch:
            return 0.0, 0.0
        return (
            float(np.mean(self._detections_per_epoch)),
            float(np.std(self._detections_per_epoch)),
        )

    def max_votes_per_epoch(self) -> Tuple[float, float]:
        """Mean and standard deviation of the per-epoch maximum vote tally."""
        if not self._max_votes_per_epoch:
            return 0.0, 0.0
        return (
            float(np.mean(self._max_votes_per_epoch)),
            float(np.std(self._max_votes_per_epoch)),
        )

    def detection_breakdown_by_level(self) -> Dict[str, float]:
        """Share of detection events per link level (needs a topology).

        Matches the Section 8.3 breakdown (48% server-ToR, 24% ToR-T1, ...);
        the shares are over detection *events* (link-epochs), not unique links.
        """
        if self._topology is None:
            raise ValueError("a topology is required for the level breakdown")
        counts: Dict[str, int] = {}
        total = 0
        for record in self._records.values():
            if record.epochs_detected == 0:
                continue
            level = self._topology.link_level(record.link)
            label = {
                LinkLevel.HOST: "server-ToR",
                LinkLevel.LEVEL1: "ToR-T1",
                LinkLevel.LEVEL2: "T1-T2",
                LinkLevel.LEVEL3: "T2-T3",
            }[level]
            counts[label] = counts.get(label, 0) + record.epochs_detected
            total += record.epochs_detected
        if total == 0:
            return {}
        return {label: count / total for label, count in counts.items()}
