"""Multi-epoch aggregation of 007 reports.

Section 8.3 reports day-long aggregates: how many links are flagged per
epoch on average, which links recur, and how detections break down by link
location (server-ToR vs ToR-T1 vs T1-T2).  The aggregator consumes the
per-epoch :class:`~repro.core.analysis.EpochReport`s the pipeline already
produces and maintains exactly those summaries, giving operators the
"heat map over time" view the paper describes.

Internally the aggregator interns links into its own
:class:`~repro.core.arrays.LinkIndex` and keeps every per-link statistic in a
dense array.  Reports from the array engine are folded in with pure vector
operations (their voted ids are translated to the aggregator's ids through a
cached per-index table); dict-engine reports fall back to a per-link loop over
``ranked_links``.  Either way the accumulated floats are identical, because
per-link additions happen in the same epoch order.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.analysis import EpochReport
from repro.core.arrays import LinkIndex
from repro.netsim.failures import FailureScenario
from repro.topology.elements import DirectedLink, LinkLevel
from repro.topology.topology import Topology


@dataclass
class LinkHealthRecord:
    """Everything the aggregator knows about one link across epochs."""

    link: DirectedLink
    epochs_detected: int = 0
    epochs_voted: int = 0
    total_votes: float = 0.0
    max_votes: float = 0.0
    last_detected_epoch: Optional[int] = None
    #: ground-truth columns, filled only when per-epoch truth is ingested.
    epochs_bad: int = 0
    true_detections: int = 0
    false_detections: int = 0

    @property
    def mean_votes_when_voted(self) -> float:
        """Average votes over the epochs in which the link received any."""
        return self.total_votes / self.epochs_voted if self.epochs_voted else 0.0


class MultiEpochAggregator:
    """Accumulates epoch reports into link-health and fleet-wide summaries.

    The aggregator is also a :class:`~repro.api.service.ReportSink`: attach
    it to a streaming service (``Zero07Service(sinks=[aggregator])`` or
    ``run_scenario(config, sinks=[aggregator])``) and every finalized epoch
    report is folded in as it is produced.  Supply ``truth_lookup`` (epoch ->
    :class:`FailureScenario`) to maintain the truth-aware columns in
    streaming mode too.
    """

    def __init__(
        self,
        topology: Optional[Topology] = None,
        link_index: Optional[LinkIndex] = None,
        truth_lookup: Optional[Callable[[int], Optional[FailureScenario]]] = None,
    ) -> None:
        self._topology = topology
        self._truth_lookup = truth_lookup
        self._index = link_index if link_index is not None else LinkIndex()
        self._detections_per_epoch: List[int] = []
        self._max_votes_per_epoch: List[float] = []
        self._epochs_seen: List[int] = []
        # per-link-id statistics, grown on demand to the index size
        self._epochs_voted = np.zeros(len(self._index), dtype=np.int64)
        self._epochs_detected = np.zeros(len(self._index), dtype=np.int64)
        self._total_votes = np.zeros(len(self._index), dtype=np.float64)
        self._max_votes = np.zeros(len(self._index), dtype=np.float64)
        self._last_detected = np.zeros(len(self._index), dtype=np.int64)
        # ground-truth columns (filled only when truth is supplied to ingest)
        self._epochs_bad = np.zeros(len(self._index), dtype=np.int64)
        self._true_detections = np.zeros(len(self._index), dtype=np.int64)
        self._false_detections = np.zeros(len(self._index), dtype=np.int64)
        self._epochs_with_truth = 0
        # translation tables from a foreign LinkIndex to this aggregator's
        # ids; weak keys so dead per-epoch indexes are not retained forever.
        self._translations: "weakref.WeakKeyDictionary[LinkIndex, np.ndarray]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------
    def _grow(self) -> None:
        extra = len(self._index) - len(self._epochs_voted)
        if extra <= 0:
            return
        self._epochs_voted = np.concatenate(
            [self._epochs_voted, np.zeros(extra, dtype=np.int64)]
        )
        self._epochs_detected = np.concatenate(
            [self._epochs_detected, np.zeros(extra, dtype=np.int64)]
        )
        self._total_votes = np.concatenate(
            [self._total_votes, np.zeros(extra, dtype=np.float64)]
        )
        self._max_votes = np.concatenate(
            [self._max_votes, np.zeros(extra, dtype=np.float64)]
        )
        self._last_detected = np.concatenate(
            [self._last_detected, np.zeros(extra, dtype=np.int64)]
        )
        self._epochs_bad = np.concatenate(
            [self._epochs_bad, np.zeros(extra, dtype=np.int64)]
        )
        self._true_detections = np.concatenate(
            [self._true_detections, np.zeros(extra, dtype=np.int64)]
        )
        self._false_detections = np.concatenate(
            [self._false_detections, np.zeros(extra, dtype=np.int64)]
        )

    def _translate(self, foreign: LinkIndex) -> np.ndarray:
        """Table mapping foreign link ids to this aggregator's ids."""
        if foreign is self._index:
            self._grow()
            return np.arange(len(self._index), dtype=np.int64)
        table = self._translations.get(foreign)
        if table is None:
            table = np.zeros(0, dtype=np.int64)
        if len(table) < len(foreign):
            new_ids = [
                self._index.intern(link) for link in foreign.links[len(table) :]
            ]
            table = np.concatenate([table, np.asarray(new_ids, dtype=np.int64)])
            self._translations[foreign] = table
            self._grow()
        return table

    # ------------------------------------------------------------------
    def ingest(self, report: EpochReport, truth: Optional[FailureScenario] = None) -> None:
        """Fold one epoch's report into the running aggregates.

        Pass the epoch's ground-truth :class:`FailureScenario` (as recorded by
        :meth:`Zero07System.ground_truth` / ``ScenarioResult.truth_by_epoch``)
        to additionally maintain truth-aware columns: per-link bad-epoch
        counts and true/false detection-event splits.  With time-varying
        scenarios the truth differs per epoch, which is exactly what these
        columns account for.
        """
        self._epochs_seen.append(report.epoch)
        self._detections_per_epoch.append(len(report.detected_links))
        top_votes = report.ranked_links[0][1] if report.ranked_links else 0.0
        self._max_votes_per_epoch.append(top_votes)

        tally = report.tally
        if hasattr(tally, "voted_ids"):
            table = self._translate(tally.index)
            voted = tally.voted_ids()
            ids = table[voted]
            votes = tally.votes_array()[voted]
            self._epochs_voted[ids] += 1
            self._total_votes[ids] += votes
            self._max_votes[ids] = np.maximum(self._max_votes[ids], votes)
        else:
            voted_ids = [self._index.intern(link) for link, _ in report.ranked_links]
            self._grow()
            for idx, (_, votes) in zip(voted_ids, report.ranked_links):
                self._epochs_voted[idx] += 1
                self._total_votes[idx] += votes
                self._max_votes[idx] = max(self._max_votes[idx], votes)
        detected_ids = [self._index.intern(link) for link in report.detected_links]
        self._grow()
        for idx in detected_ids:
            self._epochs_detected[idx] += 1
            self._last_detected[idx] = report.epoch

        if truth is not None:
            self._epochs_with_truth += 1
            bad_ids = {self._index.intern(link) for link in truth.bad_links}
            self._grow()
            for idx in bad_ids:
                self._epochs_bad[idx] += 1
            for idx in detected_ids:
                if idx in bad_ids:
                    self._true_detections[idx] += 1
                else:
                    self._false_detections[idx] += 1

    def on_report(self, report: EpochReport) -> None:
        """:class:`ReportSink` hook: fold in one finalized epoch report.

        Truth columns are maintained when a ``truth_lookup`` was supplied at
        construction (it is consulted with the report's epoch).
        """
        truth = self._truth_lookup(report.epoch) if self._truth_lookup else None
        self.ingest(report, truth=truth)

    def ingest_many(
        self,
        reports: List[EpochReport],
        truths: Optional[List[FailureScenario]] = None,
    ) -> None:
        """Fold several epoch reports (and optional per-epoch truths) in order."""
        if truths is not None and len(truths) != len(reports):
            raise ValueError(
                f"got {len(reports)} reports but {len(truths)} truth scenarios"
            )
        for i, report in enumerate(reports):
            self.ingest(report, truth=truths[i] if truths is not None else None)

    # ------------------------------------------------------------------
    @property
    def epochs_ingested(self) -> int:
        """Number of epochs aggregated so far."""
        return len(self._epochs_seen)

    def _record_at(self, idx: int) -> LinkHealthRecord:
        detected = int(self._epochs_detected[idx])
        return LinkHealthRecord(
            link=self._index.link_of(idx),
            epochs_detected=detected,
            epochs_voted=int(self._epochs_voted[idx]),
            total_votes=float(self._total_votes[idx]),
            max_votes=float(self._max_votes[idx]),
            last_detected_epoch=int(self._last_detected[idx]) if detected else None,
            epochs_bad=int(self._epochs_bad[idx]),
            true_detections=int(self._true_detections[idx]),
            false_detections=int(self._false_detections[idx]),
        )

    def record_of(self, link: DirectedLink) -> Optional[LinkHealthRecord]:
        """The health record of one link (``None`` if it was never seen)."""
        idx = self._index.get(link)
        if idx is None or idx >= len(self._epochs_voted):
            return None
        if self._epochs_voted[idx] == 0 and self._epochs_detected[idx] == 0:
            return None
        return self._record_at(idx)

    def recurrent_offenders(self, min_epochs_detected: int = 2) -> List[LinkHealthRecord]:
        """Links detected in at least ``min_epochs_detected`` epochs, worst first.

        Recurrence across epochs is the paper's cue that an intervention
        (reboot / replace) is worth its cost.
        """
        offenders = [
            self._record_at(int(idx))
            for idx in np.flatnonzero(self._epochs_detected >= min_epochs_detected)
        ]
        return sorted(offenders, key=lambda r: (-r.epochs_detected, -r.total_votes))

    @property
    def epochs_with_truth(self) -> int:
        """Number of ingested epochs that carried ground truth."""
        return self._epochs_with_truth

    def detection_event_counts(self) -> Tuple[int, int]:
        """(true, false) detection events over the truth-carrying epochs."""
        return int(self._true_detections.sum()), int(self._false_detections.sum())

    def false_alarm_fraction(self) -> float:
        """Share of detection events naming a link that was not bad that epoch.

        Only meaningful when per-epoch truth was ingested; ``nan`` when no
        truth-scored detection events exist yet.
        """
        true_events, false_events = self.detection_event_counts()
        total = true_events + false_events
        if total == 0:
            return float("nan")
        return false_events / total

    def detections_per_epoch(self) -> Tuple[float, float]:
        """Mean and standard deviation of links flagged per epoch (Section 8.3)."""
        if not self._detections_per_epoch:
            return 0.0, 0.0
        return (
            float(np.mean(self._detections_per_epoch)),
            float(np.std(self._detections_per_epoch)),
        )

    def max_votes_per_epoch(self) -> Tuple[float, float]:
        """Mean and standard deviation of the per-epoch maximum vote tally."""
        if not self._max_votes_per_epoch:
            return 0.0, 0.0
        return (
            float(np.mean(self._max_votes_per_epoch)),
            float(np.std(self._max_votes_per_epoch)),
        )

    def detection_breakdown_by_level(self) -> Dict[str, float]:
        """Share of detection events per link level (needs a topology).

        Matches the Section 8.3 breakdown (48% server-ToR, 24% ToR-T1, ...);
        the shares are over detection *events* (link-epochs), not unique links.
        """
        if self._topology is None:
            raise ValueError("a topology is required for the level breakdown")
        counts: Dict[str, int] = {}
        total = 0
        for idx in np.flatnonzero(self._epochs_detected > 0):
            detected = int(self._epochs_detected[idx])
            level = self._topology.link_level(self._index.link_of(int(idx)))
            label = {
                LinkLevel.HOST: "server-ToR",
                LinkLevel.LEVEL1: "ToR-T1",
                LinkLevel.LEVEL2: "T1-T2",
                LinkLevel.LEVEL3: "T2-T3",
            }[level]
            counts[label] = counts.get(label, 0) + detected
            total += detected
        if total == 0:
            return {}
        return {label: count / total for label, count in counts.items()}
