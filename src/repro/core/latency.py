"""Latency diagnosis: the Section 9.2 extension of 007.

ETW exposes TCP's smoothed RTT estimate on every ACK; thresholding those
estimates marks flows as "slow", and the very same voting scheme then ranks
the links most likely responsible for the added delay.  The module reuses
:class:`~repro.core.votes.VoteTally` and Algorithm 1 unchanged — only the
definition of a "failed" flow differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.blame import BlameConfig, BlameResult, find_problematic_links
from repro.core.ranking import rank_links
from repro.core.votes import VoteTally
from repro.routing.paths import Path
from repro.topology.elements import DirectedLink


@dataclass(frozen=True)
class RttObservation:
    """One flow's smoothed RTT for an epoch, along with its (discovered) path."""

    flow_id: int
    srtt_us: float
    links: Tuple[DirectedLink, ...]

    @staticmethod
    def from_path(flow_id: int, srtt_us: float, path: Path) -> "RttObservation":
        """Convenience constructor from a full :class:`Path`."""
        return RttObservation(flow_id=flow_id, srtt_us=srtt_us, links=tuple(path.links))


@dataclass
class LatencyReport:
    """Output of the latency-diagnosis pass for one epoch."""

    threshold_us: float
    slow_flows: List[int]
    tally: VoteTally
    ranked_links: List[Tuple[DirectedLink, float]]
    blame: BlameResult

    @property
    def suspect_links(self) -> List[DirectedLink]:
        """Links flagged as the likely cause of the added latency."""
        return list(self.blame.detected_links)


class LatencyDiagnosis:
    """Thresholds smoothed RTTs and votes on the paths of slow flows.

    Parameters
    ----------
    threshold_us:
        Absolute SRTT threshold; flows above it are "slow".  When ``None``,
        the threshold is derived per epoch as ``baseline_multiplier`` times
        the median SRTT (a robust self-calibrating default).
    baseline_multiplier:
        Multiplier applied to the median when deriving the threshold.
    blame_config:
        Algorithm 1 configuration used to flag suspect links.
    """

    def __init__(
        self,
        threshold_us: Optional[float] = None,
        baseline_multiplier: float = 2.0,
        blame_config: Optional[BlameConfig] = None,
    ) -> None:
        if threshold_us is not None and threshold_us <= 0:
            raise ValueError("threshold_us must be positive")
        if baseline_multiplier <= 1.0:
            raise ValueError("baseline_multiplier must be > 1")
        self._threshold_us = threshold_us
        self._baseline_multiplier = baseline_multiplier
        self._blame_config = blame_config or BlameConfig()

    # ------------------------------------------------------------------
    def threshold_for(self, observations: Sequence[RttObservation]) -> float:
        """The SRTT threshold used for a set of observations."""
        if self._threshold_us is not None:
            return self._threshold_us
        if not observations:
            return float("inf")
        srtts = sorted(obs.srtt_us for obs in observations)
        median = srtts[len(srtts) // 2]
        return self._baseline_multiplier * median

    def analyze(self, observations: Sequence[RttObservation]) -> LatencyReport:
        """Classify slow flows and rank the links suspected of adding latency."""
        threshold = self.threshold_for(observations)
        tally = VoteTally()
        slow: List[int] = []
        for obs in observations:
            if obs.srtt_us > threshold and obs.links:
                slow.append(obs.flow_id)
                tally.add_flow(obs.flow_id, list(obs.links))
        blame = find_problematic_links(tally, self._blame_config)
        return LatencyReport(
            threshold_us=threshold,
            slow_flows=slow,
            tally=tally,
            ranked_links=rank_links(tally),
            blame=blame,
        )
