"""Algorithm 1: finding the most problematic links in the network.

The algorithm repeatedly picks the most voted link ``lmax``; as long as its
tally is at least a threshold fraction (1% by default, chosen by the paper via
a precision/recall parameter sweep) of the total votes cast, ``lmax`` is
declared problematic.  The votes other links received *because they shared
failed flows with* ``lmax`` are then discounted — assume every flow with
retransmissions through ``lmax`` was dropped by ``lmax`` and remove the votes
those flows contributed elsewhere — and the loop repeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Set, Tuple

from repro.core.votes import VoteContribution, VoteTally
from repro.topology.elements import DirectedLink

AdjustmentPolicy = Literal["paths", "none"]


@dataclass(frozen=True)
class BlameConfig:
    """Tunables of Algorithm 1."""

    #: a link is problematic while its votes are at least this fraction of the
    #: total votes cast in the epoch (the paper uses 1%).
    threshold_fraction: float = 0.01
    #: how to discount votes caused by an already-blamed link:
    #: ``"paths"`` (the paper's scheme — reassign the shared flows to the
    #: blamed link) or ``"none"`` (no adjustment; ablation).
    adjustment: AdjustmentPolicy = "paths"
    #: a link must have been voted for by at least this many distinct flows to
    #: be flagged.  The paper's deployments see thousands of voting flows per
    #: epoch, so a single lone drop is far below the 1% threshold; at the
    #: smaller scale of simulations this guard plays the same role of keeping
    #: "occasional, lone, sporadic drops" from being flagged.
    min_flow_support: int = 2
    #: hard cap on iterations (safety net; the vote mass shrinks every round).
    max_links: int = 1000

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold_fraction < 1.0:
            raise ValueError("threshold_fraction must be in (0, 1)")
        if self.adjustment not in ("paths", "none"):
            raise ValueError(f"unknown adjustment policy {self.adjustment!r}")
        if self.min_flow_support < 1:
            raise ValueError("min_flow_support must be >= 1")
        if self.max_links < 1:
            raise ValueError("max_links must be >= 1")


@dataclass
class BlameResult:
    """Output of Algorithm 1."""

    detected_links: List[DirectedLink] = field(default_factory=list)
    #: votes each detected link had at the moment it was picked.
    votes_at_detection: Dict[DirectedLink, float] = field(default_factory=dict)
    #: the threshold (in votes) used for the stop condition.
    threshold_votes: float = 0.0
    #: remaining adjusted tally when the algorithm stopped.
    final_votes: Dict[DirectedLink, float] = field(default_factory=dict)
    #: membership cache for ``in`` checks; invalidated when detected_links
    #: grows or is rebound.  (In-place same-length element replacement is not
    #: detected — detected_links is treated as append-only or replaced whole.)
    _detected_set: Optional[frozenset] = field(
        default=None, init=False, repr=False, compare=False
    )
    _detected_set_key: Optional[Tuple[int, int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_detected(self) -> int:
        """Number of links flagged as problematic."""
        return len(self.detected_links)

    def __contains__(self, link: DirectedLink) -> bool:
        key = (id(self.detected_links), len(self.detected_links))
        if self._detected_set is None or self._detected_set_key != key:
            self._detected_set = frozenset(self.detected_links)
            self._detected_set_key = key
        return link in self._detected_set


def find_problematic_links(
    tally: VoteTally, config: Optional[BlameConfig] = None
) -> BlameResult:
    """Run Algorithm 1 over an epoch's vote tally.

    The input tally is not modified; the adjustment operates on working
    copies of the vote counts.  Array-backed tallies
    (:class:`~repro.core.arrays.ArrayVoteTally`) are dispatched to the
    vectorized kernel, which produces bit-identical results.
    """
    config = config or BlameConfig()
    if hasattr(tally, "votes_array"):
        from repro.core.arrays import find_problematic_links_arrays

        return find_problematic_links_arrays(tally, config)
    total_votes = tally.total_votes()
    result = BlameResult(threshold_votes=config.threshold_fraction * total_votes)
    if total_votes <= 0.0:
        return result

    votes: Dict[DirectedLink, float] = tally.as_dict()
    remaining: List[VoteContribution] = list(tally.contributions)
    blamed: Set[DirectedLink] = set()
    # one O(total hops) pass for every link's support — per-link support_of()
    # scans would make eligibility O(links x flows), the dominant cost at
    # production scale.
    support = tally.support_map()
    eligible = {
        link
        for link in votes
        if support.get(link, 0) >= config.min_flow_support
    }

    while len(result.detected_links) < config.max_links:
        candidates = [
            (link, v) for link, v in votes.items() if link not in blamed and link in eligible
        ]
        if not candidates:
            break
        # deterministic tie-break: highest votes, then smallest link
        best = max(v for _, v in candidates)
        tied = sorted(link for link, v in candidates if v == best)
        lmax, vmax = tied[0], best
        if vmax < result.threshold_votes or vmax <= 0.0:
            break
        blamed.add(lmax)
        result.detected_links.append(lmax)
        result.votes_at_detection[lmax] = vmax

        if config.adjustment == "paths":
            remaining = _discount_flows_through(votes, remaining, lmax)

    result.final_votes = dict(votes)
    return result


def _discount_flows_through(
    votes: Dict[DirectedLink, float],
    contributions: List[VoteContribution],
    blamed_link: DirectedLink,
) -> List[VoteContribution]:
    """Attribute every remaining flow through ``blamed_link`` to it.

    The votes such flows contributed to *other* links are removed from the
    working tally; the flows themselves are removed from the remaining pool so
    later iterations do not discount them twice.  Returns the surviving
    contributions.
    """
    survivors: List[VoteContribution] = []
    for contribution in contributions:
        if blamed_link not in contribution.links:
            survivors.append(contribution)
            continue
        for link in contribution.links:
            if link == blamed_link:
                continue
            votes[link] = max(0.0, votes.get(link, 0.0) - contribution.weight)
    return survivors
