"""Noise classification.

Occasional, lone, sporadic drops happen on perfectly healthy links.  007
first separates flows whose drops look like such noise from flows whose drops
are explained by a failing link, and only reports causes for the latter
("failure drops", Section 6).

From the end host's perspective the ground truth ("did the dropping link drop
only a single packet?") is unknown, so the classifier uses the tally: a flow
is a *noise drop* when it saw a single retransmission and none of its links is
among the detected problematic links (equivalently, none of its links carries
a vote share above the detection threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from repro.core.votes import VoteTally
from repro.discovery.agent import DiscoveredPath
from repro.topology.elements import DirectedLink


@dataclass(frozen=True)
class NoiseClassification:
    """Flows split into noise drops and failure drops."""

    noise_flows: frozenset[int]
    failure_flows: frozenset[int]

    @property
    def num_noise(self) -> int:
        """Number of flows classified as noise drops."""
        return len(self.noise_flows)

    @property
    def num_failure(self) -> int:
        """Number of flows classified as failure drops."""
        return len(self.failure_flows)


def classify_noise_flows(
    paths: Iterable[DiscoveredPath],
    detected_links: Sequence[DirectedLink],
    max_noise_retransmissions: int = 1,
) -> NoiseClassification:
    """Split flows into noise drops and failure drops.

    Parameters
    ----------
    paths:
        The discovered paths of flows with retransmissions.
    detected_links:
        The problematic links found by Algorithm 1 for the same epoch.
    max_noise_retransmissions:
        A flow with more retransmissions than this is always a failure drop.
    """
    detected: Set[DirectedLink] = set(detected_links)
    noise: Set[int] = set()
    failure: Set[int] = set()
    for path in paths:
        touches_bad_link = any(link in detected for link in path.links)
        if touches_bad_link or path.retransmissions > max_noise_retransmissions:
            failure.add(path.flow_id)
        else:
            noise.add(path.flow_id)
    return NoiseClassification(
        noise_flows=frozenset(noise), failure_flows=frozenset(failure)
    )
