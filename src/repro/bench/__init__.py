"""``repro.bench``: the perf-regression harness of the streaming service.

``BENCH_service.json`` is the repo's machine-readable perf trajectory: a
versioned document describing how fast :class:`~repro.api.service.Zero07Service`
and :class:`~repro.api.sharded.ShardedService` ingest a fabric-scale
synthetic evidence workload (:mod:`repro.loadgen`), how quickly mid-epoch
``report()`` queries answer, what checkpoint save/restore costs, and the
process's peak RSS.  Every future speed claim is testable against it.

* :class:`BenchConfig` / :func:`run_service_bench` — drive the matrix of
  (engine, shard count) service configurations over one generated workload
  and produce the report document.
* :func:`validate_bench_report` / :class:`BenchSchemaError` — the schema
  gate: versioned keys, monotonic epoch counters, positive throughput.
  CI validates every produced document, so the artifact format cannot
  silently drift.
* :func:`write_bench_report` / :func:`format_bench_table` — persistence and
  the human-readable summary.
* :class:`FleetBenchConfig` / :func:`run_fleet_bench` — the socket-ingest
  measurement behind the document's v4 ``fleet`` block: agent processes
  streaming wire frames at one analyzer over TCP/Unix sockets, plus the
  backpressure and reconnect-recovery probes.

The exported names are snapshot-tested (``tests/test_api_surface.py``).
"""

from repro.bench.fleet import FleetBenchConfig, run_fleet_bench
from repro.bench.runner import (
    BenchConfig,
    format_bench_table,
    run_service_bench,
    write_bench_report,
)
from repro.bench.schema import (
    BENCH_SCHEMA_VERSION,
    BenchSchemaError,
    validate_bench_report,
)

__all__ = [
    "BenchConfig",
    "run_service_bench",
    "write_bench_report",
    "format_bench_table",
    "BENCH_SCHEMA_VERSION",
    "BenchSchemaError",
    "validate_bench_report",
    "FleetBenchConfig",
    "run_fleet_bench",
]
