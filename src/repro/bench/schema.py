"""Schema of the versioned ``BENCH_service.json`` perf artifact.

The validator is deliberately strict about *shape* (versioned keys, monotonic
epoch counters, positive throughput, known enum values) and deliberately
silent about *absolute speed* — machines differ; CI must fail on a malformed
artifact, never on a slow runner.  Bump :data:`BENCH_SCHEMA_VERSION` on any
incompatible layout change and teach the validator the new shape in the same
commit.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: document schema version written by the current runner; bump on
#: incompatible layout changes.
BENCH_SCHEMA_VERSION = 4

#: every version the validator still reads (v1 artifacts predate executor
#: backends, v2 artifacts predate binary/delta checkpoints and the
#: materialized report view, v3 artifacts predate the fleet socket-ingest
#: block — all stay valid, they just cannot express the newer measurements).
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3, 4)

#: exact top-level key set (identical across supported versions).
TOP_LEVEL_KEYS = {
    "schema_version",
    "generated_by",
    "created_unix",
    "config",
    "environment",
    "runs",
}

#: exact key set of one version-1 run entry.
RUN_KEYS = {
    "service",
    "engine",
    "num_shards",
    "ingest",
    "per_event_baseline",
    "speedup_vs_per_event",
    "report_latency",
    "finalize",
    "checkpoint",
    "epochs",
    "peak_rss_kb",
}

#: version 2 adds the executor dimension: which backend hosted the shards,
#: how many worker processes it used, and how efficiently the run scaled
#: against the single-service reference.
RUN_KEYS_V2 = RUN_KEYS | {"backend", "workers", "scaling_efficiency"}

CONFIG_KEYS = {
    "fabric",
    "params",
    "events",
    "epochs",
    "events_per_epoch",
    "seed",
    "profile",
    "engines",
    "shard_counts",
    "baseline_events",
    "timeline",
}

#: version 2 records the benchmarked backend matrix in the config block.
CONFIG_KEYS_V2 = CONFIG_KEYS | {"backends"}

#: version 3 records the per-cut report query count so the latency numbers
#: (which mix one cold query with cached follow-ups per cut) are reproducible.
CONFIG_KEYS_V3 = CONFIG_KEYS_V2 | {"report_queries"}

#: version 3 report_latency separates the cold first-query-after-new-evidence
#: latency from the (cached) steady-state percentiles.
REPORT_LATENCY_KEYS_V3 = ("cold_mean_seconds", "cold_max_seconds")

#: version 3 checkpoint blocks measure the binary container as the primary
#: format (``save_seconds``/``restore_seconds``/``binary_bytes``), keep the
#: JSON text path for comparison, and add delta-checkpoint metrics plus the
#: v1-compat restore proof.
CHECKPOINT_KEYS_V3 = (
    "binary_bytes",
    "json_save_seconds",
    "json_restore_seconds",
    "delta_bytes",
    "delta_save_seconds",
    "delta_restore_seconds",
)

#: version 4 adds an optional top-level ``fleet`` block: socket-ingest
#: throughput per transport, backpressure engagements, and the reconnect
#: recovery measurement (which doubles as a bit-identity correctness bar).
FLEET_KEYS = {
    "fabric",
    "events",
    "epochs",
    "agents",
    "shards",
    "mode",
    "transports",
    "backpressure_engagements",
    "reconnect",
}

FLEET_TRANSPORTS = ("tcp", "unix", "inproc")


class BenchSchemaError(ValueError):
    """The bench document violates the schema; ``errors`` lists every reason."""

    def __init__(self, errors: List[str]) -> None:
        self.errors = list(errors)
        super().__init__(
            "invalid BENCH_service.json document:\n  - " + "\n  - ".join(self.errors)
        )


def _require_number(
    errors: List[str], value: Any, where: str, positive: bool = False
) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        errors.append(f"{where} must be a number, got {value!r}")
    elif positive and not value > 0:
        errors.append(f"{where} must be > 0, got {value!r}")


def _validate_ingest(errors: List[str], data: Any, where: str) -> None:
    if not isinstance(data, dict):
        errors.append(f"{where} must be an object")
        return
    for key in ("events", "seconds", "events_per_sec"):
        if key not in data:
            errors.append(f"{where} is missing {key!r}")
        else:
            _require_number(errors, data[key], f"{where}.{key}", positive=True)


def _validate_run(errors: List[str], run: Any, where: str, version: int) -> None:
    if not isinstance(run, dict):
        errors.append(f"{where} must be an object")
        return
    run_keys = RUN_KEYS if version == 1 else RUN_KEYS_V2
    missing = run_keys - set(run)
    extra = set(run) - run_keys
    if missing:
        errors.append(f"{where} is missing keys {sorted(missing)}")
    if extra:
        errors.append(f"{where} has unknown keys {sorted(extra)}")
    if run.get("service") not in ("single", "sharded"):
        errors.append(f"{where}.service must be 'single' or 'sharded'")
    if run.get("engine") not in ("arrays", "dicts"):
        errors.append(f"{where}.engine must be 'arrays' or 'dicts'")
    shards = run.get("num_shards")
    if not isinstance(shards, int) or shards < 1:
        errors.append(f"{where}.num_shards must be an int >= 1")
    if run.get("service") == "single" and shards != 1:
        errors.append(f"{where}: single service must have num_shards == 1")
    if version >= 2:
        backend = run.get("backend")
        if backend not in ("inline", "process"):
            errors.append(f"{where}.backend must be 'inline' or 'process'")
        if run.get("service") == "single" and backend != "inline":
            errors.append(f"{where}: single service runs are always inline")
        workers = run.get("workers")
        if not isinstance(workers, int) or workers < 0:
            errors.append(f"{where}.workers must be an int >= 0")
        elif backend == "inline" and workers != 0:
            errors.append(f"{where}: inline backend must record workers == 0")
        elif backend == "process" and workers < 1:
            errors.append(f"{where}: process backend must record workers >= 1")
        efficiency = run.get("scaling_efficiency")
        if efficiency is not None:
            _require_number(
                errors, efficiency, f"{where}.scaling_efficiency", positive=True
            )

    if "ingest" in run:
        _validate_ingest(errors, run["ingest"], f"{where}.ingest")
        if isinstance(run["ingest"], dict) and run["ingest"].get("mode") not in (
            "batch-owned",
            "batch",
            "per-event",
        ):
            errors.append(f"{where}.ingest.mode is not a known ingest mode")
    baseline = run.get("per_event_baseline")
    if baseline is not None:
        _validate_ingest(errors, baseline, f"{where}.per_event_baseline")
        speedup = run.get("speedup_vs_per_event")
        _require_number(errors, speedup, f"{where}.speedup_vs_per_event", positive=True)

    latency = run.get("report_latency")
    if latency is not None:
        if not isinstance(latency, dict):
            errors.append(f"{where}.report_latency must be an object or null")
        else:
            required = ["queries", "mean_seconds", "p50_seconds", "max_seconds"]
            if version >= 3:
                required.extend(REPORT_LATENCY_KEYS_V3)
            for key in required:
                if key not in latency:
                    errors.append(f"{where}.report_latency is missing {key!r}")
                else:
                    _require_number(
                        errors, latency[key], f"{where}.report_latency.{key}"
                    )

    finalize = run.get("finalize")
    if not isinstance(finalize, dict) or not {"epochs", "seconds"} <= set(
        finalize or {}
    ):
        errors.append(f"{where}.finalize must be an object with epochs/seconds")

    checkpoint = run.get("checkpoint")
    if checkpoint is not None:
        if not isinstance(checkpoint, dict):
            errors.append(f"{where}.checkpoint must be an object or null")
        else:
            required = ["save_seconds", "restore_seconds", "json_bytes"]
            if version >= 3:
                required.extend(CHECKPOINT_KEYS_V3)
            for key in required:
                if key not in checkpoint:
                    errors.append(f"{where}.checkpoint is missing {key!r}")
                else:
                    _require_number(
                        errors, checkpoint[key], f"{where}.checkpoint.{key}"
                    )
            if checkpoint.get("restore_bit_identical") is not True:
                errors.append(
                    f"{where}.checkpoint.restore_bit_identical must be true — "
                    "a restore that changes reports is a correctness bug, not "
                    "a perf number"
                )
            if version >= 3:
                for key in ("v1_restore_bit_identical", "delta_bit_identical"):
                    if checkpoint.get(key) is not True:
                        errors.append(
                            f"{where}.checkpoint.{key} must be true — format "
                            "compatibility is a correctness bar, not a perf "
                            "number"
                        )

    epochs = run.get("epochs")
    if not isinstance(epochs, list) or not epochs:
        errors.append(f"{where}.epochs must be a non-empty list")
    else:
        previous = None
        for i, entry in enumerate(epochs):
            here = f"{where}.epochs[{i}]"
            if not isinstance(entry, dict) or "epoch" not in entry:
                errors.append(f"{here} must be an object with an 'epoch' key")
                continue
            epoch = entry["epoch"]
            if not isinstance(epoch, int):
                errors.append(f"{here}.epoch must be an int")
                continue
            if previous is not None and epoch <= previous:
                errors.append(
                    f"{here}.epoch={epoch} is not strictly increasing "
                    f"(previous {previous})"
                )
            previous = epoch
            if "events" in entry:
                _require_number(errors, entry["events"], f"{here}.events")

    _require_number(errors, run.get("peak_rss_kb"), f"{where}.peak_rss_kb")


def _validate_fleet(errors: List[str], fleet: Any) -> None:
    where = "fleet"
    if not isinstance(fleet, dict):
        errors.append(f"{where} must be an object")
        return
    missing = FLEET_KEYS - set(fleet)
    extra = set(fleet) - FLEET_KEYS
    if missing:
        errors.append(f"{where} is missing keys {sorted(missing)}")
    if extra:
        errors.append(f"{where} has unknown keys {sorted(extra)}")
    for key in ("events", "epochs"):
        if key in fleet:
            _require_number(errors, fleet[key], f"{where}.{key}", positive=True)
    for key in ("agents", "shards"):
        value = fleet.get(key)
        if key in fleet and (not isinstance(value, int) or value < 1):
            errors.append(f"{where}.{key} must be an int >= 1")
    if "mode" in fleet and fleet["mode"] not in ("events", "columns"):
        errors.append(f"{where}.mode must be 'events' or 'columns'")
    transports = fleet.get("transports")
    if not isinstance(transports, dict) or not transports:
        errors.append(f"{where}.transports must be a non-empty object")
    else:
        unknown = set(transports) - set(FLEET_TRANSPORTS)
        if unknown:
            errors.append(
                f"{where}.transports has unknown transports {sorted(unknown)}"
            )
        for name in FLEET_TRANSPORTS:
            if name in transports:
                _validate_ingest(
                    errors, transports[name], f"{where}.transports.{name}"
                )
    engagements = fleet.get("backpressure_engagements")
    if "backpressure_engagements" in fleet and (
        not isinstance(engagements, int) or engagements < 0
    ):
        errors.append(f"{where}.backpressure_engagements must be an int >= 0")
    reconnect = fleet.get("reconnect")
    if "reconnect" in fleet:
        if not isinstance(reconnect, dict):
            errors.append(f"{where}.reconnect must be an object")
        else:
            _require_number(
                errors,
                reconnect.get("recovery_seconds"),
                f"{where}.reconnect.recovery_seconds",
                positive=True,
            )
            redelivered = reconnect.get("redelivered_events")
            if not isinstance(redelivered, int) or redelivered < 0:
                errors.append(
                    f"{where}.reconnect.redelivered_events must be an int >= 0"
                )
            if reconnect.get("bit_identical") is not True:
                errors.append(
                    f"{where}.reconnect.bit_identical must be true — a "
                    "reconnect that changes reports is a correctness bug, "
                    "not a perf number"
                )


def validate_bench_report(document: Any) -> Dict[str, Any]:
    """Validate a bench document; returns it unchanged or raises.

    Raises
    ------
    BenchSchemaError
        With *every* violation listed, so a drifted artifact is diagnosed in
        one round trip.
    """
    errors: List[str] = []
    if not isinstance(document, dict):
        raise BenchSchemaError(["document must be a JSON object"])
    version = document.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        errors.append(
            f"schema_version {version!r} not in supported "
            f"{SUPPORTED_SCHEMA_VERSIONS}"
        )
        version = BENCH_SCHEMA_VERSION
    #: the fleet block arrived in v4 and stays optional (not every bench
    #: run exercises the socket path).
    allowed_keys = TOP_LEVEL_KEYS | ({"fleet"} if version >= 4 else set())
    missing = TOP_LEVEL_KEYS - set(document)
    extra = set(document) - allowed_keys
    if missing:
        errors.append(f"document is missing keys {sorted(missing)}")
    if extra:
        errors.append(f"document has unknown keys {sorted(extra)}")
    if version >= 4 and "fleet" in document:
        _validate_fleet(errors, document["fleet"])
    if "created_unix" in document:
        _require_number(errors, document["created_unix"], "created_unix", positive=True)
    if not isinstance(document.get("generated_by"), str):
        errors.append("generated_by must be a string")

    config = document.get("config")
    if not isinstance(config, dict):
        errors.append("config must be an object")
    else:
        if version == 1:
            config_keys = CONFIG_KEYS
        elif version == 2:
            config_keys = CONFIG_KEYS_V2
        else:
            config_keys = CONFIG_KEYS_V3
        missing_config = config_keys - set(config)
        if missing_config:
            errors.append(f"config is missing keys {sorted(missing_config)}")
        for key in ("events", "epochs", "events_per_epoch"):
            if key in config:
                _require_number(errors, config[key], f"config.{key}", positive=True)

    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append("runs must be a non-empty list")
    else:
        seen = set()
        for i, run in enumerate(runs):
            _validate_run(errors, run, f"runs[{i}]", version)
            if isinstance(run, dict):
                key = (
                    run.get("service"),
                    run.get("engine"),
                    run.get("backend") if version >= 2 else "inline",
                    run.get("num_shards"),
                )
                if key in seen:
                    errors.append(f"runs[{i}] duplicates configuration {key}")
                seen.add(key)

    if errors:
        raise BenchSchemaError(errors)
    return document
