"""Socket-ingest benchmark: the ``fleet`` block of BENCH_service.json v4.

Measures what the distributed deployment adds on top of the in-process
service numbers:

* **transport throughput** — N agent processes pre-encode their workload
  slices into wire frames, hit a barrier, then stream at one analyzer over
  TCP and Unix sockets (``columns`` ingest core); the clock runs from
  barrier release to the last epoch's finalize, so the number is aggregate
  analyzer ingest with framing, flow control and finalize included —
  producer-side encode is excluded in every lane.  An ``inproc`` lane feeds
  the same pre-encoded chunks straight into the same core without sockets —
  the no-network upper bound the socket lanes are judged against.
* **backpressure** — a staged-delivery probe (one agent sends the tail of
  an epoch before another sends the head, against a deliberately small
  staging bound) counts deferred-ack engagements, proving the credit
  machinery actually engages and releases.
* **reconnect recovery** — an agent is severed mid-epoch and the time from
  sever to fully re-acked redelivery is measured; the run's reports must
  stay bit-identical to an uninterrupted replay (a correctness bar the
  schema enforces, not just a perf number).
"""

from __future__ import annotations

import multiprocessing
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.api.service import Zero07Service
from repro.api.wire import LinkRemap, WireDecoder, WireEncoder
from repro.fleet.agent import FleetAgentClient
from repro.fleet.analyzer import AnalyzerThread, ColumnarIngestCore, FleetAnalyzer
from repro.fleet.protocol import Endpoint
from repro.fleet.runner import FleetQueryClient, build_generator, json_signature


@dataclass
class FleetBenchConfig:
    """Shape of the fleet benchmark workload (deterministic per seed)."""

    fabric: str = "medium"
    events: int = 400_000
    epochs: int = 4
    agents: int = 4
    shards: int = 1
    mode: str = "columns"
    profile: str = "skewed"
    timeline: str = "none"
    seed: int = 0
    chunk_events: int = 8192
    transports: Tuple[str, ...] = ("tcp", "unix", "inproc")

    def __post_init__(self) -> None:
        if self.events < 1 or self.epochs < 1 or self.events % self.epochs:
            raise ValueError("events must be a positive multiple of epochs")
        if self.agents < 1:
            raise ValueError("agents must be >= 1")
        unknown = set(self.transports) - {"tcp", "unix", "inproc"}
        if not self.transports or unknown:
            raise ValueError(
                f"transports must be tcp/unix/inproc, got {self.transports!r}"
            )

    @property
    def events_per_epoch(self) -> int:
        """Evidence events per epoch."""
        return self.events // self.epochs


def _generator(config: FleetBenchConfig):
    return build_generator(
        config.fabric,
        config.profile,
        config.timeline,
        config.seed,
        config.events_per_epoch,
    )


def _sender_process(
    config_fields: Dict,
    index: int,
    endpoint_text: str,
    barrier,
) -> None:
    """One bench agent: pre-encode real wire frames, sync, stream.

    Producer-side encode runs *before* the barrier (each sender has its
    whole frame sequence in memory when the clock starts), mirroring the
    inproc lane — all three lanes measure analyzer ingest, and the socket
    lanes add transport, framing and flow control on top.  The stream is
    protocol-faithful: HELLO/WELCOME handshake, the per-connection credit
    window honored against cumulative ACK bytes, ticks after each epoch,
    BYE at the end.
    """
    from repro.fleet import protocol
    from repro.fleet.protocol import FrameReader, parse_endpoint

    config = FleetBenchConfig(**config_fields)
    generator = _generator(config)
    encoder = WireEncoder(streams=1)
    #: (frame bytes, evidence payload length) — credit counts payload bytes.
    frames: List[Tuple[bytes, int]] = []
    for epoch in range(config.epochs):
        events = generator.agent_events(epoch, index, config.agents)
        for lo in range(0, len(events), config.chunk_events):
            payload = encoder.encode_run(
                0, 0, epoch, events[lo : lo + config.chunk_events]
            )
            frame = protocol.encode_frame(protocol.FRAME_EVIDENCE, payload)
            frames.append((frame, len(payload)))
        frames.append(
            (
                protocol.encode_frame(
                    protocol.FRAME_TICK, protocol.encode_tick(epoch)
                ),
                0,
            )
        )

    sock = parse_endpoint(endpoint_text).connect(timeout=60.0)
    reader = FrameReader()

    def read_frame() -> Tuple[int, bytes]:
        while True:
            for frame in reader.frames():
                return frame
            data = sock.recv(1 << 16)
            if not data:
                raise ConnectionError("analyzer closed mid-bench")
            reader.feed(data)

    try:
        sock.sendall(
            protocol.encode_frame(
                protocol.FRAME_HELLO,
                protocol.encode_hello(f"bench-{index}"),
            )
        )
        frame_type, payload = read_frame()
        if frame_type != protocol.FRAME_WELCOME:
            raise ConnectionError(f"expected WELCOME, got type {frame_type}")
        credit = protocol.decode_welcome(payload)["credit_bytes"]
        barrier.wait()  # every sender is ready; the coordinator starts the clock
        sent = acked = 0
        for frame, nbytes in frames:
            while sent + nbytes - acked > credit:
                frame_type, payload = read_frame()
                if frame_type == protocol.FRAME_ACK:
                    acked = protocol.decode_ack(payload)[2]
            sock.sendall(frame)
            sent += nbytes
        sock.sendall(protocol.encode_frame(protocol.FRAME_BYE))
        # drain acks until the analyzer answers BYE with a close; exiting
        # early would reset the connection under the last frames.
        try:
            while True:
                read_frame()
        except ConnectionError:
            pass
    finally:
        sock.close()


def _measure_socket(
    config: FleetBenchConfig,
    kind: str,
    progress: Optional[Callable[[str], None]],
) -> Dict:
    with tempfile.TemporaryDirectory(prefix="fleet-bench-") as tmp:
        if kind == "tcp":
            evidence = Endpoint(kind="tcp", host="127.0.0.1", port=0)
        else:
            evidence = Endpoint(kind="unix", path=str(Path(tmp) / "ev.sock"))
        query = Endpoint(kind="tcp", host="127.0.0.1", port=0)
        analyzer = FleetAnalyzer(
            ColumnarIngestCore(retain_reports=config.epochs),
            expected_agents=config.agents,
            idle_timeout=120.0,
        )
        thread = AnalyzerThread(analyzer, evidence, query)
        barrier = multiprocessing.Barrier(config.agents + 1)
        fields = dict(config.__dict__)
        processes = [
            multiprocessing.Process(
                target=_sender_process,
                args=(fields, index, str(thread.endpoint), barrier),
            )
            for index in range(config.agents)
        ]
        for process in processes:
            process.start()
        try:
            barrier.wait(timeout=600)
            started = time.perf_counter()
            with FleetQueryClient(thread.query_endpoint, timeout=60.0) as client:
                while True:
                    stats = client.request({"cmd": "stats"})
                    if stats["last_finalized"] == config.epochs - 1:
                        break
                    time.sleep(0.01)
                elapsed = time.perf_counter() - started
                client.request({"cmd": "shutdown"})
            for process in processes:
                process.join(timeout=60)
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join()
            thread.stop()
    result = {
        "events": config.events,
        "seconds": elapsed,
        "events_per_sec": config.events / elapsed,
    }
    if progress is not None:
        progress(
            f"fleet {kind}: {config.events} events over {config.agents} "
            f"agent(s) in {elapsed:.2f}s "
            f"({result['events_per_sec']:,.0f} ev/s)"
        )
    return result


def _measure_inproc(
    config: FleetBenchConfig, progress: Optional[Callable[[str], None]]
) -> Dict:
    """The no-network upper bound: pre-encoded chunks into the same core."""
    generator = _generator(config)
    encoder = WireEncoder(streams=1)
    chunks: List[Tuple[int, bytes]] = []
    for epoch in range(config.epochs):
        events = generator.epoch_events(epoch, tick=False)
        for lo in range(0, len(events), config.chunk_events):
            run = events[lo : lo + config.chunk_events]
            chunks.append((epoch, encoder.encode_run(0, 0, epoch, run)))
    core = ColumnarIngestCore(retain_reports=config.epochs)
    decoder = WireDecoder()
    remap = LinkRemap(decoder, core._link_index)
    started = time.perf_counter()
    current = 0
    for epoch, payload in chunks:
        if epoch != current:
            core.tick(current)
            current = epoch
        core.append_chunk(decoder.decode_columns(payload), remap)
    core.tick(current)
    elapsed = time.perf_counter() - started
    result = {
        "events": config.events,
        "seconds": elapsed,
        "events_per_sec": config.events / elapsed,
    }
    if progress is not None:
        progress(
            f"fleet inproc: {config.events} events in {elapsed:.2f}s "
            f"({result['events_per_sec']:,.0f} ev/s)"
        )
    return result


def _measure_backpressure(
    config: FleetBenchConfig, progress: Optional[Callable[[str], None]]
) -> int:
    """Force staged-delivery growth past a small bound; count engagements."""
    generator = build_generator("tiny", config.profile, "none", config.seed, 20_000)
    events = generator.epoch_events(0, tick=False)
    half = len(events) // 2
    analyzer = FleetAnalyzer(
        ColumnarIngestCore(retain_reports=2),
        expected_agents=2,
        stage_limit_bytes=64 * 1024,
    )
    thread = AnalyzerThread(
        analyzer,
        Endpoint(kind="tcp", host="127.0.0.1", port=0),
        Endpoint(kind="tcp", host="127.0.0.1", port=0),
    )
    try:
        tail = FleetAgentClient("bp-tail", thread.endpoint, chunk_events=1024)
        head = FleetAgentClient("bp-head", thread.endpoint, chunk_events=1024)
        tail.connect()
        head.connect()
        # the tail arrives first: nothing can flush, staging grows past the
        # bound, acks defer.  The head then closes the gap and releases it.
        tail.send_run(0, events[half:])
        head.send_run(0, events[:half])
        for client in (head, tail):
            client.tick(0)
        for client in (head, tail):
            client.drain()
            client.close()
        with FleetQueryClient(thread.query_endpoint) as query:
            stats = query.request({"cmd": "stats"})["stats"]
            query.request({"cmd": "shutdown"})
        engagements = int(stats["backpressure_engagements"])
    finally:
        thread.stop()
    if progress is not None:
        progress(f"fleet backpressure probe: {engagements} engagement(s)")
    return engagements


def _measure_reconnect(
    config: FleetBenchConfig, progress: Optional[Callable[[str], None]]
) -> Dict:
    """Sever an agent mid-epoch; time the redelivery back to fully-acked."""
    generator = build_generator("tiny", config.profile, "none", config.seed, 20_000)
    epochs = 2
    analyzer = FleetAnalyzer(
        ColumnarIngestCore(retain_reports=epochs), expected_agents=1
    )
    thread = AnalyzerThread(
        analyzer,
        Endpoint(kind="tcp", host="127.0.0.1", port=0),
        Endpoint(kind="tcp", host="127.0.0.1", port=0),
    )
    try:
        client = FleetAgentClient(
            "rc-0", thread.endpoint, chunk_events=1024, reconnect_seed=1,
            backoff_base=0.01,
        )
        client.connect()
        signatures = []
        for epoch in range(epochs):
            events = generator.epoch_events(epoch, tick=False)
            half = len(events) // 2
            client.send_run(epoch, events[:half])
            if epoch == 0:
                client.sever()
                severed_at = time.perf_counter()
                client.send_run(epoch, events[half:])  # reconnect fires here
                client.drain()
                recovery = time.perf_counter() - severed_at
            else:
                client.send_run(epoch, events[half:])
            client.tick(epoch)
        client.drain()
        redelivered = client.stats.redelivered_events
        client.close()
        with FleetQueryClient(thread.query_endpoint) as query:
            for epoch in range(epochs):
                response = query.request({"cmd": "report", "epoch": epoch})
                signatures.append(response["report"]["signature"])
            query.request({"cmd": "shutdown"})
    finally:
        thread.stop()
    reference = Zero07Service(engine="arrays", retain_reports=epochs)
    for epoch in range(epochs):
        reference.ingest_batch(generator.epoch_events(epoch, tick=True))
    identical = all(
        signatures[epoch] == json_signature(reference.report(epoch))
        for epoch in range(epochs)
    )
    if progress is not None:
        progress(
            f"fleet reconnect: recovered in {recovery:.3f}s, "
            f"{redelivered} event(s) redelivered, "
            f"bit_identical={identical}"
        )
    return {
        "recovery_seconds": recovery,
        "redelivered_events": redelivered,
        "bit_identical": identical,
    }


def run_fleet_bench(
    config: Optional[FleetBenchConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Produce the v4 ``fleet`` block (schema-shaped, ready to embed)."""
    config = config if config is not None else FleetBenchConfig()
    transports: Dict[str, Dict] = {}
    for kind in config.transports:
        if kind == "inproc":
            transports[kind] = _measure_inproc(config, progress)
        else:
            transports[kind] = _measure_socket(config, kind, progress)
    return {
        "fabric": config.fabric,
        "events": config.events,
        "epochs": config.epochs,
        "agents": config.agents,
        "shards": config.shards,
        "mode": config.mode,
        "transports": transports,
        "backpressure_engagements": _measure_backpressure(config, progress),
        "reconnect": _measure_reconnect(config, progress),
    }
