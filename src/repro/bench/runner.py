"""The service benchmark runner.

Drives :class:`~repro.api.service.Zero07Service` and
:class:`~repro.api.sharded.ShardedService` with a synthetic evidence workload
(:mod:`repro.loadgen`) and measures, per (engine, shard-count) configuration:

* **ingest throughput** of the vectorized ``ingest_batch(owned=True)`` path,
  with a per-event ``ingest()`` baseline on a capped prefix of the same
  workload (so ``speedup_vs_per_event`` is an apples-to-apples before/after
  of the batched fast path);
* **mid-epoch report latency** — ``report(epoch)`` issued halfway through
  each epoch's evidence, the paper's "which link is bad *right now*" query;
* **checkpoint cost** — save/serialize/restore wall time, JSON payload size,
  and a bit-identity check of the restored service's mid-epoch report;
* **finalization cost** (epoch ticks) and the process's **peak RSS**.

Timed sections never include workload generation.  Generation is
deterministic per seed, so every configuration replays the identical stream;
``peak_rss_kb`` is the OS's monotonic high-water mark and therefore
attributes only the *maximum* across a document's runs, not each run alone.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import resource
import statistics
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.checkpoint import Checkpoint
from repro.api.events import EpochTick, PathEvidence
from repro.api.service import Zero07Service
from repro.api.sharded import ShardedService
from repro.bench.schema import BENCH_SCHEMA_VERSION, validate_bench_report
from repro.loadgen import EvidenceLoadGenerator, WorkloadProfile, fabric_parameters
from repro.netsim.script import ScenarioScript
from repro.testing import report_signature
from repro.topology.clos import ClosParameters
from repro.topology.elements import LinkLevel


@dataclass(frozen=True)
class BenchConfig:
    """Configuration of one ``repro bench`` invocation."""

    fabric: Union[str, ClosParameters] = "medium"
    #: total evidence events across all epochs (ticks not counted).
    events: int = 1_000_000
    epochs: int = 8
    seed: int = 0
    profile: WorkloadProfile = field(default_factory=WorkloadProfile.skewed)
    engines: Tuple[str, ...] = ("arrays", "dicts")
    shard_counts: Tuple[int, ...] = (1, 2, 4)
    #: executor backends to benchmark (``inline`` in-process, ``process``
    #: worker processes).  Process runs are skipped at ``shards == 1`` —
    #: one worker behind a pipe is pure overhead, not a deployment shape.
    backends: Tuple[str, ...] = ("inline",)
    #: worker-process cap for the process backend (``None``: one per shard).
    workers: Optional[int] = None
    #: cap on the per-event baseline measurement (the full workload would
    #: mostly measure the slow path we are replacing); ``None`` picks
    #: ``min(events, 250_000)``.
    baseline_events: Optional[int] = None
    #: mid-epoch ``report()`` queries issued per epoch cut.  The first query
    #: after new evidence is *cold* (the materialized view recomputes); the
    #: follow-ups hit the cached view — the document records both, cold
    #: separately (``cold_mean_seconds``/``cold_max_seconds``) and all
    #: queries together (``p50_seconds`` etc.).
    report_queries: int = 4
    #: measure checkpoint save/restore on the final epoch's half-ingested state.
    checkpoint: bool = True
    #: scripted failure timeline biasing the workload ("none"/"flap"/"burst").
    timeline: str = "none"

    def __post_init__(self) -> None:
        # Fail configuration errors *now*, not after minutes of benchmarking
        # when schema validation would reject the finished document.
        if self.events < 1:
            raise ValueError("events must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        unknown = set(self.engines) - {"arrays", "dicts"}
        if not self.engines or unknown:
            raise ValueError(f"engines must be arrays/dicts, got {self.engines!r}")
        if not self.shard_counts or any(c < 1 for c in self.shard_counts):
            raise ValueError("shard_counts needs at least one count >= 1")
        if len(set(self.shard_counts)) != len(self.shard_counts):
            raise ValueError(f"duplicate shard counts: {self.shard_counts!r}")
        unknown_backends = set(self.backends) - {"inline", "process"}
        if not self.backends or unknown_backends:
            raise ValueError(
                f"backends must be inline/process, got {self.backends!r}"
            )
        if len(set(self.backends)) != len(self.backends):
            raise ValueError(f"duplicate backends: {self.backends!r}")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 when set")
        if self.timeline not in ("none", "flap", "burst"):
            raise ValueError(f"unknown timeline preset {self.timeline!r}")

    @property
    def events_per_epoch(self) -> int:
        return max(1, self.events // max(1, self.epochs))

    @property
    def baseline_cap(self) -> int:
        if self.baseline_events is not None:
            return max(1, self.baseline_events)
        return min(self.events, 250_000)

    def make_script(self) -> Optional[ScenarioScript]:
        """The loadgen timeline for the ``timeline`` preset."""
        if self.timeline == "none":
            return None
        start = max(1, self.epochs // 4)
        duration = max(1, self.epochs // 2)
        if self.timeline == "flap":
            return ScenarioScript().flap(
                start=start, duration=duration, level=LinkLevel.LEVEL1
            )
        if self.timeline == "burst":
            return ScenarioScript().burst(
                start=start, duration=duration, level=LinkLevel.LEVEL2, num_links=3
            )
        raise ValueError(f"unknown timeline preset {self.timeline!r}")

    def make_generator(self) -> EvidenceLoadGenerator:
        """A fresh (deterministic) generator for this workload."""
        return EvidenceLoadGenerator(
            fabric=self.fabric,
            profile=self.profile,
            script=self.make_script(),
            seed=self.seed,
            events_per_epoch=self.events_per_epoch,
        )


def _peak_rss_kb() -> int:
    """The process's peak RSS in KiB (Linux ``ru_maxrss`` unit)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _make_service(
    engine: str,
    num_shards: int,
    retain: int,
    backend: str = "inline",
    workers: Optional[int] = None,
):
    if num_shards == 1:
        return Zero07Service(engine=engine, retain_reports=retain)
    return ShardedService(
        num_shards=num_shards,
        engine=engine,
        retain_reports=retain,
        backend=backend,
        workers=workers,
    )


def _close_service(service) -> None:
    close = getattr(service, "close", None)
    if close is not None:
        close()


def _measure_per_event_baseline(
    config: BenchConfig,
    engine: str,
    num_shards: int,
    backend: str = "inline",
    workers: Optional[int] = None,
):
    """Per-event ``ingest()`` throughput on a capped prefix of the workload."""
    cap = config.baseline_cap
    generator = config.make_generator()
    service = _make_service(engine, num_shards, config.epochs, backend, workers)
    ingested = 0
    seconds = 0.0
    try:
        for epoch in range(config.epochs):
            if ingested >= cap:
                break
            events = generator.epoch_events(epoch, tick=False)
            if ingested + len(events) > cap:
                events = events[: cap - ingested]
            ingest = service.ingest
            start = time.perf_counter()
            for event in events:
                ingest(event)
            seconds += time.perf_counter() - start
            ingested += len(events)
            service.ingest(EpochTick(epoch))
    finally:
        _close_service(service)
    return {
        "events": ingested,
        "seconds": seconds,
        "events_per_sec": ingested / seconds if seconds > 0 else 0.0,
    }


def _measure_run(
    config: BenchConfig,
    engine: str,
    num_shards: int,
    backend: str = "inline",
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """One full (engine, backend, shards) benchmark run over the workload."""
    say = progress or (lambda message: None)
    generator = config.make_generator()
    service = _make_service(engine, num_shards, config.epochs, backend, workers)

    ingest_seconds = 0.0
    ingest_events = 0
    finalize_seconds = 0.0
    latencies: List[float] = []
    cold_latencies: List[float] = []
    epochs_out: List[Dict[str, Any]] = []
    checkpoint_out: Optional[Dict[str, Any]] = None

    executor = getattr(service, "executor", None)
    actual_workers = executor.workers if executor is not None else 0
    try:
        for epoch in range(config.epochs):
            events = generator.epoch_events(epoch, tick=False)
            paths = sum(1 for e in events if type(e) is PathEvidence)
            half = len(events) // 2
            measure_checkpoint = (
                config.checkpoint
                and checkpoint_out is None
                and epoch == config.epochs - 1
            )

            delta_base: Optional[Checkpoint] = None
            if measure_checkpoint:
                # Split the first half so a full base checkpoint exists at
                # the quarter mark — the delta measured below then carries
                # only the records that arrived after it (untimed capture).
                quarter = half // 2
                start = time.perf_counter()
                service.ingest_batch(events[:quarter], owned=True)
                ingest_seconds += time.perf_counter() - start
                delta_base = service.checkpoint()
                start = time.perf_counter()
                service.ingest_batch(events[quarter:half], owned=True)
                ingest_seconds += time.perf_counter() - start
            else:
                start = time.perf_counter()
                service.ingest_batch(events[:half], owned=True)
                ingest_seconds += time.perf_counter() - start

            for query in range(max(0, config.report_queries)):
                start = time.perf_counter()
                service.report(epoch)
                elapsed = time.perf_counter() - start
                latencies.append(elapsed)
                if query == 0:
                    cold_latencies.append(elapsed)

            if measure_checkpoint:
                checkpoint_out = _measure_checkpoint(
                    service, num_shards, epoch, backend, workers, delta_base
                )

            start = time.perf_counter()
            service.ingest_batch(events[half:], owned=True)
            ingest_seconds += time.perf_counter() - start
            ingest_events += len(events)

            start = time.perf_counter()
            service.ingest(EpochTick(epoch))
            finalize_seconds += time.perf_counter() - start

            epochs_out.append(
                {
                    "epoch": epoch,
                    "events": len(events),
                    "paths": paths,
                    "updates": len(events) - paths,
                }
            )
            say(
                f"    epoch {epoch}: {len(events)} events "
                f"({ingest_events / ingest_seconds:,.0f} ev/s cumulative)"
            )
    finally:
        _close_service(service)

    run: Dict[str, Any] = {
        "service": "single" if num_shards == 1 else "sharded",
        "engine": engine,
        "num_shards": num_shards,
        "backend": backend if num_shards > 1 else "inline",
        "workers": actual_workers,
        "scaling_efficiency": None,
        "ingest": {
            "mode": "batch-owned",
            "events": ingest_events,
            "seconds": ingest_seconds,
            "events_per_sec": ingest_events / ingest_seconds
            if ingest_seconds > 0
            else 0.0,
        },
        "per_event_baseline": None,
        "speedup_vs_per_event": None,
        "report_latency": {
            "queries": len(latencies),
            "mean_seconds": statistics.fmean(latencies) if latencies else 0.0,
            "p50_seconds": statistics.median(latencies) if latencies else 0.0,
            "max_seconds": max(latencies) if latencies else 0.0,
            "cold_mean_seconds": statistics.fmean(cold_latencies)
            if cold_latencies
            else 0.0,
            "cold_max_seconds": max(cold_latencies) if cold_latencies else 0.0,
        }
        if latencies
        else None,
        "finalize": {"epochs": config.epochs, "seconds": finalize_seconds},
        "checkpoint": checkpoint_out,
        "epochs": epochs_out,
        "peak_rss_kb": _peak_rss_kb(),
    }
    return run


def _as_v1_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Rewrite a JSON payload's version fields to 1 (a v1-era checkpoint).

    The version-1 on-disk format *is* the JSON body — version 2 only added
    the binary container and delta payloads around it — so a full v2 JSON
    payload with the version fields rewritten is byte-for-byte what a v1
    writer would have produced.
    """
    payload["version"] = 1
    for shard in payload.get("shards", ()):
        shard["version"] = 1
    return payload


def _measure_checkpoint(
    service,
    num_shards: int,
    epoch: int,
    backend: str = "inline",
    workers: Optional[int] = None,
    delta_base: Optional[Checkpoint] = None,
) -> Dict[str, Any]:
    """Checkpoint save/restore cost on the service's current (mid-epoch) state.

    Measures the binary container as the primary format (``save_seconds`` /
    ``restore_seconds`` / ``binary_bytes``), the JSON text path for
    comparison, a version-1 compatibility restore, and — when ``delta_base``
    is given — the delta-checkpoint path (save a delta against the base,
    merge it back, restore the merge).  Every restored service's mid-epoch
    report is compared bit-for-bit against the live one.
    """

    def _restore(checkpoint: Checkpoint):
        if num_shards == 1:
            return Zero07Service.restore(checkpoint)
        return ShardedService.restore(checkpoint, backend=backend, workers=workers)

    expected = report_signature(service.report(epoch))

    start = time.perf_counter()
    checkpoint = service.checkpoint()
    capture_seconds = time.perf_counter() - start

    start = time.perf_counter()
    blob = checkpoint.to_bytes()
    save_seconds = capture_seconds + time.perf_counter() - start

    start = time.perf_counter()
    text = checkpoint.to_json()
    json_save_seconds = capture_seconds + time.perf_counter() - start

    start = time.perf_counter()
    restored = _restore(Checkpoint.from_bytes(blob))
    restore_seconds = time.perf_counter() - start
    try:
        identical = report_signature(restored.report(epoch)) == expected
    finally:
        _close_service(restored)

    start = time.perf_counter()
    restored = _restore(Checkpoint.from_json(text))
    json_restore_seconds = time.perf_counter() - start
    _close_service(restored)

    v1 = _restore(Checkpoint(payload=_as_v1_payload(json.loads(text))))
    try:
        v1_identical = report_signature(v1.report(epoch)) == expected
    finally:
        _close_service(v1)

    # Delta path: against a base checkpoint from earlier in the epoch the
    # delta carries only the records ingested since; merging it back onto the
    # base must reproduce the live service exactly.
    base = delta_base if delta_base is not None else checkpoint
    start = time.perf_counter()
    delta_blob = service.checkpoint(base=base).to_bytes()
    delta_save_seconds = time.perf_counter() - start

    start = time.perf_counter()
    merged = base.apply_delta(Checkpoint.from_bytes(delta_blob))
    restored = _restore(merged)
    delta_restore_seconds = time.perf_counter() - start
    try:
        delta_identical = report_signature(restored.report(epoch)) == expected
    finally:
        _close_service(restored)

    return {
        "save_seconds": save_seconds,
        "restore_seconds": restore_seconds,
        "binary_bytes": len(blob),
        "json_save_seconds": json_save_seconds,
        "json_restore_seconds": json_restore_seconds,
        "json_bytes": len(text.encode("utf-8")),
        "delta_bytes": len(delta_blob),
        "delta_save_seconds": delta_save_seconds,
        "delta_restore_seconds": delta_restore_seconds,
        "restore_bit_identical": bool(identical),
        "v1_restore_bit_identical": bool(v1_identical),
        "delta_bit_identical": bool(delta_identical),
    }


def run_service_bench(
    config: Optional[BenchConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the full benchmark matrix and return the schema-valid document."""
    config = config or BenchConfig()
    say = progress or (lambda message: None)
    params = fabric_parameters(config.fabric)
    generator = config.make_generator()
    say(f"workload: {generator.describe()}")

    runs: List[Dict[str, Any]] = []
    for engine in config.engines:
        for backend in config.backends:
            for num_shards in config.shard_counts:
                if backend == "process" and num_shards == 1:
                    # one worker behind a pipe measures only transport
                    # overhead; the 1-shard reference is the inline run.
                    continue
                say(f"  run: engine={engine} backend={backend} shards={num_shards}")
                run = _measure_run(
                    config, engine, num_shards, backend, config.workers, progress
                )
                say(
                    f"    per-event baseline (<= {config.baseline_cap} events, "
                    f"backend={backend} shards={num_shards})"
                )
                baseline = _measure_per_event_baseline(
                    config, engine, num_shards, backend, config.workers
                )
                run["per_event_baseline"] = baseline
                if baseline["events_per_sec"] > 0:
                    run["speedup_vs_per_event"] = (
                        run["ingest"]["events_per_sec"] / baseline["events_per_sec"]
                    )
                runs.append(run)

    # scaling efficiency: throughput per shard, normalized to the
    # single-service (inline, 1-shard) run of the same engine.
    reference: Dict[str, float] = {
        run["engine"]: run["ingest"]["events_per_sec"]
        for run in runs
        if run["num_shards"] == 1 and run["backend"] == "inline"
    }
    for run in runs:
        base = reference.get(run["engine"])
        if base and base > 0 and run["ingest"]["events_per_sec"] > 0:
            run["scaling_efficiency"] = (
                run["ingest"]["events_per_sec"] / base
            ) / run["num_shards"]

    document: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_by": "repro bench",
        "created_unix": time.time(),
        "config": {
            "fabric": config.fabric if isinstance(config.fabric, str) else "custom",
            "params": dataclasses.asdict(params),
            "events": config.events,
            "epochs": config.epochs,
            "events_per_epoch": config.events_per_epoch,
            "seed": config.seed,
            "profile": dataclasses.asdict(config.profile),
            "engines": list(config.engines),
            "shard_counts": list(config.shard_counts),
            "backends": list(config.backends),
            "baseline_events": config.baseline_cap,
            "report_queries": config.report_queries,
            "timeline": config.timeline,
        },
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "runs": runs,
    }
    return validate_bench_report(document)


def write_bench_report(
    document: Dict[str, Any],
    path: Union[str, Path],
    artifacts_dir: Optional[Union[str, Path]] = None,
) -> None:
    """Validate and write the document (and optional per-run artifacts)."""
    validate_bench_report(document)
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    if artifacts_dir is not None:
        directory = Path(artifacts_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for run in document["runs"]:
            backend = run.get("backend", "inline")
            name = (
                f"bench_run_{run['engine']}_{backend}"
                f"_shards{run['num_shards']}.json"
            )
            payload = {
                "schema_version": document["schema_version"],
                "config": document["config"],
                "environment": document["environment"],
                "run": run,
            }
            (directory / name).write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )


def format_bench_table(document: Dict[str, Any]) -> str:
    """A human-readable summary table of a bench document."""
    lines = [
        f"fabric={document['config']['fabric']} "
        f"events={document['config']['events']:,} "
        f"epochs={document['config']['epochs']} "
        f"profile={document['config']['profile']['popularity']}",
        f"{'engine':>7} {'backend':>8} {'shards':>6} {'batch ev/s':>12} "
        f"{'per-ev ev/s':>12} {'speedup':>8} {'scale-eff':>9} "
        f"{'report p50':>11} {'ckpt save':>10} {'ckpt load':>10} "
        f"{'peak RSS':>9}",
    ]
    for run in document["runs"]:
        latency = run.get("report_latency") or {}
        checkpoint = run.get("checkpoint") or {}
        baseline = run.get("per_event_baseline") or {}
        speedup = run.get("speedup_vs_per_event")
        efficiency = run.get("scaling_efficiency")
        lines.append(
            f"{run['engine']:>7} {run.get('backend', 'inline'):>8} "
            f"{run['num_shards']:>6} "
            f"{run['ingest']['events_per_sec']:>12,.0f} "
            f"{baseline.get('events_per_sec', 0.0):>12,.0f} "
            f"{(f'{speedup:.1f}x' if speedup else '-'):>8} "
            f"{(f'{efficiency:.2f}' if efficiency else '-'):>9} "
            f"{latency.get('p50_seconds', 0.0) * 1000:>10.2f}ms "
            f"{checkpoint.get('save_seconds', 0.0):>9.2f}s "
            f"{checkpoint.get('restore_seconds', 0.0):>9.2f}s "
            f"{run['peak_rss_kb'] / 1024:>8.0f}M"
        )
    return "\n".join(lines)
