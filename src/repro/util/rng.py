"""Deterministic random-number-generator plumbing.

Every stochastic component of the library accepts either a seed (``int``), an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Using
``ensure_rng`` at the public boundaries keeps experiments reproducible while
letting callers share a single generator when they need correlated draws.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` for fresh entropy, an ``int`` seed, or an existing generator
        (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a Generator from {rng!r}")


def spawn_rng(rng: RngLike, index: int) -> np.random.Generator:
    """Derive an independent child generator for parallel sub-tasks.

    The derivation is deterministic in ``(rng, index)`` when ``rng`` is a seed
    so that experiment sweeps remain reproducible when individual points are
    re-run in isolation.
    """
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng([int(rng), int(index)])
    base = ensure_rng(rng)
    seed = int(base.integers(0, 2**32 - 1))
    return np.random.default_rng([seed, int(index)])
