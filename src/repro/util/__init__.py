"""Shared utilities: deterministic RNG handling and small helpers."""

from repro.util.rng import ensure_rng, spawn_rng

__all__ = ["ensure_rng", "spawn_rng"]
