"""Small statistics helpers shared by experiments and metrics."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np


def empirical_cdf(values: Iterable[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(x, F(x))`` arrays describing the empirical CDF of ``values``.

    ``x`` is sorted ascending and ``F(x)[i]`` is the fraction of samples less
    than or equal to ``x[i]``.  An empty input yields two empty arrays.
    """
    data = np.asarray(sorted(values), dtype=float)
    if data.size == 0:
        return data, data
    frac = np.arange(1, data.size + 1, dtype=float) / data.size
    return data, frac


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Return ``(mean, half_width)`` of a normal-approximation confidence interval."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return float("nan"), float("nan")
    mean = float(np.mean(data))
    if data.size == 1:
        return mean, 0.0
    # Normal approximation; adequate for the tens of repetitions used in the
    # experiment sweeps and avoids a scipy dependency in the hot path.
    z = {0.90: 1.645, 0.95: 1.96, 0.99: 2.576}.get(round(confidence, 2), 1.96)
    half = float(z * np.std(data, ddof=1) / np.sqrt(data.size))
    return mean, half


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0-100) of ``values`` (nan when empty)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return float("nan")
    return float(np.percentile(data, q))
