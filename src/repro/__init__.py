"""repro: a reproduction of "007: Democratically Finding the Cause of Packet Drops".

The package is organised as a set of substrates (topology, routing, flow-level
network simulation, load balancing, path discovery, TCP monitoring), the 007
analysis core (voting, ranking, Algorithm 1), optimization baselines, the
theoretical bounds from the paper, and an experiment harness that regenerates
every table and figure of the evaluation section.

Quickstart
----------
>>> from repro import quick_scenario
>>> report = quick_scenario(num_bad_links=2, seed=7)
>>> sorted(report.detected_links)[:2]  # doctest: +SKIP
"""

from repro.core.pipeline import Zero07System, SystemConfig
from repro.core.analysis import AnalysisAgent, EpochReport
from repro.core.votes import VoteTally
from repro.core.blame import find_problematic_links, BlameConfig
from repro.topology.clos import ClosTopology, ClosParameters
from repro.routing.ecmp import EcmpRouter
from repro.netsim.simulator import EpochSimulator, SimulationConfig
from repro.netsim.links import LinkStateTable
from repro.netsim.traffic import UniformTraffic, SkewedTraffic, HotTorTraffic

__version__ = "1.0.0"

__all__ = [
    "Zero07System",
    "SystemConfig",
    "AnalysisAgent",
    "EpochReport",
    "VoteTally",
    "find_problematic_links",
    "BlameConfig",
    "ClosTopology",
    "ClosParameters",
    "EcmpRouter",
    "EpochSimulator",
    "SimulationConfig",
    "LinkStateTable",
    "UniformTraffic",
    "SkewedTraffic",
    "HotTorTraffic",
    "quick_scenario",
    "__version__",
]


def quick_scenario(num_bad_links: int = 1, seed: int = 0, epochs: int = 1):
    """Run a small end-to-end 007 scenario and return the last epoch report.

    This is a convenience wrapper used by the README quickstart and the
    doctest suite.  It builds a two-pod Clos topology, injects
    ``num_bad_links`` random link failures, runs the full 007 pipeline for
    ``epochs`` epochs and returns the final :class:`EpochReport`.
    """
    from repro.experiments.scenario import ScenarioConfig, run_scenario

    config = ScenarioConfig(
        num_bad_links=num_bad_links,
        seed=seed,
        epochs=epochs,
    )
    result = run_scenario(config)
    return result.reports[-1]
