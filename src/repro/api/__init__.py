"""``repro.api``: the event-driven streaming service boundary of 007.

This package is the stable public API the always-on deployment is built
around — the same separation the paper draws between per-host agents (which
*emit* evidence) and the centralized analysis agent (which *serves* answers):

* :mod:`repro.api.events` — the typed evidence vocabulary
  (:class:`PathEvidence`, :class:`RetransmissionEvidence`,
  :class:`EpochTick`) with lossless JSON codecs.
* :mod:`repro.api.service` — :class:`Zero07Service` (``ingest`` /
  ``ingest_batch`` / on-demand ``report`` / ``checkpoint``), the
  :class:`EvidenceSource` and :class:`ReportSink` protocols, and stock sinks.
* :mod:`repro.api.sharded` — :class:`ShardedService`, host-partitioned
  scale-out that agrees bit-for-bit with a single service.
* :mod:`repro.api.checkpoint` — :class:`Checkpoint` save/restore of analysis
  state (stop a service, resume it bit-identically).
* :mod:`repro.api.sources` — monitoring bridge, replay sources, recorder.

The exported names and signatures below are snapshot-tested
(``tests/test_api_surface.py``); changing them is an intentional,
reviewed act.
"""

from repro.api.checkpoint import CHECKPOINT_VERSION, Checkpoint
from repro.api.events import (
    EpochTick,
    Evidence,
    PathEvidence,
    RetransmissionEvidence,
    evidence_from_dict,
    evidence_to_dict,
)
from repro.api.service import (
    CallbackSink,
    DetectionLogSink,
    EvidenceSource,
    ReportSink,
    ReportUnavailableError,
    ServiceStats,
    Zero07Service,
)
from repro.api.executor import (
    InlineExecutor,
    ProcessExecutor,
    ShardExecutor,
    ShardExecutorError,
)
from repro.api.sharded import ShardedService, shard_of_host
from repro.api.wire import (
    EvidenceColumnStore,
    LinkRemap,
    WireDecoder,
    WireEncoder,
    WireProtocolError,
    WireRun,
)
from repro.api.sources import (
    EvidenceRecorder,
    MonitoringEvidenceStream,
    ReplayEvidenceSource,
    partition_evidence,
    path_evidence_stream,
)

__all__ = [
    # events
    "Evidence",
    "PathEvidence",
    "RetransmissionEvidence",
    "EpochTick",
    "evidence_to_dict",
    "evidence_from_dict",
    # service
    "Zero07Service",
    "ServiceStats",
    "EvidenceSource",
    "ReportSink",
    "ReportUnavailableError",
    "CallbackSink",
    "DetectionLogSink",
    # scale-out
    "ShardedService",
    "shard_of_host",
    "ShardExecutor",
    "InlineExecutor",
    "ProcessExecutor",
    "ShardExecutorError",
    # evidence transport
    "WireEncoder",
    "WireDecoder",
    "WireRun",
    "LinkRemap",
    "EvidenceColumnStore",
    "WireProtocolError",
    # checkpointing
    "Checkpoint",
    "CHECKPOINT_VERSION",
    # sources
    "MonitoringEvidenceStream",
    "ReplayEvidenceSource",
    "EvidenceRecorder",
    "path_evidence_stream",
    "partition_evidence",
]
