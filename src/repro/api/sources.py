"""Evidence sources: bridges that feed a :class:`~repro.api.service.Zero07Service`.

* :class:`MonitoringEvidenceStream` — binds a live
  :class:`~repro.monitoring.agent.TcpMonitoringAgent` to a service: every
  newly discovered path becomes a :class:`~repro.api.events.PathEvidence`
  (with a per-epoch sequence number assigned in discovery order), every
  repeat retransmission of an already-traced flow a
  :class:`~repro.api.events.RetransmissionEvidence`.  This is what makes the
  rewired :class:`~repro.core.pipeline.Zero07System` *streaming*: evidence
  reaches the service while the epoch is still running, so mid-epoch
  ``report()`` queries see everything discovered so far.
* :class:`ReplayEvidenceSource` — a list-backed
  :class:`~repro.api.service.EvidenceSource` (logs, tests, backfills).
* :class:`EvidenceRecorder` — a transparent ingest tap that snapshots every
  event flowing into a service, for capture/replay and shard-equivalence
  testing.
* :func:`path_evidence_stream` — turn a batch of discovered paths into the
  equivalent evidence stream (the batch → streaming adapter).
* :func:`partition_evidence` — contiguous per-agent slices of one epoch's
  evidence (the batch → fleet adapter).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence

from repro.api.events import (
    EpochTick,
    Evidence,
    PathEvidence,
    RetransmissionEvidence,
    copy_evidence,
)
from repro.api.service import Zero07Service
from repro.discovery.agent import DiscoveredPath
from repro.monitoring.agent import TcpMonitoringAgent


def path_evidence_stream(
    epoch: int, paths: Sequence[DiscoveredPath], tick: bool = False
) -> Iterator[Evidence]:
    """The evidence stream equivalent to a batch of discovered paths.

    Sequence numbers follow list order (the batch analysis order), so a
    service ingesting this stream produces reports bit-identical to
    ``AnalysisAgent.analyze_epoch(epoch, paths)``.  With ``tick=True`` the
    stream ends with the epoch's :class:`EpochTick`.
    """
    for seq, path in enumerate(paths):
        yield PathEvidence(epoch=epoch, seq=seq, path=path)
    if tick:
        yield EpochTick(epoch=epoch)


def partition_evidence(
    events: Sequence[Evidence], num_partitions: int
) -> List[List[Evidence]]:
    """Split one epoch's evidence into contiguous per-agent slices.

    Partition ``i`` of ``n`` gets the events at positions
    ``[i*len/n, (i+1)*len/n)`` with their original sequence numbers — so the
    union of all partitions is exactly the input stream, and each partition
    is itself a strictly-increasing-seq run.  This is the fleet's slicing
    discipline: contiguous ranges let the analyzer reassemble the global
    order by sorting whole chunks (never individual events), which keeps
    multi-agent ingestion on the service's vectorized fast path.  Ticks do
    not belong in the slices (the analyzer synthesizes one tick per epoch
    from the agents' tick barrier) and are rejected here.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    events = events if isinstance(events, list) else list(events)
    if any(isinstance(event, EpochTick) for event in events):
        raise ValueError("partition_evidence takes tickless runs")
    n = len(events)
    return [
        events[(i * n) // num_partitions : ((i + 1) * n) // num_partitions]
        for i in range(num_partitions)
    ]


class ReplayEvidenceSource:
    """An :class:`~repro.api.service.EvidenceSource` over a recorded list."""

    def __init__(self, events: Iterable[Evidence]) -> None:
        self._events: List[Evidence] = list(events)

    def events(self) -> Iterator[Evidence]:
        """Yield the recorded events in order."""
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


class EvidenceRecorder:
    """Wraps a service's ``ingest`` to capture a snapshot of every event.

    The recorder deep-copies path payloads at capture time (sources mutate
    them in place on later retransmissions), so :meth:`replay` reproduces the
    original stream faithfully on any other service — the capture/replay tool
    behind the shard- and checkpoint-equivalence tests.
    """

    def __init__(self, service: Zero07Service) -> None:
        self._service = service
        #: whether ``ingest`` was already shadowed on the instance (another
        #: recorder's tap) — detach must restore it, not delete it.
        self._wrapped_instance_attr = "ingest" in service.__dict__
        self._inner = service.ingest
        self.events: List[Evidence] = []
        service.ingest = self.ingest  # type: ignore[method-assign]

    def ingest(self, event: Evidence) -> None:
        """Record a snapshot of ``event``, then forward it to the service."""
        self.events.append(copy_evidence(event))
        self._inner(event)

    def detach(self) -> None:
        """Restore the ``ingest`` that was in place before this recorder.

        If this recorder wrapped another instance-level tap (stacked
        recorders), that tap is re-installed; otherwise the instance
        attribute is deleted so lookup falls back to the class method —
        re-assigning the bound method would leave an instance attribute
        behind, which ``ingest_batch`` treats as "still tapped" and would
        permanently disable its vectorized fast path.
        """
        if self._wrapped_instance_attr:
            self._service.ingest = self._inner  # type: ignore[method-assign]
            return
        try:
            del self._service.ingest
        except AttributeError:  # already detached
            pass

    def source(self) -> ReplayEvidenceSource:
        """The captured stream as a replayable source."""
        return ReplayEvidenceSource(self.events)

    def replay(self, service) -> None:
        """Feed the captured stream into another service (or sharded fleet)."""
        for event in self.events:
            service.ingest(copy_evidence(event))


class MonitoringEvidenceStream:
    """Streams a monitoring agent's discoveries into a service as they happen.

    Attaches to the agent's ``on_new_path`` / ``on_repeat_retransmissions``
    hooks; sequence numbers are assigned per epoch in discovery order —
    exactly the order the legacy batch loop consumed
    ``paths_for_epoch(epoch)`` in, which is what keeps streamed reports
    bit-identical to batch analysis.
    """

    def __init__(self, monitoring: TcpMonitoringAgent, service: Zero07Service) -> None:
        self._service = service
        self._seq_by_epoch: Dict[int, int] = {}
        monitoring.on_new_path = self._on_new_path
        monitoring.on_repeat_retransmissions = self._on_repeat_retransmissions

    def _on_new_path(self, epoch: int, path: DiscoveredPath) -> None:
        seq = self._seq_by_epoch.get(epoch, 0)
        self._seq_by_epoch[epoch] = seq + 1
        self._service.ingest(PathEvidence(epoch=epoch, seq=seq, path=path))

    def _on_repeat_retransmissions(
        self, epoch: int, flow_id: int, retransmissions: int
    ) -> None:
        # count updates draw from the same per-epoch sequence space as the
        # paths, so redelivered updates are deduplicated too.
        seq = self._seq_by_epoch.get(epoch, 0)
        self._seq_by_epoch[epoch] = seq + 1
        self._service.ingest(
            RetransmissionEvidence(
                epoch=epoch, flow_id=flow_id, retransmissions=retransmissions, seq=seq
            )
        )

    def epoch_done(self, epoch: int) -> None:
        """Release the epoch's sequence counter (after its tick)."""
        self._seq_by_epoch.pop(epoch, None)
