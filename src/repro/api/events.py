"""Typed evidence events: the wire format of the 007 streaming service.

In production 007 the analysis agent is an *always-on* service: every host's
monitoring agent streams it retransmission evidence as it happens, and the
service must be able to answer "which link is bad right now" at any moment.
This module defines the small, closed vocabulary of events that crosses that
boundary:

* :class:`PathEvidence` — a host discovered the (possibly partial) path of a
  flow that suffered retransmissions.  Carries a per-epoch sequence number
  assigned by the source, so the service can re-establish the original
  discovery order under any delivery chunking, interleaving or reordering —
  which is what makes streamed reports bit-identical to batch analysis.
* :class:`RetransmissionEvidence` — an already-traced flow retransmitted
  again.  The service folds the extra count into the flow's existing
  contribution in O(1) without re-sending the path.
* :class:`EpochTick` — an epoch boundary: the epoch is complete, the service
  may finalize its report and release the epoch's evidence buffers.

Every event is a frozen dataclass with a lossless JSON codec
(:func:`evidence_to_dict` / :func:`evidence_from_dict`), shared by
:class:`~repro.api.checkpoint.Checkpoint` serialization.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Union

from repro.discovery.agent import DiscoveredPath
from repro.routing.fivetuple import FiveTuple
from repro.topology.elements import DirectedLink


@dataclass(frozen=True)
class PathEvidence:
    """A newly discovered path of a flow with retransmissions.

    ``seq`` is the per-epoch discovery sequence number assigned by the
    evidence source (0, 1, 2, ... in discovery order).  Sequence numbers make
    delivery robust: the service sorts by ``seq`` before analysing, so any
    chunking or reordering of the stream yields the same report, and duplicate
    deliveries (at-least-once transports) are dropped idempotently.
    """

    epoch: int
    seq: int
    path: DiscoveredPath


@dataclass(frozen=True)
class RetransmissionEvidence:
    """An already-traced flow suffered ``retransmissions`` further events.

    ``seq`` shares the per-epoch sequence space with :class:`PathEvidence`
    when the source assigns one; it gives at-least-once transports duplicate
    suppression for count updates too.  ``None`` (hand-built events) means
    the update is applied unconditionally.
    """

    epoch: int
    flow_id: int
    retransmissions: int = 1
    seq: Optional[int] = None


@dataclass(frozen=True)
class EpochTick:
    """Epoch ``epoch`` has completed; its report may be finalized."""

    epoch: int


Evidence = Union[PathEvidence, RetransmissionEvidence, EpochTick]


# ----------------------------------------------------------------------
# copies
# ----------------------------------------------------------------------
def copy_path(path: DiscoveredPath) -> DiscoveredPath:
    """An independent copy of a discovered path.

    Sources (the monitoring agent's per-epoch cache) mutate their
    ``DiscoveredPath`` objects in place when flows retransmit again; the
    service and any recorder must therefore snapshot at ingest time.
    """
    return replace(path, links=list(path.links))


def copy_evidence(event: Evidence) -> Evidence:
    """A deep-enough copy of an event (paths are snapshotted)."""
    if isinstance(event, PathEvidence):
        return replace(event, path=copy_path(event.path))
    return event


# ----------------------------------------------------------------------
# JSON codec
# ----------------------------------------------------------------------
def link_to_str(link: DirectedLink) -> str:
    """Serialize a directed link as ``"src->dst"``."""
    return f"{link.src}->{link.dst}"


def link_from_str(text: str) -> DirectedLink:
    """Parse a ``"src->dst"`` directed link."""
    src, sep, dst = text.partition("->")
    if not sep or not src or not dst:
        raise ValueError(f"not a directed link: {text!r}")
    return DirectedLink(src, dst)


def five_tuple_to_list(ft: FiveTuple) -> list:
    """Serialize a five-tuple as a 5-element JSON list."""
    return [ft.src_ip, ft.dst_ip, ft.src_port, ft.dst_port, ft.protocol]


def five_tuple_from_list(values: list) -> FiveTuple:
    """Parse a five-tuple from its 5-element JSON list."""
    src_ip, dst_ip, src_port, dst_port, protocol = values
    return FiveTuple(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=int(src_port),
        dst_port=int(dst_port),
        protocol=int(protocol),
    )


def path_to_dict(path: DiscoveredPath) -> Dict[str, Any]:
    """Serialize a discovered path losslessly to JSON-ready primitives."""
    return {
        "flow_id": path.flow_id,
        "five_tuple": five_tuple_to_list(path.five_tuple),
        "src_host": path.src_host,
        "dst_host": path.dst_host,
        "links": [link_to_str(link) for link in path.links],
        "complete": path.complete,
        "retransmissions": path.retransmissions,
        "epoch": path.epoch,
    }


def path_from_dict(data: Dict[str, Any]) -> DiscoveredPath:
    """Rebuild a discovered path from :func:`path_to_dict` output."""
    return DiscoveredPath(
        flow_id=int(data["flow_id"]),
        five_tuple=five_tuple_from_list(data["five_tuple"]),
        src_host=data["src_host"],
        dst_host=data["dst_host"],
        links=[link_from_str(text) for text in data["links"]],
        complete=bool(data["complete"]),
        retransmissions=int(data["retransmissions"]),
        epoch=int(data["epoch"]),
    )


def evidence_to_dict(event: Evidence) -> Dict[str, Any]:
    """Serialize any evidence event with a ``"kind"`` discriminator."""
    if isinstance(event, PathEvidence):
        return {
            "kind": "path",
            "epoch": event.epoch,
            "seq": event.seq,
            "path": path_to_dict(event.path),
        }
    if isinstance(event, RetransmissionEvidence):
        return {
            "kind": "retransmission",
            "epoch": event.epoch,
            "flow_id": event.flow_id,
            "retransmissions": event.retransmissions,
            "seq": event.seq,
        }
    if isinstance(event, EpochTick):
        return {"kind": "tick", "epoch": event.epoch}
    raise TypeError(f"not an evidence event: {event!r}")


def evidence_from_dict(data: Dict[str, Any]) -> Evidence:
    """Rebuild an evidence event from :func:`evidence_to_dict` output."""
    kind = data.get("kind")
    if kind == "path":
        return PathEvidence(
            epoch=int(data["epoch"]),
            seq=int(data["seq"]),
            path=path_from_dict(data["path"]),
        )
    if kind == "retransmission":
        seq = data.get("seq")
        return RetransmissionEvidence(
            epoch=int(data["epoch"]),
            flow_id=int(data["flow_id"]),
            retransmissions=int(data["retransmissions"]),
            seq=None if seq is None else int(seq),
        )
    if kind == "tick":
        return EpochTick(epoch=int(data["epoch"]))
    raise ValueError(f"unknown evidence kind {kind!r}")
