"""Binary evidence transport for the process-backed sharded service.

Two pieces live here, both built around the same column-wise extraction the
vectorized ingest path already uses (:meth:`Zero07Service.ingest_batch`):

* :class:`WireEncoder` / :class:`WireDecoder` — a compact batch codec for
  single-epoch runs of :class:`~repro.api.events.PathEvidence` /
  :class:`~repro.api.events.RetransmissionEvidence`.  Every per-event field
  travels as a flat numpy buffer (one ``tobytes`` per column, no per-event
  pickling), and the strings — host names, IPs, ``"src->dst"`` links — are
  interned once per *connection*: each message carries only the table entries
  the receiving stream has not seen yet, so a steady-state message is pure
  integers.  The decoder rebuilds shared ``DirectedLink``/string objects per
  table entry, which keeps the worker-side tally's identity memo hot.

* :class:`EvidenceColumnStore` — the coordinator-side accumulator behind
  parallel finalize.  As the sharded facade routes bulk runs to workers it
  appends the same columns (link ids, path lengths, weights, flow ids,
  retransmission counts) in **global sequence order**, so a merged epoch
  tally can be materialized with :meth:`ArrayVoteTally.from_arrays` — no
  worker round-trip, no per-path replay — and is bit-identical to the replay
  an inline deployment performs.  Any delivery the bulk path cannot prove
  clean (reordering, duplicates, pending buffers, per-event ingest) marks the
  epoch *dirty* and the facade falls back to gather-and-replay, which remains
  the correctness oracle.
"""

from __future__ import annotations

import operator
import struct
from itertools import chain
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.events import Evidence, PathEvidence, RetransmissionEvidence
from repro.core.arrays import ArrayVoteTally, ItemIndex, LinkIndex
from repro.core.votes import VotePolicy
from repro.discovery.agent import DiscoveredPath
from repro.routing.fivetuple import FiveTuple
from repro.topology.elements import DirectedLink

WIRE_MAGIC = b"RW01"

#: header layout: magic, epoch, shard, n_events, n_paths, total_hops,
#: link-table [lo, hi) delta range, name-table [lo, hi) delta range, and the
#: byte lengths of the two string blobs that carry the delta entries.
_HEADER = struct.Struct("<4sqqiiiiiiiii")


class WireProtocolError(ValueError):
    """A message violated the framing or the per-stream table discipline."""


def _attr_i64(items, name: str) -> np.ndarray:
    return np.fromiter(
        map(operator.attrgetter(name), items), dtype=np.int64, count=len(items)
    )


def _seqs_of(run: Sequence[Evidence]) -> np.ndarray:
    """The run's sequence numbers (``None`` encoded as -1)."""
    try:
        return _attr_i64(run, "seq")
    except TypeError:  # a seq-less RetransmissionEvidence
        return np.fromiter(
            (-1 if e.seq is None else e.seq for e in run),
            dtype=np.int64,
            count=len(run),
        )


class WireEncoder:
    """Encodes evidence runs into per-stream delta-interned messages.

    One encoder serves many output *streams* (one per worker connection);
    string/link tables are global to the encoder, but each stream remembers
    how much of each table its decoder has already seen, so messages stay
    self-contained per connection while interning work is shared.

    The link table may be an externally shared :class:`LinkIndex` (the
    sharded facade passes its merge-side index) so link ids line up with the
    coordinator's own column store for free.
    """

    def __init__(
        self, streams: int = 1, link_index: Optional[LinkIndex] = None
    ) -> None:
        if streams < 1:
            raise ValueError("streams must be >= 1")
        self._links = link_index if link_index is not None else LinkIndex()
        self._names = ItemIndex()
        self._links_sent = [0] * streams
        self._names_sent = [0] * streams

    @property
    def link_index(self) -> LinkIndex:
        """The shared link interner (ids appear verbatim on the wire)."""
        return self._links

    def reset_stream(self, stream: int) -> None:
        """Forget what ``stream``'s decoder has seen (peer reconnected).

        A decoder is per-connection state; after a reconnect the new decoder
        starts with empty tables, so the encoder must replay the full table
        prefix in its next message.  Interning work is retained — only the
        per-stream sent watermarks rewind.
        """
        self._links_sent[stream] = 0
        self._names_sent[stream] = 0

    def _ids(self, index: ItemIndex, items: List) -> List[int]:
        resolved = index.lookup_ids(map(id, items), len(items))
        if resolved is None:
            resolved = index.fast_ids(items)
        return resolved

    def encode_run(
        self,
        stream: int,
        shard: int,
        epoch: int,
        run: Sequence[Evidence],
        seqs: Optional[np.ndarray] = None,
    ) -> bytes:
        """Encode one single-epoch evidence run for ``stream``'s decoder.

        The run must contain only :class:`PathEvidence` and
        :class:`RetransmissionEvidence` events of ``epoch`` (the bulk-routing
        invariant the sharded facade already enforces).
        """
        paths = [e.path for e in run if type(e) is PathEvidence]
        n_events = len(run)
        n_paths = len(paths)
        if seqs is None:
            seqs = _seqs_of(run)
        if n_paths == n_events:
            kinds = np.zeros(n_events, dtype=np.uint8)
            updates: List[RetransmissionEvidence] = []
        else:
            kinds = np.fromiter(
                (type(e) is RetransmissionEvidence for e in run),
                dtype=np.uint8,
                count=n_events,
            )
            updates = [e for e in run if type(e) is RetransmissionEvidence]
            if n_paths + len(updates) != n_events:
                raise WireProtocolError("run contains non-evidence events")

        links_list = [p.links for p in paths]
        lengths = np.fromiter(
            map(len, links_list), dtype=np.int64, count=n_paths
        ).astype(np.int32)
        total_hops = int(lengths.sum())
        lids = self._links.lookup_ids(
            map(id, chain.from_iterable(links_list)), total_hops
        )
        if lids is None:
            lids = self._links.fast_ids(list(chain.from_iterable(links_list)))

        five_tuples = [p.five_tuple for p in paths]
        name_ids = self._ids(
            self._names,
            [p.src_host for p in paths]
            + [p.dst_host for p in paths]
            + [ft.src_ip for ft in five_tuples]
            + [ft.dst_ip for ft in five_tuples],
        )

        link_lo = self._links_sent[stream]
        link_hi = len(self._links)
        name_lo = self._names_sent[stream]
        name_hi = len(self._names)
        links_blob = "\x00".join(
            f"{l.src}->{l.dst}" for l in self._links.items[link_lo:link_hi]
        ).encode("utf-8")
        names_blob = "\x00".join(self._names.items[name_lo:name_hi]).encode(
            "utf-8"
        )
        self._links_sent[stream] = link_hi
        self._names_sent[stream] = name_hi

        out = bytearray(
            _HEADER.pack(
                WIRE_MAGIC,
                epoch,
                shard,
                n_events,
                n_paths,
                total_hops,
                link_lo,
                link_hi,
                name_lo,
                name_hi,
                len(links_blob),
                len(names_blob),
            )
        )
        out += links_blob
        out += names_blob
        out += kinds.tobytes()
        out += np.ascontiguousarray(seqs, dtype=np.int64).tobytes()
        out += _attr_i64(paths, "flow_id").tobytes()
        out += _attr_i64(paths, "retransmissions").tobytes()
        out += _attr_i64(paths, "epoch").tobytes()
        out += lengths.tobytes()
        out += np.asarray(lids, dtype=np.int32).tobytes()
        out += np.asarray(name_ids, dtype=np.int32).tobytes()
        out += np.fromiter(
            map(operator.attrgetter("src_port"), five_tuples),
            dtype=np.int32,
            count=n_paths,
        ).tobytes()
        out += np.fromiter(
            map(operator.attrgetter("dst_port"), five_tuples),
            dtype=np.int32,
            count=n_paths,
        ).tobytes()
        out += np.fromiter(
            map(operator.attrgetter("protocol"), five_tuples),
            dtype=np.int32,
            count=n_paths,
        ).tobytes()
        out += np.fromiter(
            map(operator.attrgetter("complete"), paths),
            dtype=np.uint8,
            count=n_paths,
        ).tobytes()
        if updates:
            out += _attr_i64(updates, "flow_id").tobytes()
            out += _attr_i64(updates, "retransmissions").tobytes()
        return bytes(out)


class WireRun:
    """One decoded message as raw columns — no per-event objects yet.

    The cheap half of decoding: header fields plus numpy views over the
    message buffer (which the run keeps alive), with the decoder's shared
    link/name tables referenced for the expensive half.  Hot consumers (the
    fleet analyzer's columnar ingest) read the arrays directly; anything
    that needs real :class:`~repro.api.events.Evidence` objects calls
    :meth:`materialize`, which is exactly the loop ``WireDecoder.decode``
    always performed.  The tables are append-only, so a retained run can be
    materialized at any later point of the stream.
    """

    __slots__ = (
        "shard",
        "epoch",
        "n_events",
        "n_paths",
        "kinds",
        "seqs",
        "flow_ids",
        "retrans",
        "path_epochs",
        "lengths",
        "lids",
        "src_hosts",
        "dst_hosts",
        "src_ips",
        "dst_ips",
        "src_ports",
        "dst_ports",
        "protocols",
        "complete",
        "upd_flows",
        "upd_counts",
        "links_table",
        "names_table",
        "nbytes",
        "_data",
    )

    @property
    def first_seq(self) -> int:
        """The run's first sequence number (-1 for an empty run)."""
        return int(self.seqs[0]) if self.n_events else -1

    @property
    def last_seq(self) -> int:
        """The run's last sequence number (-1 for an empty run)."""
        return int(self.seqs[-1]) if self.n_events else -1

    def path_seqs(self) -> np.ndarray:
        """Sequence numbers of just the path events, in run order."""
        if self.n_paths == self.n_events:
            return self.seqs
        return self.seqs[self.kinds == 0]

    def update_seqs(self) -> np.ndarray:
        """Sequence numbers of just the count updates, in run order."""
        if self.n_paths == self.n_events:
            return self.seqs[:0]
        return self.seqs[self.kinds != 0]

    def materialize(self) -> List[Evidence]:
        """Rebuild the run's evidence events (the expensive decode half)."""
        epoch = self.epoch
        names = self.names_table
        links_table = self.links_table
        flow_ids = self.flow_ids.tolist()
        retrans = self.retrans.tolist()
        path_epochs = self.path_epochs.tolist()
        lengths = self.lengths.tolist()
        lids = self.lids.tolist()
        src_hosts = self.src_hosts.tolist()
        dst_hosts = self.dst_hosts.tolist()
        src_ips = self.src_ips.tolist()
        dst_ips = self.dst_ips.tolist()
        src_ports = self.src_ports.tolist()
        dst_ports = self.dst_ports.tolist()
        protocols = self.protocols.tolist()
        complete = self.complete.tolist()
        paths: List[DiscoveredPath] = []
        pos = 0
        for i in range(self.n_paths):
            length = lengths[i]
            paths.append(
                DiscoveredPath(
                    flow_id=flow_ids[i],
                    five_tuple=FiveTuple(
                        src_ip=names[src_ips[i]],
                        dst_ip=names[dst_ips[i]],
                        src_port=src_ports[i],
                        dst_port=dst_ports[i],
                        protocol=protocols[i],
                    ),
                    src_host=names[src_hosts[i]],
                    dst_host=names[dst_hosts[i]],
                    links=[links_table[j] for j in lids[pos : pos + length]],
                    complete=bool(complete[i]),
                    retransmissions=retrans[i],
                    epoch=path_epochs[i],
                )
            )
            pos += length

        seqs_list = self.seqs.tolist()
        n_updates = self.n_events - self.n_paths
        if n_updates == 0:
            return [
                PathEvidence(epoch, seq, path)
                for seq, path in zip(seqs_list, paths)
            ]
        upd_flows = self.upd_flows.tolist()
        upd_counts = self.upd_counts.tolist()
        events: List[Evidence] = []
        append = events.append
        path_iter = iter(paths)
        upd_i = 0
        for kind, seq in zip(self.kinds.tolist(), seqs_list):
            if kind:
                append(
                    RetransmissionEvidence(
                        epoch,
                        upd_flows[upd_i],
                        upd_counts[upd_i],
                        None if seq < 0 else seq,
                    )
                )
                upd_i += 1
            else:
                append(PathEvidence(epoch, seq, next(path_iter)))
        return events


class WireDecoder:
    """Rebuilds evidence events from one stream of encoder messages.

    Stateful by design: the decoder accumulates the stream's link/name tables
    from each message's delta section, so messages must be decoded in the
    order they were encoded for this stream (the per-worker pipe is FIFO, so
    the discipline holds by construction).
    """

    def __init__(self) -> None:
        self._links: List[DirectedLink] = []
        self._names: List[str] = []

    @property
    def links_table(self) -> List[DirectedLink]:
        """The stream's accumulated link table (append-only; do not mutate)."""
        return self._links

    def _extend_tables(
        self, link_lo: int, links_blob: bytes, name_lo: int, names_blob: bytes
    ) -> None:
        if link_lo != len(self._links) or name_lo != len(self._names):
            raise WireProtocolError(
                f"table delta out of order: link {link_lo}/{len(self._links)}, "
                f"name {name_lo}/{len(self._names)}"
            )
        if links_blob:
            for text in links_blob.decode("utf-8").split("\x00"):
                src, _, dst = text.partition("->")
                self._links.append(DirectedLink(src, dst))
        if names_blob:
            self._names.extend(names_blob.decode("utf-8").split("\x00"))

    def decode_columns(self, data) -> WireRun:
        """Decode one message into a :class:`WireRun` of raw columns.

        Validates the header and folds the message's table deltas into the
        stream state, but builds no event objects — column views over the
        input buffer only.  The returned run keeps ``data`` alive.
        """
        data = memoryview(data)
        (
            magic,
            epoch,
            shard,
            n_events,
            n_paths,
            total_hops,
            link_lo,
            _link_hi,
            name_lo,
            _name_hi,
            links_len,
            names_len,
        ) = _HEADER.unpack_from(data, 0)
        if magic != WIRE_MAGIC:
            raise WireProtocolError(f"bad magic {magic!r}")
        offset = _HEADER.size
        self._extend_tables(
            link_lo,
            bytes(data[offset : offset + links_len]),
            name_lo,
            bytes(data[offset + links_len : offset + links_len + names_len]),
        )
        offset += links_len + names_len

        run = WireRun()
        run.shard = shard
        run.epoch = epoch
        run.n_events = n_events
        run.n_paths = n_paths
        run.links_table = self._links
        run.names_table = self._names
        run.nbytes = len(data)
        run._data = data

        def column(dtype, count):
            nonlocal offset
            arr = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
            offset += arr.nbytes
            return arr

        run.kinds = column(np.uint8, n_events)
        run.seqs = column(np.int64, n_events)
        run.flow_ids = column(np.int64, n_paths)
        run.retrans = column(np.int64, n_paths)
        run.path_epochs = column(np.int64, n_paths)
        run.lengths = column(np.int32, n_paths)
        run.lids = column(np.int32, total_hops)
        run.src_hosts = column(np.int32, n_paths)
        run.dst_hosts = column(np.int32, n_paths)
        run.src_ips = column(np.int32, n_paths)
        run.dst_ips = column(np.int32, n_paths)
        run.src_ports = column(np.int32, n_paths)
        run.dst_ports = column(np.int32, n_paths)
        run.protocols = column(np.int32, n_paths)
        run.complete = column(np.uint8, n_paths)
        n_updates = n_events - n_paths
        run.upd_flows = column(np.int64, n_updates)
        run.upd_counts = column(np.int64, n_updates)
        return run

    def decode(
        self, data
    ) -> Tuple[int, int, List[Evidence], np.ndarray]:
        """Decode one message into ``(shard, epoch, events, seqs)``."""
        run = self.decode_columns(data)
        return run.shard, run.epoch, run.materialize(), run.seqs


class LinkRemap:
    """Maps one decoder stream's link ids onto a shared :class:`LinkIndex`.

    The decoder's table and the target index are both append-only, so the
    mapping is a growable integer gather table: entries are interned into the
    index the first time their table position appears, and every later
    message remaps with one numpy fancy-index.  This is what lets a columnar
    consumer fold wire runs from many independent streams into one merged
    column store without touching per-event objects.
    """

    def __init__(self, decoder: WireDecoder, index: LinkIndex) -> None:
        self._table = decoder.links_table
        self._index = index
        self._map = np.zeros(0, dtype=np.int64)

    def ids(self, lids: np.ndarray) -> np.ndarray:
        """Translate wire link ids into target-index ids (int64 copy)."""
        table = self._table
        if len(self._map) < len(table):
            fresh = np.asarray(
                self._index.fast_ids(table[len(self._map) :]), dtype=np.int64
            )
            self._map = np.concatenate([self._map, fresh])
        return self._map[lids]


# ----------------------------------------------------------------------
# coordinator-side merged columns
# ----------------------------------------------------------------------
class _EpochColumns:
    """One epoch's accumulated CSR chunks, in global sequence order."""

    __slots__ = (
        "cols_chunks",
        "lengths_chunks",
        "weights_chunks",
        "flow_chunks",
        "retransmissions",
        "row_by_flow",
        "first_seen",
        "voted",
        "support",
        "max_seq",
        "num_rows",
    )

    def __init__(self) -> None:
        self.cols_chunks: List[np.ndarray] = []
        self.lengths_chunks: List[np.ndarray] = []
        self.weights_chunks: List[np.ndarray] = []
        self.flow_chunks: List[np.ndarray] = []
        #: a plain list so per-flow count updates can bump rows in place.
        self.retransmissions: List[int] = []
        self.row_by_flow: Dict[int, int] = {}
        self.first_seen: List[int] = []
        self.voted: set = set()
        self.support = np.zeros(0, dtype=np.int64)
        self.max_seq = -1
        self.num_rows = 0


class EvidenceColumnStore:
    """Accumulates merged epoch columns as bulk runs stream through the facade.

    The facade appends each committed bulk stretch *before* partitioning it to
    workers, so the columns land in exactly the global sequence order an
    unsharded service would fold them in — which is the whole bit-identity
    argument behind :meth:`build_tally`.  Anything the bulk path cannot prove
    ordered and duplicate-free (sequence regressions, pending buffers,
    per-event ingestion, restores) marks the epoch dirty, and
    :meth:`build_tally` returns ``None`` so the caller replays gathered
    evidence instead — the two paths agree bit-for-bit whenever both apply.
    """

    def __init__(
        self, link_index: LinkIndex, policy: VotePolicy = "inverse_hops"
    ) -> None:
        self._links = link_index
        self._policy: VotePolicy = policy
        self._epochs: Dict[int, _EpochColumns] = {}
        self._dirty: set = set()

    # ------------------------------------------------------------------
    def mark_dirty(self, epoch: int) -> None:
        """Disqualify ``epoch`` from column-store finalize (replay instead)."""
        if epoch not in self._dirty:
            self._dirty.add(epoch)
            self._epochs.pop(epoch, None)

    def is_clean(self, epoch: int) -> bool:
        """Whether the epoch's merged tally can be built from the columns."""
        return epoch not in self._dirty

    def pop(self, epoch: int) -> None:
        """Release the epoch's buffers (after its final report)."""
        self._epochs.pop(epoch, None)
        self._dirty.discard(epoch)

    # ------------------------------------------------------------------
    def append_run(
        self,
        epoch: int,
        run: Sequence[Evidence],
        seqs: Optional[np.ndarray] = None,
    ) -> None:
        """Fold one committed bulk stretch into the epoch's columns.

        Mirrors the preconditions of the service's vectorized ingest: the
        stretch must extend the epoch in strictly increasing sequence order
        and no count update may precede a later re-trace of its flow.  A
        violation marks the epoch dirty *without* mutating any column, so a
        half-applied stretch can never leak into a merged tally.
        """
        if epoch in self._dirty:
            return
        state = self._epochs.get(epoch)
        if state is None:
            state = self._epochs[epoch] = _EpochColumns()
        if seqs is None:
            seqs = _seqs_of(run)
        if len(seqs) == 0:
            return
        if int(seqs[0]) <= state.max_seq or (
            len(seqs) > 1 and not bool((np.diff(seqs) > 0).all())
        ):
            self.mark_dirty(epoch)
            return

        paths = [e.path for e in run if type(e) is PathEvidence]
        n_paths = len(paths)
        if n_paths == len(run):
            updates: List[RetransmissionEvidence] = []
        else:
            updates = [e for e in run if type(e) is RetransmissionEvidence]
            if n_paths + len(updates) != len(run):
                self.mark_dirty(epoch)
                return

        flow_list: List[int] = []
        if n_paths:
            links_list = [p.links for p in paths]
            lengths = np.fromiter(
                map(len, links_list), dtype=np.int64, count=n_paths
            )
            if n_paths and int(lengths.min()) == 0:
                # the shard service will raise on the empty path; whatever
                # state survives is per-event territory.
                self.mark_dirty(epoch)
                return
            flow_list = list(map(operator.attrgetter("flow_id"), paths))

        if updates:
            # applying updates after the stretch's paths only matches the
            # per-event order if no updated flow is re-traced later in the
            # stretch (same degenerate-stream rule as the service fast path).
            last_path_seq = dict(
                zip(flow_list, (e.seq for e in run if type(e) is PathEvidence))
            )
            seq_of_last_path = last_path_seq.get
            if any(seq_of_last_path(e.flow_id, -1) > e.seq for e in updates):
                self.mark_dirty(epoch)
                return
            row_of_flow = state.row_by_flow.get
            upd_flows = np.fromiter(
                map(operator.attrgetter("flow_id"), updates),
                dtype=np.int64,
                count=len(updates),
            )
            upd_counts = np.fromiter(
                map(operator.attrgetter("retransmissions"), updates),
                dtype=np.int64,
                count=len(updates),
            )

        # -- all checks passed: mutate ----------------------------------
        if n_paths:
            row0 = state.num_rows
            lids = self._links.lookup_ids(
                map(id, chain.from_iterable(links_list)), int(lengths.sum())
            )
            if lids is None:
                lids = self._links.fast_ids(list(chain.from_iterable(links_list)))
            cols = np.asarray(lids, dtype=np.int64)
            state.cols_chunks.append(cols)
            state.lengths_chunks.append(lengths)
            if self._policy == "unit":
                state.weights_chunks.append(np.ones(n_paths, dtype=np.float64))
            else:
                state.weights_chunks.append(1.0 / lengths)
            state.flow_chunks.append(np.asarray(flow_list, dtype=np.int64))
            state.retransmissions.extend(
                map(operator.attrgetter("retransmissions"), paths)
            )
            state.row_by_flow.update(
                zip(flow_list, range(row0, row0 + n_paths))
            )
            state.num_rows = row0 + n_paths

            # distinct (row, link) support — exact per stretch, because a
            # row's links never span stretches.
            n_links = len(self._links)
            rows = np.repeat(
                np.arange(row0, row0 + n_paths, dtype=np.int64), lengths
            )
            pair_keys = np.unique(rows * np.int64(n_links) + cols)
            counts = np.bincount(
                pair_keys % np.int64(n_links), minlength=n_links
            )
            if len(state.support) < n_links:
                state.support = np.concatenate(
                    [
                        state.support,
                        np.zeros(n_links - len(state.support), dtype=np.int64),
                    ]
                )
            state.support += counts

            voted = state.voted
            if len(voted) != len(self._links):
                first_seen_append = state.first_seen.append
                for lid in dict.fromkeys(lids):
                    if lid not in voted:
                        voted.add(lid)
                        first_seen_append(lid)

        if updates:
            unique_flows, inverse = np.unique(upd_flows, return_inverse=True)
            totals = np.bincount(
                inverse, weights=upd_counts.astype(np.float64)
            ).astype(np.int64)
            retrans = state.retransmissions
            rows_list = list(map(row_of_flow, unique_flows.tolist()))
            if None in rows_list:
                # an update for a flow the columns never saw — only possible
                # if the facade routed through older per-event state; replay.
                self.mark_dirty(epoch)
                return
            for row, extra in zip(rows_list, totals.tolist()):
                retrans[row] += extra

        state.max_seq = int(seqs[-1])

    def append_columns(
        self, epoch: int, run: WireRun, link_ids: np.ndarray
    ) -> None:
        """Fold one committed wire run into the epoch's columns, object-free.

        The columnar twin of :meth:`append_run`: identical preconditions,
        identical mutations, but fed straight from a :class:`WireRun`'s
        arrays plus pre-remapped link ids (:meth:`LinkRemap.ids` of
        ``run.lids``) — no :class:`DiscoveredPath` objects are ever built.
        Any violation marks the epoch dirty and the caller replays
        materialized evidence instead, exactly like the object path.
        """
        if epoch in self._dirty:
            return
        state = self._epochs.get(epoch)
        if state is None:
            state = self._epochs[epoch] = _EpochColumns()
        seqs = run.seqs
        if len(seqs) == 0:
            return
        if int(seqs[0]) <= state.max_seq or (
            len(seqs) > 1 and not bool((np.diff(seqs) > 0).all())
        ):
            self.mark_dirty(epoch)
            return
        n_paths = run.n_paths
        n_updates = run.n_events - n_paths
        lengths = run.lengths.astype(np.int64)
        if n_paths and int(lengths.min()) == 0:
            self.mark_dirty(epoch)
            return
        flow_list = run.flow_ids.tolist()

        if n_updates:
            # same degenerate-stream rule as append_run: no update may
            # precede a later re-trace of its flow within the run.
            last_path_seq = dict(zip(flow_list, run.path_seqs().tolist()))
            seq_of_last_path = last_path_seq.get
            if any(
                seq_of_last_path(flow, -1) > seq
                for flow, seq in zip(
                    run.upd_flows.tolist(), run.update_seqs().tolist()
                )
            ):
                self.mark_dirty(epoch)
                return

        # -- all checks passed: mutate ----------------------------------
        if n_paths:
            row0 = state.num_rows
            cols = (
                link_ids
                if link_ids.dtype == np.int64
                else link_ids.astype(np.int64)
            )
            state.cols_chunks.append(cols)
            state.lengths_chunks.append(lengths)
            if self._policy == "unit":
                state.weights_chunks.append(np.ones(n_paths, dtype=np.float64))
            else:
                state.weights_chunks.append(1.0 / lengths)
            state.flow_chunks.append(run.flow_ids.astype(np.int64))
            state.retransmissions.extend(run.retrans.tolist())
            state.row_by_flow.update(
                zip(flow_list, range(row0, row0 + n_paths))
            )
            state.num_rows = row0 + n_paths

            n_links = len(self._links)
            rows = np.repeat(
                np.arange(row0, row0 + n_paths, dtype=np.int64), lengths
            )
            pair_keys = np.unique(rows * np.int64(n_links) + cols)
            counts = np.bincount(
                pair_keys % np.int64(n_links), minlength=n_links
            )
            if len(state.support) < n_links:
                state.support = np.concatenate(
                    [
                        state.support,
                        np.zeros(n_links - len(state.support), dtype=np.int64),
                    ]
                )
            state.support += counts

            voted = state.voted
            if len(voted) != len(self._links):
                first_seen_append = state.first_seen.append
                for lid in dict.fromkeys(cols.tolist()):
                    if lid not in voted:
                        voted.add(lid)
                        first_seen_append(lid)

        if n_updates:
            unique_flows, inverse = np.unique(
                run.upd_flows, return_inverse=True
            )
            totals = np.bincount(
                inverse, weights=run.upd_counts.astype(np.float64)
            ).astype(np.int64)
            retrans = state.retransmissions
            rows_list = list(map(state.row_by_flow.get, unique_flows.tolist()))
            if None in rows_list:
                # an update for a flow the columns never saw — replay.
                self.mark_dirty(epoch)
                return
            for row, extra in zip(rows_list, totals.tolist()):
                retrans[row] += extra

        state.max_seq = int(seqs[-1])

    # ------------------------------------------------------------------
    def build_tally(self, epoch: int) -> Optional[ArrayVoteTally]:
        """The epoch's merged tally, or ``None`` when replay is required.

        Bit-identical to replaying the epoch's evidence in global sequence
        order through a fresh :class:`ArrayVoteTally`: the columns were
        appended in that order, the weights are the same ``1.0 / hops``
        doubles, the vote fold is the same left-to-right ``np.bincount``
        accumulation, and support/first-seen bookkeeping is integer-exact.
        """
        if epoch in self._dirty:
            return None
        state = self._epochs.get(epoch)
        n_links = len(self._links)
        if state is None or state.num_rows == 0:
            return ArrayVoteTally.from_arrays(
                self._links,
                np.zeros(0, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                np.zeros(0, dtype=np.float64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                policy=self._policy,
                votes=np.zeros(n_links, dtype=np.float64),
                support=np.zeros(n_links, dtype=np.int64),
            )
        cols = (
            np.concatenate(state.cols_chunks)
            if len(state.cols_chunks) > 1
            else state.cols_chunks[0]
        )
        lengths = (
            np.concatenate(state.lengths_chunks)
            if len(state.lengths_chunks) > 1
            else state.lengths_chunks[0]
        )
        weights = (
            np.concatenate(state.weights_chunks)
            if len(state.weights_chunks) > 1
            else state.weights_chunks[0]
        )
        flow_ids = (
            np.concatenate(state.flow_chunks)
            if len(state.flow_chunks) > 1
            else state.flow_chunks[0]
        )
        indptr = np.zeros(state.num_rows + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        # one bincount over the whole epoch = the same left-to-right float
        # fold an incremental tally performs (chunk-wise partial bincounts
        # would reassociate the additions and drift by ULPs).
        votes = np.bincount(
            cols, weights=np.repeat(weights, lengths), minlength=n_links
        )
        support = state.support
        if len(support) < n_links:
            support = np.concatenate(
                [support, np.zeros(n_links - len(support), dtype=np.int64)]
            )
        return ArrayVoteTally.from_arrays(
            self._links,
            cols,
            indptr,
            weights,
            flow_ids,
            np.asarray(state.retransmissions, dtype=np.int64),
            np.asarray(state.first_seen, dtype=np.int64),
            policy=self._policy,
            votes=votes,
            support=support.copy(),
        )
